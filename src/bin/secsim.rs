//! The `secsim` command-line driver.
//!
//! ```text
//! secsim run --bench mcf --policy commit [--l2 1m] [--insts 1000000] [--ruu 64] [--tree]
//! secsim run --program victim.sasm --policy commit
//! secsim asm program.sasm [--out program.sprog] [--hex] [--policy commit] [--trace]
//! secsim attack --exploit pointer-conversion --policy commit
//! secsim list
//! ```

use secsim::attack::{run_exploit, Exploit};
use secsim::core::{Policy, SecureConfig};
use secsim::cpu::{CpuConfig, SimConfig, SimOutcome, SimReport, SimSession, TraceConfig};
use secsim::mem::MemSystemConfig;
use secsim::workloads::{assemble_named, register_program, BenchId, ProgramSource};
use std::process::ExitCode;

fn parse_policy(name: &str) -> Option<Policy> {
    Some(match name {
        "baseline" | "none" => Policy::baseline(),
        "issue" => Policy::authen_then_issue(),
        "commit" => Policy::authen_then_commit(),
        "write" => Policy::authen_then_write(),
        "fetch" => Policy::authen_then_fetch(),
        "commit+fetch" | "cf" => Policy::commit_plus_fetch(),
        "commit+obf" | "obf" => Policy::commit_plus_obfuscation(),
        _ => return None,
    })
}

fn parse_exploit(name: &str) -> Option<Exploit> {
    Exploit::ALL.into_iter().find(|e| e.name() == name)
}

struct Args {
    map: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut map = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    i += 1;
                    args[i].clone()
                } else {
                    "true".to_string()
                };
                map.push((key.to_string(), value));
            } else {
                positional.push(args[i].clone());
            }
            i += 1;
        }
        Self { map, positional }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn num(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let v = v.trim();
                if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                }
                .map_err(|_| format!("--{key}: expected a number, got `{v}`"))
            }
        }
    }
}

fn print_report(r: &SimReport, verbose: bool) {
    println!("insts   {:>12}", r.insts);
    println!("cycles  {:>12}", r.cycles);
    println!("IPC     {:>12.4}", r.ipc());
    println!(
        "status  {:>12}",
        if r.decode_fault {
            "decode-fault"
        } else if r.halted {
            "halted"
        } else {
            "inst-cap"
        }
    );
    if let Some(e) = r.exception {
        println!(
            "AUTH EXCEPTION at cycle {} (line {:#x}, precise: {})",
            e.cycle, e.line_addr, e.precise
        );
    }
    for io in &r.io_events {
        println!("out port {} = {:#x} @ cycle {}", io.port, io.value, io.cycle);
    }
    if verbose {
        println!("--- counters ---\n{}", r.counters);
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let policy_name = args.get("policy").unwrap_or("commit");
    let policy = parse_policy(policy_name).ok_or_else(|| format!("unknown policy `{policy_name}`"))?;
    let bench: BenchId = match (args.get("bench"), args.get("program")) {
        (Some(_), Some(_)) => return Err("run: --bench and --program are exclusive".into()),
        (Some(name), None) => name.parse().map_err(|e| format!("{e} (try `secsim list`)"))?,
        (None, Some(path)) => ProgramSource::from_arg(path)
            .map_err(|e| format!("--program {path}: {e}"))?
            .bench_id(),
        (None, None) => return Err("run: --bench <name> or --program <file> is required".into()),
    };
    let mut w = bench.build(args.num("seed", 2006)?);
    let mem = match args.get("l2").unwrap_or("256k") {
        "256k" | "256K" => MemSystemConfig::paper_256k(),
        "1m" | "1M" => MemSystemConfig::paper_1m(),
        other => return Err(format!("--l2: expected 256k or 1m, got `{other}`")),
    };
    let cpu = match args.num("ruu", 128)? {
        128 => CpuConfig::paper_reference(),
        64 => CpuConfig::paper_ruu64(),
        other => CpuConfig { ruu_size: other as u32, ..CpuConfig::paper_reference() },
    };
    let secure = if args.flag("tree") {
        SecureConfig::paper_with_tree(policy, w.data_base, w.data_bytes)
    } else {
        SecureConfig::paper(policy)
    }
    .with_protected_region(w.data_base, w.data_bytes);
    let cfg = SimConfig {
        cpu,
        mem,
        secure,
        max_insts: args.num("insts", 1_000_000)?,
        max_cycles: args.num("cycles", 0)?,
    };
    eprintln!("running {bench} under {policy} ({} L2)...", args.get("l2").unwrap_or("256k"));
    let trace = args.flag("trace") || args.get("trace-out").is_some();
    let chrome_path = args.get("chrome-trace");
    let mut session = SimSession::new(&cfg).trace_bus(trace);
    if chrome_path.is_some() {
        session = session.trace(TraceConfig::default());
    }
    let out = session.run(&mut w.mem, w.entry);
    match &out {
        SimOutcome::TamperDetected { cycle, line_addr, cause, exposure, .. } => eprintln!(
            "tampering detected at cycle {cycle}: line {line_addr:#x} ({cause}); \
             exposure before detection: {exposure}"
        ),
        SimOutcome::CycleLimitExceeded { cycle, .. } => {
            eprintln!("cycle fence tripped at {cycle} before the program finished")
        }
        SimOutcome::Completed(_) => {}
    }
    let run = out.into_run();
    let r = run.report;
    print_report(&r, args.flag("verbose"));
    if let Some(path) = chrome_path {
        let t = run.trace.expect("tracing was enabled");
        std::fs::write(path, t.to_chrome().render()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("chrome trace written to {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = args.get("trace-out") {
        write_trace_csv(path, &r)?;
        eprintln!("bus trace ({} events) written to {path}", r.bus_events.len());
    } else if trace {
        println!("--- first bus events ---");
        for e in r.bus_events.iter().take(20) {
            println!("cycle {:>8}  {:#010x}  {:?}", e.cycle, e.addr, e.kind);
        }
    }
    Ok(())
}

/// Exports the attacker-visible bus trace as CSV.
fn write_trace_csv(path: &str, r: &SimReport) -> Result<(), String> {
    let mut out = String::from("cycle,addr,kind\n");
    for e in &r.bus_events {
        out.push_str(&format!("{},{:#010x},{:?}\n", e.cycle, e.addr, e.kind));
    }
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

/// `secsim sweep --bench <name>`: one benchmark across every policy.
fn cmd_sweep(args: &Args) -> Result<(), String> {
    let bench = args.get("bench").ok_or("sweep: --bench <name> is required")?;
    let bench: BenchId = bench.parse().map_err(|e| format!("{e} (try `secsim list`)"))?;
    let insts = args.num("insts", 300_000)?;
    let policies: [(&str, Policy); 7] = [
        ("baseline", Policy::baseline()),
        ("issue", Policy::authen_then_issue()),
        ("write", Policy::authen_then_write()),
        ("commit", Policy::authen_then_commit()),
        ("fetch", Policy::authen_then_fetch()),
        ("commit+fetch", Policy::commit_plus_fetch()),
        ("commit+obf", Policy::commit_plus_obfuscation()),
    ];
    let mut base_ipc = 0.0;
    println!("{:<14} {:>10} {:>8} {:>8}", "policy", "cycles", "IPC", "norm");
    for (name, policy) in policies {
        let mut w = bench.build(args.num("seed", 2006)?);
        let mut cfg = SimConfig::paper_256k(policy).with_max_insts(insts);
        cfg.secure = cfg.secure.with_protected_region(w.data_base, w.data_bytes);
        let r = SimSession::new(&cfg).run(&mut w.mem, w.entry).into_report();
        if base_ipc == 0.0 {
            base_ipc = r.ipc();
        }
        println!("{:<14} {:>10} {:>8.3} {:>8.3}", name, r.cycles, r.ipc(), r.ipc() / base_ipc);
    }
    Ok(())
}

fn cmd_asm(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("asm: a source file is required")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program");
    let image = assemble_named(&source, stem).map_err(|e| format!("{path}:{e}"))?;
    eprintln!(
        "assembled {}: {} code words at {:#x}, {} data segment(s), entry {:#x}, footprint {} bytes",
        image.name,
        image.code.len(),
        image.code_base,
        image.segments.len(),
        image.entry,
        image.footprint,
    );
    if let Some(out) = args.get("out") {
        std::fs::write(out, image.to_bytes()).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("program image written to {out}");
        return Ok(());
    }
    if args.flag("hex") {
        for (i, w) in image.code.iter().enumerate() {
            println!(
                "{:#010x}: {w:08x}  {}",
                image.code_base + 4 * i as u32,
                secsim::isa::decode(*w)
            );
        }
        return Ok(());
    }
    let policy_name = args.get("policy").unwrap_or("commit");
    let policy = parse_policy(policy_name).ok_or_else(|| format!("unknown policy `{policy_name}`"))?;
    let src = ProgramSource::External(register_program(image));
    let w = src.build(args.num("seed", 2006)?);
    let mut cfg = SimConfig::paper_256k(policy).with_max_insts(args.num("insts", 10_000_000)?);
    cfg.secure = cfg.secure.with_protected_region(w.data_base, w.data_bytes);
    let out = SimSession::new(&cfg)
        .program(src)
        .trace_bus(args.flag("trace"))
        .run_program();
    let r = out.into_run().report;
    print_report(&r, args.flag("verbose"));
    if args.flag("trace") {
        println!("--- first bus events ---");
        for e in r.bus_events.iter().take(20) {
            println!("cycle {:>8}  {:#010x}  {:?}", e.cycle, e.addr, e.kind);
        }
    }
    Ok(())
}

fn cmd_attack(args: &Args) -> Result<(), String> {
    let name = args.get("exploit").ok_or("attack: --exploit <name> is required")?;
    let exploit = parse_exploit(name).ok_or_else(|| {
        format!(
            "unknown exploit `{name}`; available: {}",
            Exploit::ALL.map(|e| e.name()).join(", ")
        )
    })?;
    let policy_name = args.get("policy").unwrap_or("commit");
    let policy = parse_policy(policy_name).ok_or_else(|| format!("unknown policy `{policy_name}`"))?;
    eprintln!("running {} against {policy}...", exploit.name());
    let out = run_exploit(exploit, policy);
    println!("leaked   {}", out.leaked);
    match out.recovered {
        Some(v) => println!("secret   {v:#010x} (recovered by the adversary)"),
        None => println!("secret   not recovered"),
    }
    match out.exception_cycle {
        Some(c) => println!("caught   authentication exception at cycle {c}"),
        None => println!("caught   never (tampering undetected)"),
    }
    println!("trials   {}", out.trials);
    Ok(())
}

fn cmd_list() {
    let names: Vec<&str> = BenchId::all().map(BenchId::name).collect();
    println!("benchmarks: {}", names.join(", "));
    println!(
        "policies:   baseline issue commit write fetch commit+fetch commit+obf"
    );
    println!("exploits:   {}", Exploit::ALL.map(|e| e.name()).join(", "));
}

const USAGE: &str = "usage:
  secsim run   --bench <name> | --program <f.sasm|f.sprog> [--policy P] [--l2 256k|1m] [--insts N] [--ruu N] [--tree] [--trace] [--trace-out f.csv] [--chrome-trace f.json] [--verbose]
  secsim sweep --bench <name> [--insts N] [--seed N]
  secsim asm   <file.sasm> [--out f.sprog] [--hex] [--policy P] [--insts N] [--trace]
  secsim attack --exploit <name> [--policy P]
  secsim list";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    let result = match args.positional.first().map(String::as_str) {
        Some("run") => cmd_run(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("asm") => cmd_asm(&args),
        Some("attack") => cmd_attack(&args),
        Some("list") => {
            cmd_list();
            Ok(())
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
