//! # secsim — authentication control points for secure processors
//!
//! A facade crate re-exporting the whole `secsim` workspace: a
//! cycle-level out-of-order secure-processor simulator reproducing
//! *"Authentication Control Point and Its Implications For Secure
//! Processor Design"* (MICRO 2006).
//!
//! See the individual crates for details:
//!
//! * [`isa`] — the 32-bit RISC ISA, assembler and functional semantics
//! * [`crypto`] — AES / SHA-256 / HMAC / CBC-MAC and latency models
//! * [`mem`] — caches, front-side bus (with attacker-visible observer) and SDRAM
//! * [`core`] — the paper's contribution: authentication queue and the
//!   five authentication control-point policies
//! * [`cpu`] — the out-of-order pipeline gated by those policies
//! * [`workloads`] — synthetic SPEC2000-like kernels
//! * [`attack`] — memory-fetch side-channel exploits
//! * [`stats`] — counters and report tables

pub use secsim_attack as attack;
pub use secsim_core as core;
pub use secsim_cpu as cpu;
pub use secsim_crypto as crypto;
pub use secsim_isa as isa;
pub use secsim_mem as mem;
pub use secsim_stats as stats;
pub use secsim_workloads as workloads;
