#!/bin/sh
# Tier-1 gate: offline build + test + a cached-vs-fresh sweep smoke run.
# Must pass on a machine with no network access and no registry mirror.
set -eu
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --workspace

echo "== test (workspace, offline) =="
cargo test --workspace -q

echo "== lint (clippy, warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs (rustdoc, warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== perf smoke: throughput gate vs recorded 'observability' label =="
# Reads the tracked results/perf_baseline.json (so it must run before
# SECSIM_RESULTS is redirected below); read-only — the gate records
# nothing. Fails on >10% insts/sec regression in any measured case.
./target/release/perf --smoke --compare observability

echo "== sweep smoke: fresh run, then cache hit =="
SMOKE_RESULTS="$(mktemp -d)"
trap 'rm -rf "$SMOKE_RESULTS"' EXIT
export SECSIM_RESULTS="$SMOKE_RESULTS"
export SECSIM_INSTS=20000
./target/release/fig11 > "$SMOKE_RESULTS/fresh.txt"
[ "$(ls "$SMOKE_RESULTS/cache" | wc -l)" -gt 0 ] || {
    echo "FAIL: fresh sweep wrote no cache entries"; exit 1; }
./target/release/fig11 > "$SMOKE_RESULTS/cached.txt"
cmp "$SMOKE_RESULTS/fresh.txt" "$SMOKE_RESULTS/cached.txt" || {
    echo "FAIL: cached sweep output differs from fresh run"; exit 1; }
echo "cached output byte-identical to fresh run"

echo "== asm smoke: assemble examples/*.sasm, diff vs golden .sprog, run baseline+commit =="
./target/release/asm --smoke

echo "== check-smoke: differential co-sim batch + checkpoint determinism, all policies, fixed seed =="
./target/release/secsim-check --smoke --seed 2006

echo "== oblivious-smoke: two-run secret-independence oracle, all policies =="
# Obfuscation must show zero address divergences; every other policy
# must demonstrably leak (the repros land under $SECSIM_RESULTS).
./target/release/secsim-check oblivious --smoke --seed 2006

echo "== fault-smoke: injected-tamper campaign, all policies =="
./target/release/faults --smoke

echo "== serve-smoke: job server on an ephemeral port, 2 clients x 2-point grid =="
# Asserts dedup fan-in (each unique point simulated exactly once for
# both clients), byte-identical reports, and a clean drain on shutdown.
./target/release/secsim-serve --smoke

echo "== chaos-smoke: seeded fault-injecting proxy, 2 clients, forced reconnects =="
# Fixed seed, 90% fault rate: at least one reconnect is guaranteed (and
# asserted), results must be byte-identical to a fault-free run, and the
# server must have simulated each unique point exactly once.
./target/release/chaos --smoke

echo "== tier-1 OK =="
