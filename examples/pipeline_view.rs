//! Watch the pipeline: an ASCII Gantt chart of the same code under
//! authen-then-issue vs authen-then-commit, making the control point
//! visible instruction by instruction.
//!
//! ```text
//! cargo run --release --example pipeline_view
//! ```

use secsim::core::Policy;
use secsim::cpu::{render_timeline, SimConfig, SimSession};
use secsim::isa::{assemble_text, FlatMem, MemIo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miss, a use of the missed data, and some independent filler.
    let words = assemble_text(
        "
        li   r5, 0x100000   # cold line -> L2 miss
        lw   r1, 0(r5)      # the miss
        add  r2, r1, r1     # uses the loaded (decrypted) value
        addi r3, r3, 1      # independent work
        addi r3, r3, 2
        addi r3, r3, 3
        lw   r4, 0(r2)      # dependent second miss
        halt
        ",
        0x1000,
    )?;
    let mut mem = FlatMem::new(0x1000, 4 << 20);
    mem.load_words(0x1000, &words);
    mem.write_u32(0x10_0000, 0x20_0000);

    for policy in [
        Policy::baseline(),
        Policy::authen_then_commit(),
        Policy::authen_then_issue(),
    ] {
        let cfg = SimConfig::paper_256k(policy);
        let r = SimSession::new(&cfg).trace_bus(true).run(&mut mem.clone(), 0x1000).into_report();
        println!("=== {policy} ({} cycles) ===", r.cycles);
        println!("{}", render_timeline(&r.inst_timings, 100));
    }
    println!("Under authen-then-issue the consumer of the loaded value (and everything");
    println!("after it) slides right by the verification latency; under authen-then-commit");
    println!("only the C markers move — execution races ahead speculatively.");
    Ok(())
}
