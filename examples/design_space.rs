//! Design-space sweep: how the policy ranking shifts with the
//! authentication latency and the RUU size — the sensitivity studies
//! behind Figures 10–13.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use secsim::core::Policy;
use secsim::cpu::{CpuConfig, SimConfig, SimSession};
use secsim::workloads::BenchId;

fn norm_ipc(bench: BenchId, policy: Policy, mac_latency: u64, ruu: u32) -> f64 {
    let mk = |p: Policy| {
        let mut w = bench.build(1);
        let mut cfg = SimConfig::paper_256k(p).with_max_insts(150_000);
        cfg.cpu = if ruu == 64 { CpuConfig::paper_ruu64() } else { CpuConfig::paper_reference() };
        cfg.secure.ctrl.queue.mac_latency = mac_latency;
        cfg.secure = cfg.secure.with_protected_region(w.data_base, w.data_bytes);
        SimSession::new(&cfg).run(&mut w.mem, w.entry).into_report().ipc()
    };
    mk(policy) / mk(Policy::baseline())
}

fn main() {
    let bench = BenchId::Ammp;
    println!("benchmark: {bench} (pointer-chasing FP, 256KB L2)\n");

    println!("MAC latency sweep (128-entry RUU): the decrypt→verify gap widens");
    println!("{:<10} {:>8} {:>8} {:>8}", "mac (ns)", "issue", "commit", "fetch");
    for mac in [20u64, 74, 150, 300] {
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3}",
            mac,
            norm_ipc(bench, Policy::authen_then_issue(), mac, 128),
            norm_ipc(bench, Policy::authen_then_commit(), mac, 128),
            norm_ipc(bench, Policy::authen_then_fetch(), mac, 128),
        );
    }

    println!("\nRUU sweep (74ns MAC): a smaller window hides less verification latency");
    println!("{:<10} {:>8} {:>8}", "ruu", "issue", "commit");
    for ruu in [64u32, 128] {
        println!(
            "{:<10} {:>8.3} {:>8.3}",
            ruu,
            norm_ipc(bench, Policy::authen_then_issue(), 74, ruu),
            norm_ipc(bench, Policy::authen_then_commit(), 74, ruu),
        );
    }
    println!("\nauthen-then-commit rides the reorder buffer: it stays cheap until either");
    println!("the verification latency outgrows the window or the window shrinks.");
}
