//! A *real* cipher as the victim: XTEA (32 rounds) assembled for the
//! secure processor's ISA, its round keys stored in protected memory.
//!
//! 1. Run it sealed (AES-CTR + HMAC): it encrypts correctly — verified
//!    against a host-side XTEA reference.
//! 2. Attack it: the predictable `nop` sled before `halt` (compilers
//!    emit such padding) is rewritten, via counter-mode malleability,
//!    into a two-load disclosing kernel that dereferences key[0].
//! 3. Under authen-then-commit the key word crosses the bus before the
//!    MAC check fires; under commit+fetch it never does.
//!
//! ```text
//! cargo run --release --example xtea_victim
//! ```

use secsim::attack::analysis::find_value;
use secsim::core::{EncryptedMemory, Policy};
use secsim::cpu::{SimConfig, SimReport, SimSession};
use secsim::isa::{encode, Asm, Inst, Reg};

const CODE: u32 = 0x1000;
const KEY_ADDR: u32 = 0x3000; // 4 round-key words — the secret
const V_ADDR: u32 = 0x3100; // the 64-bit block to encrypt
const KEY: [u32; 4] = [0xB0B0, 0x1357_9BDF, 0x0246_8ACE, 0xFEED_F00D];
const V: [u32; 2] = [0x0123_4567, 0x89AB_CDEF];
const DELTA: u32 = 0x9E37_79B9;

/// Host-side XTEA reference.
fn xtea_encrypt(mut v0: u32, mut v1: u32, key: &[u32; 4]) -> (u32, u32) {
    let mut sum = 0u32;
    for _ in 0..32 {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    (v0, v1)
}

/// Emits one XTEA half-round update:
/// `target += (((other<<4) ^ (other>>5)) + other) ^ (sum + key[idx])`.
fn emit_half(a: &mut Asm, target: Reg, other: Reg, key_idx_reg: Reg) {
    // r14 = (other<<4) ^ (other>>5)
    a.slli(Reg::R14, other, 4);
    a.srli(Reg::R15, other, 5);
    a.xor(Reg::R14, Reg::R14, Reg::R15);
    a.add(Reg::R14, Reg::R14, other);
    // r15 = sum + key[idx]; key address = r9 + idx*4
    a.slli(Reg::R15, key_idx_reg, 2);
    a.add(Reg::R15, Reg::R15, Reg::R9);
    a.lw(Reg::R15, Reg::R15, 0);
    a.add(Reg::R15, Reg::R15, Reg::R12); // + sum
    a.xor(Reg::R14, Reg::R14, Reg::R15);
    a.add(target, target, Reg::R14);
}

fn build_victim() -> (EncryptedMemory, Vec<u32>, u32) {
    let mut a = Asm::new(CODE);
    // r9 = key base, r10 = v0, r11 = v1, r12 = sum, r13 = delta, r8 = round counter
    a.li(Reg::R9, KEY_ADDR);
    a.li(Reg::R5, V_ADDR);
    a.lw(Reg::R10, Reg::R5, 0);
    a.lw(Reg::R11, Reg::R5, 4);
    a.addi(Reg::R12, Reg::R0, 0);
    a.li(Reg::R13, DELTA);
    a.li(Reg::R8, 32);
    let round = a.new_label();
    a.bind(round).expect("fresh");
    // v0 half: key index = sum & 3
    a.andi(Reg::R7, Reg::R12, 3);
    emit_half(&mut a, Reg::R10, Reg::R11, Reg::R7);
    // sum += delta
    a.add(Reg::R12, Reg::R12, Reg::R13);
    // v1 half: key index = (sum >> 11) & 3
    a.srli(Reg::R7, Reg::R12, 11);
    a.andi(Reg::R7, Reg::R7, 3);
    emit_half(&mut a, Reg::R11, Reg::R10, Reg::R7);
    a.addi(Reg::R8, Reg::R8, -1);
    a.bne(Reg::R8, Reg::R0, round);
    a.out(Reg::R10, 0);
    a.out(Reg::R11, 1);
    // Align the padding to a fresh 64-byte line: a kernel injected into
    // a line that earlier code shares would be fetched — and fail
    // verification — long before control reaches it. Attackers pick
    // their spot.
    while !a.here().is_multiple_of(64) {
        a.nop();
    }
    // The predictable epilogue padding the attacker will overwrite.
    let sled_start = a.here();
    for _ in 0..8 {
        a.nop();
    }
    a.halt();
    let words = a.assemble().expect("XTEA assembles");

    let mut plain = vec![0u8; 16 * 1024];
    for (i, w) in words.iter().enumerate() {
        let off = (CODE as usize) + 4 * i;
        plain[off..off + 4].copy_from_slice(&w.to_le_bytes());
    }
    for (i, k) in KEY.iter().enumerate() {
        let off = KEY_ADDR as usize + 4 * i;
        plain[off..off + 4].copy_from_slice(&k.to_le_bytes());
    }
    plain[V_ADDR as usize..V_ADDR as usize + 4].copy_from_slice(&V[0].to_le_bytes());
    plain[V_ADDR as usize + 4..V_ADDR as usize + 8].copy_from_slice(&V[1].to_le_bytes());
    (EncryptedMemory::from_plain(0, &plain, &[0xEE; 16], b"xtea-demo"), words, sled_start)
}

fn run(image: &EncryptedMemory, policy: Policy) -> SimReport {
    let mut img = image.clone();
    let mut cfg = SimConfig::paper_256k(policy).with_max_insts(100_000);
    cfg.secure = cfg.secure.with_protected_region(0, 16 * 1024);
    SimSession::new(&cfg).trace_bus(true).run(&mut img, CODE).into_report()
}

fn main() {
    let (image, words, sled_start) = build_victim();
    let (e0, e1) = xtea_encrypt(V[0], V[1], &KEY);

    // 1. The sealed cipher runs correctly.
    let r = run(&image, Policy::commit_plus_fetch());
    assert!(r.halted && r.exception.is_none());
    assert_eq!(r.io_events[0].value, e0, "v0 mismatch vs host XTEA");
    assert_eq!(r.io_events[1].value, e1, "v1 mismatch vs host XTEA");
    println!(
        "sealed XTEA encrypts ({:08x} {:08x}) -> ({:08x} {:08x})  [matches host reference]",
        V[0], V[1], e0, e1
    );
    println!("  {} instructions, {} cycles, IPC {:.2}\n", r.insts, r.cycles, r.ipc());

    // 2. Rewrite the nop sled into `r1 = key[0]; load [r1]` using the
    //    known plaintext (nops are the all-zero word).
    let mut tampered = image.clone();
    let mut k = Asm::new(sled_start);
    k.li(Reg::R1, KEY_ADDR);
    k.lw(Reg::R1, Reg::R1, 0);
    k.lw(Reg::R2, Reg::R1, 0); // key[0] becomes a fetch address
    let kernel = k.assemble().expect("kernel assembles");
    let sled_index = ((sled_start - CODE) / 4) as usize;
    for (i, new_word) in kernel.iter().enumerate() {
        let old_word = words[sled_index + i];
        assert_eq!(old_word, encode(Inst::Nop), "sled must be nops");
        let mask = (old_word ^ new_word).to_le_bytes();
        tampered
            .tamper_xor(sled_start + 4 * i as u32, &mask)
            .expect("sled is in-image");
    }
    println!("adversary rewrote the 8-nop epilogue into a key-disclosing kernel\n");

    // 3. Policy comparison.
    for policy in [Policy::authen_then_commit(), Policy::commit_plus_fetch()] {
        let r = run(&tampered, policy);
        let visible: Vec<_> = r.events_before_exception().copied().collect();
        let leak = find_value(&visible, KEY[0], 3);
        println!("under {policy}:");
        match leak {
            Some(e) => println!("  KEY LEAKED: key[0]={:#010x} seen on the bus at cycle {}", KEY[0], e.cycle),
            None => println!("  key never reached the bus"),
        }
        match r.exception {
            Some(e) => println!("  authentication exception at cycle {}\n", e.cycle),
            None => println!("  (no exception!)\n"),
        }
    }
}
