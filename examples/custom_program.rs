//! Build your own protected program: encrypt it, watch the bus trace,
//! tamper with the ciphertext, and see authentication catch it.
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use secsim::core::{EncryptedMemory, Policy};
use secsim::cpu::{SimConfig, SimSession};
use secsim::isa::{Asm, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny program: sum an array, write the result, output it.
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li(Reg::R1, 0x2000); // array base
    a.addi(Reg::R2, Reg::R0, 16); // count
    a.addi(Reg::R3, Reg::R0, 0); // sum
    a.bind(top)?;
    a.lw(Reg::R4, Reg::R1, 0);
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.addi(Reg::R1, Reg::R1, 4);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bne(Reg::R2, Reg::R0, top);
    a.out(Reg::R3, 0);
    a.halt();
    let words = a.assemble()?;

    // Lay out a plaintext image, then seal it (AES-CTR + per-line HMAC).
    let mut plain = vec![0u8; 16 * 1024];
    for (i, w) in words.iter().enumerate() {
        plain[0x1000 + 4 * i..0x1000 + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    for i in 0..16u32 {
        let v = (i + 1).to_le_bytes();
        plain[0x2000 + 4 * i as usize..0x2000 + 4 * i as usize + 4].copy_from_slice(&v);
    }
    let image = EncryptedMemory::from_plain(0, &plain, &[9u8; 16], b"demo-key");

    // Run the sealed program and inspect the attacker's view.
    let cfg = SimConfig::paper_256k(Policy::commit_plus_fetch());
    let mut m = image.clone();
    let r = SimSession::new(&cfg).trace_bus(true).run(&mut m, 0x1000).into_report();
    println!("clean run: halted={}, out={:?}", r.halted, r.io_events);
    println!("bus events an eavesdropper saw (addresses only — contents are ciphertext):");
    for e in r.bus_events.iter().take(8) {
        println!("  cycle {:>6}  {:#010x}  {:?}", e.cycle, e.addr, e.kind);
    }
    println!("  ... {} events total\n", r.bus_events.len());

    // Now the adversary flips one ciphertext bit in the array.
    let mut tampered = image.clone();
    tampered.tamper_xor(0x2000, &[0x01]).expect("in-image");
    let r = SimSession::new(&cfg).trace_bus(true).run(&mut tampered, 0x1000).into_report();
    println!("tampered run: out={:?}", r.io_events);
    match r.exception {
        Some(e) => println!(
            "authentication exception at cycle {} for line {:#x} (precise: {})",
            e.cycle, e.line_addr, e.precise
        ),
        None => println!("no exception?!"),
    }
    let visible: Vec<_> = r.io_before_exception().collect();
    println!(
        "I/O outputs visible before the exception: {:?} — commit gating held the tainted sum back",
        visible
    );
    Ok(())
}
