//! Quickstart: assemble a program, run it on the secure processor under
//! two authentication policies, and compare the cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use secsim::core::Policy;
use secsim::cpu::{SimConfig, SimSession};
use secsim::isa::{Asm, FlatMem, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pointer-chasing loop: the worst case for authentication that
    // sits on the load-use critical path.
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    let done = a.new_label();
    a.li(Reg::R1, 0x10_0000); // list head
    a.bind(top)?;
    a.beq(Reg::R1, Reg::R0, done);
    a.lw(Reg::R1, Reg::R1, 0); // p = p->next
    a.j(top);
    a.bind(done)?;
    a.halt();
    let words = a.assemble()?;

    // Build the memory image: code plus a 512-node list, each node on
    // its own page so every hop misses.
    let mut mem = FlatMem::new(0x1000, 4 << 20);
    mem.load_words(0x1000, &words);
    use secsim::isa::MemIo;
    let nodes = 512u32;
    for i in 0..nodes {
        let addr = 0x10_0000 + i * 4096;
        let next = if i + 1 == nodes { 0 } else { 0x10_0000 + (i + 1) * 4096 };
        mem.write_u32(addr, next);
    }

    println!("policy                      cycles      IPC   norm");
    let baseline = {
        let cfg = SimConfig::paper_256k(Policy::baseline());
        SimSession::new(&cfg).run(&mut mem.clone(), 0x1000).into_report()
    };
    for policy in [
        Policy::baseline(),
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::authen_then_fetch(),
        Policy::commit_plus_fetch(),
        Policy::authen_then_issue(),
    ] {
        let cfg = SimConfig::paper_256k(policy);
        let r = SimSession::new(&cfg).run(&mut mem.clone(), 0x1000).into_report();
        println!(
            "{:<26} {:>8} {:>8.3} {:>6.3}",
            policy.to_string(),
            r.cycles,
            r.ipc(),
            r.ipc() / baseline.ipc()
        );
    }
    println!("\nDependent misses make authen-then-issue pay the full MAC latency per hop,");
    println!("while authen-then-write hides verification off the critical path entirely.");
    Ok(())
}
