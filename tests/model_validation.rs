//! Model validation via micro-probes: each probe isolates one machine
//! characteristic and checks it lands where the Table 3 parameters say
//! it must.

use secsim::core::Policy;
use secsim::cpu::{SimConfig, SimReport, SimSession};
use secsim::workloads::Micro;

fn run(m: Micro, policy: Policy, insts: u64) -> SimReport {
    let mut w = m.build(1);
    let mut cfg = SimConfig::paper_256k(policy).with_max_insts(insts);
    cfg.secure = cfg.secure.with_protected_region(w.data_base, w.data_bytes);
    SimSession::new(&cfg).run(&mut w.mem, w.entry).into_report()
}

/// Dependent misses: per-hop latency must be in the SDRAM range
/// (RCD+CAS ≈ 135–170 core cycles plus queueing), and the
/// authen-then-issue gap per hop ≈ line tail + MAC latency.
#[test]
fn latency_chain_calibration() {
    let insts = 60_000;
    let base = run(Micro::LatencyChain, Policy::baseline(), insts);
    let hops = base.counters.get("pipe.load_l2_miss");
    assert!(hops > 10_000, "chase must miss almost every hop, got {hops}");
    let per_hop = base.cycles as f64 / hops as f64;
    assert!(
        (100.0..400.0).contains(&per_hop),
        "per-hop latency {per_hop:.0} outside the SDRAM range"
    );
    let issue = run(Micro::LatencyChain, Policy::authen_then_issue(), insts);
    let gap = (issue.cycles as f64 - base.cycles as f64) / hops as f64;
    assert!(
        (60.0..200.0).contains(&gap),
        "issue-gating per-hop gap {gap:.0} should be near line-tail + 74-cycle MAC"
    );
}

/// Streaming loads: the 8-byte 200 MHz data bus caps throughput at one
/// 72-byte (line + MAC) burst per 45 core cycles.
#[test]
fn bandwidth_probe_respects_the_bus() {
    let r = run(Micro::Bandwidth, Policy::authen_then_commit(), 120_000);
    let lines = r.counters.get("l2.miss");
    assert!(lines > 5_000, "stream must miss every line, got {lines}");
    let cycles_per_line = r.cycles as f64 / lines as f64;
    assert!(
        cycles_per_line >= 44.0,
        "beat the physical bus: {cycles_per_line:.1} cycles/line < 45"
    );
    assert!(
        cycles_per_line <= 120.0,
        "stream should be close to bus-bound, got {cycles_per_line:.1} cycles/line"
    );
}

/// Data-dependent branches on random data: the bimodal predictor cannot
/// learn them (~35–60% mispredict), and each mispredict costs a
/// resolve + redirect.
#[test]
fn branch_torture_defeats_bimodal() {
    let r = run(Micro::BranchTorture, Policy::baseline(), 100_000);
    let rate =
        r.counters.get("pipe.mispredicts") as f64 / r.counters.get("pipe.branches") as f64;
    assert!(
        (0.15..0.6).contains(&rate),
        "random-direction branches should defeat bimodal: rate {rate:.2}"
    );
}

/// Independent ALU chains: IPC must exceed what a scalar machine could
/// do and stay below the commit width.
#[test]
fn ilp_probe_exercises_width() {
    let r = run(Micro::IlpAlu, Policy::baseline(), 200_000);
    assert!(r.ipc() > 1.2, "8-wide core should exceed IPC 1.2 on pure ALU, got {:.2}", r.ipc());
    assert!(r.ipc() <= 8.0, "cannot beat the commit width");
    // And authentication is irrelevant without misses:
    let issue = run(Micro::IlpAlu, Policy::authen_then_issue(), 200_000);
    assert!(
        issue.ipc() > r.ipc() * 0.9,
        "cache-resident code must be unaffected by issue gating"
    );
}
