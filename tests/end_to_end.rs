//! Cross-crate integration tests: the whole stack — ISA → crypto →
//! memory → secure controller → pipeline — exercised through the facade.

use secsim::core::{properties, EncryptedMemory, Policy, SecureConfig};
use secsim::cpu::{SimConfig, SimSession};
use secsim::isa::{Asm, FlatMem, MemIo, Reg};
use secsim::workloads::BenchId;

/// A program whose final answer is architecturally observable via `out`.
fn checksum_program() -> (Vec<u32>, u32) {
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li(Reg::R1, 0x4000);
    a.addi(Reg::R2, Reg::R0, 64);
    a.addi(Reg::R3, Reg::R0, 0);
    a.bind(top).expect("fresh");
    a.lw(Reg::R4, Reg::R1, 0);
    a.add(Reg::R3, Reg::R3, Reg::R4);
    a.sw(Reg::R3, Reg::R1, 0); // running prefix sums (stores too)
    a.addi(Reg::R1, Reg::R1, 4);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bne(Reg::R2, Reg::R0, top);
    a.out(Reg::R3, 9);
    a.halt();
    (a.assemble().expect("assembles"), 0x1000)
}

fn flat_image() -> (FlatMem, u32) {
    let (words, entry) = checksum_program();
    let mut mem = FlatMem::new(0x1000, 64 * 1024);
    mem.load_words(entry, &words);
    for i in 0..64u32 {
        mem.write_u32(0x4000 + 4 * i, i * 3 + 1);
    }
    (mem, entry)
}

/// Every policy computes the same architectural result — gating changes
/// *when*, never *what*.
#[test]
fn policies_are_functionally_transparent() {
    let (mem, entry) = flat_image();
    let mut outputs = Vec::new();
    for policy in [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::authen_then_fetch(),
        Policy::commit_plus_fetch(),
        Policy::commit_plus_obfuscation(),
    ] {
        let mut cfg = SimConfig::paper_256k(policy);
        cfg.secure = cfg.secure.with_protected_region(0x1000, 63 * 1024);
        let r = SimSession::new(&cfg).run(&mut mem.clone(), entry).into_report();
        assert!(r.halted, "{policy} did not halt");
        assert!(r.exception.is_none(), "{policy} raised a spurious exception");
        assert_eq!(r.io_events.len(), 1);
        outputs.push(r.io_events[0].value);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "outputs diverged: {outputs:?}");
}

/// The same program produces the same functional result from plaintext
/// and encrypted images (the crypto layer is transparent when untampered).
#[test]
fn encrypted_image_is_functionally_equivalent() {
    let (words, entry) = checksum_program();
    let mut plain = vec![0u8; 64 * 1024];
    for (i, w) in words.iter().enumerate() {
        let off = 0x1000 + 4 * i;
        plain[off..off + 4].copy_from_slice(&w.to_le_bytes());
    }
    for i in 0..64usize {
        let off = 0x4000 + 4 * i;
        plain[off..off + 4].copy_from_slice(&((i as u32) * 3 + 1).to_le_bytes());
    }
    let mut enc = EncryptedMemory::from_plain(0, &plain, &[5; 16], b"it-key");
    let cfg = SimConfig::paper_256k(Policy::commit_plus_fetch());
    let r_enc = SimSession::new(&cfg).run(&mut enc, entry).into_report();

    let (mem, _) = flat_image();
    let r_flat = SimSession::new(&cfg).run(&mut mem.clone(), entry).into_report();
    assert_eq!(r_enc.io_events[0].value, r_flat.io_events[0].value);
    assert!(r_enc.exception.is_none());
}

/// Cycle counts are bit-for-bit reproducible across runs and clones.
#[test]
fn simulation_is_deterministic() {
    let mut w1 = BenchId::Twolf.build(99);
    let mut w2 = BenchId::Twolf.build(99);
    let cfg = SimConfig::paper_256k(Policy::commit_plus_obfuscation())
        .with_max_insts(40_000);
    let cfg = SimConfig {
        secure: cfg.secure.with_protected_region(w1.data_base, w1.data_bytes),
        ..cfg
    };
    let a = SimSession::new(&cfg).run(&mut w1.mem, w1.entry).into_report();
    let b = SimSession::new(&cfg).run(&mut w2.mem, w2.entry).into_report();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters.get("l2.miss"), b.counters.get("l2.miss"));
}

/// The paper's headline performance ordering holds end-to-end on the
/// full benchmark pipeline (geomean over a representative subset).
#[test]
fn figure7_ordering_holds() {
    let benches = [BenchId::Mcf, BenchId::Art, BenchId::Twolf, BenchId::Wupwise];
    let mut geo = std::collections::HashMap::new();
    for policy in [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::commit_plus_fetch(),
    ] {
        let mut acc = 1.0f64;
        for b in benches {
            let mut w = b.build(7);
            let mut cfg = SimConfig::paper_256k(policy).with_max_insts(60_000);
            cfg.secure = cfg.secure.with_protected_region(w.data_base, w.data_bytes);
            acc *= SimSession::new(&cfg).run(&mut w.mem, w.entry).into_report().ipc();
        }
        geo.insert(policy.to_string(), acc.powf(0.25));
    }
    let base = geo["baseline-decrypt-only"];
    let issue = geo["authen-then-issue"];
    let write = geo["authen-then-write"];
    let commit = geo["authen-then-commit"];
    let cf = geo["authen-then-commit+fetch"];
    assert!(write <= base * 1.001, "write {write} vs base {base}");
    assert!(commit <= write * 1.001, "commit {commit} vs write {write}");
    assert!(cf <= commit * 1.001, "c+f {cf} vs commit {commit}");
    assert!(issue <= cf * 1.001, "issue {issue} vs c+f {cf}");
    assert!(issue < base * 0.95, "issue gating must cost > 5% on this mix");
}

/// Empirical security matches the static Table 2 through the facade.
#[test]
fn security_matrix_agrees_with_properties() {
    use secsim::attack::{run_exploit, Exploit};
    for policy in [
        Policy::authen_then_issue(),
        Policy::authen_then_commit(),
        Policy::commit_plus_fetch(),
    ] {
        let claimed = properties(&policy).prevents_fetch_side_channel;
        let leaked = run_exploit(Exploit::DisclosingKernel, policy).leaked;
        assert_eq!(!leaked, claimed, "mismatch for {policy}");
    }
}

/// Larger L2 must not hurt, and generally helps, under every policy.
#[test]
fn l2_size_monotonicity() {
    for policy in [Policy::baseline(), Policy::authen_then_issue()] {
        let mut w = BenchId::Vpr.build(3);
        let cfg_s = SimConfig::paper_256k(policy).with_max_insts(60_000);
        let small = SimSession::new(&cfg_s).run(&mut w.mem, w.entry).into_report().ipc();
        let mut w = BenchId::Vpr.build(3);
        let cfg_l = SimConfig::paper_1m(policy).with_max_insts(60_000);
        let large = SimSession::new(&cfg_l).run(&mut w.mem, w.entry).into_report().ipc();
        assert!(large >= small * 0.98, "{policy}: 1MB {large} vs 256KB {small}");
    }
}

/// SecureConfig plumbing: hash-tree configuration reaches the engine and
/// costs something.
#[test]
fn tree_config_costs_performance() {
    let run = |tree: bool| {
        let mut w = BenchId::Art.build(5);
        let secure = if tree {
            SecureConfig::paper_with_tree(
                Policy::authen_then_issue(),
                w.data_base,
                w.data_bytes,
            )
        } else {
            SecureConfig::paper(Policy::authen_then_issue())
        };
        let cfg = SimConfig { secure, ..SimConfig::paper_256k(Policy::authen_then_issue()) }
            .with_max_insts(60_000);
        SimSession::new(&cfg).run(&mut w.mem, w.entry).into_report().ipc()
    };
    let flat_mac = run(false);
    let with_tree = run(true);
    assert!(
        with_tree < flat_mac,
        "tree walks must add latency: {with_tree} vs {flat_mac}"
    );
}

/// Replay protection end-to-end: a consistent-triple replay of a stale
/// "authorization flag" fools per-line MACs (no exception, stale value
/// used) but is caught by the hash tree.
#[test]
fn replay_attack_needs_the_tree() {
    use secsim::isa::{Asm, Reg};
    // Victim: read flag at 0x2000, out it, halt.
    let mut a = Asm::new(0x1000);
    a.li(Reg::R1, 0x2000);
    a.lw(Reg::R2, Reg::R1, 0);
    a.out(Reg::R2, 0);
    a.halt();
    let words = a.assemble().expect("assembles");
    let mut plain = vec![0u8; 16 * 1024];
    for (i, w) in words.iter().enumerate() {
        plain[0x1000 + 4 * i..0x1000 + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }

    let run = |with_tree: bool| {
        let mut img = EncryptedMemory::from_plain(0, &plain, &[2; 16], b"replay");
        if with_tree {
            img.enable_tree(b"root");
        }
        // The flag was once 1 (authorized); the adversary captures it.
        img.write_u32(0x2000, 1);
        let captured = img.capture_line(0x2000);
        // The victim revokes authorization.
        img.write_u32(0x2000, 0);
        // The adversary replays the stale line.
        img.replay_line(0x2000, &captured.0, captured.1, captured.2);
        let cfg = SimConfig::paper_256k(Policy::authen_then_issue());
        SimSession::new(&cfg).run(&mut img, 0x1000).into_report()
    };

    let flat = run(false);
    assert!(flat.exception.is_none(), "flat MAC accepts the consistent replay");
    assert_eq!(flat.io_events[0].value, 1, "the stale authorized flag is used!");

    let tree = run(true);
    assert!(tree.exception.is_some(), "the tree catches the replay");
}
