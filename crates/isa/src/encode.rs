//! Bit-level instruction encoding.
//!
//! Layout (fields named by bit ranges, big-endian bit numbering):
//!
//! * R-type:  `[31:26] op | [25:21] rs1 | [20:16] rs2 | [15:11] rd | [10:0] funct`
//! * I-type:  `[31:26] op | [25:21] rs1 | [20:16] rd  | [15:0] imm16`
//! * S/B-type:`[31:26] op | [25:21] rs1 | [20:16] rs2 | [15:0] off16`
//! * J-type:  `[31:26] op | [25:0] off26` (signed word offset)
//!
//! The encoding is deliberately simple and *predictable*: the paper's
//! disclosing-kernel exploit relies on an adversary being able to predict
//! compiler-generated instruction words (function prologues, loop shapes)
//! and synthesize XOR masks that rewrite them under counter-mode
//! malleability.

use crate::inst::Inst;
use crate::reg::{FReg, Reg};

const OP_SHIFT: u32 = 26;

mod op {
    pub const NOP: u32 = 0x00;
    pub const INT_R: u32 = 0x01;
    pub const ADDI: u32 = 0x02;
    pub const ANDI: u32 = 0x03;
    pub const ORI: u32 = 0x04;
    pub const XORI: u32 = 0x05;
    pub const SLTI: u32 = 0x06;
    pub const SLLI: u32 = 0x08;
    pub const SRLI: u32 = 0x09;
    pub const SRAI: u32 = 0x0A;
    pub const LUI: u32 = 0x0B;
    pub const LB: u32 = 0x10;
    pub const LBU: u32 = 0x11;
    pub const LH: u32 = 0x12;
    pub const LHU: u32 = 0x13;
    pub const LW: u32 = 0x14;
    pub const SB: u32 = 0x15;
    pub const SH: u32 = 0x16;
    pub const SW: u32 = 0x17;
    pub const FLD: u32 = 0x18;
    pub const FSD: u32 = 0x19;
    pub const FP_R: u32 = 0x1A;
    pub const BEQ: u32 = 0x20;
    pub const BNE: u32 = 0x21;
    pub const BLT: u32 = 0x22;
    pub const BGE: u32 = 0x23;
    pub const BLTU: u32 = 0x24;
    pub const BGEU: u32 = 0x25;
    pub const J: u32 = 0x26;
    pub const JAL: u32 = 0x27;
    pub const JALR: u32 = 0x28;
    pub const OUT: u32 = 0x30;
    pub const HALT: u32 = 0x3F;
}

mod funct {
    pub const ADD: u32 = 0;
    pub const SUB: u32 = 1;
    pub const AND: u32 = 2;
    pub const OR: u32 = 3;
    pub const XOR: u32 = 4;
    pub const SLL: u32 = 5;
    pub const SRL: u32 = 6;
    pub const SRA: u32 = 7;
    pub const SLT: u32 = 8;
    pub const SLTU: u32 = 9;
    pub const MUL: u32 = 10;
    pub const DIVU: u32 = 11;
    pub const REMU: u32 = 12;

    pub const FADD: u32 = 0;
    pub const FSUB: u32 = 1;
    pub const FMUL: u32 = 2;
    pub const FDIV: u32 = 3;
    pub const FMOV: u32 = 4;
    pub const FCMPLT: u32 = 5;
    pub const FCVTIF: u32 = 6;
    pub const FCVTFI: u32 = 7;
}

fn r_type(op: u32, rs1: u32, rs2: u32, rd: u32, fct: u32) -> u32 {
    (op << OP_SHIFT) | (rs1 << 21) | (rs2 << 16) | (rd << 11) | (fct & 0x7FF)
}

fn i_type(op: u32, rs1: u32, rd: u32, imm: u32) -> u32 {
    (op << OP_SHIFT) | (rs1 << 21) | (rd << 16) | (imm & 0xFFFF)
}

fn j_type(op: u32, off: i32) -> u32 {
    (op << OP_SHIFT) | ((off as u32) & 0x03FF_FFFF)
}

/// Encodes an instruction into its 32-bit word.
///
/// `Inst::Illegal(w)` encodes back to `w` verbatim so tampered images can
/// be round-tripped.
///
/// # Examples
///
/// ```
/// use secsim_isa::{decode, encode, Inst, Reg};
///
/// let i = Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: -7 };
/// assert_eq!(decode(encode(i)), i);
/// assert_eq!(encode(Inst::Nop), 0);
/// ```
pub fn encode(inst: Inst) -> u32 {
    use Inst::*;
    let r = |x: Reg| x.index() as u32;
    let fr = |x: FReg| x.index() as u32;
    match inst {
        Nop => 0,
        Add { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::ADD),
        Sub { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::SUB),
        And { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::AND),
        Or { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::OR),
        Xor { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::XOR),
        Sll { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::SLL),
        Srl { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::SRL),
        Sra { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::SRA),
        Slt { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::SLT),
        Sltu { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::SLTU),
        Mul { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::MUL),
        Divu { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::DIVU),
        Remu { rd, rs1, rs2 } => r_type(op::INT_R, r(rs1), r(rs2), r(rd), funct::REMU),
        Addi { rd, rs1, imm } => i_type(op::ADDI, r(rs1), r(rd), imm as u16 as u32),
        Andi { rd, rs1, imm } => i_type(op::ANDI, r(rs1), r(rd), imm as u32),
        Ori { rd, rs1, imm } => i_type(op::ORI, r(rs1), r(rd), imm as u32),
        Xori { rd, rs1, imm } => i_type(op::XORI, r(rs1), r(rd), imm as u32),
        Slti { rd, rs1, imm } => i_type(op::SLTI, r(rs1), r(rd), imm as u16 as u32),
        Slli { rd, rs1, sh } => i_type(op::SLLI, r(rs1), r(rd), (sh & 31) as u32),
        Srli { rd, rs1, sh } => i_type(op::SRLI, r(rs1), r(rd), (sh & 31) as u32),
        Srai { rd, rs1, sh } => i_type(op::SRAI, r(rs1), r(rd), (sh & 31) as u32),
        Lui { rd, imm } => i_type(op::LUI, 0, r(rd), imm as u32),
        Lb { rd, rs1, off } => i_type(op::LB, r(rs1), r(rd), off as u16 as u32),
        Lbu { rd, rs1, off } => i_type(op::LBU, r(rs1), r(rd), off as u16 as u32),
        Lh { rd, rs1, off } => i_type(op::LH, r(rs1), r(rd), off as u16 as u32),
        Lhu { rd, rs1, off } => i_type(op::LHU, r(rs1), r(rd), off as u16 as u32),
        Lw { rd, rs1, off } => i_type(op::LW, r(rs1), r(rd), off as u16 as u32),
        Fld { fd, rs1, off } => i_type(op::FLD, r(rs1), fr(fd), off as u16 as u32),
        Sb { rs1, rs2, off } => i_type(op::SB, r(rs1), r(rs2), off as u16 as u32),
        Sh { rs1, rs2, off } => i_type(op::SH, r(rs1), r(rs2), off as u16 as u32),
        Sw { rs1, rs2, off } => i_type(op::SW, r(rs1), r(rs2), off as u16 as u32),
        Fsd { rs1, fs2, off } => i_type(op::FSD, r(rs1), fr(fs2), off as u16 as u32),
        Fadd { fd, fs1, fs2 } => r_type(op::FP_R, fr(fs1), fr(fs2), fr(fd), funct::FADD),
        Fsub { fd, fs1, fs2 } => r_type(op::FP_R, fr(fs1), fr(fs2), fr(fd), funct::FSUB),
        Fmul { fd, fs1, fs2 } => r_type(op::FP_R, fr(fs1), fr(fs2), fr(fd), funct::FMUL),
        Fdiv { fd, fs1, fs2 } => r_type(op::FP_R, fr(fs1), fr(fs2), fr(fd), funct::FDIV),
        Fmov { fd, fs1 } => r_type(op::FP_R, fr(fs1), 0, fr(fd), funct::FMOV),
        Fcmplt { rd, fs1, fs2 } => r_type(op::FP_R, fr(fs1), fr(fs2), r(rd), funct::FCMPLT),
        Fcvtif { fd, rs1 } => r_type(op::FP_R, r(rs1), 0, fr(fd), funct::FCVTIF),
        Fcvtfi { rd, fs1 } => r_type(op::FP_R, fr(fs1), 0, r(rd), funct::FCVTFI),
        Beq { rs1, rs2, off } => i_type(op::BEQ, r(rs1), r(rs2), off as u16 as u32),
        Bne { rs1, rs2, off } => i_type(op::BNE, r(rs1), r(rs2), off as u16 as u32),
        Blt { rs1, rs2, off } => i_type(op::BLT, r(rs1), r(rs2), off as u16 as u32),
        Bge { rs1, rs2, off } => i_type(op::BGE, r(rs1), r(rs2), off as u16 as u32),
        Bltu { rs1, rs2, off } => i_type(op::BLTU, r(rs1), r(rs2), off as u16 as u32),
        Bgeu { rs1, rs2, off } => i_type(op::BGEU, r(rs1), r(rs2), off as u16 as u32),
        J { off } => j_type(op::J, off),
        Jal { off } => j_type(op::JAL, off),
        Jalr { rd, rs1 } => i_type(op::JALR, r(rs1), r(rd), 0),
        Out { rs1, port } => i_type(op::OUT, r(rs1), 0, port as u32),
        Halt => op::HALT << OP_SHIFT,
        Illegal(w) => w,
    }
}

fn sext26(x: u32) -> i32 {
    ((x << 6) as i32) >> 6
}

/// Decodes a 32-bit word into an instruction.
///
/// Unknown opcodes decode to [`Inst::Illegal`]; unused fields of known
/// formats are ignored (hardware-style lenient decode), so an adversary
/// flipping ciphertext bits usually lands on *some* valid instruction —
/// which is exactly the property the paper's exploits depend on.
///
/// Renders `words` as assembly text, one instruction per line, in the
/// exact spelling [`Inst`]'s `Display` prints (numeric branch offsets,
/// hex logical immediates, `illegal 0x…` for undecodable words).
///
/// Every line is re-assemblable: `decode` → `Display` → parse is a
/// fixpoint of the instruction grammar, which the workload assembler's
/// round-trip property tests lean on.
///
/// # Examples
///
/// ```
/// use secsim_isa::{disassemble, encode, Inst, Reg};
///
/// let words = [encode(Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 7 }), 0xF800_0000];
/// assert_eq!(disassemble(&words), "addi r1, r0, 7\nillegal 0xf8000000\n");
/// ```
pub fn disassemble(words: &[u32]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(words.len() * 20);
    for &w in words {
        writeln!(out, "{}", decode(w)).expect("writing to String cannot fail");
    }
    out
}

/// # Examples
///
/// ```
/// use secsim_isa::{decode, Inst};
/// assert_eq!(decode(0), Inst::Nop);
/// assert!(matches!(decode(0xF800_0000), Inst::Illegal(_))); // unassigned opcode 0x3E
/// ```
pub fn decode(word: u32) -> Inst {
    use Inst::*;
    let opc = word >> OP_SHIFT;
    let rs1 = Reg::from_index((word >> 21) & 31);
    let rs2 = Reg::from_index((word >> 16) & 31);
    let rrd = Reg::from_index((word >> 11) & 31);
    let fs1 = FReg::from_index((word >> 21) & 31);
    let fs2 = FReg::from_index((word >> 16) & 31);
    let frd = FReg::from_index((word >> 11) & 31);
    // In I-type, the field at [20:16] is the destination.
    let ird = rs2;
    let ifd = fs2;
    let imm = (word & 0xFFFF) as u16;
    let simm = imm as i16;
    let fct = word & 0x7FF;

    match opc {
        op::NOP => {
            if word == 0 {
                Nop
            } else {
                Illegal(word)
            }
        }
        op::INT_R => match fct {
            funct::ADD => Add { rd: rrd, rs1, rs2 },
            funct::SUB => Sub { rd: rrd, rs1, rs2 },
            funct::AND => And { rd: rrd, rs1, rs2 },
            funct::OR => Or { rd: rrd, rs1, rs2 },
            funct::XOR => Xor { rd: rrd, rs1, rs2 },
            funct::SLL => Sll { rd: rrd, rs1, rs2 },
            funct::SRL => Srl { rd: rrd, rs1, rs2 },
            funct::SRA => Sra { rd: rrd, rs1, rs2 },
            funct::SLT => Slt { rd: rrd, rs1, rs2 },
            funct::SLTU => Sltu { rd: rrd, rs1, rs2 },
            funct::MUL => Mul { rd: rrd, rs1, rs2 },
            funct::DIVU => Divu { rd: rrd, rs1, rs2 },
            funct::REMU => Remu { rd: rrd, rs1, rs2 },
            _ => Illegal(word),
        },
        op::ADDI => Addi { rd: ird, rs1, imm: simm },
        op::ANDI => Andi { rd: ird, rs1, imm },
        op::ORI => Ori { rd: ird, rs1, imm },
        op::XORI => Xori { rd: ird, rs1, imm },
        op::SLTI => Slti { rd: ird, rs1, imm: simm },
        op::SLLI => Slli { rd: ird, rs1, sh: (imm & 31) as u8 },
        op::SRLI => Srli { rd: ird, rs1, sh: (imm & 31) as u8 },
        op::SRAI => Srai { rd: ird, rs1, sh: (imm & 31) as u8 },
        op::LUI => Lui { rd: ird, imm },
        op::LB => Lb { rd: ird, rs1, off: simm },
        op::LBU => Lbu { rd: ird, rs1, off: simm },
        op::LH => Lh { rd: ird, rs1, off: simm },
        op::LHU => Lhu { rd: ird, rs1, off: simm },
        op::LW => Lw { rd: ird, rs1, off: simm },
        op::SB => Sb { rs1, rs2, off: simm },
        op::SH => Sh { rs1, rs2, off: simm },
        op::SW => Sw { rs1, rs2, off: simm },
        op::FLD => Fld { fd: ifd, rs1, off: simm },
        op::FSD => Fsd { rs1, fs2: ifd, off: simm },
        op::FP_R => match fct {
            funct::FADD => Fadd { fd: frd, fs1, fs2 },
            funct::FSUB => Fsub { fd: frd, fs1, fs2 },
            funct::FMUL => Fmul { fd: frd, fs1, fs2 },
            funct::FDIV => Fdiv { fd: frd, fs1, fs2 },
            funct::FMOV => Fmov { fd: frd, fs1 },
            funct::FCMPLT => Fcmplt { rd: rrd, fs1, fs2 },
            funct::FCVTIF => Fcvtif { fd: frd, rs1 },
            funct::FCVTFI => Fcvtfi { rd: rrd, fs1 },
            _ => Illegal(word),
        },
        op::BEQ => Beq { rs1, rs2, off: simm },
        op::BNE => Bne { rs1, rs2, off: simm },
        op::BLT => Blt { rs1, rs2, off: simm },
        op::BGE => Bge { rs1, rs2, off: simm },
        op::BLTU => Bltu { rs1, rs2, off: simm },
        op::BGEU => Bgeu { rs1, rs2, off: simm },
        op::J => J { off: sext26(word & 0x03FF_FFFF) },
        op::JAL => Jal { off: sext26(word & 0x03FF_FFFF) },
        op::JALR => Jalr { rd: ird, rs1 },
        op::OUT => Out { rs1, port: (word & 0xFF) as u8 },
        op::HALT => Halt,
        _ => Illegal(word),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::{FReg, Reg};

    fn rt(i: Inst) {
        assert_eq!(decode(encode(i)), i, "round trip failed for {i}");
    }

    #[test]
    fn round_trip_representatives() {
        let r1 = Reg::R1;
        let r2 = Reg::R2;
        let r3 = Reg::R3;
        let f1 = FReg::R1;
        let f2 = FReg::R2;
        let f3 = FReg::R3;
        for i in [
            Inst::Add { rd: r1, rs1: r2, rs2: r3 },
            Inst::Sub { rd: r3, rs1: r1, rs2: r2 },
            Inst::And { rd: r1, rs1: r1, rs2: r1 },
            Inst::Or { rd: r1, rs1: r2, rs2: r3 },
            Inst::Xor { rd: r1, rs1: r2, rs2: r3 },
            Inst::Sll { rd: r1, rs1: r2, rs2: r3 },
            Inst::Srl { rd: r1, rs1: r2, rs2: r3 },
            Inst::Sra { rd: r1, rs1: r2, rs2: r3 },
            Inst::Slt { rd: r1, rs1: r2, rs2: r3 },
            Inst::Sltu { rd: r1, rs1: r2, rs2: r3 },
            Inst::Mul { rd: r1, rs1: r2, rs2: r3 },
            Inst::Divu { rd: r1, rs1: r2, rs2: r3 },
            Inst::Remu { rd: r1, rs1: r2, rs2: r3 },
            Inst::Addi { rd: r1, rs1: r2, imm: -32768 },
            Inst::Andi { rd: r1, rs1: r2, imm: 0xFFFF },
            Inst::Ori { rd: r1, rs1: r2, imm: 0xABCD },
            Inst::Xori { rd: r1, rs1: r2, imm: 1 },
            Inst::Slti { rd: r1, rs1: r2, imm: 32767 },
            Inst::Slli { rd: r1, rs1: r2, sh: 31 },
            Inst::Srli { rd: r1, rs1: r2, sh: 0 },
            Inst::Srai { rd: r1, rs1: r2, sh: 15 },
            Inst::Lui { rd: r1, imm: 0xDEAD },
            Inst::Lb { rd: r1, rs1: r2, off: -1 },
            Inst::Lbu { rd: r1, rs1: r2, off: 1 },
            Inst::Lh { rd: r1, rs1: r2, off: -2 },
            Inst::Lhu { rd: r1, rs1: r2, off: 2 },
            Inst::Lw { rd: r1, rs1: r2, off: 4 },
            Inst::Fld { fd: f1, rs1: r2, off: 8 },
            Inst::Sb { rs1: r1, rs2: r2, off: 3 },
            Inst::Sh { rs1: r1, rs2: r2, off: -6 },
            Inst::Sw { rs1: r1, rs2: r2, off: 12 },
            Inst::Fsd { rs1: r1, fs2: f2, off: -8 },
            Inst::Fadd { fd: f1, fs1: f2, fs2: f3 },
            Inst::Fsub { fd: f1, fs1: f2, fs2: f3 },
            Inst::Fmul { fd: f1, fs1: f2, fs2: f3 },
            Inst::Fdiv { fd: f1, fs1: f2, fs2: f3 },
            Inst::Fmov { fd: f1, fs1: f2 },
            Inst::Fcmplt { rd: r1, fs1: f2, fs2: f3 },
            Inst::Fcvtif { fd: f1, rs1: r2 },
            Inst::Fcvtfi { rd: r1, fs1: f2 },
            Inst::Beq { rs1: r1, rs2: r2, off: -100 },
            Inst::Bne { rs1: r1, rs2: r2, off: 100 },
            Inst::Blt { rs1: r1, rs2: r2, off: 0 },
            Inst::Bge { rs1: r1, rs2: r2, off: 5 },
            Inst::Bltu { rs1: r1, rs2: r2, off: -5 },
            Inst::Bgeu { rs1: r1, rs2: r2, off: 7 },
            Inst::J { off: -(1 << 25) },
            Inst::Jal { off: (1 << 25) - 1 },
            Inst::Jalr { rd: r1, rs1: r2 },
            Inst::Out { rs1: r1, port: 255 },
            Inst::Halt,
            Inst::Nop,
        ] {
            rt(i);
        }
    }

    #[test]
    fn nop_is_zero_word() {
        assert_eq!(encode(Inst::Nop), 0);
        assert_eq!(decode(0), Inst::Nop);
    }

    #[test]
    fn nonzero_opcode_zero_rest_is_illegal() {
        assert_eq!(decode(0x0000_0001), Inst::Illegal(1));
    }

    #[test]
    fn unknown_opcode_is_illegal() {
        let w = 0x3E << 26; // unassigned
        assert_eq!(decode(w), Inst::Illegal(w));
    }

    #[test]
    fn illegal_round_trips_verbatim() {
        let w = 0x0000_1234;
        assert_eq!(encode(decode(w)), w);
    }

    #[test]
    fn sext26_works() {
        assert_eq!(sext26(0x03FF_FFFF), -1);
        assert_eq!(sext26(0x0200_0000), -(1 << 25));
        assert_eq!(sext26(0x01FF_FFFF), (1 << 25) - 1);
        assert_eq!(sext26(0), 0);
    }
}
