/// Byte-addressed memory used by the functional semantics.
///
/// Implementations decide what out-of-range accesses do; the reference
/// [`FlatMem`] returns zeros and discards writes, recording the access so
/// that attack analyses can inspect bogus addresses produced by tampered
/// programs.
pub trait MemIo {
    /// Reads `buf.len()` bytes starting at `addr`.
    fn read(&mut self, addr: u32, buf: &mut [u8]);

    /// Writes `data` starting at `addr`.
    fn write(&mut self, addr: u32, data: &[u8]);

    /// Fetches the 32-bit little-endian instruction word at `addr`.
    fn fetch_word(&mut self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn read_u32(&mut self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    fn write_u32(&mut self, addr: u32, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `f64`.
    fn read_f64(&mut self, addr: u32) -> f64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        f64::from_le_bytes(b)
    }

    /// Writes a little-endian `f64`.
    fn write_f64(&mut self, addr: u32, v: f64) {
        self.write(addr, &v.to_le_bytes());
    }
}

impl<M: MemIo + ?Sized> MemIo for &mut M {
    fn read(&mut self, addr: u32, buf: &mut [u8]) {
        (**self).read(addr, buf)
    }
    fn write(&mut self, addr: u32, data: &[u8]) {
        (**self).write(addr, data)
    }
}

/// A flat, contiguous memory image starting at a base address.
///
/// Accesses outside `[base, base + len)` read as zero and are recorded in
/// [`FlatMem::oob_count`] — a tampered program dereferencing a secret as a
/// pointer usually lands out of range, and the simulator must keep running
/// (the *bus address* is what leaks, not the data).
///
/// # Examples
///
/// ```
/// use secsim_isa::{FlatMem, MemIo};
///
/// let mut m = FlatMem::new(0x1000, 64);
/// m.write_u32(0x1000, 0xdeadbeef);
/// assert_eq!(m.read_u32(0x1000), 0xdeadbeef);
/// assert_eq!(m.read_u32(0x9999_0000), 0); // out of range
/// assert_eq!(m.oob_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMem {
    base: u32,
    bytes: Vec<u8>,
    oob: u64,
}

impl FlatMem {
    /// Creates `len` bytes of zeroed memory starting at `base`.
    pub fn new(base: u32, len: usize) -> Self {
        Self { base, bytes: vec![0; len], oob: 0 }
    }

    /// The lowest mapped address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image maps zero bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// How many reads/writes fell (partly) outside the image.
    pub fn oob_count(&self) -> u64 {
        self.oob
    }

    /// Whether `addr..addr+len` is fully inside the image.
    pub fn contains(&self, addr: u32, len: usize) -> bool {
        let Some(off) = addr.checked_sub(self.base) else {
            return false;
        };
        (off as usize).checked_add(len).is_some_and(|end| end <= self.bytes.len())
    }

    /// Copies instruction `words` into memory starting at `addr`
    /// (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if the target range is out of bounds.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        assert!(
            self.contains(addr, words.len() * 4),
            "load_words target {addr:#x}+{} out of image",
            words.len() * 4
        );
        for (i, w) in words.iter().enumerate() {
            let a = addr + (i as u32) * 4;
            self.write(a, &w.to_le_bytes());
        }
    }

    /// Restores this image's contents and out-of-bounds counter from
    /// `pristine`, reusing the existing allocation (one straight copy,
    /// no reallocation or page faults — the fast path for re-running a
    /// memoized workload or rewinding to a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the two images differ in base address or length.
    pub fn restore_from(&mut self, pristine: &FlatMem) {
        assert_eq!(self.base, pristine.base, "restore_from: base mismatch");
        assert_eq!(self.bytes.len(), pristine.bytes.len(), "restore_from: length mismatch");
        self.bytes.copy_from_slice(&pristine.bytes);
        self.oob = pristine.oob;
    }

    /// Restores the out-of-bounds access counter when rebuilding an
    /// image from a serialized snapshot. A snapshot must round-trip
    /// *exactly* — a warmed program may legitimately have taken
    /// out-of-range accesses, and dropping the count would make a
    /// restored run diverge from the run that produced the snapshot.
    pub fn set_oob_count(&mut self, oob: u64) {
        self.oob = oob;
    }

    /// Direct access to the raw backing bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw backing bytes (used by the encryption
    /// layer and by attackers tampering with the image).
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl MemIo for FlatMem {
    #[inline]
    fn read(&mut self, addr: u32, buf: &mut [u8]) {
        if self.contains(addr, buf.len()) {
            let off = (addr - self.base) as usize;
            buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        } else {
            buf.fill(0);
            self.oob += 1;
        }
    }

    #[inline]
    fn write(&mut self, addr: u32, data: &[u8]) {
        if self.contains(addr, data.len()) {
            let off = (addr - self.base) as usize;
            self.bytes[off..off + data.len()].copy_from_slice(data);
        } else {
            self.oob += 1;
        }
    }

    // Fixed-width overrides: the length is a compile-time constant here,
    // so these lower to single loads/stores instead of `memcpy` calls —
    // they are the functional core's hottest operations.

    #[inline]
    fn fetch_word(&mut self, addr: u32) -> u32 {
        self.read_u32(addr)
    }

    #[inline]
    fn read_u32(&mut self, addr: u32) -> u32 {
        if self.contains(addr, 4) {
            let off = (addr - self.base) as usize;
            u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4-byte slice"))
        } else {
            self.oob += 1;
            0
        }
    }

    #[inline]
    fn write_u32(&mut self, addr: u32, v: u32) {
        if self.contains(addr, 4) {
            let off = (addr - self.base) as usize;
            self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
        } else {
            self.oob += 1;
        }
    }

    #[inline]
    fn read_f64(&mut self, addr: u32) -> f64 {
        if self.contains(addr, 8) {
            let off = (addr - self.base) as usize;
            f64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8-byte slice"))
        } else {
            self.oob += 1;
            0.0
        }
    }

    #[inline]
    fn write_f64(&mut self, addr: u32, v: f64) {
        if self.contains(addr, 8) {
            let off = (addr - self.base) as usize;
            self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
        } else {
            self.oob += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = FlatMem::new(0x100, 32);
        m.write(0x100, &[1, 2, 3, 4]);
        let mut b = [0u8; 4];
        m.read(0x100, &mut b);
        assert_eq!(b, [1, 2, 3, 4]);
    }

    #[test]
    fn u32_and_f64_helpers() {
        let mut m = FlatMem::new(0, 16);
        m.write_u32(4, 0x01020304);
        assert_eq!(m.read_u32(4), 0x01020304);
        assert_eq!(m.fetch_word(4), 0x01020304);
        m.write_f64(8, 3.5);
        assert_eq!(m.read_f64(8), 3.5);
    }

    #[test]
    fn oob_reads_zero_and_count() {
        let mut m = FlatMem::new(0x1000, 8);
        assert_eq!(m.read_u32(0), 0);
        m.write_u32(0xFFFF_FFF0, 7);
        assert_eq!(m.oob_count(), 2);
        // straddling the end is oob
        assert_eq!(m.read_u32(0x1006), 0);
        assert_eq!(m.oob_count(), 3);
    }

    #[test]
    fn contains_edges() {
        let m = FlatMem::new(0x1000, 8);
        assert!(m.contains(0x1000, 8));
        assert!(!m.contains(0x1000, 9));
        assert!(!m.contains(0xFFF, 1));
        assert!(m.contains(0x1007, 1));
        // a zero-length range at one-past-the-end is (vacuously) contained
        assert!(m.contains(0x1008, 0));
        assert!(!m.contains(0x1009, 0));
    }

    #[test]
    fn load_words_little_endian() {
        let mut m = FlatMem::new(0, 8);
        m.load_words(0, &[0x11223344, 0xAABBCCDD]);
        assert_eq!(m.as_bytes()[0], 0x44);
        assert_eq!(m.read_u32(4), 0xAABBCCDD);
    }

    #[test]
    #[should_panic(expected = "out of image")]
    fn load_words_oob_panics() {
        let mut m = FlatMem::new(0, 4);
        m.load_words(0, &[1, 2]);
    }
}
