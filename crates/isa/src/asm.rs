//! A small label-based assembler / program builder.
//!
//! Workload generators in `secsim-workloads` build their kernels through
//! this API; the attack crate uses it to craft disclosing kernels.

use crate::encode::encode;
use crate::inst::Inst;
use crate::reg::{FReg, Reg};
use std::fmt;

/// A forward-referencable code label.
///
/// Created by [`Asm::new_label`], bound to the current position by
/// [`Asm::bind`], and usable as a branch/jump target before or after it is
/// bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors reported by [`Asm::assemble`] and [`Asm::bind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label used as a target was never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    Rebound(Label),
    /// A branch offset does not fit in its immediate field.
    OffsetOverflow {
        /// Instruction index of the branch.
        at: usize,
        /// The word offset that did not fit.
        off: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {:?} was never bound", l),
            AsmError::Rebound(l) => write!(f, "label {:?} bound twice", l),
            AsmError::OffsetOverflow { at, off } => {
                write!(f, "branch at instruction {at} needs offset {off}, out of range")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum Fixup {
    /// 16-bit word offset relative to the *following* instruction.
    Rel16(Label),
    /// 26-bit word offset relative to the *following* instruction.
    Rel26(Label),
}

/// An assembler that accumulates instructions and resolves labels.
///
/// # Examples
///
/// ```
/// use secsim_isa::{Asm, Reg};
///
/// # fn main() -> Result<(), secsim_isa::AsmError> {
/// let mut a = Asm::new(0x4000);
/// let done = a.new_label();
/// a.beq(Reg::R1, Reg::R0, done); // forward reference
/// a.addi(Reg::R2, Reg::R2, 1);
/// a.bind(done)?;
/// a.halt();
/// let words = a.assemble()?;
/// assert_eq!(words.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    base: u32,
    insts: Vec<Inst>,
    fixups: Vec<(usize, Fixup)>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    /// Creates an assembler whose first instruction lives at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn new(base: u32) -> Self {
        assert_eq!(base % 4, 0, "code base must be word aligned");
        Self { base, insts: Vec::new(), fixups: Vec::new(), labels: Vec::new() }
    }

    /// The base address passed to [`Asm::new`].
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instruction has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Address the *next* emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + (self.insts.len() as u32) * 4
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::Rebound`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::Rebound(label));
        }
        *slot = Some(self.insts.len());
        Ok(())
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Resolves labels and encodes to instruction words.
    ///
    /// # Errors
    ///
    /// Returns an error if any referenced label is unbound or an offset
    /// overflows its field.
    pub fn assemble(&self) -> Result<Vec<u32>, AsmError> {
        let mut insts = self.insts.clone();
        for &(at, fixup) in &self.fixups {
            let (label, bits) = match fixup {
                Fixup::Rel16(l) => (l, 16u32),
                Fixup::Rel26(l) => (l, 26u32),
            };
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(label))?;
            let off = target as i64 - (at as i64 + 1);
            let max = (1i64 << (bits - 1)) - 1;
            let min = -(1i64 << (bits - 1));
            if off < min || off > max {
                return Err(AsmError::OffsetOverflow { at, off });
            }
            patch_offset(&mut insts[at], off);
        }
        Ok(insts.iter().map(|&i| encode(i)).collect())
    }

    /// The instruction list (labels not yet resolved).
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }
}

fn patch_offset(inst: &mut Inst, off: i64) {
    use Inst::*;
    match inst {
        Beq { off: o, .. } | Bne { off: o, .. } | Blt { off: o, .. } | Bge { off: o, .. }
        | Bltu { off: o, .. } | Bgeu { off: o, .. } => *o = off as i16,
        J { off: o } | Jal { off: o } => *o = off as i32,
        _ => unreachable!("fixup attached to non-branch instruction"),
    }
}

macro_rules! rrr {
    ($($(#[$doc:meta])* $m:ident => $v:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $m(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                    self.push(Inst::$v { rd, rs1, rs2 })
                }
            )+
        }
    };
}

rrr! {
    /// `rd = rs1 + rs2`
    add => Add,
    /// `rd = rs1 - rs2`
    sub => Sub,
    /// `rd = rs1 & rs2`
    and => And,
    /// `rd = rs1 | rs2`
    or => Or,
    /// `rd = rs1 ^ rs2`
    xor => Xor,
    /// `rd = rs1 << (rs2 & 31)`
    sll => Sll,
    /// `rd = rs1 >> (rs2 & 31)` (logical)
    srl => Srl,
    /// `rd = rs1 >> (rs2 & 31)` (arithmetic)
    sra => Sra,
    /// `rd = (rs1 <s rs2)`
    slt => Slt,
    /// `rd = (rs1 <u rs2)`
    sltu => Sltu,
    /// `rd = rs1 * rs2` (low 32 bits)
    mul => Mul,
    /// `rd = rs1 /u rs2` (`u32::MAX` on divide-by-zero)
    divu => Divu,
    /// `rd = rs1 %u rs2` (`rs1` on divide-by-zero)
    remu => Remu,
}

macro_rules! branches {
    ($($(#[$doc:meta])* $m:ident => $v:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $m(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
                    let at = self.insts.len();
                    self.fixups.push((at, Fixup::Rel16(target)));
                    self.push(Inst::$v { rs1, rs2, off: 0 })
                }
            )+
        }
    };
}

branches! {
    /// Branch if `rs1 == rs2`.
    beq => Beq,
    /// Branch if `rs1 != rs2`.
    bne => Bne,
    /// Branch if `rs1 <s rs2`.
    blt => Blt,
    /// Branch if `rs1 >=s rs2`.
    bge => Bge,
    /// Branch if `rs1 <u rs2`.
    bltu => Bltu,
    /// Branch if `rs1 >=u rs2`.
    bgeu => Bgeu,
}

macro_rules! loads {
    ($($(#[$doc:meta])* $m:ident => $v:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $m(&mut self, rd: Reg, rs1: Reg, off: i16) -> &mut Self {
                    self.push(Inst::$v { rd, rs1, off })
                }
            )+
        }
    };
}

loads! {
    /// Load sign-extended byte.
    lb => Lb,
    /// Load zero-extended byte.
    lbu => Lbu,
    /// Load sign-extended half.
    lh => Lh,
    /// Load zero-extended half.
    lhu => Lhu,
    /// Load word.
    lw => Lw,
}

impl Asm {
    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.push(Inst::Addi { rd, rs1, imm })
    }

    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: u16) -> &mut Self {
        self.push(Inst::Andi { rd, rs1, imm })
    }

    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: u16) -> &mut Self {
        self.push(Inst::Ori { rd, rs1, imm })
    }

    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: u16) -> &mut Self {
        self.push(Inst::Xori { rd, rs1, imm })
    }

    /// `rd = (rs1 <s imm)`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.push(Inst::Slti { rd, rs1, imm })
    }

    /// `rd = rs1 << sh`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, sh: u8) -> &mut Self {
        self.push(Inst::Slli { rd, rs1, sh })
    }

    /// `rd = rs1 >> sh` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, sh: u8) -> &mut Self {
        self.push(Inst::Srli { rd, rs1, sh })
    }

    /// `rd = rs1 >> sh` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs1: Reg, sh: u8) -> &mut Self {
        self.push(Inst::Srai { rd, rs1, sh })
    }

    /// `rd = imm << 16`
    pub fn lui(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.push(Inst::Lui { rd, imm })
    }

    /// Loads the full 32-bit constant `v` into `rd` (`lui` + `ori`; emits
    /// one or two instructions).
    pub fn li(&mut self, rd: Reg, v: u32) -> &mut Self {
        let hi = (v >> 16) as u16;
        let lo = (v & 0xFFFF) as u16;
        if hi != 0 {
            self.lui(rd, hi);
            if lo != 0 {
                self.ori(rd, rd, lo);
            }
        } else {
            self.ori(rd, Reg::R0, lo);
        }
        self
    }

    /// Store byte.
    pub fn sb(&mut self, rs2: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.push(Inst::Sb { rs1, rs2, off })
    }

    /// Store half.
    pub fn sh(&mut self, rs2: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.push(Inst::Sh { rs1, rs2, off })
    }

    /// Store word.
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.push(Inst::Sw { rs1, rs2, off })
    }

    /// Load FP double.
    pub fn fld(&mut self, fd: FReg, rs1: Reg, off: i16) -> &mut Self {
        self.push(Inst::Fld { fd, rs1, off })
    }

    /// Store FP double.
    pub fn fsd(&mut self, fs2: FReg, rs1: Reg, off: i16) -> &mut Self {
        self.push(Inst::Fsd { rs1, fs2, off })
    }

    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.push(Inst::Fadd { fd, fs1, fs2 })
    }

    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.push(Inst::Fsub { fd, fs1, fs2 })
    }

    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.push(Inst::Fmul { fd, fs1, fs2 })
    }

    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.push(Inst::Fdiv { fd, fs1, fs2 })
    }

    /// `fd = fs1`
    pub fn fmov(&mut self, fd: FReg, fs1: FReg) -> &mut Self {
        self.push(Inst::Fmov { fd, fs1 })
    }

    /// `rd = (fs1 < fs2)`
    pub fn fcmplt(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.push(Inst::Fcmplt { rd, fs1, fs2 })
    }

    /// `fd = rs1 as f64` (signed)
    pub fn fcvtif(&mut self, fd: FReg, rs1: Reg) -> &mut Self {
        self.push(Inst::Fcvtif { fd, rs1 })
    }

    /// `rd = fs1 as i64 as u32` (truncating)
    pub fn fcvtfi(&mut self, rd: Reg, fs1: FReg) -> &mut Self {
        self.push(Inst::Fcvtfi { rd, fs1 })
    }

    /// Unconditional jump to `target`.
    pub fn j(&mut self, target: Label) -> &mut Self {
        let at = self.insts.len();
        self.fixups.push((at, Fixup::Rel26(target)));
        self.push(Inst::J { off: 0 })
    }

    /// Call `target` (links `r31`).
    pub fn jal(&mut self, target: Label) -> &mut Self {
        let at = self.insts.len();
        self.fixups.push((at, Fixup::Rel26(target)));
        self.push(Inst::Jal { off: 0 })
    }

    /// Indirect jump to `rs1`, linking into `rd`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.push(Inst::Jalr { rd, rs1 })
    }

    /// Return (`jalr r0, r31`).
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Reg::R0, Reg::R31)
    }

    /// Write `rs1` to I/O `port`.
    pub fn out(&mut self, rs1: Reg, port: u8) -> &mut Self {
        self.push(Inst::Out { rs1, port })
    }

    /// Stop the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{step, ArchState};
    use crate::mem::{FlatMem, MemIo};

    fn run(a: &Asm, mem_len: usize, max_steps: usize) -> (ArchState, FlatMem) {
        let words = a.assemble().expect("assemble");
        let mut mem = FlatMem::new(a.base(), mem_len);
        mem.load_words(a.base(), &words);
        let mut st = ArchState::new(a.base());
        for _ in 0..max_steps {
            if st.halted {
                break;
            }
            step(&mut st, &mut mem).expect("step");
        }
        assert!(st.halted, "program did not halt");
        (st, mem)
    }

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new(0);
        let top = a.new_label();
        let end = a.new_label();
        a.addi(Reg::R1, Reg::R0, 3);
        a.bind(top).unwrap();
        a.beq(Reg::R1, Reg::R0, end); // forward
        a.addi(Reg::R1, Reg::R1, -1);
        a.bne(Reg::R0, Reg::R0, end); // never taken
        a.j(top); // backward
        a.bind(end).unwrap();
        a.halt();
        let (st, _) = run(&a, 4096, 100);
        assert_eq!(st.reg(Reg::R1), 0);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new(0x1000);
        let func = a.new_label();
        let end = a.new_label();
        a.addi(Reg::R1, Reg::R0, 1);
        a.jal(func);
        a.j(end);
        a.bind(func).unwrap();
        a.addi(Reg::R1, Reg::R1, 10);
        a.ret();
        a.bind(end).unwrap();
        a.halt();
        let (st, _) = run(&a, 64 * 1024, 100);
        assert_eq!(st.reg(Reg::R1), 11);
    }

    #[test]
    fn li_expansions() {
        let mut a = Asm::new(0);
        a.li(Reg::R1, 0xDEADBEEF);
        a.li(Reg::R2, 0x0000BEEF);
        a.li(Reg::R3, 0xDEAD0000);
        a.halt();
        let (st, _) = run(&a, 4096, 100);
        assert_eq!(st.reg(Reg::R1), 0xDEADBEEF);
        assert_eq!(st.reg(Reg::R2), 0x0000BEEF);
        assert_eq!(st.reg(Reg::R3), 0xDEAD0000);
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Asm::new(0);
        let l = a.new_label();
        a.j(l);
        assert!(matches!(a.assemble(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn rebound_label_errors() {
        let mut a = Asm::new(0);
        let l = a.new_label();
        a.bind(l).unwrap();
        assert_eq!(a.bind(l), Err(AsmError::Rebound(l)));
    }

    #[test]
    fn offset_overflow_detected() {
        let mut a = Asm::new(0);
        let far = a.new_label();
        a.beq(Reg::R0, Reg::R0, far);
        for _ in 0..40_000 {
            a.nop();
        }
        a.bind(far).unwrap();
        a.halt();
        assert!(matches!(a.assemble(), Err(AsmError::OffsetOverflow { .. })));
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new(0x100);
        assert_eq!(a.here(), 0x100);
        a.nop();
        assert_eq!(a.here(), 0x104);
    }

    #[test]
    fn memory_loop_writes_array() {
        // for i in 0..8 { mem[0x800 + 4*i] = i }
        let mut a = Asm::new(0);
        let top = a.new_label();
        let end = a.new_label();
        a.addi(Reg::R1, Reg::R0, 0); // i
        a.addi(Reg::R2, Reg::R0, 8); // n
        a.li(Reg::R3, 0x800); // base
        a.bind(top).unwrap();
        a.bge(Reg::R1, Reg::R2, end);
        a.slli(Reg::R4, Reg::R1, 2);
        a.add(Reg::R4, Reg::R4, Reg::R3);
        a.sw(Reg::R1, Reg::R4, 0);
        a.addi(Reg::R1, Reg::R1, 1);
        a.j(top);
        a.bind(end).unwrap();
        a.halt();
        let (_, mut mem) = run(&a, 4096, 1000);
        for i in 0..8u32 {
            assert_eq!(mem.read_u32(0x800 + 4 * i), i);
        }
    }
}
