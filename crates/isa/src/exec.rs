//! Functional ("oracle") semantics of the ISA.
//!
//! The out-of-order timing model in `secsim-cpu` drives this interpreter
//! one instruction at a time to obtain values, effective addresses and
//! branch outcomes, then layers cycle timing on top. The same interpreter
//! runs tampered (attacker-modified) programs: decoding never panics, and
//! executing an undecodable word returns [`Fault::IllegalInstruction`].

use crate::encode::decode;
use crate::inst::{Inst, MemWidth};
use crate::mem::MemIo;
use crate::reg::{FReg, Reg};
use std::fmt;

/// Architectural register and PC state.
///
/// # Examples
///
/// ```
/// use secsim_isa::{ArchState, Reg};
///
/// let mut st = ArchState::new(0x1000);
/// st.set_reg(Reg::R5, 42);
/// assert_eq!(st.reg(Reg::R5), 42);
/// st.set_reg(Reg::R0, 99); // r0 is hardwired to zero
/// assert_eq!(st.reg(Reg::R0), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Current program counter.
    pub pc: u32,
    /// Whether a `halt` has been executed.
    pub halted: bool,
    /// Number of retired instructions.
    pub icount: u64,
    regs: [u32; 32],
    fregs: [f64; 32],
}

impl ArchState {
    /// Creates a zeroed state with the given entry PC.
    pub fn new(entry: u32) -> Self {
        Self { pc: entry, halted: false, icount: 0, regs: [0; 32], fregs: [0.0; 32] }
    }

    /// Reads an integer register (`r0` always reads 0).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes an integer register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::R0 {
            self.regs[r.index()] = v;
        }
    }

    /// Reads a floating-point register.
    pub fn freg(&self, r: FReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Writes a floating-point register.
    pub fn set_freg(&mut self, r: FReg, v: f64) {
        self.fregs[r.index()] = v;
    }
}

/// A memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u32,
    /// Access width.
    pub width: MemWidth,
    /// `true` for stores.
    pub is_store: bool,
}

/// Everything the timing model needs to know about one executed
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo {
    /// PC of the executed instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// PC of the next instruction (branch/jump targets included).
    pub next_pc: u32,
    /// Memory access, if this was a load/store.
    pub mem: Option<MemAccess>,
    /// `(taken, target)` for control-transfer instructions. Unconditional
    /// jumps report `taken = true`.
    pub control: Option<(bool, u32)>,
    /// `(port, value)` written by an `out` instruction.
    pub out: Option<(u8, u32)>,
}

/// A fault raised by the functional semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The fetched word does not decode to a valid instruction.
    IllegalInstruction {
        /// PC of the faulting word.
        pc: u32,
        /// The raw word.
        word: u32,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// Executes one instruction at `st.pc` against `mem`.
///
/// Returns a [`StepInfo`] describing the committed effects. `halt` sets
/// `st.halted` and still returns normally; calling [`step`] again on a
/// halted machine returns a no-op `StepInfo` without advancing.
///
/// # Errors
///
/// Returns [`Fault::IllegalInstruction`] when the fetched word is
/// undecodable; the PC is left pointing at the faulting instruction so a
/// security-exception handler can report a precise state.
///
/// # Examples
///
/// ```
/// use secsim_isa::{step, ArchState, FlatMem, Inst, MemIo, Reg, encode};
///
/// let mut mem = FlatMem::new(0, 64);
/// mem.write_u32(0, encode(Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 9 }));
/// let mut st = ArchState::new(0);
/// let info = step(&mut st, &mut mem).unwrap();
/// assert_eq!(st.reg(Reg::R1), 9);
/// assert_eq!(info.next_pc, 4);
/// ```
pub fn step<M: MemIo>(st: &mut ArchState, mem: &mut M) -> Result<StepInfo, Fault> {
    if st.halted {
        return Ok(StepInfo {
            pc: st.pc,
            inst: Inst::Halt,
            next_pc: st.pc,
            mem: None,
            control: None,
            out: None,
        });
    }
    let word = mem.fetch_word(st.pc);
    step_decoded(st, mem, decode(word))
}

/// [`step`] with fetch and decode hoisted out: executes `inst`, which
/// the caller promises is `decode(mem.fetch_word(st.pc))`. The timing
/// model keeps a decoded-instruction cache over the (tiny, hot)
/// code footprint and calls this directly, skipping the per-instruction
/// fetch and decode that otherwise dominate the functional step.
///
/// The caller is responsible for invalidating its cache when memory at
/// a cached PC changes (program stores, injected faults); passing an
/// `inst` that no longer matches memory silently diverges from [`step`].
///
/// # Errors
///
/// Returns [`Fault::IllegalInstruction`] exactly as [`step`] does.
pub fn step_decoded<M: MemIo>(
    st: &mut ArchState,
    mem: &mut M,
    inst: Inst,
) -> Result<StepInfo, Fault> {
    if st.halted {
        return Ok(StepInfo {
            pc: st.pc,
            inst: Inst::Halt,
            next_pc: st.pc,
            mem: None,
            control: None,
            out: None,
        });
    }
    let pc = st.pc;
    let mut next_pc = pc.wrapping_add(4);
    let mut info_mem = None;
    let mut control = None;
    let mut out = None;

    use Inst::*;
    match inst {
        Add { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1).wrapping_add(st.reg(rs2))),
        Sub { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1).wrapping_sub(st.reg(rs2))),
        And { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1) & st.reg(rs2)),
        Or { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1) | st.reg(rs2)),
        Xor { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1) ^ st.reg(rs2)),
        Sll { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1) << (st.reg(rs2) & 31)),
        Srl { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1) >> (st.reg(rs2) & 31)),
        Sra { rd, rs1, rs2 } => {
            st.set_reg(rd, ((st.reg(rs1) as i32) >> (st.reg(rs2) & 31)) as u32)
        }
        Slt { rd, rs1, rs2 } => {
            st.set_reg(rd, ((st.reg(rs1) as i32) < (st.reg(rs2) as i32)) as u32)
        }
        Sltu { rd, rs1, rs2 } => st.set_reg(rd, (st.reg(rs1) < st.reg(rs2)) as u32),
        Mul { rd, rs1, rs2 } => st.set_reg(rd, st.reg(rs1).wrapping_mul(st.reg(rs2))),
        Divu { rd, rs1, rs2 } => {
            st.set_reg(rd, st.reg(rs1).checked_div(st.reg(rs2)).unwrap_or(u32::MAX));
        }
        Remu { rd, rs1, rs2 } => {
            st.set_reg(rd, st.reg(rs1).checked_rem(st.reg(rs2)).unwrap_or(st.reg(rs1)));
        }
        Addi { rd, rs1, imm } => st.set_reg(rd, st.reg(rs1).wrapping_add(imm as i32 as u32)),
        Andi { rd, rs1, imm } => st.set_reg(rd, st.reg(rs1) & imm as u32),
        Ori { rd, rs1, imm } => st.set_reg(rd, st.reg(rs1) | imm as u32),
        Xori { rd, rs1, imm } => st.set_reg(rd, st.reg(rs1) ^ imm as u32),
        Slti { rd, rs1, imm } => st.set_reg(rd, ((st.reg(rs1) as i32) < imm as i32) as u32),
        Slli { rd, rs1, sh } => st.set_reg(rd, st.reg(rs1) << (sh & 31)),
        Srli { rd, rs1, sh } => st.set_reg(rd, st.reg(rs1) >> (sh & 31)),
        Srai { rd, rs1, sh } => st.set_reg(rd, ((st.reg(rs1) as i32) >> (sh & 31)) as u32),
        Lui { rd, imm } => st.set_reg(rd, (imm as u32) << 16),
        Lb { rd, rs1, off } => {
            let addr = ea(st.reg(rs1), off);
            let mut b = [0u8; 1];
            mem.read(addr, &mut b);
            st.set_reg(rd, b[0] as i8 as i32 as u32);
            info_mem = Some(MemAccess { addr, width: MemWidth::Byte, is_store: false });
        }
        Lbu { rd, rs1, off } => {
            let addr = ea(st.reg(rs1), off);
            let mut b = [0u8; 1];
            mem.read(addr, &mut b);
            st.set_reg(rd, b[0] as u32);
            info_mem = Some(MemAccess { addr, width: MemWidth::Byte, is_store: false });
        }
        Lh { rd, rs1, off } => {
            let addr = ea(st.reg(rs1), off);
            let mut b = [0u8; 2];
            mem.read(addr, &mut b);
            st.set_reg(rd, i16::from_le_bytes(b) as i32 as u32);
            info_mem = Some(MemAccess { addr, width: MemWidth::Half, is_store: false });
        }
        Lhu { rd, rs1, off } => {
            let addr = ea(st.reg(rs1), off);
            let mut b = [0u8; 2];
            mem.read(addr, &mut b);
            st.set_reg(rd, u16::from_le_bytes(b) as u32);
            info_mem = Some(MemAccess { addr, width: MemWidth::Half, is_store: false });
        }
        Lw { rd, rs1, off } => {
            let addr = ea(st.reg(rs1), off);
            st.set_reg(rd, mem.read_u32(addr));
            info_mem = Some(MemAccess { addr, width: MemWidth::Word, is_store: false });
        }
        Fld { fd, rs1, off } => {
            let addr = ea(st.reg(rs1), off);
            st.set_freg(fd, mem.read_f64(addr));
            info_mem = Some(MemAccess { addr, width: MemWidth::Double, is_store: false });
        }
        Sb { rs1, rs2, off } => {
            let addr = ea(st.reg(rs1), off);
            mem.write(addr, &[st.reg(rs2) as u8]);
            info_mem = Some(MemAccess { addr, width: MemWidth::Byte, is_store: true });
        }
        Sh { rs1, rs2, off } => {
            let addr = ea(st.reg(rs1), off);
            mem.write(addr, &(st.reg(rs2) as u16).to_le_bytes());
            info_mem = Some(MemAccess { addr, width: MemWidth::Half, is_store: true });
        }
        Sw { rs1, rs2, off } => {
            let addr = ea(st.reg(rs1), off);
            mem.write_u32(addr, st.reg(rs2));
            info_mem = Some(MemAccess { addr, width: MemWidth::Word, is_store: true });
        }
        Fsd { rs1, fs2, off } => {
            let addr = ea(st.reg(rs1), off);
            mem.write_f64(addr, st.freg(fs2));
            info_mem = Some(MemAccess { addr, width: MemWidth::Double, is_store: true });
        }
        Fadd { fd, fs1, fs2 } => st.set_freg(fd, st.freg(fs1) + st.freg(fs2)),
        Fsub { fd, fs1, fs2 } => st.set_freg(fd, st.freg(fs1) - st.freg(fs2)),
        Fmul { fd, fs1, fs2 } => st.set_freg(fd, st.freg(fs1) * st.freg(fs2)),
        Fdiv { fd, fs1, fs2 } => st.set_freg(fd, st.freg(fs1) / st.freg(fs2)),
        Fmov { fd, fs1 } => st.set_freg(fd, st.freg(fs1)),
        Fcmplt { rd, fs1, fs2 } => st.set_reg(rd, (st.freg(fs1) < st.freg(fs2)) as u32),
        Fcvtif { fd, rs1 } => st.set_freg(fd, st.reg(rs1) as i32 as f64),
        Fcvtfi { rd, fs1 } => st.set_reg(rd, st.freg(fs1) as i64 as u32),
        Beq { rs1, rs2, off } => {
            let taken = st.reg(rs1) == st.reg(rs2);
            branch(&mut next_pc, &mut control, pc, off, taken);
        }
        Bne { rs1, rs2, off } => {
            let taken = st.reg(rs1) != st.reg(rs2);
            branch(&mut next_pc, &mut control, pc, off, taken);
        }
        Blt { rs1, rs2, off } => {
            let taken = (st.reg(rs1) as i32) < (st.reg(rs2) as i32);
            branch(&mut next_pc, &mut control, pc, off, taken);
        }
        Bge { rs1, rs2, off } => {
            let taken = (st.reg(rs1) as i32) >= (st.reg(rs2) as i32);
            branch(&mut next_pc, &mut control, pc, off, taken);
        }
        Bltu { rs1, rs2, off } => {
            let taken = st.reg(rs1) < st.reg(rs2);
            branch(&mut next_pc, &mut control, pc, off, taken);
        }
        Bgeu { rs1, rs2, off } => {
            let taken = st.reg(rs1) >= st.reg(rs2);
            branch(&mut next_pc, &mut control, pc, off, taken);
        }
        J { off } => {
            let target = jump_target(pc, off);
            next_pc = target;
            control = Some((true, target));
        }
        Jal { off } => {
            let target = jump_target(pc, off);
            st.set_reg(Reg::R31, pc.wrapping_add(4));
            next_pc = target;
            control = Some((true, target));
        }
        Jalr { rd, rs1 } => {
            let target = st.reg(rs1) & !3;
            st.set_reg(rd, pc.wrapping_add(4));
            next_pc = target;
            control = Some((true, target));
        }
        Out { rs1, port } => out = Some((port, st.reg(rs1))),
        Halt => {
            st.halted = true;
            next_pc = pc;
        }
        Nop => {}
        Illegal(word) => return Err(Fault::IllegalInstruction { pc, word }),
    }

    st.pc = next_pc;
    st.icount += 1;
    Ok(StepInfo { pc, inst, next_pc, mem: info_mem, control, out })
}

fn ea(base: u32, off: i16) -> u32 {
    base.wrapping_add(off as i32 as u32)
}

fn branch_target(pc: u32, off: i16) -> u32 {
    pc.wrapping_add(4).wrapping_add(((off as i32) << 2) as u32)
}

fn jump_target(pc: u32, off: i32) -> u32 {
    pc.wrapping_add(4).wrapping_add((off << 2) as u32)
}

fn branch(next_pc: &mut u32, control: &mut Option<(bool, u32)>, pc: u32, off: i16, taken: bool) {
    let target = branch_target(pc, off);
    if taken {
        *next_pc = target;
    }
    *control = Some((taken, target));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::mem::FlatMem;

    fn run_one(inst: Inst, setup: impl FnOnce(&mut ArchState, &mut FlatMem)) -> (ArchState, FlatMem, StepInfo) {
        let mut mem = FlatMem::new(0, 4096);
        let mut st = ArchState::new(0);
        setup(&mut st, &mut mem);
        mem.write_u32(0, encode(inst));
        let info = step(&mut st, &mut mem).expect("step");
        (st, mem, info)
    }

    #[test]
    fn arithmetic_ops() {
        let (st, _, _) = run_one(Inst::Add { rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R2 }, |st, _| {
            st.set_reg(Reg::R1, 7);
            st.set_reg(Reg::R2, u32::MAX); // wrapping
        });
        assert_eq!(st.reg(Reg::R3), 6);

        let (st, _, _) = run_one(Inst::Sra { rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R2 }, |st, _| {
            st.set_reg(Reg::R1, 0x8000_0000);
            st.set_reg(Reg::R2, 4);
        });
        assert_eq!(st.reg(Reg::R3), 0xF800_0000);
    }

    #[test]
    fn div_by_zero_defined() {
        let (st, _, _) = run_one(Inst::Divu { rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R0 }, |st, _| {
            st.set_reg(Reg::R1, 10);
        });
        assert_eq!(st.reg(Reg::R3), u32::MAX);
        let (st, _, _) = run_one(Inst::Remu { rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R0 }, |st, _| {
            st.set_reg(Reg::R1, 10);
        });
        assert_eq!(st.reg(Reg::R3), 10);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let (st, _, info) = run_one(Inst::Lb { rd: Reg::R2, rs1: Reg::R1, off: 0 }, |st, mem| {
            st.set_reg(Reg::R1, 0x100);
            mem.write(0x100, &[0xFF]);
        });
        assert_eq!(st.reg(Reg::R2), 0xFFFF_FFFF);
        assert_eq!(info.mem, Some(MemAccess { addr: 0x100, width: MemWidth::Byte, is_store: false }));

        let (st, _, _) = run_one(Inst::Lbu { rd: Reg::R2, rs1: Reg::R1, off: 0 }, |st, mem| {
            st.set_reg(Reg::R1, 0x100);
            mem.write(0x100, &[0xFF]);
        });
        assert_eq!(st.reg(Reg::R2), 0xFF);

        let (st, _, _) = run_one(Inst::Lh { rd: Reg::R2, rs1: Reg::R1, off: 2 }, |st, mem| {
            st.set_reg(Reg::R1, 0x100);
            mem.write(0x102, &0x8000u16.to_le_bytes());
        });
        assert_eq!(st.reg(Reg::R2), 0xFFFF_8000);
    }

    #[test]
    fn store_then_load() {
        let (_, mem, info) = run_one(Inst::Sw { rs1: Reg::R1, rs2: Reg::R2, off: 4 }, |st, _| {
            st.set_reg(Reg::R1, 0x200);
            st.set_reg(Reg::R2, 0xCAFEBABE);
        });
        let mut m = mem;
        assert_eq!(m.read_u32(0x204), 0xCAFEBABE);
        assert!(info.mem.unwrap().is_store);
    }

    #[test]
    fn fp_ops() {
        let (st, _, _) = run_one(Inst::Fadd { fd: FReg::R3, fs1: FReg::R1, fs2: FReg::R2 }, |st, _| {
            st.set_freg(FReg::R1, 1.5);
            st.set_freg(FReg::R2, 2.25);
        });
        assert_eq!(st.freg(FReg::R3), 3.75);

        let (st, _, _) = run_one(Inst::Fcmplt { rd: Reg::R1, fs1: FReg::R1, fs2: FReg::R2 }, |st, _| {
            st.set_freg(FReg::R1, -1.0);
            st.set_freg(FReg::R2, 0.0);
        });
        assert_eq!(st.reg(Reg::R1), 1);

        let (st, _, _) = run_one(Inst::Fcvtif { fd: FReg::R1, rs1: Reg::R1 }, |st, _| {
            st.set_reg(Reg::R1, (-5i32) as u32);
        });
        assert_eq!(st.freg(FReg::R1), -5.0);

        let (st, _, _) = run_one(Inst::Fcvtfi { rd: Reg::R1, fs1: FReg::R1 }, |st, _| {
            st.set_freg(FReg::R1, 6.9);
        });
        assert_eq!(st.reg(Reg::R1), 6);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let (st, _, info) = run_one(Inst::Beq { rs1: Reg::R1, rs2: Reg::R2, off: 3 }, |st, _| {
            st.set_reg(Reg::R1, 5);
            st.set_reg(Reg::R2, 5);
        });
        assert_eq!(st.pc, 4 + 12);
        assert_eq!(info.control, Some((true, 16)));

        let (st, _, info) = run_one(Inst::Beq { rs1: Reg::R1, rs2: Reg::R2, off: 3 }, |st, _| {
            st.set_reg(Reg::R1, 5);
            st.set_reg(Reg::R2, 6);
        });
        assert_eq!(st.pc, 4);
        assert_eq!(info.control, Some((false, 16)));
    }

    #[test]
    fn jumps_and_links() {
        let (st, _, _) = run_one(Inst::Jal { off: 10 }, |_, _| {});
        assert_eq!(st.pc, 4 + 40);
        assert_eq!(st.reg(Reg::R31), 4);

        let (st, _, _) = run_one(Inst::Jalr { rd: Reg::R5, rs1: Reg::R1 }, |st, _| {
            st.set_reg(Reg::R1, 0x203); // misaligned, forced to 0x200
        });
        assert_eq!(st.pc, 0x200);
        assert_eq!(st.reg(Reg::R5), 4);
    }

    #[test]
    fn out_and_halt() {
        let (st, _, info) = run_one(Inst::Out { rs1: Reg::R1, port: 3 }, |st, _| {
            st.set_reg(Reg::R1, 0x55);
        });
        assert_eq!(info.out, Some((3, 0x55)));
        assert!(!st.halted);

        let (mut st, mut mem, _) = run_one(Inst::Halt, |_, _| {});
        assert!(st.halted);
        let pc_before = st.pc;
        let info = step(&mut st, &mut mem).unwrap();
        assert_eq!(st.pc, pc_before); // halted machine does not advance
        assert_eq!(info.inst, Inst::Halt);
    }

    #[test]
    fn illegal_faults_with_precise_pc() {
        let mut mem = FlatMem::new(0, 64);
        mem.write_u32(0, 0xF800_0001);
        let mut st = ArchState::new(0);
        let err = step(&mut st, &mut mem).unwrap_err();
        assert_eq!(err, Fault::IllegalInstruction { pc: 0, word: 0xF800_0001 });
        assert_eq!(st.pc, 0); // precise
        assert_eq!(st.icount, 0);
    }

    #[test]
    fn icount_advances() {
        let mut mem = FlatMem::new(0, 64);
        mem.write_u32(0, encode(Inst::Nop));
        mem.write_u32(4, encode(Inst::Halt));
        let mut st = ArchState::new(0);
        step(&mut st, &mut mem).unwrap();
        step(&mut st, &mut mem).unwrap();
        assert_eq!(st.icount, 2);
        assert!(st.halted);
    }
}
