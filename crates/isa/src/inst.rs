use crate::reg::{FReg, Reg};
use std::fmt;

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
    /// 8 bytes (floating-point loads/stores).
    Double,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// Functional-unit class of an instruction, used by the pipeline's issue
/// logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply/divide (long latency).
    IntMul,
    /// Floating-point add/sub/compare/convert.
    FpAlu,
    /// Floating-point multiply/divide (long latency).
    FpMulDiv,
    /// Memory load (integer or FP).
    Load,
    /// Memory store (integer or FP).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump / call / return.
    Jump,
    /// `out`, `halt`, `nop`.
    System,
    /// Undecodable word (executes as a fault).
    Illegal,
}

/// A reference to an architectural register in either register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// Integer register.
    Int(Reg),
    /// Floating-point register.
    Fp(FReg),
}

/// One decoded instruction of the `secsim` RISC ISA.
///
/// The ISA is a classic 32-bit load/store RISC: 32 integer registers
/// (`r0` hardwired to zero), 32 `f64` registers, fixed 4-byte encoding.
/// Branch/jump offsets are *word* offsets relative to `pc + 4`.
///
/// # Examples
///
/// ```
/// use secsim_isa::{Inst, OpClass, Reg};
///
/// let i = Inst::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 };
/// assert_eq!(i.class(), OpClass::IntAlu);
/// assert_eq!(i.to_string(), "add r1, r2, r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Inst {
    // ---- integer register-register ----
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    And { rd: Reg, rs1: Reg, rs2: Reg },
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    Divu { rd: Reg, rs1: Reg, rs2: Reg },
    Remu { rd: Reg, rs1: Reg, rs2: Reg },

    // ---- integer register-immediate ----
    Addi { rd: Reg, rs1: Reg, imm: i16 },
    Andi { rd: Reg, rs1: Reg, imm: u16 },
    Ori { rd: Reg, rs1: Reg, imm: u16 },
    Xori { rd: Reg, rs1: Reg, imm: u16 },
    Slti { rd: Reg, rs1: Reg, imm: i16 },
    Slli { rd: Reg, rs1: Reg, sh: u8 },
    Srli { rd: Reg, rs1: Reg, sh: u8 },
    Srai { rd: Reg, rs1: Reg, sh: u8 },
    /// `rd = imm << 16`.
    Lui { rd: Reg, imm: u16 },

    // ---- loads (address = rs1 + off) ----
    Lb { rd: Reg, rs1: Reg, off: i16 },
    Lbu { rd: Reg, rs1: Reg, off: i16 },
    Lh { rd: Reg, rs1: Reg, off: i16 },
    Lhu { rd: Reg, rs1: Reg, off: i16 },
    Lw { rd: Reg, rs1: Reg, off: i16 },
    Fld { fd: FReg, rs1: Reg, off: i16 },

    // ---- stores (address = rs1 + off, value = rs2/fs2) ----
    Sb { rs1: Reg, rs2: Reg, off: i16 },
    Sh { rs1: Reg, rs2: Reg, off: i16 },
    Sw { rs1: Reg, rs2: Reg, off: i16 },
    Fsd { rs1: Reg, fs2: FReg, off: i16 },

    // ---- floating point ----
    Fadd { fd: FReg, fs1: FReg, fs2: FReg },
    Fsub { fd: FReg, fs1: FReg, fs2: FReg },
    Fmul { fd: FReg, fs1: FReg, fs2: FReg },
    Fdiv { fd: FReg, fs1: FReg, fs2: FReg },
    Fmov { fd: FReg, fs1: FReg },
    /// `rd = (fs1 < fs2) as u32`
    Fcmplt { rd: Reg, fs1: FReg, fs2: FReg },
    /// `fd = rs1 as i32 as f64`
    Fcvtif { fd: FReg, rs1: Reg },
    /// `rd = fs1 as i64 as u32` (truncating)
    Fcvtfi { rd: Reg, fs1: FReg },

    // ---- control transfer (off: signed word offset from pc+4) ----
    Beq { rs1: Reg, rs2: Reg, off: i16 },
    Bne { rs1: Reg, rs2: Reg, off: i16 },
    Blt { rs1: Reg, rs2: Reg, off: i16 },
    Bge { rs1: Reg, rs2: Reg, off: i16 },
    Bltu { rs1: Reg, rs2: Reg, off: i16 },
    Bgeu { rs1: Reg, rs2: Reg, off: i16 },
    /// Unconditional jump, no link. 26-bit signed word offset.
    J { off: i32 },
    /// Call: link into `r31`, 26-bit signed word offset.
    Jal { off: i32 },
    /// Indirect jump to `rs1`, link into `rd` (use `r0` to discard).
    Jalr { rd: Reg, rs1: Reg },

    // ---- system ----
    /// Writes `rs1` to I/O port `port` — the paper's "output channel".
    Out { rs1: Reg, port: u8 },
    /// Stops the machine.
    Halt,
    /// No operation (encodes as the all-zero word).
    Nop,
    /// An undecodable instruction word; executing it faults.
    Illegal(u32),
}

impl Inst {
    /// Functional-unit class for issue scheduling.
    pub fn class(&self) -> OpClass {
        use Inst::*;
        match self {
            Add { .. } | Sub { .. } | And { .. } | Or { .. } | Xor { .. } | Sll { .. }
            | Srl { .. } | Sra { .. } | Slt { .. } | Sltu { .. } | Addi { .. } | Andi { .. }
            | Ori { .. } | Xori { .. } | Slti { .. } | Slli { .. } | Srli { .. }
            | Srai { .. } | Lui { .. } => OpClass::IntAlu,
            Mul { .. } | Divu { .. } | Remu { .. } => OpClass::IntMul,
            Fadd { .. } | Fsub { .. } | Fmov { .. } | Fcmplt { .. } | Fcvtif { .. }
            | Fcvtfi { .. } => OpClass::FpAlu,
            Fmul { .. } | Fdiv { .. } => OpClass::FpMulDiv,
            Lb { .. } | Lbu { .. } | Lh { .. } | Lhu { .. } | Lw { .. } | Fld { .. } => {
                OpClass::Load
            }
            Sb { .. } | Sh { .. } | Sw { .. } | Fsd { .. } => OpClass::Store,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
                OpClass::Branch
            }
            J { .. } | Jal { .. } | Jalr { .. } => OpClass::Jump,
            Out { .. } | Halt | Nop => OpClass::System,
            Illegal(_) => OpClass::Illegal,
        }
    }

    /// Source registers read by this instruction (up to two).
    pub fn srcs(&self) -> [Option<RegRef>; 2] {
        use Inst::*;
        let i = RegRef::Int;
        let f = RegRef::Fp;
        match *self {
            Add { rs1, rs2, .. }
            | Sub { rs1, rs2, .. }
            | And { rs1, rs2, .. }
            | Or { rs1, rs2, .. }
            | Xor { rs1, rs2, .. }
            | Sll { rs1, rs2, .. }
            | Srl { rs1, rs2, .. }
            | Sra { rs1, rs2, .. }
            | Slt { rs1, rs2, .. }
            | Sltu { rs1, rs2, .. }
            | Mul { rs1, rs2, .. }
            | Divu { rs1, rs2, .. }
            | Remu { rs1, rs2, .. } => [Some(i(rs1)), Some(i(rs2))],
            Addi { rs1, .. } | Slti { rs1, .. } => [Some(i(rs1)), None],
            Andi { rs1, .. } | Ori { rs1, .. } | Xori { rs1, .. } => [Some(i(rs1)), None],
            Slli { rs1, .. } | Srli { rs1, .. } | Srai { rs1, .. } => [Some(i(rs1)), None],
            Lui { .. } => [None, None],
            Lb { rs1, .. } | Lbu { rs1, .. } | Lh { rs1, .. } | Lhu { rs1, .. }
            | Lw { rs1, .. } | Fld { rs1, .. } => [Some(i(rs1)), None],
            Sb { rs1, rs2, .. } | Sh { rs1, rs2, .. } | Sw { rs1, rs2, .. } => {
                [Some(i(rs1)), Some(i(rs2))]
            }
            Fsd { rs1, fs2, .. } => [Some(i(rs1)), Some(f(fs2))],
            Fadd { fs1, fs2, .. } | Fsub { fs1, fs2, .. } | Fmul { fs1, fs2, .. }
            | Fdiv { fs1, fs2, .. } | Fcmplt { fs1, fs2, .. } => [Some(f(fs1)), Some(f(fs2))],
            Fmov { fs1, .. } => [Some(f(fs1)), None],
            Fcvtif { rs1, .. } => [Some(i(rs1)), None],
            Fcvtfi { fs1, .. } => [Some(f(fs1)), None],
            Beq { rs1, rs2, .. } | Bne { rs1, rs2, .. } | Blt { rs1, rs2, .. }
            | Bge { rs1, rs2, .. } | Bltu { rs1, rs2, .. } | Bgeu { rs1, rs2, .. } => {
                [Some(i(rs1)), Some(i(rs2))]
            }
            J { .. } | Jal { .. } => [None, None],
            Jalr { rs1, .. } => [Some(i(rs1)), None],
            Out { rs1, .. } => [Some(i(rs1)), None],
            Halt | Nop | Illegal(_) => [None, None],
        }
    }

    /// Destination register written by this instruction, if any.
    ///
    /// Writes to `r0` are reported as `None` (they are architectural
    /// no-ops).
    pub fn dst(&self) -> Option<RegRef> {
        use Inst::*;
        let int = |r: Reg| {
            if r == Reg::R0 {
                None
            } else {
                Some(RegRef::Int(r))
            }
        };
        match *self {
            Add { rd, .. } | Sub { rd, .. } | And { rd, .. } | Or { rd, .. } | Xor { rd, .. }
            | Sll { rd, .. } | Srl { rd, .. } | Sra { rd, .. } | Slt { rd, .. }
            | Sltu { rd, .. } | Mul { rd, .. } | Divu { rd, .. } | Remu { rd, .. }
            | Addi { rd, .. } | Andi { rd, .. } | Ori { rd, .. } | Xori { rd, .. }
            | Slti { rd, .. } | Slli { rd, .. } | Srli { rd, .. } | Srai { rd, .. }
            | Lui { rd, .. } | Lb { rd, .. } | Lbu { rd, .. } | Lh { rd, .. }
            | Lhu { rd, .. } | Lw { rd, .. } | Fcmplt { rd, .. } | Fcvtfi { rd, .. } => int(rd),
            Fld { fd, .. } | Fadd { fd, .. } | Fsub { fd, .. } | Fmul { fd, .. }
            | Fdiv { fd, .. } | Fmov { fd, .. } | Fcvtif { fd, .. } => Some(RegRef::Fp(fd)),
            Jal { .. } => Some(RegRef::Int(Reg::R31)),
            Jalr { rd, .. } => int(rd),
            Sb { .. } | Sh { .. } | Sw { .. } | Fsd { .. } | Beq { .. } | Bne { .. }
            | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } | J { .. } | Out { .. }
            | Halt | Nop | Illegal(_) => None,
        }
    }

    /// Whether this is a load (including `fld`).
    pub fn is_load(&self) -> bool {
        self.class() == OpClass::Load
    }

    /// Whether this is a store (including `fsd`).
    pub fn is_store(&self) -> bool {
        self.class() == OpClass::Store
    }

    /// Whether this is any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }

    /// Memory access width for loads/stores; `None` otherwise.
    pub fn mem_width(&self) -> Option<MemWidth> {
        use Inst::*;
        match self {
            Lb { .. } | Lbu { .. } | Sb { .. } => Some(MemWidth::Byte),
            Lh { .. } | Lhu { .. } | Sh { .. } => Some(MemWidth::Half),
            Lw { .. } | Sw { .. } => Some(MemWidth::Word),
            Fld { .. } | Fsd { .. } => Some(MemWidth::Double),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Divu { rd, rs1, rs2 } => write!(f, "divu {rd}, {rs1}, {rs2}"),
            Remu { rd, rs1, rs2 } => write!(f, "remu {rd}, {rs1}, {rs2}"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm:#x}"),
            Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm:#x}"),
            Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm:#x}"),
            Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Slli { rd, rs1, sh } => write!(f, "slli {rd}, {rs1}, {sh}"),
            Srli { rd, rs1, sh } => write!(f, "srli {rd}, {rs1}, {sh}"),
            Srai { rd, rs1, sh } => write!(f, "srai {rd}, {rs1}, {sh}"),
            Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Lb { rd, rs1, off } => write!(f, "lb {rd}, {off}({rs1})"),
            Lbu { rd, rs1, off } => write!(f, "lbu {rd}, {off}({rs1})"),
            Lh { rd, rs1, off } => write!(f, "lh {rd}, {off}({rs1})"),
            Lhu { rd, rs1, off } => write!(f, "lhu {rd}, {off}({rs1})"),
            Lw { rd, rs1, off } => write!(f, "lw {rd}, {off}({rs1})"),
            Fld { fd, rs1, off } => write!(f, "fld {fd}, {off}({rs1})"),
            Sb { rs1, rs2, off } => write!(f, "sb {rs2}, {off}({rs1})"),
            Sh { rs1, rs2, off } => write!(f, "sh {rs2}, {off}({rs1})"),
            Sw { rs1, rs2, off } => write!(f, "sw {rs2}, {off}({rs1})"),
            Fsd { rs1, fs2, off } => write!(f, "fsd {fs2}, {off}({rs1})"),
            Fadd { fd, fs1, fs2 } => write!(f, "fadd {fd}, {fs1}, {fs2}"),
            Fsub { fd, fs1, fs2 } => write!(f, "fsub {fd}, {fs1}, {fs2}"),
            Fmul { fd, fs1, fs2 } => write!(f, "fmul {fd}, {fs1}, {fs2}"),
            Fdiv { fd, fs1, fs2 } => write!(f, "fdiv {fd}, {fs1}, {fs2}"),
            Fmov { fd, fs1 } => write!(f, "fmov {fd}, {fs1}"),
            Fcmplt { rd, fs1, fs2 } => write!(f, "fcmplt {rd}, {fs1}, {fs2}"),
            Fcvtif { fd, rs1 } => write!(f, "fcvtif {fd}, {rs1}"),
            Fcvtfi { rd, fs1 } => write!(f, "fcvtfi {rd}, {fs1}"),
            Beq { rs1, rs2, off } => write!(f, "beq {rs1}, {rs2}, {off}"),
            Bne { rs1, rs2, off } => write!(f, "bne {rs1}, {rs2}, {off}"),
            Blt { rs1, rs2, off } => write!(f, "blt {rs1}, {rs2}, {off}"),
            Bge { rs1, rs2, off } => write!(f, "bge {rs1}, {rs2}, {off}"),
            Bltu { rs1, rs2, off } => write!(f, "bltu {rs1}, {rs2}, {off}"),
            Bgeu { rs1, rs2, off } => write!(f, "bgeu {rs1}, {rs2}, {off}"),
            J { off } => write!(f, "j {off}"),
            Jal { off } => write!(f, "jal {off}"),
            Jalr { rd, rs1 } => write!(f, "jalr {rd}, {rs1}"),
            Out { rs1, port } => write!(f, "out {rs1}, {port}"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
            Illegal(w) => write!(f, "illegal {w:#010x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(
            Inst::Mul { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.class(),
            OpClass::IntMul
        );
        assert_eq!(Inst::Lw { rd: Reg::R1, rs1: Reg::R2, off: 0 }.class(), OpClass::Load);
        assert_eq!(
            Inst::Fdiv { fd: FReg::R1, fs1: FReg::R2, fs2: FReg::R3 }.class(),
            OpClass::FpMulDiv
        );
        assert_eq!(Inst::Halt.class(), OpClass::System);
        assert_eq!(Inst::Illegal(0xdead).class(), OpClass::Illegal);
    }

    #[test]
    fn srcs_and_dst() {
        let add = Inst::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 };
        assert_eq!(add.srcs(), [Some(RegRef::Int(Reg::R2)), Some(RegRef::Int(Reg::R3))]);
        assert_eq!(add.dst(), Some(RegRef::Int(Reg::R1)));

        // write to r0 is a no-op
        let addz = Inst::Add { rd: Reg::R0, rs1: Reg::R2, rs2: Reg::R3 };
        assert_eq!(addz.dst(), None);

        let fsd = Inst::Fsd { rs1: Reg::R4, fs2: FReg::R5, off: 8 };
        assert_eq!(fsd.srcs(), [Some(RegRef::Int(Reg::R4)), Some(RegRef::Fp(FReg::R5))]);
        assert_eq!(fsd.dst(), None);

        let jal = Inst::Jal { off: 4 };
        assert_eq!(jal.dst(), Some(RegRef::Int(Reg::R31)));
    }

    #[test]
    fn predicates() {
        assert!(Inst::Lw { rd: Reg::R1, rs1: Reg::R2, off: 0 }.is_load());
        assert!(Inst::Sw { rs1: Reg::R1, rs2: Reg::R2, off: 0 }.is_store());
        assert!(Inst::Beq { rs1: Reg::R1, rs2: Reg::R2, off: 0 }.is_control());
        assert!(Inst::J { off: 1 }.is_control());
        assert!(!Inst::Nop.is_control());
    }

    #[test]
    fn mem_width() {
        assert_eq!(Inst::Lb { rd: Reg::R1, rs1: Reg::R2, off: 0 }.mem_width(), Some(MemWidth::Byte));
        assert_eq!(
            Inst::Fld { fd: FReg::R1, rs1: Reg::R2, off: 0 }.mem_width(),
            Some(MemWidth::Double)
        );
        assert_eq!(Inst::Nop.mem_width(), None);
        assert_eq!(MemWidth::Half.bytes(), 2);
    }

    #[test]
    fn display_smoke() {
        let i = Inst::Lw { rd: Reg::R5, rs1: Reg::R6, off: -4 };
        assert_eq!(i.to_string(), "lw r5, -4(r6)");
        assert_eq!(Inst::Halt.to_string(), "halt");
    }
}
