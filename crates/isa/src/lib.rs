//! A small 32-bit RISC ISA used by the `secsim` secure-processor simulator.
//!
//! The ISA plays the role that Alpha played for SimpleScalar in the paper:
//! a concrete instruction encoding that workloads are compiled to and that
//! the out-of-order pipeline executes. A *real* bit-level encoding matters
//! here — the memory-fetch side-channel exploits of the paper work by
//! flipping bits of encrypted instruction words (counter-mode malleability)
//! so that they decrypt to attacker-chosen instructions.
//!
//! The crate provides:
//!
//! * [`Reg`] / [`FReg`] — integer and floating-point register names.
//! * [`Inst`] — the instruction set, with [`Inst::class`] for functional
//!   unit selection and [`Inst::srcs`]/[`Inst::dst`] for dependence
//!   analysis in the pipeline.
//! * [`encode`] / [`decode`] — exact 32-bit encoding round trip.
//! * [`Asm`] — a label-based assembler / program builder.
//! * [`ArchState`] + [`step`] — functional (oracle) semantics.
//! * [`MemIo`] / [`FlatMem`] — the byte-addressed memory interface.
//!
//! # Examples
//!
//! Assemble and run a loop that sums `1..=10`:
//!
//! ```
//! use secsim_isa::{Asm, ArchState, FlatMem, Reg, step};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1000);
//! let loop_top = a.new_label();
//! a.addi(Reg::R1, Reg::R0, 10); // counter
//! a.addi(Reg::R2, Reg::R0, 0);  // sum
//! a.bind(loop_top)?;
//! a.add(Reg::R2, Reg::R2, Reg::R1);
//! a.addi(Reg::R1, Reg::R1, -1);
//! a.bne(Reg::R1, Reg::R0, loop_top);
//! a.halt();
//! let words = a.assemble()?;
//!
//! let mut mem = FlatMem::new(0x1000, 64 * 1024);
//! mem.load_words(0x1000, &words);
//! let mut st = ArchState::new(0x1000);
//! while !st.halted {
//!     step(&mut st, &mut mem)?;
//! }
//! assert_eq!(st.reg(Reg::R2), 55);
//! # Ok(())
//! # }
//! ```

mod asm;
mod encode;
mod exec;
mod inst;
mod mem;
mod parse;
mod reg;

pub use asm::{Asm, AsmError, Label};
pub use encode::{decode, disassemble, encode};
pub use exec::{step, step_decoded, ArchState, Fault, MemAccess, StepInfo};
pub use inst::{Inst, MemWidth, OpClass, RegRef};
pub use mem::{FlatMem, MemIo};
pub use parse::{assemble_text, ParseError};
pub use reg::{FReg, Reg};
