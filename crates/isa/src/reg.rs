use std::fmt;

macro_rules! regfile {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum $name {
            R0 = 0, R1, R2, R3, R4, R5, R6, R7,
            R8, R9, R10, R11, R12, R13, R14, R15,
            R16, R17, R18, R19, R20, R21, R22, R23,
            R24, R25, R26, R27, R28, R29, R30, R31,
        }

        impl $name {
            /// All 32 registers in index order.
            pub const ALL: [$name; 32] = [
                $name::R0, $name::R1, $name::R2, $name::R3, $name::R4,
                $name::R5, $name::R6, $name::R7, $name::R8, $name::R9,
                $name::R10, $name::R11, $name::R12, $name::R13, $name::R14,
                $name::R15, $name::R16, $name::R17, $name::R18, $name::R19,
                $name::R20, $name::R21, $name::R22, $name::R23, $name::R24,
                $name::R25, $name::R26, $name::R27, $name::R28, $name::R29,
                $name::R30, $name::R31,
            ];

            /// The register's index, 0..=31.
            pub fn index(self) -> usize {
                self as usize
            }

            /// Builds a register from a 5-bit field value.
            ///
            /// # Panics
            ///
            /// Panics if `i >= 32`.
            pub fn from_index(i: u32) -> Self {
                Self::ALL[i as usize]
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.index())
            }
        }
    };
}

regfile!(
    /// An integer register name, `r0`..`r31`.
    ///
    /// `r0` is hardwired to zero: reads return 0 and writes are discarded,
    /// exactly like MIPS/Alpha `$zero`.
    ///
    /// # Examples
    ///
    /// ```
    /// use secsim_isa::Reg;
    /// assert_eq!(Reg::R7.index(), 7);
    /// assert_eq!(Reg::from_index(7), Reg::R7);
    /// assert_eq!(Reg::R7.to_string(), "r7");
    /// ```
    Reg,
    "r"
);

regfile!(
    /// A floating-point register name, `f0`..`f31` (each holds an `f64`).
    ///
    /// # Examples
    ///
    /// ```
    /// use secsim_isa::FReg;
    /// assert_eq!(FReg::R3.to_string(), "f3");
    /// ```
    FReg,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..32 {
            assert_eq!(Reg::from_index(i).index(), i as usize);
            assert_eq!(FReg::from_index(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = Reg::from_index(32);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R31.to_string(), "r31");
        assert_eq!(FReg::R15.to_string(), "f15");
    }

    #[test]
    fn all_has_32_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = Reg::ALL.iter().collect();
        assert_eq!(set.len(), 32);
    }
}
