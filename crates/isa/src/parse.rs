//! A text assembler: parses the same syntax [`Inst`]'s
//! [`Display`](std::fmt::Display) prints, plus labels, comments and the
//! `li`/`ret` pseudo-instructions.
//!
//! # Grammar
//!
//! * one instruction per line; `#` or `;` start a comment;
//! * `name:` on its own (or before an instruction) binds a label;
//! * branch/jump targets may be labels or numeric word offsets;
//! * loads/stores use `lw r1, -4(r2)` addressing;
//! * immediates accept decimal and `0x…` hexadecimal.
//!
//! # Examples
//!
//! ```
//! use secsim_isa::assemble_text;
//!
//! let words = assemble_text(
//!     "
//!     li   r1, 10        # counter
//!     li   r2, 0         ; sum
//! top:
//!     add  r2, r2, r1
//!     addi r1, r1, -1
//!     bne  r1, r0, top
//!     halt
//!     ",
//!     0x1000,
//! ).unwrap();
//! assert!(words.len() >= 6);
//! ```

use crate::asm::{Asm, AsmError, Label};
use crate::inst::Inst;
use crate::reg::{FReg, Reg};
use std::collections::HashMap;
use std::fmt;

/// Errors from the text assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unknown mnemonic.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The offending mnemonic.
        mnemonic: String,
    },
    /// Malformed operands for a known mnemonic.
    BadOperands {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// 1-based source line.
        line: usize,
        /// The label name.
        name: String,
    },
    /// Label resolution / offset-range error from the underlying
    /// assembler.
    Assemble(AsmError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnknownMnemonic { line, mnemonic } => {
                write!(f, "line {line}: unknown mnemonic `{mnemonic}`")
            }
            ParseError::BadOperands { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::DuplicateLabel { line, name } => {
                write!(f, "line {line}: label `{name}` defined twice")
            }
            ParseError::Assemble(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError::Assemble(e)
    }
}

fn bad(line: usize, reason: impl Into<String>) -> ParseError {
    ParseError::BadOperands { line, reason: reason.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let idx = tok
        .strip_prefix('r')
        .and_then(|n| n.parse::<u32>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| bad(line, format!("expected integer register, got `{tok}`")))?;
    Ok(Reg::from_index(idx))
}

fn parse_freg(tok: &str, line: usize) -> Result<FReg, ParseError> {
    let idx = tok
        .strip_prefix('f')
        .and_then(|n| n.parse::<u32>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| bad(line, format!("expected FP register, got `{tok}`")))?;
    Ok(FReg::from_index(idx))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, ParseError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| bad(line, format!("expected number, got `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

fn as_i16(v: i64, line: usize) -> Result<i16, ParseError> {
    i16::try_from(v).map_err(|_| bad(line, format!("immediate {v} out of i16 range")))
}

fn as_u16(v: i64, line: usize) -> Result<u16, ParseError> {
    if (0..=0xFFFF).contains(&v) {
        Ok(v as u16)
    } else if (-0x8000..0).contains(&v) {
        Ok(v as i16 as u16)
    } else {
        Err(bad(line, format!("immediate {v} out of 16-bit range")))
    }
}

/// `off(base)` addressing.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, i16), ParseError> {
    let open = tok.find('(').ok_or_else(|| bad(line, format!("expected `off(reg)`, got `{tok}`")))?;
    let close =
        tok.rfind(')').filter(|&c| c > open).ok_or_else(|| bad(line, "unclosed parenthesis"))?;
    let off = if open == 0 { 0 } else { as_i16(parse_int(&tok[..open], line)?, line)? };
    let base = parse_reg(&tok[open + 1..close], line)?;
    Ok((base, off))
}

enum Target {
    Label(String),
    Offset(i32),
}

fn parse_target(tok: &str, line: usize) -> Target {
    match parse_int(tok, line) {
        Ok(v) => Target::Offset(v as i32),
        Err(_) => Target::Label(tok.to_string()),
    }
}

/// Assembles `source` at `base`, returning instruction words.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending line, or a
/// wrapped [`AsmError`] for unresolved labels / out-of-range offsets.
pub fn assemble_text(source: &str, base: u32) -> Result<Vec<u32>, ParseError> {
    let mut a = Asm::new(base);
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut bound: HashMap<String, usize> = HashMap::new();

    // Helper shared by both passes.
    fn intern(a: &mut Asm, labels: &mut HashMap<String, Label>, name: &str) -> Label {
        if let Some(l) = labels.get(name) {
            return *l;
        }
        let l = a.new_label();
        labels.insert(name.to_string(), l);
        l
    }

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(p) = text.find(['#', ';']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Label definitions (possibly followed by an instruction).
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(bad(line, "malformed label"));
            }
            if bound.contains_key(name) {
                return Err(ParseError::DuplicateLabel { line, name: name.to_string() });
            }
            let l = intern(&mut a, &mut labels, name);
            a.bind(l)?;
            bound.insert(name.to_string(), line);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let nops = ops.len();
        let want = |n: usize| -> Result<(), ParseError> {
            if nops == n {
                Ok(())
            } else {
                Err(bad(line, format!("`{mnemonic}` wants {n} operands, got {nops}")))
            }
        };

        macro_rules! rrr {
            ($v:ident) => {{
                want(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let rs2 = parse_reg(ops[2], line)?;
                a.push(Inst::$v { rd, rs1, rs2 });
            }};
        }
        macro_rules! fff {
            ($v:ident) => {{
                want(3)?;
                let fd = parse_freg(ops[0], line)?;
                let fs1 = parse_freg(ops[1], line)?;
                let fs2 = parse_freg(ops[2], line)?;
                a.push(Inst::$v { fd, fs1, fs2 });
            }};
        }
        macro_rules! load {
            ($v:ident) => {{
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let (rs1, off) = parse_mem_operand(ops[1], line)?;
                a.push(Inst::$v { rd, rs1, off });
            }};
        }
        macro_rules! store {
            ($v:ident) => {{
                want(2)?;
                let rs2 = parse_reg(ops[0], line)?;
                let (rs1, off) = parse_mem_operand(ops[1], line)?;
                a.push(Inst::$v { rs1, rs2, off });
            }};
        }
        macro_rules! branch {
            ($m:ident) => {{
                want(3)?;
                let rs1 = parse_reg(ops[0], line)?;
                let rs2 = parse_reg(ops[1], line)?;
                match parse_target(ops[2], line) {
                    Target::Label(name) => {
                        let l = intern(&mut a, &mut labels, &name);
                        a.$m(rs1, rs2, l);
                    }
                    Target::Offset(off) => {
                        a.push(branch_inst(stringify!($m), rs1, rs2, as_i16(off as i64, line)?));
                    }
                }
            }};
        }
        macro_rules! shift {
            ($v:ident) => {{
                want(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let sh = parse_int(ops[2], line)?;
                if !(0..32).contains(&sh) {
                    return Err(bad(line, format!("shift amount {sh} out of range")));
                }
                a.push(Inst::$v { rd, rs1, sh: sh as u8 });
            }};
        }

        match mnemonic {
            "add" => rrr!(Add),
            "sub" => rrr!(Sub),
            "and" => rrr!(And),
            "or" => rrr!(Or),
            "xor" => rrr!(Xor),
            "sll" => rrr!(Sll),
            "srl" => rrr!(Srl),
            "sra" => rrr!(Sra),
            "slt" => rrr!(Slt),
            "sltu" => rrr!(Sltu),
            "mul" => rrr!(Mul),
            "divu" => rrr!(Divu),
            "remu" => rrr!(Remu),
            "addi" | "slti" => {
                want(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let imm = as_i16(parse_int(ops[2], line)?, line)?;
                a.push(if mnemonic == "addi" {
                    Inst::Addi { rd, rs1, imm }
                } else {
                    Inst::Slti { rd, rs1, imm }
                });
            }
            "andi" | "ori" | "xori" => {
                want(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let imm = as_u16(parse_int(ops[2], line)?, line)?;
                a.push(match mnemonic {
                    "andi" => Inst::Andi { rd, rs1, imm },
                    "ori" => Inst::Ori { rd, rs1, imm },
                    _ => Inst::Xori { rd, rs1, imm },
                });
            }
            "slli" => shift!(Slli),
            "srli" => shift!(Srli),
            "srai" => shift!(Srai),
            "lui" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let imm = as_u16(parse_int(ops[1], line)?, line)?;
                a.push(Inst::Lui { rd, imm });
            }
            "li" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let v = parse_int(ops[1], line)?;
                if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
                    return Err(bad(line, format!("li constant {v} out of 32-bit range")));
                }
                a.li(rd, v as u32);
            }
            "lb" => load!(Lb),
            "lbu" => load!(Lbu),
            "lh" => load!(Lh),
            "lhu" => load!(Lhu),
            "lw" => load!(Lw),
            "sb" => store!(Sb),
            "sh" => store!(Sh),
            "sw" => store!(Sw),
            "fld" => {
                want(2)?;
                let fd = parse_freg(ops[0], line)?;
                let (rs1, off) = parse_mem_operand(ops[1], line)?;
                a.push(Inst::Fld { fd, rs1, off });
            }
            "fsd" => {
                want(2)?;
                let fs2 = parse_freg(ops[0], line)?;
                let (rs1, off) = parse_mem_operand(ops[1], line)?;
                a.push(Inst::Fsd { rs1, fs2, off });
            }
            "fadd" => fff!(Fadd),
            "fsub" => fff!(Fsub),
            "fmul" => fff!(Fmul),
            "fdiv" => fff!(Fdiv),
            "fmov" => {
                want(2)?;
                let fd = parse_freg(ops[0], line)?;
                let fs1 = parse_freg(ops[1], line)?;
                a.push(Inst::Fmov { fd, fs1 });
            }
            "fcmplt" => {
                want(3)?;
                let rd = parse_reg(ops[0], line)?;
                let fs1 = parse_freg(ops[1], line)?;
                let fs2 = parse_freg(ops[2], line)?;
                a.push(Inst::Fcmplt { rd, fs1, fs2 });
            }
            "fcvtif" => {
                want(2)?;
                let fd = parse_freg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                a.push(Inst::Fcvtif { fd, rs1 });
            }
            "fcvtfi" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let fs1 = parse_freg(ops[1], line)?;
                a.push(Inst::Fcvtfi { rd, fs1 });
            }
            "beq" => branch!(beq),
            "bne" => branch!(bne),
            "blt" => branch!(blt),
            "bge" => branch!(bge),
            "bltu" => branch!(bltu),
            "bgeu" => branch!(bgeu),
            "j" | "jal" => {
                want(1)?;
                match parse_target(ops[0], line) {
                    Target::Label(name) => {
                        let l = intern(&mut a, &mut labels, &name);
                        if mnemonic == "j" {
                            a.j(l);
                        } else {
                            a.jal(l);
                        }
                    }
                    Target::Offset(off) => {
                        a.push(if mnemonic == "j" {
                            Inst::J { off }
                        } else {
                            Inst::Jal { off }
                        });
                    }
                }
            }
            "jalr" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                a.push(Inst::Jalr { rd, rs1 });
            }
            "ret" => {
                want(0)?;
                a.ret();
            }
            "out" => {
                want(2)?;
                let rs1 = parse_reg(ops[0], line)?;
                let port = parse_int(ops[1], line)?;
                if !(0..256).contains(&port) {
                    return Err(bad(line, format!("port {port} out of range")));
                }
                a.push(Inst::Out { rs1, port: port as u8 });
            }
            "halt" => {
                want(0)?;
                a.halt();
            }
            "nop" => {
                want(0)?;
                a.nop();
            }
            other => {
                return Err(ParseError::UnknownMnemonic { line, mnemonic: other.to_string() })
            }
        }
    }
    Ok(a.assemble()?)
}

fn branch_inst(m: &str, rs1: Reg, rs2: Reg, off: i16) -> Inst {
    match m {
        "beq" => Inst::Beq { rs1, rs2, off },
        "bne" => Inst::Bne { rs1, rs2, off },
        "blt" => Inst::Blt { rs1, rs2, off },
        "bge" => Inst::Bge { rs1, rs2, off },
        "bltu" => Inst::Bltu { rs1, rs2, off },
        _ => Inst::Bgeu { rs1, rs2, off },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{decode, encode};
    use crate::exec::{step, ArchState};
    use crate::mem::FlatMem;

    fn run(words: &[u32], base: u32) -> ArchState {
        let mut mem = FlatMem::new(base & !0xFFF, 1 << 16);
        mem.load_words(base, words);
        let mut st = ArchState::new(base);
        for _ in 0..100_000 {
            if st.halted {
                break;
            }
            step(&mut st, &mut mem).expect("valid code");
        }
        assert!(st.halted);
        st
    }

    #[test]
    fn sum_loop_from_text() {
        let words = assemble_text(
            "
            li r1, 100
            li r2, 0
        top: add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, top
            halt
            ",
            0x1000,
        )
        .expect("assembles");
        let st = run(&words, 0x1000);
        assert_eq!(st.reg(Reg::R2), 5050);
    }

    #[test]
    fn memory_and_calls() {
        let words = assemble_text(
            "
            li   r1, 0x2000
            li   r2, 0xABCD
            sw   r2, 4(r1)
            lw   r3, 4(r1)
            jal  double
            out  r3, 1
            halt
        double:
            add  r3, r3, r3
            ret
            ",
            0x1000,
        )
        .expect("assembles");
        let st = run(&words, 0x1000);
        assert_eq!(st.reg(Reg::R3), 0xABCD * 2);
    }

    #[test]
    fn display_parse_round_trip() {
        // Every printable non-control instruction re-parses to itself.
        let insts = [
            Inst::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 },
            Inst::Addi { rd: Reg::R4, rs1: Reg::R5, imm: -77 },
            Inst::Andi { rd: Reg::R4, rs1: Reg::R5, imm: 0xFACE },
            Inst::Slli { rd: Reg::R1, rs1: Reg::R2, sh: 13 },
            Inst::Lui { rd: Reg::R7, imm: 0xBEEF },
            Inst::Lw { rd: Reg::R1, rs1: Reg::R2, off: -8 },
            Inst::Sb { rs1: Reg::R3, rs2: Reg::R4, off: 17 },
            Inst::Fadd { fd: FReg::R1, fs1: FReg::R2, fs2: FReg::R3 },
            Inst::Fld { fd: FReg::R9, rs1: Reg::R8, off: 16 },
            Inst::Fsd { rs1: Reg::R8, fs2: FReg::R9, off: -16 },
            Inst::Fcmplt { rd: Reg::R2, fs1: FReg::R3, fs2: FReg::R4 },
            Inst::Fcvtif { fd: FReg::R1, rs1: Reg::R2 },
            Inst::Fcvtfi { rd: Reg::R1, fs1: FReg::R2 },
            Inst::Beq { rs1: Reg::R1, rs2: Reg::R2, off: -6 },
            Inst::J { off: 42 },
            Inst::Jalr { rd: Reg::R1, rs1: Reg::R31 },
            Inst::Out { rs1: Reg::R1, port: 3 },
            Inst::Halt,
            Inst::Nop,
        ];
        for inst in insts {
            let text = inst.to_string();
            let words = assemble_text(&text, 0)
                .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
            assert_eq!(words.len(), 1, "`{text}`");
            assert_eq!(decode(words[0]), inst, "`{text}`");
            assert_eq!(words[0], encode(inst));
        }
    }

    #[test]
    fn errors_are_informative() {
        assert!(matches!(
            assemble_text("frobnicate r1", 0),
            Err(ParseError::UnknownMnemonic { line: 1, .. })
        ));
        assert!(matches!(assemble_text("add r1, r2", 0), Err(ParseError::BadOperands { .. })));
        assert!(matches!(
            assemble_text("addi r1, r2, 99999", 0),
            Err(ParseError::BadOperands { .. })
        ));
        assert!(matches!(
            assemble_text("x: nop\nx: nop", 0),
            Err(ParseError::DuplicateLabel { line: 2, .. })
        ));
        assert!(matches!(
            assemble_text("j nowhere", 0),
            Err(ParseError::Assemble(AsmError::UnboundLabel(_)))
        ));
        assert!(matches!(assemble_text("lw r1, r2", 0), Err(ParseError::BadOperands { .. })));
    }

    #[test]
    fn comments_and_blank_lines() {
        let words = assemble_text(
            "# leading comment\n\n  nop ; trailing\n  halt # done\n",
            0,
        )
        .expect("assembles");
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let words = assemble_text("addi r1, r0, -0x10\nhalt", 0).expect("assembles");
        assert_eq!(decode(words[0]), Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: -16 });
    }

    #[test]
    fn label_on_same_line_and_forward() {
        let st = run(
            &assemble_text(
                "
                j skip
                addi r1, r0, 99   # never runs
            skip: addi r1, r0, 7
                halt
                ",
                0x2000,
            )
            .expect("assembles"),
            0x2000,
        );
        assert_eq!(st.reg(Reg::R1), 7);
    }
}
