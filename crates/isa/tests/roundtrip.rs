//! Exhaustive encode/decode round-trip properties.
//!
//! Three layers:
//!
//! 1. **Canonical round trip** — every instruction form, enumerated over
//!    boundary register/immediate values, satisfies
//!    `decode(encode(i)) == i` (and therefore re-encodes
//!    byte-identically).
//! 2. **Total, idempotent decode** — every 32-bit word decodes without
//!    panicking, and one encode/decode canonicalization step is a fixed
//!    point: `decode(encode(decode(w))) == decode(w)` and
//!    `encode(decode(c)) == c` for the canonical word `c`. (Plain
//!    `encode(decode(w)) == w` does NOT hold for arbitrary words — the
//!    decode is hardware-style lenient and ignores unused fields, which
//!    is exactly the malleability the paper's exploits rely on.)
//! 3. **Deterministic fault** — invalid encodings decode to
//!    `Inst::Illegal` and *executing* them yields `Fault`, never a
//!    panic; `Illegal` words re-encode verbatim.

use secsim_isa::{decode, encode, step, ArchState, Fault, FlatMem, FReg, Inst, MemIo, Reg};

const REGS: [Reg; 4] = [Reg::R0, Reg::R1, Reg::R15, Reg::R31];
const FREGS: [FReg; 4] = [FReg::R0, FReg::R1, FReg::R15, FReg::R31];
const I16S: [i16; 5] = [i16::MIN, -1, 0, 1, i16::MAX];
const U16S: [u16; 5] = [0, 1, 0x00FF, 0xABCD, 0xFFFF];
const SHIFTS: [u8; 4] = [0, 1, 15, 31];

/// Every canonical instruction over boundary operand values.
fn all_canonical() -> Vec<Inst> {
    let mut v = vec![Inst::Nop, Inst::Halt];
    for rd in REGS {
        for rs1 in REGS {
            for rs2 in REGS {
                v.extend([
                    Inst::Add { rd, rs1, rs2 },
                    Inst::Sub { rd, rs1, rs2 },
                    Inst::And { rd, rs1, rs2 },
                    Inst::Or { rd, rs1, rs2 },
                    Inst::Xor { rd, rs1, rs2 },
                    Inst::Sll { rd, rs1, rs2 },
                    Inst::Srl { rd, rs1, rs2 },
                    Inst::Sra { rd, rs1, rs2 },
                    Inst::Slt { rd, rs1, rs2 },
                    Inst::Sltu { rd, rs1, rs2 },
                    Inst::Mul { rd, rs1, rs2 },
                    Inst::Divu { rd, rs1, rs2 },
                    Inst::Remu { rd, rs1, rs2 },
                ]);
            }
            for imm in I16S {
                v.extend([
                    Inst::Addi { rd, rs1, imm },
                    Inst::Slti { rd, rs1, imm },
                    Inst::Lb { rd, rs1, off: imm },
                    Inst::Lbu { rd, rs1, off: imm },
                    Inst::Lh { rd, rs1, off: imm },
                    Inst::Lhu { rd, rs1, off: imm },
                    Inst::Lw { rd, rs1, off: imm },
                    Inst::Sb { rs1, rs2: rd, off: imm },
                    Inst::Sh { rs1, rs2: rd, off: imm },
                    Inst::Sw { rs1, rs2: rd, off: imm },
                    Inst::Beq { rs1, rs2: rd, off: imm },
                    Inst::Bne { rs1, rs2: rd, off: imm },
                    Inst::Blt { rs1, rs2: rd, off: imm },
                    Inst::Bge { rs1, rs2: rd, off: imm },
                    Inst::Bltu { rs1, rs2: rd, off: imm },
                    Inst::Bgeu { rs1, rs2: rd, off: imm },
                ]);
            }
            for imm in U16S {
                v.extend([
                    Inst::Andi { rd, rs1, imm },
                    Inst::Ori { rd, rs1, imm },
                    Inst::Xori { rd, rs1, imm },
                ]);
            }
            for sh in SHIFTS {
                v.extend([
                    Inst::Slli { rd, rs1, sh },
                    Inst::Srli { rd, rs1, sh },
                    Inst::Srai { rd, rs1, sh },
                ]);
            }
            v.push(Inst::Jalr { rd, rs1 });
        }
        for imm in U16S {
            v.push(Inst::Lui { rd, imm });
        }
    }
    for fd in FREGS {
        for fs1 in FREGS {
            for fs2 in FREGS {
                v.extend([
                    Inst::Fadd { fd, fs1, fs2 },
                    Inst::Fsub { fd, fs1, fs2 },
                    Inst::Fmul { fd, fs1, fs2 },
                    Inst::Fdiv { fd, fs1, fs2 },
                ]);
            }
            v.push(Inst::Fmov { fd, fs1 });
        }
        for r in REGS {
            v.push(Inst::Fcvtif { fd, rs1: r });
            for off in I16S {
                v.push(Inst::Fld { fd, rs1: r, off });
                v.push(Inst::Fsd { rs1: r, fs2: fd, off });
            }
        }
    }
    for rd in REGS {
        for fs1 in FREGS {
            v.push(Inst::Fcvtfi { rd, fs1 });
            for fs2 in FREGS {
                v.push(Inst::Fcmplt { rd, fs1, fs2 });
            }
        }
    }
    for off in [-(1 << 25), -1, 0, 1, (1 << 25) - 1] {
        v.push(Inst::J { off });
        v.push(Inst::Jal { off });
    }
    for rs1 in REGS {
        for port in [0u8, 1, 127, 255] {
            v.push(Inst::Out { rs1, port });
        }
    }
    v
}

#[test]
fn every_canonical_form_round_trips_byte_identically() {
    let all = all_canonical();
    assert!(all.len() > 2000, "enumeration too small: {}", all.len());
    for i in all {
        let w = encode(i);
        let d = decode(w);
        assert_eq!(d, i, "decode(encode({i:?})) = {d:?}");
        assert_eq!(encode(d), w, "re-encode of {i:?} changed bytes");
    }
}

#[test]
fn canonical_words_are_distinct_per_form() {
    // Sanity against silent aliasing: no two distinct canonical
    // instructions may share an encoding.
    let all = all_canonical();
    let mut seen = std::collections::HashMap::new();
    for i in all {
        if let Some(prev) = seen.insert(encode(i), i) {
            // R0-hardwired forms can legitimately collide only if the
            // *instructions* are equal; anything else is an encoder bug.
            assert_eq!(prev, i, "{prev:?} and {i:?} share word {:#010x}", encode(i));
        }
    }
}

/// SplitMix64, inlined to keep this crate dependency-free.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn decode_is_total_and_canonicalization_is_idempotent() {
    let mut rng = Rng(0x0DDC_0FFE);
    let mut words: Vec<u32> = (0..200_000).map(|_| rng.next() as u32).collect();
    // All opcodes × interesting field patterns, including every funct
    // value of the two R-type opcodes.
    for opc in 0..64u32 {
        for low in [0, 1, 0x7FF, 0xFFFF, 0x03FF_FFFF, 0x021F_83FF] {
            words.push((opc << 26) | low);
        }
        for fct in 0..32u32 {
            words.push((opc << 26) | (3 << 21) | (5 << 16) | (7 << 11) | fct);
        }
    }
    for w in words {
        let i = decode(w); // must not panic
        let c = encode(i);
        assert_eq!(decode(c), i, "canonicalization of {w:#010x} not idempotent");
        assert_eq!(encode(decode(c)), c, "{c:#010x} is canonical but re-encodes differently");
    }
}

#[test]
fn unassigned_opcodes_decode_to_illegal_and_fault_deterministically() {
    let unassigned: Vec<u32> =
        (0..64).filter(|o| matches!(o, 0x07 | 0x0C..=0x0F | 0x1B..=0x1F | 0x29..=0x2F | 0x31..=0x3E)).collect();
    assert_eq!(unassigned.len(), 64 - 33, "opcode map changed — update this test");
    for opc in unassigned {
        let w = (opc << 26) | 0x0012_3456;
        let i = decode(w);
        assert_eq!(i, Inst::Illegal(w), "opcode {opc:#x}");
        assert_eq!(encode(i), w, "Illegal must re-encode verbatim");

        // Executing the invalid encoding is a deterministic fault, not
        // a panic, and leaves the architectural state unmoved.
        let mut mem = FlatMem::new(0x1000, 4096);
        mem.write_u32(0x1000, w);
        let mut st = ArchState::new(0x1000);
        let before = st.clone();
        let r1 = step(&mut st, &mut mem);
        match r1 {
            Err(Fault::IllegalInstruction { pc, word }) => {
                assert_eq!((pc, word), (0x1000, w));
            }
            other => panic!("opcode {opc:#x}: expected IllegalInstruction, got {other:?}"),
        }
        assert_eq!(st, before, "fault must not advance state");
        // …and faulting again gives the identical fault (deterministic).
        let r2 = step(&mut st, &mut mem);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }
}

#[test]
fn bad_funct_fields_are_illegal_not_aliased() {
    for fct in 13..32u32 {
        let w = (0x01 << 26) | fct; // INT_R with out-of-range funct
        assert_eq!(decode(w), Inst::Illegal(w));
    }
    for fct in 8..32u32 {
        let w = (0x1A << 26) | fct; // FP_R with out-of-range funct
        assert_eq!(decode(w), Inst::Illegal(w));
    }
}
