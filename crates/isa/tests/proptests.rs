//! Property-based tests for the ISA: encode/decode round trips and
//! interpreter invariants.

// Gated behind the `proptest` cargo feature: the external `proptest`
// crate is not available in offline builds. See this crate's Cargo.toml
// for how to enable it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use secsim_isa::{decode, encode, step, ArchState, FReg, FlatMem, Inst, MemIo, Reg};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::from_index)
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u32..32).prop_map(FReg::from_index)
}

/// All valid (non-`Illegal`) instructions.
fn any_inst() -> impl Strategy<Value = Inst> {
    let r = any_reg;
    let f = any_freg;
    prop_oneof![
        (r(), r(), r(), 0u8..13).prop_map(|(rd, rs1, rs2, k)| match k {
            0 => Inst::Add { rd, rs1, rs2 },
            1 => Inst::Sub { rd, rs1, rs2 },
            2 => Inst::And { rd, rs1, rs2 },
            3 => Inst::Or { rd, rs1, rs2 },
            4 => Inst::Xor { rd, rs1, rs2 },
            5 => Inst::Sll { rd, rs1, rs2 },
            6 => Inst::Srl { rd, rs1, rs2 },
            7 => Inst::Sra { rd, rs1, rs2 },
            8 => Inst::Slt { rd, rs1, rs2 },
            9 => Inst::Sltu { rd, rs1, rs2 },
            10 => Inst::Mul { rd, rs1, rs2 },
            11 => Inst::Divu { rd, rs1, rs2 },
            _ => Inst::Remu { rd, rs1, rs2 },
        }),
        (r(), r(), any::<i16>(), 0u8..2).prop_map(|(rd, rs1, imm, k)| match k {
            0 => Inst::Addi { rd, rs1, imm },
            _ => Inst::Slti { rd, rs1, imm },
        }),
        (r(), r(), any::<u16>(), 0u8..3).prop_map(|(rd, rs1, imm, k)| match k {
            0 => Inst::Andi { rd, rs1, imm },
            1 => Inst::Ori { rd, rs1, imm },
            _ => Inst::Xori { rd, rs1, imm },
        }),
        (r(), r(), 0u8..32, 0u8..3).prop_map(|(rd, rs1, sh, k)| match k {
            0 => Inst::Slli { rd, rs1, sh },
            1 => Inst::Srli { rd, rs1, sh },
            _ => Inst::Srai { rd, rs1, sh },
        }),
        (r(), any::<u16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (r(), r(), any::<i16>(), 0u8..5).prop_map(|(rd, rs1, off, k)| match k {
            0 => Inst::Lb { rd, rs1, off },
            1 => Inst::Lbu { rd, rs1, off },
            2 => Inst::Lh { rd, rs1, off },
            3 => Inst::Lhu { rd, rs1, off },
            _ => Inst::Lw { rd, rs1, off },
        }),
        (f(), r(), any::<i16>()).prop_map(|(fd, rs1, off)| Inst::Fld { fd, rs1, off }),
        (r(), r(), any::<i16>(), 0u8..3).prop_map(|(rs1, rs2, off, k)| match k {
            0 => Inst::Sb { rs1, rs2, off },
            1 => Inst::Sh { rs1, rs2, off },
            _ => Inst::Sw { rs1, rs2, off },
        }),
        (r(), f(), any::<i16>()).prop_map(|(rs1, fs2, off)| Inst::Fsd { rs1, fs2, off }),
        (f(), f(), f(), 0u8..4).prop_map(|(fd, fs1, fs2, k)| match k {
            0 => Inst::Fadd { fd, fs1, fs2 },
            1 => Inst::Fsub { fd, fs1, fs2 },
            2 => Inst::Fmul { fd, fs1, fs2 },
            _ => Inst::Fdiv { fd, fs1, fs2 },
        }),
        (f(), f()).prop_map(|(fd, fs1)| Inst::Fmov { fd, fs1 }),
        (r(), f(), f()).prop_map(|(rd, fs1, fs2)| Inst::Fcmplt { rd, fs1, fs2 }),
        (f(), r()).prop_map(|(fd, rs1)| Inst::Fcvtif { fd, rs1 }),
        (r(), f()).prop_map(|(rd, fs1)| Inst::Fcvtfi { rd, fs1 }),
        (r(), r(), any::<i16>(), 0u8..6).prop_map(|(rs1, rs2, off, k)| match k {
            0 => Inst::Beq { rs1, rs2, off },
            1 => Inst::Bne { rs1, rs2, off },
            2 => Inst::Blt { rs1, rs2, off },
            3 => Inst::Bge { rs1, rs2, off },
            4 => Inst::Bltu { rs1, rs2, off },
            _ => Inst::Bgeu { rs1, rs2, off },
        }),
        ((-(1i32 << 25))..(1i32 << 25)).prop_map(|off| Inst::J { off }),
        ((-(1i32 << 25))..(1i32 << 25)).prop_map(|off| Inst::Jal { off }),
        (r(), r()).prop_map(|(rd, rs1)| Inst::Jalr { rd, rs1 }),
        (r(), any::<u8>()).prop_map(|(rs1, port)| Inst::Out { rs1, port }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every valid instruction.
    #[test]
    fn encode_decode_round_trip(inst in any_inst()) {
        prop_assert_eq!(decode(encode(inst)), inst);
    }

    /// Decoding any 32-bit word never panics, and re-encoding a decoded
    /// valid instruction reproduces a word that decodes identically
    /// (decode is a retraction of encode).
    #[test]
    fn decode_total_and_stable(word in any::<u32>()) {
        let inst = decode(word);
        let re = decode(encode(inst));
        prop_assert_eq!(re, inst);
    }

    /// Executing any decodable word on a random register state never
    /// panics and always either advances or halts/faults precisely.
    #[test]
    fn step_never_panics(word in any::<u32>(), seed in any::<u64>()) {
        let mut mem = FlatMem::new(0, 4096);
        mem.write_u32(0, word);
        let mut st = ArchState::new(0);
        // scatter some register values
        let mut x = seed | 1;
        for r in Reg::ALL.iter().skip(1) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            st.set_reg(*r, (x >> 16) as u32);
        }
        match step(&mut st, &mut mem) {
            Ok(info) => {
                prop_assert_eq!(info.pc, 0);
                if !st.halted {
                    prop_assert_eq!(st.pc, info.next_pc);
                    prop_assert_eq!(st.icount, 1);
                }
            }
            Err(fault) => {
                // precise fault: nothing retired, pc unchanged
                prop_assert_eq!(st.pc, 0);
                prop_assert_eq!(st.icount, 0);
                let _ = fault;
            }
        }
    }

    /// r0 stays zero under arbitrary single-instruction execution.
    #[test]
    fn r0_is_immutable(word in any::<u32>()) {
        let mut mem = FlatMem::new(0, 4096);
        mem.write_u32(0, word);
        let mut st = ArchState::new(0);
        let _ = step(&mut st, &mut mem);
        prop_assert_eq!(st.reg(Reg::R0), 0);
    }
}

proptest! {
    /// The text assembler inverts `Display` for every printable
    /// instruction: `assemble_text(inst.to_string()) == [encode(inst)]`.
    #[test]
    fn display_assemble_round_trip(inst in any_inst()) {
        // `li` is a pseudo-op, not a printable form; all real
        // instructions print in parseable syntax.
        let text = inst.to_string();
        let words = secsim_isa::assemble_text(&text, 0)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(words.len(), 1);
        prop_assert_eq!(words[0], encode(inst), "text was `{}`", text);
    }
}
