//! The content-addressed simulation-result store.
//!
//! `results/cache/` grew up: what used to be ad-hoc per-sweep JSON
//! files is now a [`ResultStore`] — one shared, deduplicated result
//! tier that every experiment binary *and* the `secsim-serve` job
//! server sit on top of.
//!
//! # Layout and schema
//!
//! Every entry is one file, `<bench>-<key:016x>.json`, addressed by the
//! [`SweepPoint::key`](crate::SweepPoint::key) fingerprint of the full
//! run configuration (benchmark identity + seed + `SimConfig` + warmup,
//! salted with [`CACHE_VERSION`](crate::CACHE_VERSION)). The body is a
//! versioned envelope:
//!
//! ```json
//! {"version":2,"bench":"mcf","key":"00a1…","report":{…},"sum":"…"}
//! ```
//!
//! `sum` is a stable fingerprint of the rendered report; entries whose
//! checksum, embedded key, or schema version disagree are treated as
//! misses (and counted under `bad_entries`) — a corrupt or stale entry
//! can degrade performance, never correctness.
//!
//! # Concurrency: claims
//!
//! Atomic tmp-file + rename writes already guaranteed no *torn* entry;
//! claims add cross-process **in-flight dedup**. Before simulating a
//! missing point, a worker tries to create `.claim-<key:016x>` with
//! `O_EXCL`:
//!
//! * **won** — this worker simulates and publishes the entry; the claim
//!   file is removed afterwards (even on panic — it rides an RAII
//!   ticket).
//! * **lost** — some other worker (possibly another process) is already
//!   simulating the same point; [`ResultStore::await_entry`] polls for
//!   the published entry instead of burning a core on a duplicate run.
//!   A claim whose file stops aging (a crashed owner) is broken after
//!   [`ResultStore::with_claim_wait`] and the waiter simulates after
//!   all — duplicated work in a crash corner, never a wrong result and
//!   never a deadlock.
//!
//! # Eviction
//!
//! With a byte budget configured (`SECSIM_STORE_BYTES`, `--store-bytes`,
//! or [`ResultStore::with_budget`]), the store evicts
//! least-recently-used entries after each write until it fits. Recency
//! is exact within a process and seeded from file modification times
//! across processes. The newest entry is never evicted, so a store
//! under pressure still serves the fan-in it was just written for.

use secsim_cpu::SimReport;
use secsim_stats::{Json, StableHash, StableHasher};
use secsim_workloads::SplitMix64;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Outcome of trying to claim a missing point for simulation.
#[derive(Debug)]
pub enum Claim {
    /// This worker simulates the point. The ticket (when the claim file
    /// could be created at all) removes the marker on drop.
    Won(Option<ClaimTicket>),
    /// Another worker — possibly in another process — is already
    /// simulating this point; wait for its entry via
    /// [`ResultStore::await_entry`].
    Lost,
}

/// RAII marker for a won claim: dropping it removes the on-disk
/// `.claim-<key>` file, releasing waiters.
#[derive(Debug)]
pub struct ClaimTicket {
    path: PathBuf,
}

impl Drop for ClaimTicket {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A point-in-time snapshot of the store's counters (the `status`
/// payload of `secsim-serve`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries deleted by the LRU budget.
    pub evictions: u64,
    /// Entries rejected by version/key/checksum validation.
    pub bad_entries: u64,
    /// Claims this store won (simulations it ran).
    pub claims_won: u64,
    /// Claims lost to a concurrent worker (cross-process in-flight
    /// dedup: the waiter reused the winner's entry instead of
    /// re-simulating).
    pub claims_lost: u64,
    /// Stale claims broken after the wait deadline.
    pub claim_breaks: u64,
    /// Torn `.tmp-` files removed by [`ResultStore::scavenge`] (a
    /// writer crashed between `write` and `rename`).
    pub scavenged_tmp: u64,
    /// Stale `.claim-` files removed by [`ResultStore::scavenge`] (a
    /// claim owner crashed without releasing).
    pub scavenged_claims: u64,
}

impl StoreCounters {
    /// JSON for the `status` response.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hits", Json::UInt(self.hits)),
            ("misses", Json::UInt(self.misses)),
            ("stores", Json::UInt(self.stores)),
            ("evictions", Json::UInt(self.evictions)),
            ("bad_entries", Json::UInt(self.bad_entries)),
            ("claims_won", Json::UInt(self.claims_won)),
            ("claims_lost", Json::UInt(self.claims_lost)),
            ("claim_breaks", Json::UInt(self.claim_breaks)),
            ("scavenged_tmp", Json::UInt(self.scavenged_tmp)),
            ("scavenged_claims", Json::UInt(self.scavenged_claims)),
        ])
    }

    /// Parses what [`StoreCounters::to_json`] rendered. The scavenger
    /// counters are optional so pre-scavenger status payloads still
    /// parse.
    pub fn from_json(v: &Json) -> Option<Self> {
        let opt = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        Some(Self {
            hits: v.get("hits")?.as_u64()?,
            misses: v.get("misses")?.as_u64()?,
            stores: v.get("stores")?.as_u64()?,
            evictions: v.get("evictions")?.as_u64()?,
            bad_entries: v.get("bad_entries")?.as_u64()?,
            claims_won: v.get("claims_won")?.as_u64()?,
            claims_lost: v.get("claims_lost")?.as_u64()?,
            claim_breaks: v.get("claim_breaks")?.as_u64()?,
            scavenged_tmp: opt("scavenged_tmp"),
            scavenged_claims: opt("scavenged_claims"),
        })
    }
}

/// In-process LRU bookkeeping, maintained only when a byte budget is
/// configured.
#[derive(Debug, Default)]
struct LruState {
    scanned: bool,
    seq: u64,
    total: u64,
    entries: HashMap<u64, EntryMeta>,
}

#[derive(Debug)]
struct EntryMeta {
    path: PathBuf,
    len: u64,
    last_use: u64,
}

/// The content-addressed result store. See the module docs.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    budget: Option<u64>,
    claim_wait: Duration,
    scavenge_age: Duration,
    lru: Mutex<LruState>,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    bad_entries: AtomicU64,
    claims_won: AtomicU64,
    claims_lost: AtomicU64,
    claim_breaks: AtomicU64,
    scavenged_tmp: AtomicU64,
    scavenged_claims: AtomicU64,
}

/// Default patience for a lost claim before the waiter assumes the
/// owner crashed, breaks the claim, and simulates itself.
const DEFAULT_CLAIM_WAIT: Duration = Duration::from_secs(600);

/// Default minimum age before a `.tmp-` file counts as torn. Long
/// enough that no live writer — which holds a tmp file for milliseconds
/// between `write` and `rename` — can be swept out from under itself.
const DEFAULT_SCAVENGE_AGE: Duration = Duration::from_secs(60);

impl ResultStore {
    /// A store over `dir`. The byte budget comes from
    /// `SECSIM_STORE_BYTES` when set (0 = unlimited), and the stale-
    /// claim deadline from `SECSIM_CLAIM_STALE_SECS`.
    pub fn new(dir: PathBuf) -> Self {
        let budget = std::env::var("SECSIM_STORE_BYTES")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&n| n > 0);
        let claim_wait = std::env::var("SECSIM_CLAIM_STALE_SECS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map_or(DEFAULT_CLAIM_WAIT, Duration::from_secs);
        Self {
            dir,
            budget,
            claim_wait,
            scavenge_age: DEFAULT_SCAVENGE_AGE,
            lru: Mutex::new(LruState::default()),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bad_entries: AtomicU64::new(0),
            claims_won: AtomicU64::new(0),
            claims_lost: AtomicU64::new(0),
            claim_breaks: AtomicU64::new(0),
            scavenged_tmp: AtomicU64::new(0),
            scavenged_claims: AtomicU64::new(0),
        }
    }

    /// Overrides the LRU byte budget (`None` = never evict).
    pub fn with_budget(mut self, bytes: Option<u64>) -> Self {
        self.budget = bytes.filter(|&n| n > 0);
        self
    }

    /// Overrides how long a lost claim is waited on before it is
    /// considered stale and broken.
    pub fn with_claim_wait(mut self, wait: Duration) -> Self {
        self.claim_wait = wait;
        self
    }

    /// Overrides the minimum age before a `.tmp-` file counts as torn
    /// for [`scavenge`](ResultStore::scavenge) (tests use `ZERO`).
    pub fn with_scavenge_age(mut self, age: Duration) -> Self {
        self.scavenge_age = age;
        self
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Current counter values.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bad_entries: self.bad_entries.load(Ordering::Relaxed),
            claims_won: self.claims_won.load(Ordering::Relaxed),
            claims_lost: self.claims_lost.load(Ordering::Relaxed),
            claim_breaks: self.claim_breaks.load(Ordering::Relaxed),
            scavenged_tmp: self.scavenged_tmp.load(Ordering::Relaxed),
            scavenged_claims: self.scavenged_claims.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, bench: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{bench}-{key:016x}.json"))
    }

    fn claim_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!(".claim-{key:016x}"))
    }

    /// Looks up an entry, validating version, embedded key, and
    /// checksum. Counts a hit or a miss.
    pub fn load(&self, bench: &str, key: u64) -> Option<SimReport> {
        match self.load_quiet(bench, key) {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// [`load`](ResultStore::load) without hit/miss accounting — the
    /// polling backend of [`await_entry`](ResultStore::await_entry).
    fn load_quiet(&self, bench: &str, key: u64) -> Option<SimReport> {
        let path = self.entry_path(bench, key);
        let text = retry_io(key, || fs::read_to_string(&path))?;
        let parsed = (|| {
            let v = Json::parse(&text).ok()?;
            if v.get("version")?.as_u64()? != crate::CACHE_VERSION {
                return None;
            }
            if v.get("key")?.as_str()? != format!("{key:016x}") {
                return None;
            }
            let report = v.get("report")?;
            // Entries written by this store carry a checksum; verify it
            // when present (older entries without one still validate by
            // version + key).
            if let Some(sum) = v.get("sum") {
                if sum.as_str()? != report_sum(report) {
                    return None;
                }
            }
            SimReport::from_json(report)
        })();
        if parsed.is_none() {
            self.bad_entries.fetch_add(1, Ordering::Relaxed);
        } else {
            self.touch(key);
        }
        parsed
    }

    /// Publishes an entry atomically (tmp + rename), then applies the
    /// eviction budget. I/O failures degrade to a skipped store.
    /// Returns whether the entry was written.
    pub fn put(&self, bench: &str, key: u64, report: &SimReport) -> bool {
        // Traced reports refuse to serialize; sweeps never trace.
        let Some(body) = render_entry(bench, key, report) else { return false };
        let path = self.entry_path(bench, key);
        if retry_io(key ^ 0x5eed, || fs::create_dir_all(&self.dir)).is_none() {
            return false;
        }
        let tmp = self.dir.join(format!(
            ".tmp-{key:016x}-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let committed = retry_io(key, || {
            fs::write(&tmp, &body)?;
            fs::rename(&tmp, &path)
        });
        if committed.is_none() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.record_and_evict(key, path, body.len() as u64);
        true
    }

    /// Tries to claim the right to simulate a missing point. See the
    /// module docs for the protocol.
    pub fn claim(&self, key: u64) -> Claim {
        let path = self.claim_path(key);
        if fs::create_dir_all(&self.dir).is_err() {
            // No store directory, no coordination: simulate locally and
            // let `put` fail silently too.
            self.claims_won.fetch_add(1, Ordering::Relaxed);
            return Claim::Won(None);
        }
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                use std::io::Write as _;
                let _ = write!(f, "{}", std::process::id());
                self.claims_won.fetch_add(1, Ordering::Relaxed);
                Claim::Won(Some(ClaimTicket { path }))
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                self.claims_lost.fetch_add(1, Ordering::Relaxed);
                Claim::Lost
            }
            Err(_) => {
                // An unwritable directory must not block the sweep:
                // proceed unclaimed (duplicate work at worst).
                self.claims_won.fetch_add(1, Ordering::Relaxed);
                Claim::Won(None)
            }
        }
    }

    /// After losing a claim: polls for the winner's entry. Returns
    /// `None` when the claim disappeared without an entry (the winner
    /// failed to publish) or went stale — the caller simulates itself.
    pub fn await_entry(&self, bench: &str, key: u64) -> Option<SimReport> {
        let claim = self.claim_path(key);
        loop {
            if let Some(r) = self.load_quiet(bench, key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(r);
            }
            match fs::metadata(&claim) {
                Err(_) => {
                    // Claim released: either the entry landed (caught on
                    // the next poll) or the winner gave up storing.
                    return self.load_quiet(bench, key);
                }
                Ok(meta) => {
                    let age = meta
                        .modified()
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .unwrap_or(Duration::ZERO);
                    if age > self.claim_wait {
                        // The owner looks dead; break its claim so the
                        // grid cannot wedge on a crashed process.
                        let _ = fs::remove_file(&claim);
                        self.claim_breaks.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Bumps LRU recency on a hit (budgeted stores only).
    fn touch(&self, key: u64) {
        if self.budget.is_none() {
            return;
        }
        let mut lru = self.lru.lock().expect("lru poisoned");
        lru.seq += 1;
        let seq = lru.seq;
        if let Some(meta) = lru.entries.get_mut(&key) {
            meta.last_use = seq;
        }
    }

    /// Registers a fresh entry and evicts least-recently-used entries
    /// until the store fits its budget. The entry just written is never
    /// evicted.
    fn record_and_evict(&self, key: u64, path: PathBuf, len: u64) {
        let Some(budget) = self.budget else { return };
        let mut lru = self.lru.lock().expect("lru poisoned");
        self.ensure_scanned(&mut lru);
        lru.seq += 1;
        let seq = lru.seq;
        match lru.entries.insert(key, EntryMeta { path, len, last_use: seq }) {
            Some(old) => lru.total = lru.total - old.len + len,
            None => lru.total += len,
        }
        while lru.total > budget && lru.entries.len() > 1 {
            let Some((&victim, _)) = lru
                .entries
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(_, m)| m.last_use)
            else {
                break;
            };
            let meta = lru.entries.remove(&victim).expect("victim present");
            lru.total -= meta.len;
            let _ = fs::remove_file(&meta.path);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Crash recovery: removes debris left by crashed writers.
    ///
    /// * `.tmp-…` files older than the scavenge age are torn writes (a
    ///   writer died between `write` and `rename`); a live writer holds
    ///   its tmp file for milliseconds, so age discriminates safely.
    /// * `.claim-…` files older than the claim-wait deadline belong to
    ///   owners that crashed without releasing; removing them up front
    ///   spares every later waiter the full stale-claim timeout.
    ///
    /// Entries themselves are never touched (atomic rename means an
    /// entry either exists whole or not at all). Returns
    /// `(tmp_removed, claims_removed)` and bumps the corresponding
    /// counters, which `status` surfaces. `secsim-serve` calls this at
    /// startup.
    pub fn scavenge(&self) -> (u64, u64) {
        let Ok(dir) = fs::read_dir(&self.dir) else { return (0, 0) };
        let (mut tmp, mut claims) = (0u64, 0u64);
        for entry in dir.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let threshold = if name.starts_with(".tmp-") {
                self.scavenge_age
            } else if name.starts_with(".claim-") {
                self.claim_wait
            } else {
                continue;
            };
            let age = entry
                .metadata()
                .ok()
                .and_then(|m| m.modified().ok())
                .and_then(|m| m.elapsed().ok())
                .unwrap_or(Duration::ZERO);
            if age >= threshold && fs::remove_file(&path).is_ok() {
                if name.starts_with(".tmp-") {
                    tmp += 1;
                } else {
                    claims += 1;
                }
            }
        }
        self.scavenged_tmp.fetch_add(tmp, Ordering::Relaxed);
        self.scavenged_claims.fetch_add(claims, Ordering::Relaxed);
        (tmp, claims)
    }

    /// Seeds the LRU map from the directory (oldest mtime = least
    /// recent), once per process.
    fn ensure_scanned(&self, lru: &mut LruState) {
        if lru.scanned {
            return;
        }
        lru.scanned = true;
        let Ok(dir) = fs::read_dir(&self.dir) else { return };
        let mut found: Vec<(u64, PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for entry in dir.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(key) = entry_key_from_name(name) else { continue };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((key, path, meta.len(), mtime));
        }
        found.sort_by_key(|&(_, _, _, mtime)| mtime);
        for (key, path, len, _) in found {
            lru.seq += 1;
            let seq = lru.seq;
            if lru.entries.insert(key, EntryMeta { path, len, last_use: seq }).is_none() {
                lru.total += len;
            }
        }
    }
}

/// Extracts the 16-hex-digit key from an entry filename
/// (`<bench>-<key>.json`); `None` for tmp/claim/other files.
fn entry_key_from_name(name: &str) -> Option<u64> {
    if name.starts_with('.') {
        return None;
    }
    let stem = name.strip_suffix(".json")?;
    let (_, hex) = stem.rsplit_once('-')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Stable checksum over a rendered report (the `sum` field).
fn report_sum(report: &Json) -> String {
    let mut h = StableHasher::new();
    report.render().stable_hash(&mut h);
    format!("{:016x}", h.finish())
}

/// The full entry body for `(bench, key, report)`; `None` when the
/// report refuses to serialize (traced runs).
fn render_entry(bench: &str, key: u64, report: &SimReport) -> Option<String> {
    let report = report.to_json()?;
    let sum = report_sum(&report);
    Some(
        Json::obj(vec![
            ("version", Json::UInt(crate::CACHE_VERSION)),
            ("bench", Json::Str(bench.to_string())),
            ("key", Json::Str(format!("{key:016x}"))),
            ("report", report),
            ("sum", Json::Str(sum)),
        ])
        .render(),
    )
}

/// Runs one store-file operation with up to three attempts, sleeping a
/// short jittered backoff between tries. A transient filesystem error
/// (EIO, ENOSPC, EAGAIN…) on the shared store directory thus degrades
/// to a miss / skipped store instead of failing the sweep. `NotFound`
/// is the ordinary miss and returns immediately.
pub(crate) fn retry_io<T>(salt: u64, mut op: impl FnMut() -> std::io::Result<T>) -> Option<T> {
    const ATTEMPTS: u32 = 3;
    for attempt in 0..ATTEMPTS {
        match op() {
            Ok(v) => return Some(v),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                if attempt + 1 == ATTEMPTS {
                    return None;
                }
                // Deterministic jitter (SplitMix64 over the key and
                // attempt) desynchronizes workers retrying against the
                // same directory; the base doubles per attempt.
                let mut rng = SplitMix64::new(salt ^ (u64::from(attempt) << 56));
                let micros = (100u64 << attempt) + rng.next_u64() % 400;
                std::thread::sleep(std::time::Duration::from_micros(micros));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("secsim-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn report(insts: u64) -> SimReport {
        SimReport { insts, cycles: insts * 2, halted: true, ..Default::default() }
    }

    #[test]
    fn put_load_round_trip_with_checksum() {
        let dir = temp_dir("roundtrip");
        let store = ResultStore::new(dir.clone());
        assert!(store.put("mcf", 0xabc, &report(100)));
        let r = store.load("mcf", 0xabc).expect("hit");
        assert_eq!(r.insts, 100);
        let c = store.counters();
        assert_eq!((c.stores, c.hits, c.misses), (1, 1, 0));
        // The entry body carries a verifiable checksum.
        let body = fs::read_to_string(store.dir().join("mcf-0000000000000abc.json")).unwrap();
        assert!(body.contains("\"sum\":\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checksum_is_a_miss() {
        let dir = temp_dir("sum");
        let store = ResultStore::new(dir.clone());
        store.put("mcf", 7, &report(5));
        let path = store.entry_path("mcf", 7);
        let body = fs::read_to_string(&path).unwrap();
        // Flip one report byte but keep valid JSON: the checksum catches
        // what version/key validation cannot.
        let forged = body.replacen("\"insts\":5", "\"insts\":6", 1);
        assert_ne!(forged, body);
        fs::write(&path, forged).unwrap();
        assert!(store.load("mcf", 7).is_none());
        assert_eq!(store.counters().bad_entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_is_exclusive_and_released_on_drop() {
        let dir = temp_dir("claim");
        let store = ResultStore::new(dir.clone());
        let first = store.claim(42);
        assert!(matches!(first, Claim::Won(Some(_))));
        assert!(matches!(store.claim(42), Claim::Lost));
        drop(first);
        assert!(matches!(store.claim(42), Claim::Won(Some(_))), "drop releases the claim");
        let c = store.counters();
        assert_eq!((c.claims_won, c.claims_lost), (2, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn await_entry_returns_published_result() {
        let dir = temp_dir("await");
        let store = std::sync::Arc::new(ResultStore::new(dir.clone()));
        let ticket = match store.claim(9) {
            Claim::Won(t) => t,
            Claim::Lost => panic!("fresh claim must be won"),
        };
        let publisher = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                store.put("gzip", 9, &report(77));
                drop(ticket);
            })
        };
        let r = store.await_entry("gzip", 9).expect("winner publishes");
        assert_eq!(r.insts, 77);
        publisher.join().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claim_is_broken_after_deadline() {
        let dir = temp_dir("stale");
        let store = ResultStore::new(dir.clone()).with_claim_wait(Duration::from_millis(30));
        // Plant a claim nobody will ever release.
        fs::create_dir_all(&dir).unwrap();
        fs::write(store.claim_path(3), "99999").unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert!(store.await_entry("mcf", 3).is_none(), "stale claim must not block");
        assert_eq!(store.counters().claim_breaks, 1);
        assert!(!store.claim_path(3).exists(), "stale claim file removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_budget_evicts_oldest_but_never_newest() {
        let dir = temp_dir("lru");
        // Budget fits roughly two minimal entries.
        let probe = render_entry("b0", 0, &report(0)).unwrap().len() as u64;
        let store = ResultStore::new(dir.clone()).with_budget(Some(probe * 2 + probe / 2));
        for key in 0..4u64 {
            store.put(&format!("b{key}"), key, &report(key));
        }
        let c = store.counters();
        assert!(c.evictions >= 2, "eviction must have fired: {c:?}");
        // The newest entry always survives…
        assert!(store.load("b3", 3).is_some());
        // …and whatever else survived is intact (no corruption).
        let survivors = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| entry_key_from_name(e.file_name().to_str().unwrap()).is_some())
            .count();
        assert!(survivors < 4, "budget must have shrunk the store");
        for key in 0..4u64 {
            if store.entry_path(&format!("b{key}"), key).exists() {
                assert!(store.load(&format!("b{key}"), key).is_some(), "survivor {key} corrupt");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_recency_protects_recently_read_entries() {
        let dir = temp_dir("recency");
        let probe = render_entry("b0", 0, &report(0)).unwrap().len() as u64;
        let store = ResultStore::new(dir.clone()).with_budget(Some(probe * 2 + probe / 2));
        store.put("b0", 0, &report(0));
        store.put("b1", 1, &report(1));
        // Touch b0 so b1 becomes the LRU victim.
        assert!(store.load("b0", 0).is_some());
        store.put("b2", 2, &report(2));
        assert!(store.entry_path("b0", 0).exists(), "recently-read entry survives");
        assert!(!store.entry_path("b1", 1).exists(), "least-recently-used entry evicted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_and_claim_files_are_not_entries() {
        assert_eq!(entry_key_from_name("mcf-00000000000000ff.json"), Some(0xff));
        assert_eq!(entry_key_from_name("a-b-00000000000000ff.json"), Some(0xff));
        assert_eq!(entry_key_from_name(".claim-00000000000000ff"), None);
        assert_eq!(entry_key_from_name(".tmp-00000000000000ff-1-0"), None);
        assert_eq!(entry_key_from_name("notes.txt"), None);
        assert_eq!(entry_key_from_name("short-ff.json"), None);
    }

    #[test]
    fn scavenge_removes_torn_tmp_files_and_counts_them() {
        let dir = temp_dir("scavenge-tmp");
        fs::create_dir_all(&dir).unwrap();
        // A torn write: tmp file that never got renamed.
        fs::write(dir.join(".tmp-00000000000000aa-1234-0"), "partial").unwrap();
        let store = ResultStore::new(dir.clone()).with_scavenge_age(Duration::ZERO);
        assert_eq!(store.scavenge(), (1, 0));
        assert!(!dir.join(".tmp-00000000000000aa-1234-0").exists());
        assert_eq!(store.counters().scavenged_tmp, 1);
        assert_eq!(store.counters().scavenged_claims, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scavenge_removes_stale_claims_but_spares_fresh_ones() {
        let dir = temp_dir("scavenge-claim");
        fs::create_dir_all(&dir).unwrap();
        let store = ResultStore::new(dir.clone())
            .with_claim_wait(Duration::from_millis(30))
            .with_scavenge_age(Duration::from_secs(3600));
        // Stale claim: planted first, aged past the claim-wait deadline.
        fs::write(store.claim_path(0x11), "99999").unwrap();
        std::thread::sleep(Duration::from_millis(40));
        // Fresh claim: created just before the sweep; must survive.
        let ticket = store.claim(0x42);
        assert!(matches!(ticket, Claim::Won(Some(_))));
        assert_eq!(store.scavenge(), (0, 1));
        assert!(!store.claim_path(0x11).exists(), "stale claim removed");
        assert!(store.claim_path(0x42).exists(), "fresh claim spared");
        assert_eq!(store.counters().scavenged_claims, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scavenge_never_touches_entries() {
        let dir = temp_dir("scavenge-entries");
        let store = ResultStore::new(dir.clone()).with_scavenge_age(Duration::ZERO);
        store.put("mcf", 0xbeef, &report(12));
        assert_eq!(store.scavenge(), (0, 0));
        assert!(store.load("mcf", 0xbeef).is_some(), "entry survives scavenging");
        // Counters round-trip through the status JSON encoding.
        let c = store.counters();
        assert_eq!(StoreCounters::from_json(&c.to_json()), Some(c));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_io_retries_transients_and_gives_up_cleanly() {
        use std::io::{Error, ErrorKind};
        // Two transient failures, then success: the third attempt wins.
        let mut calls = 0;
        let out = retry_io(42, || {
            calls += 1;
            if calls < 3 {
                Err(Error::from(ErrorKind::Interrupted))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out, Some(7));
        assert_eq!(calls, 3);
        // A persistent failure exhausts exactly three attempts.
        let mut calls = 0;
        let out: Option<()> = retry_io(42, || {
            calls += 1;
            Err(Error::from(ErrorKind::Other))
        });
        assert_eq!(out, None);
        assert_eq!(calls, 3);
        // NotFound is an ordinary miss: no retries at all.
        let mut calls = 0;
        let out: Option<()> = retry_io(42, || {
            calls += 1;
            Err(Error::from(ErrorKind::NotFound))
        });
        assert_eq!(out, None);
        assert_eq!(calls, 1);
    }
}
