//! The resilient client of `secsim-serve`: submit a job over the
//! line-delimited JSON protocol (see [`crate::protocol`]) and stream
//! the results back, surviving transport faults along the way.
//!
//! This is what `--server ADDR` on any figure binary routes through:
//! [`run_sweep`] sends the full grid, collects `point-done` events and
//! returns reports **in grid order**, exactly shaped like
//! [`Sweep::run`](crate::Sweep::run)'s return value — so a binary
//! cannot tell (and its output cannot differ) whether its grid ran
//! in-process or on a server.
//!
//! # Resilience
//!
//! Every job call runs through one retry engine ([`RetryPolicy`]):
//!
//! * **Connect errors and `queue-full`** back off exponentially with
//!   deterministic jitter (capped); a `queue-full` answer carrying a
//!   `retry_after_ms` hint sleeps that long instead.
//! * **Disconnects mid-stream** (EOF, resets, garbage lines, read
//!   timeouts) reconnect and send `resume {job, since_seq}` — the
//!   server replays only the missed events, identified by their
//!   monotone sequence numbers; duplicates are skipped client-side.
//! * **`resume-too-old` / `unknown-job`** fall back to resubmission;
//!   the server dedups the submission by content hash, so the job is
//!   never executed twice.
//! * **Read timeouts** ([`RetryPolicy::read_timeout`]) turn a silently
//!   wedged connection (a black-holed socket, a dead server) into a
//!   typed [`ClientError::Timeout`] and a reconnect instead of blocking
//!   forever.
//!
//! Unrecoverable answers (`bad-request`, `shutting-down`, …) and
//! exhausted retry budgets abort the call: a half-delivered grid is
//! never returned.

use crate::protocol::{self, codes};
use crate::{SweepError, SweepPoint};
use secsim_cpu::SimReport;
use secsim_stats::Json;
use secsim_workloads::SplitMix64;
use std::cell::RefCell;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a server interaction failed. Any of these aborts the client
/// call: a half-delivered grid is never returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting, sending or receiving failed at the socket level.
    Io(String),
    /// The server sent something that is not a protocol event.
    Protocol(String),
    /// No byte arrived within the configured read timeout.
    Timeout {
        /// The timeout that fired, in milliseconds.
        ms: u64,
    },
    /// The server answered with a typed `error` event.
    Server {
        /// One of the [`codes`] constants.
        code: String,
        /// Server-provided detail.
        detail: String,
        /// Backoff hint from a `queue-full` answer.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::Timeout { ms } => write!(f, "no server event within {ms}ms"),
            ClientError::Server { code, detail, .. } => {
                write!(f, "server error [{code}]: {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// How hard the client tries before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failures tolerated before the call aborts with the
    /// last error. Progress (any new event) resets the count.
    pub attempts: u32,
    /// First backoff step in milliseconds; doubles per consecutive
    /// failure.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
    /// Read timeout per event; a silent connection older than this is
    /// declared dead ([`ClientError::Timeout`]) and retried.
    pub read_timeout: Duration,
    /// Seed for the backoff jitter (deterministic runs replay their
    /// sleep schedule).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 8,
            base_ms: 50,
            cap_ms: 2000,
            read_timeout: Duration::from_secs(60),
            seed: 0x5ec5_c11e,
        }
    }
}

/// What the retry engine did on a job's behalf — surfaced so callers
/// (and the chaos harness) can assert the resilience path was actually
/// exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful connections (1 for a fault-free run).
    pub connects: u64,
    /// Connections beyond the first (each one recovered a fault).
    pub reconnects: u64,
    /// `resume` requests sent (reconnects that kept the job id).
    pub resumes: u64,
    /// Full resubmissions (job id lost or rejected; server-side content
    /// dedup keeps execution exactly-once).
    pub resubmits: u64,
    /// `queue-full` answers honored with a backoff sleep.
    pub queue_full: u64,
    /// Read timeouts that killed a wedged connection.
    pub timeouts: u64,
}

/// A connected protocol session: one request out, a stream of events
/// back.
struct Session {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    timeout_ms: u64,
}

impl Session {
    fn connect(addr: &str, read_timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1)))).ok();
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
            timeout_ms: read_timeout.as_millis() as u64,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next event object; `Ok(None)` at EOF. Typed server
    /// errors surface as [`ClientError::Server`]; an expired read
    /// timeout as [`ClientError::Timeout`]. Either way the session is
    /// dead afterwards (a timeout may have consumed a partial line).
    fn next_event(&mut self) -> Result<Option<Json>, ClientError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(ClientError::Timeout { ms: self.timeout_ms });
            }
            Err(e) => return Err(e.into()),
        }
        if !line.ends_with('\n') {
            // EOF (or a timeout surfaced as a short read) mid-line: the
            // transport truncated an event. Never parse half a line.
            return Err(ClientError::Io("stream ended mid-event".to_string()));
        }
        let v = Json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable event line: {e}")))?;
        if v.get("event").and_then(Json::as_str) == Some("error") {
            return Err(ClientError::Server {
                code: v.get("code").and_then(Json::as_str).unwrap_or("?").to_string(),
                detail: v.get("detail").and_then(Json::as_str).unwrap_or("").to_string(),
                retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
            });
        }
        Ok(Some(v))
    }
}

/// What [`drive`]'s event callback wants next.
enum Feed {
    /// Keep streaming.
    More,
    /// The job's final event arrived; the call is done.
    Done,
}

/// The retry engine behind every job call. Connects (with backoff),
/// submits, and streams events through `on_event` until it reports the
/// job done. On any transport fault it reconnects and resumes from the
/// last processed sequence number; when the job id is lost or rejected
/// it resubmits (server-side dedup keeps execution exactly-once) after
/// letting `on_restart` clear any accumulated partial state.
fn drive(
    addr: &str,
    submit_line: &str,
    policy: RetryPolicy,
    mut on_event: impl FnMut(&Json) -> Result<Feed, String>,
    mut on_restart: impl FnMut(),
) -> Result<ClientStats, ClientError> {
    let mut stats = ClientStats::default();
    let mut rng = SplitMix64::new(policy.seed);
    let mut failures: u32 = 0;
    let mut last_err = ClientError::Io("no attempt made".to_string());
    // Server-assigned job id + last event sequence number we processed;
    // together they are the resume cursor.
    let mut job: Option<u64> = None;
    let mut last_seq: u64 = 0;
    let mut skip_backoff = false;

    // One iteration = one connection's lifetime.
    loop {
        if failures >= policy.attempts.max(1) {
            return Err(last_err);
        }
        if failures > 0 && !std::mem::take(&mut skip_backoff) {
            // Capped exponential backoff with jitter; a queue-full hint
            // already slept instead (see below).
            let exp = u32::min(failures - 1, 16);
            let ms = policy.base_ms.saturating_mul(1u64 << exp).min(policy.cap_ms).max(1);
            std::thread::sleep(Duration::from_millis(ms / 2 + rng.next_u64() % (ms / 2 + 1)));
        }
        let mut session = match Session::connect(addr, policy.read_timeout) {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                last_err = e;
                continue;
            }
        };
        stats.connects += 1;
        if stats.connects > 1 {
            stats.reconnects += 1;
        }
        let sent = match job {
            Some(id) => {
                stats.resumes += 1;
                session.send(&protocol::resume_request(id, last_seq))
            }
            None => {
                if stats.connects > 1 || stats.resubmits > 0 {
                    stats.resubmits += 1;
                    // A fresh submission restarts the event stream from
                    // seq 1 — drop partial state so replays stay clean.
                    last_seq = 0;
                    on_restart();
                }
                session.send(submit_line)
            }
        };
        if let Err(e) = sent {
            failures += 1;
            last_err = e;
            continue;
        }

        // Stream this connection until the job finishes or the
        // connection dies.
        loop {
            match session.next_event() {
                Ok(Some(ev)) => {
                    match ev.get("event").and_then(Json::as_str) {
                        Some("queued") => {
                            job = ev.get("job").and_then(Json::as_u64).or(job);
                            continue;
                        }
                        Some("resumed") => continue,
                        _ => {}
                    }
                    // Job-stream events carry monotone sequence
                    // numbers; a resume replay may overlap what we
                    // already processed.
                    if let Some(seq) = ev.get("seq").and_then(Json::as_u64) {
                        if seq <= last_seq {
                            continue;
                        }
                        last_seq = seq;
                    }
                    failures = 0; // progress: the budget refills
                    match on_event(&ev) {
                        Ok(Feed::More) => continue,
                        Ok(Feed::Done) => return Ok(stats),
                        Err(msg) => {
                            // Semantically broken stream: start the job
                            // over from scratch (bounded like any other
                            // failure).
                            failures += 1;
                            last_err = ClientError::Protocol(msg);
                            job = None;
                            last_seq = 0;
                            break;
                        }
                    }
                }
                Ok(None) => {
                    // Bare EOF mid-job: reconnect and resume.
                    failures += 1;
                    last_err = ClientError::Io("connection closed mid-job".to_string());
                    break;
                }
                Err(ClientError::Timeout { ms }) => {
                    stats.timeouts += 1;
                    failures += 1;
                    last_err = ClientError::Timeout { ms };
                    break;
                }
                Err(ClientError::Server { code, detail, retry_after_ms }) => {
                    match code.as_str() {
                        c if c == codes::QUEUE_FULL => {
                            stats.queue_full += 1;
                            failures += 1;
                            last_err =
                                ClientError::Server { code, detail, retry_after_ms };
                            // Honor the server's load-shedding hint
                            // instead of this round's generic backoff.
                            if failures < policy.attempts.max(1) {
                                let ms = retry_after_ms
                                    .unwrap_or(policy.cap_ms)
                                    .clamp(1, 10_000);
                                std::thread::sleep(Duration::from_millis(ms));
                                skip_backoff = true;
                            }
                            break;
                        }
                        c if c == codes::TRUNCATED => {
                            // The network cut our request line mid-way;
                            // the request never ran. Retry it.
                            failures += 1;
                            last_err =
                                ClientError::Server { code, detail, retry_after_ms };
                            break;
                        }
                        c if c == codes::RESUME_TOO_OLD || c == codes::UNKNOWN_JOB => {
                            // The resume cursor is stale; fall back to
                            // resubmission (dedup keeps it exactly-once).
                            failures += 1;
                            last_err =
                                ClientError::Server { code, detail, retry_after_ms };
                            job = None;
                            last_seq = 0;
                            break;
                        }
                        _ => {
                            // bad-request, shutting-down, …: retrying
                            // cannot help.
                            return Err(ClientError::Server { code, detail, retry_after_ms });
                        }
                    }
                }
                Err(e) => {
                    // Io / Protocol (garbage bytes, resets): the
                    // connection is poisoned; reconnect and resume.
                    failures += 1;
                    last_err = e;
                    break;
                }
            }
        }
    }
}

/// Submits `points` as one sweep job and returns the results in grid
/// order — the remote counterpart of [`Sweep::run`](crate::Sweep::run)
/// — using the default [`RetryPolicy`].
pub fn run_sweep(
    addr: &str,
    points: &[SweepPoint],
) -> Result<Vec<Result<SimReport, SweepError>>, ClientError> {
    run_sweep_with(addr, points, RetryPolicy::default()).map(|(results, _)| results)
}

/// [`run_sweep`] with an explicit retry policy; also returns what the
/// retry engine had to do (reconnects, resumes, …).
pub fn run_sweep_with(
    addr: &str,
    points: &[SweepPoint],
    policy: RetryPolicy,
) -> Result<(Vec<Result<SimReport, SweepError>>, ClientStats), ClientError> {
    let submit = protocol::sweep_request_v2(points);
    let results: RefCell<Vec<Option<Result<SimReport, SweepError>>>> =
        RefCell::new(vec![None; points.len()]);
    let stats = drive(
        addr,
        &submit,
        policy,
        |ev| match ev.get("event").and_then(Json::as_str) {
            Some("running") => Ok(Feed::More),
            Some("point-done") => {
                let i = ev
                    .get("index")
                    .and_then(Json::as_u64)
                    .map(|n| n as usize)
                    .filter(|&n| n < points.len())
                    .ok_or_else(|| "point-done with a bad index".to_string())?;
                results.borrow_mut()[i] = Some(protocol::result_from_json(ev)?);
                Ok(Feed::More)
            }
            Some("complete") => {
                if results.borrow().iter().all(Option::is_some) {
                    Ok(Feed::Done)
                } else {
                    Err("job completed with missing points".to_string())
                }
            }
            other => Err(format!("unexpected event {other:?}")),
        },
        // Results are keyed by grid index and deterministic: a replay
        // overwrites them with identical values, so restarts keep them.
        || {},
    )?;
    let collected = results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("complete event validated all points present"))
        .collect();
    Ok((collected, stats))
}

/// Submits a fault-campaign job (8 schemes × 5 integrity kinds injected
/// at `inject`) and returns the raw `fault-done` event objects, using
/// the default [`RetryPolicy`].
pub fn run_faults(
    addr: &str,
    inject: u64,
    timeout_secs: u64,
) -> Result<Vec<Json>, ClientError> {
    run_faults_with(addr, inject, timeout_secs, RetryPolicy::default()).map(|(rows, _)| rows)
}

/// [`run_faults`] with an explicit retry policy and engine stats.
pub fn run_faults_with(
    addr: &str,
    inject: u64,
    timeout_secs: u64,
    policy: RetryPolicy,
) -> Result<(Vec<Json>, ClientStats), ClientError> {
    let submit = protocol::faults_request_v2(inject, timeout_secs);
    let rows: RefCell<Vec<Json>> = RefCell::new(Vec::new());
    let stats = drive(
        addr,
        &submit,
        policy,
        |ev| match ev.get("event").and_then(Json::as_str) {
            Some("running") => Ok(Feed::More),
            Some("fault-done") => {
                rows.borrow_mut().push(ev.clone());
                Ok(Feed::More)
            }
            Some("complete") => Ok(Feed::Done),
            other => Err(format!("unexpected event {other:?}")),
        },
        // Rows accumulate in arrival order; a resubmission restarts the
        // stream, so drop the partial batch.
        || rows.borrow_mut().clear(),
    )?;
    Ok((rows.into_inner(), stats))
}

/// Read timeout for one-shot control requests (`status`, `shutdown`).
const CONTROL_TIMEOUT: Duration = Duration::from_secs(30);

/// Fetches the server's `status` object (queue depth, store counters,
/// sweep counters).
pub fn status(addr: &str) -> Result<Json, ClientError> {
    let mut s = Session::connect(addr, CONTROL_TIMEOUT)?;
    s.send(&protocol::status_request())?;
    match s.next_event()? {
        Some(ev) if ev.get("event").and_then(Json::as_str) == Some("status") => Ok(ev),
        Some(ev) => Err(ClientError::Protocol(format!("expected status, got {}", ev.render()))),
        None => Err(ClientError::Server {
            code: codes::TRUNCATED.to_string(),
            detail: "connection closed before the status arrived".to_string(),
            retry_after_ms: None,
        }),
    }
}

/// Asks the server to drain and exit. Returns once the server
/// acknowledges.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut s = Session::connect(addr, CONTROL_TIMEOUT)?;
    s.send(&protocol::shutdown_request())?;
    match s.next_event()? {
        None => Ok(()), // server exited before acking: fine
        Some(ev) if ev.get("event").and_then(Json::as_str) == Some("shutting-down") => Ok(()),
        Some(ev) => Err(ClientError::Protocol(format!(
            "expected shutting-down, got {}",
            ev.render()
        ))),
    }
}
