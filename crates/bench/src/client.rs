//! The thin client of `secsim-serve`: submit a job over the
//! line-delimited JSON protocol (see [`crate::protocol`]) and stream
//! the results back.
//!
//! This is what `--server ADDR` on any figure binary routes through:
//! [`run_sweep`] sends the full grid, collects `point-done` events and
//! returns reports **in grid order**, exactly shaped like
//! [`Sweep::run`](crate::Sweep::run)'s return value — so a binary
//! cannot tell (and its output cannot differ) whether its grid ran
//! in-process or on a server.

use crate::protocol::{self, codes};
use crate::{SweepError, SweepPoint};
use secsim_cpu::SimReport;
use secsim_stats::Json;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// Why a server interaction failed. Any of these aborts the client
/// call: a half-delivered grid is never returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting, sending or receiving failed at the socket level.
    Io(String),
    /// The server sent something that is not a protocol event.
    Protocol(String),
    /// The server answered with a typed `error` event.
    Server {
        /// One of the [`codes`] constants.
        code: String,
        /// Server-provided detail.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::Server { code, detail } => write!(f, "server error [{code}]: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// A connected protocol session: one request out, a stream of events
/// back.
struct Session {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl Session {
    fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Self { writer, reader: BufReader::new(stream) })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next event object; `Ok(None)` at EOF. Typed server
    /// errors surface as [`ClientError::Server`].
    fn next_event(&mut self) -> Result<Option<Json>, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let v = Json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable event line: {e}")))?;
        if v.get("event").and_then(Json::as_str) == Some("error") {
            return Err(ClientError::Server {
                code: v.get("code").and_then(Json::as_str).unwrap_or("?").to_string(),
                detail: v.get("detail").and_then(Json::as_str).unwrap_or("").to_string(),
            });
        }
        Ok(Some(v))
    }
}

/// Submits `points` as one sweep job and returns the results in grid
/// order — the remote counterpart of [`Sweep::run`](crate::Sweep::run).
pub fn run_sweep(
    addr: &str,
    points: &[SweepPoint],
) -> Result<Vec<Result<SimReport, SweepError>>, ClientError> {
    let mut s = Session::connect(addr)?;
    s.send(&protocol::sweep_request(points))?;
    let mut results: Vec<Option<Result<SimReport, SweepError>>> = vec![None; points.len()];
    let mut complete = false;
    while let Some(ev) = s.next_event()? {
        match ev.get("event").and_then(Json::as_str) {
            Some("queued" | "running") => {}
            Some("point-done") => {
                let i = ev
                    .get("index")
                    .and_then(Json::as_u64)
                    .map(|n| n as usize)
                    .filter(|&n| n < points.len())
                    .ok_or_else(|| {
                        ClientError::Protocol("point-done with a bad index".to_string())
                    })?;
                results[i] = Some(
                    protocol::result_from_json(&ev).map_err(ClientError::Protocol)?,
                );
            }
            Some("complete") => {
                complete = true;
                break;
            }
            other => {
                return Err(ClientError::Protocol(format!("unexpected event {other:?}")));
            }
        }
    }
    if !complete {
        return Err(ClientError::Server {
            code: codes::TRUNCATED.to_string(),
            detail: "connection closed before the job completed".to_string(),
        });
    }
    results
        .into_iter()
        .map(|r| {
            r.ok_or_else(|| ClientError::Protocol("job completed with missing points".to_string()))
        })
        .collect()
}

/// Submits a fault-campaign job (8 schemes × 5 integrity kinds injected
/// at `inject`) and returns the raw `fault-done` event objects.
pub fn run_faults(
    addr: &str,
    inject: u64,
    timeout_secs: u64,
) -> Result<Vec<Json>, ClientError> {
    let mut s = Session::connect(addr)?;
    s.send(&protocol::faults_request(inject, timeout_secs))?;
    let mut rows = Vec::new();
    let mut complete = false;
    while let Some(ev) = s.next_event()? {
        match ev.get("event").and_then(Json::as_str) {
            Some("queued" | "running") => {}
            Some("fault-done") => rows.push(ev),
            Some("complete") => {
                complete = true;
                break;
            }
            other => {
                return Err(ClientError::Protocol(format!("unexpected event {other:?}")));
            }
        }
    }
    if !complete {
        return Err(ClientError::Server {
            code: codes::TRUNCATED.to_string(),
            detail: "connection closed before the campaign completed".to_string(),
        });
    }
    Ok(rows)
}

/// Fetches the server's `status` object (queue depth, store counters,
/// sweep counters).
pub fn status(addr: &str) -> Result<Json, ClientError> {
    let mut s = Session::connect(addr)?;
    s.send(&protocol::status_request())?;
    match s.next_event()? {
        Some(ev) if ev.get("event").and_then(Json::as_str) == Some("status") => Ok(ev),
        Some(ev) => Err(ClientError::Protocol(format!("expected status, got {}", ev.render()))),
        None => Err(ClientError::Server {
            code: codes::TRUNCATED.to_string(),
            detail: "connection closed before the status arrived".to_string(),
        }),
    }
}

/// Asks the server to drain and exit. Returns once the server
/// acknowledges.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut s = Session::connect(addr)?;
    s.send(&protocol::shutdown_request())?;
    match s.next_event()? {
        None => Ok(()), // server exited before acking: fine
        Some(ev) if ev.get("event").and_then(Json::as_str) == Some("shutting-down") => Ok(()),
        Some(ev) => Err(ClientError::Protocol(format!(
            "expected shutting-down, got {}",
            ev.render()
        ))),
    }
}
