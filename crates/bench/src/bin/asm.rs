//! External-workload gate: assembles every `examples/*.sasm`, diffs the
//! loader output against the committed golden `.sprog` binaries, and
//! runs each program through the sweep engine.
//!
//! ```text
//! asm [--smoke] [--bless] [--dir DIR] [--jobs N] [--no-cache]
//! ```
//!
//! * default — the full gate: golden diff plus the 8-policy grid per
//!   program (warmup-checkpointed, sweep-cached), emitted as one
//!   normalized-IPC table per program under `results/`.
//! * `--smoke` — the CI stage: golden diff plus a two-policy run
//!   (baseline + authen-then-commit) with a short instruction cap.
//! * `--bless` — rewrite `examples/golden/*.sprog` from the current
//!   assembler output instead of failing on a mismatch. Run after any
//!   deliberate format or assembler change, and commit the result.
//!
//! The golden diff pins three things at once: the assembler's output for
//! the checked-in sources, the `.sprog` serialization format, and the
//! loader round-trip (`from_bytes(to_bytes(img)) == img`).

use secsim_bench::{cell, RunOpts, Sweep, SweepPoint};
use secsim_core::{FetchGateVariant, Policy};
use secsim_stats::Table;
use secsim_workloads::{assemble_named, register_program, BenchId, ProgramImage};
use std::fs;
use std::path::{Path, PathBuf};

fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

fn policies8() -> Vec<(&'static str, Policy)> {
    vec![
        ("baseline", Policy::baseline()),
        ("issue", Policy::authen_then_issue()),
        ("commit", Policy::authen_then_commit()),
        ("write", Policy::authen_then_write()),
        ("fetch", Policy::authen_then_fetch()),
        ("fetch-drain", Policy::authen_then_fetch().with_fetch_variant(FetchGateVariant::Drain)),
        ("commit+fetch", Policy::commit_plus_fetch()),
        ("commit+obf", Policy::commit_plus_obfuscation()),
    ]
}

/// Assembles `path` and checks it against `golden/<stem>.sprog`.
/// Returns the image, or an error line for the summary.
fn check_one(path: &Path, golden_dir: &Path, bless: bool) -> Result<ProgramImage, String> {
    let stem = path.file_stem().and_then(|s| s.to_str()).ok_or("bad file name")?.to_string();
    let source =
        fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let image = assemble_named(&source, &stem)
        .map_err(|e| format!("{}:{e}", path.display()))?;
    let bytes = image.to_bytes();

    // Loader round-trip must be exact before the bytes are worth pinning.
    let reloaded = ProgramImage::from_bytes(&bytes)
        .map_err(|e| format!("{stem}: round-trip failed: {e:?}"))?;
    if reloaded != image {
        return Err(format!("{stem}: loader round-trip is not the identity"));
    }

    let golden = golden_dir.join(format!("{stem}.sprog"));
    if bless {
        fs::create_dir_all(golden_dir).map_err(|e| format!("{}: {e}", golden_dir.display()))?;
        fs::write(&golden, &bytes).map_err(|e| format!("{}: {e}", golden.display()))?;
        eprintln!("blessed {}", golden.display());
    } else {
        let want = fs::read(&golden).map_err(|e| {
            format!("{}: {e} (run `asm --bless` and commit the result)", golden.display())
        })?;
        if want != bytes {
            return Err(format!(
                "{stem}: assembler output differs from {} ({} vs {} bytes) — \
                 if the change is deliberate, re-bless",
                golden.display(),
                bytes.len(),
                want.len()
            ));
        }
    }
    Ok(image)
}

fn main() {
    let (sweep, rest) = Sweep::from_args();
    let smoke = rest.iter().any(|a| a == "--smoke");
    let bless = rest.iter().any(|a| a == "--bless");
    let dir = rest
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| rest.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(default_dir);
    let golden_dir = dir.join("golden");

    let mut sources: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sasm"))
        .collect();
    sources.sort();
    assert!(!sources.is_empty(), "no .sasm programs under {}", dir.display());

    let mut errors = Vec::new();
    let mut benches: Vec<BenchId> = Vec::new();
    for path in &sources {
        match check_one(path, &golden_dir, bless) {
            Ok(image) => {
                eprintln!(
                    "ok {}: {} code words, {} data segment(s), footprint {} bytes",
                    image.name,
                    image.code.len(),
                    image.segments.len(),
                    image.footprint
                );
                benches.push(BenchId::External(register_program(image)));
            }
            Err(e) => errors.push(e),
        }
    }
    assert!(errors.is_empty(), "golden check failed:\n  {}", errors.join("\n  "));

    // The 50-instruction warmup is deliberately tiny: it exercises the
    // external-program checkpoint path (keyed by content hash) without
    // fast-forwarding the shortest example past its halt.
    let (policies, opts) = if smoke {
        (
            vec![("baseline", Policy::baseline()), ("commit", Policy::authen_then_commit())],
            RunOpts { max_insts: 20_000, warmup_insts: 50, ..RunOpts::default() },
        )
    } else {
        (policies8(), RunOpts { max_insts: 200_000, warmup_insts: 50, ..RunOpts::default() })
    };

    let points: Vec<SweepPoint> = benches
        .iter()
        .flat_map(|&b| policies.iter().map(move |(_, p)| SweepPoint::of(b, *p, &opts)))
        .collect();
    let reports = sweep.run(&points);

    let mut headers = vec!["program".to_string(), "base IPC".to_string()];
    headers.extend(policies.iter().skip(1).map(|(l, _)| format!("{l} (norm)")));
    let mut t = Table::new(headers);
    let mut it = reports.into_iter();
    for &bench in &benches {
        let base = it.next().expect("grid shape").unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert!(base.insts > 0, "{bench}: no instructions retired");
        let mut row = vec![bench.to_string(), format!("{:.3}", base.ipc())];
        for (label, _) in policies.iter().skip(1) {
            let r = it.next().expect("grid shape").unwrap_or_else(|e| panic!("{bench}: {e}"));
            assert!(
                r.ipc() <= base.ipc() * 1.0001,
                "{bench}/{label}: gating must not beat the decrypt-only baseline"
            );
            row.push(cell(r.ipc() / base.ipc()));
        }
        t.push_row(row);
    }

    if smoke {
        println!("{}", t.to_markdown());
        eprintln!("asm smoke OK: {} program(s) assembled, golden-matched and simulated", benches.len());
    } else {
        secsim_bench::emit(
            "asm_external",
            "External programs (examples/*.sasm) — normalized IPC across the 8-policy grid",
            &t,
        );
    }
}
