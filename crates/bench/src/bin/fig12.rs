//! Figure 12: normalized IPC under hash-tree (CHTree-style) memory
//! authentication with the dedicated 8 KB node cache.

use secsim_bench::{grid_benches, normalized_table, RunOpts, Sweep};
use secsim_core::Policy;
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts { tree: true, ..RunOpts::default() };
    let policies = [
        ("issue", Policy::authen_then_issue()),
        ("write", Policy::authen_then_write()),
        ("commit", Policy::authen_then_commit()),
        ("fetch", Policy::authen_then_fetch()),
        ("commit+fetch", Policy::commit_plus_fetch()),
    ];
    let t = normalized_table(&sweep, &grid_benches(&sweep, &BenchId::ALL), &policies, &opts);
    secsim_bench::emit(
        "fig12",
        "Figure 12 — normalized IPC under hash-tree authentication (baseline: decrypt-only)",
        &t,
    );
}
