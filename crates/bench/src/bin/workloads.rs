//! Characterizes the 18 synthetic benchmarks: instruction mix, cache
//! behaviour, branch predictability — the evidence that each profile
//! reproduces its namesake's memory character.
//!
//! With `--server HOST:PORT` the 18-point grid runs on a `secsim-serve`
//! instance (see docs/SERVICE.md) instead of in-process; the
//! characterization table is byte-identical either way.

use secsim_bench::{grid_benches, RunOpts, Sweep, SweepPoint};
use secsim_core::Policy;
use secsim_stats::Table;
use secsim_workloads::{BenchClass, BenchId};

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts { max_insts: 300_000, ..RunOpts::default() };
    let benches = grid_benches(&sweep, &BenchId::ALL);
    let points: Vec<SweepPoint> = benches
        .iter()
        .map(|&b| SweepPoint::of(b, Policy::authen_then_commit(), &opts))
        .collect();
    let mut reports = sweep.run(&points).into_iter().map(|r| r.expect("bench"));
    let mut t = Table::new([
        "bench",
        "class",
        "footprint",
        "IPC",
        "loads/ki",
        "stores/ki",
        "branches/ki",
        "mispred %",
        "L1D miss %",
        "L2 miss/ki",
        "auth req/ki",
    ]);
    for &bench in &benches {
        let p = bench.profile();
        let r = reports.next().expect("grid shape");
        let ki = r.insts as f64 / 1000.0;
        let c = &r.counters;
        let l1d_acc = c.get("l1d.read_hit")
            + c.get("l1d.read_miss")
            + c.get("l1d.write_hit")
            + c.get("l1d.write_miss");
        let l1d_miss = c.get("l1d.read_miss") + c.get("l1d.write_miss");
        t.push_row([
            bench.to_string(),
            match p.class {
                BenchClass::Int => "INT".into(),
                BenchClass::Fp => "FP".to_string(),
            },
            format!("{}MB", p.footprint >> 20),
            format!("{:.3}", r.ipc()),
            format!("{:.0}", c.get("pipe.loads") as f64 / ki),
            format!("{:.0}", c.get("pipe.stores") as f64 / ki),
            format!("{:.0}", c.get("pipe.branches") as f64 / ki),
            format!(
                "{:.1}",
                100.0 * c.get("pipe.mispredicts") as f64 / c.get("pipe.branches").max(1) as f64
            ),
            format!("{:.1}", 100.0 * l1d_miss as f64 / l1d_acc.max(1) as f64),
            format!("{:.1}", c.get("l2.miss") as f64 / ki),
            format!("{:.1}", c.get("auth.requests") as f64 / ki),
        ]);
    }
    secsim_bench::emit(
        "workloads",
        "Workload characterization (authen-then-commit, 256KB L2)",
        &t,
    );
}
