//! Stall attribution: where every lost commit slot goes under each
//! authentication control point.
//!
//! The pipeline charges each non-retiring commit slot to exactly one
//! [`StallCause`] (`sum(stall) + insts == commit_width × cycles`), so
//! these tables explain the IPC figures mechanistically: issue gating
//! shows up as `auth_issue` slots, commit gating as `auth_commit`,
//! write gating as `auth_write` store-buffer holds, and so on.
//!
//! Output: one `results/stalls_<bench>.md` (+ `.csv`) per benchmark;
//! rows are policies, columns the percentage of lost slots per cause.

use secsim_bench::{grid_benches, RunOpts, Sweep, SweepPoint};
use secsim_core::Policy;
use secsim_cpu::StallCause;
use secsim_stats::Table;
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts::default();
    let policies = [
        ("base", Policy::baseline()),
        ("issue", Policy::authen_then_issue()),
        ("write", Policy::authen_then_write()),
        ("commit", Policy::authen_then_commit()),
        ("fetch", Policy::authen_then_fetch()),
        ("commit+fetch", Policy::commit_plus_fetch()),
    ];
    let benches = grid_benches(&sweep, &BenchId::ALL);
    let points: Vec<SweepPoint> = benches
        .iter()
        .flat_map(|&b| policies.iter().map(move |(_, p)| SweepPoint::of(b, *p, &opts)))
        .collect();
    let mut reports = sweep.run(&points).into_iter();

    let mut headers = vec!["policy".to_string(), "IPC".to_string(), "lost slots".to_string()];
    headers.extend(StallCause::ALL.iter().map(|c| format!("{c} %")));
    headers.push("attributed %".to_string());
    for &bench in &benches {
        let mut t = Table::new(headers.clone());
        for (label, _) in &policies {
            match reports.next().expect("grid shape") {
                Ok(r) => {
                    let total = r.stall.total();
                    let pct = |slots: u64| 100.0 * slots as f64 / total.max(1) as f64;
                    let mut row =
                        vec![(*label).to_string(), format!("{:.3}", r.ipc()), total.to_string()];
                    row.extend(StallCause::ALL.iter().map(|&c| format!("{:.1}", pct(r.stall.get(c)))));
                    // "Attributed" = charged to a specific pipeline or
                    // authentication cause; only the end-of-run drain
                    // tail is generic.
                    row.push(format!("{:.1}", pct(total - r.stall.get(StallCause::Drain))));
                    t.push_row(row);
                }
                Err(e) => {
                    eprintln!("warning: skipping {bench}/{label}: {e}");
                    let mut row = vec![(*label).to_string()];
                    row.extend((0..headers.len() - 1).map(|_| "-".to_string()));
                    t.push_row(row);
                }
            }
        }
        secsim_bench::emit(
            &format!("stalls_{bench}"),
            &format!("Stall attribution — {bench}, 256KB L2 (% of lost commit slots)"),
            &t,
        );
    }
}
