//! Simulator-throughput micro-benchmark: simulated instructions per
//! second of wall clock, recorded into `results/perf_baseline.json`.
//!
//! Each invocation measures a fixed set of (workload, policy) hot-path
//! shapes and *merges* its numbers into the JSON file under a label, so
//! before/after comparisons survive across commits:
//!
//! ```text
//! cargo run --release --bin perf -- --label seed-alloc
//! # ...optimize...
//! cargo run --release --bin perf -- --label optimized
//! ```
//!
//! The file maps label → case → {insts, iters, total_secs,
//! insts_per_sec}. Labels are overwritten in place when re-measured.

use secsim_bench::timing::{fmt_rate, measure};
use secsim_bench::{results_dir, run_bench, L2Size, RunOpts};
use secsim_core::Policy;
use secsim_stats::Json;
use std::fs;

/// Instructions per measured run: long enough to dwarf workload-image
/// construction, short enough that the full matrix stays under a minute.
const INSTS: u64 = 200_000;

/// The measured cases: the allocation-heavy shapes the optimization
/// targets. `mcf` is miss-dominated (every L2 miss walks the secure
/// fill path: counter fetch, decrypt, MAC); `swim` is
/// bandwidth-dominated (writebacks exercise seal/MAC-update); `gzip`
/// is cache-resident (pipeline + counter bookkeeping dominates).
const CASES: &[(&str, &str)] = &[
    ("mcf/commit", "mcf"),
    ("swim/commit", "swim"),
    ("gzip/commit", "gzip"),
    ("mcf/commit+tree", "mcf"),
    ("mcf/baseline", "mcf"),
];

fn policy_for(case: &str) -> Policy {
    if case.ends_with("baseline") {
        Policy::baseline()
    } else {
        Policy::authen_then_commit()
    }
}

fn main() {
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            other => {
                eprintln!("unknown argument: {other} (expected --label <name>)");
                std::process::exit(2);
            }
        }
    }

    let mut cases = Vec::new();
    for &(case, bench) in CASES {
        let opts = RunOpts {
            l2: L2Size::K256,
            max_insts: INSTS,
            tree: case.ends_with("tree"),
            ..RunOpts::default()
        };
        let policy = policy_for(case);
        let m = measure(case, 2.0, || {
            run_bench(bench, policy, &opts).expect("benchmark exists");
        });
        let rate = m.rate(INSTS as f64);
        println!("{:24} {:>12} simulated insts/s  ({:.0} ms/run)", m.label, fmt_rate(rate), m.per_iter_secs() * 1e3);
        cases.push((
            case.to_string(),
            Json::obj(vec![
                ("insts", Json::UInt(INSTS)),
                ("iters", Json::UInt(m.iters)),
                ("total_secs", Json::Float(m.total_secs)),
                ("insts_per_sec", Json::Float(rate)),
            ]),
        ));
    }

    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("perf_baseline.json");
    let mut doc = fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|v| match v {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        })
        .unwrap_or_default();
    doc.retain(|(k, _)| *k != label);
    doc.push((label.clone(), Json::Object(cases)));
    fs::write(&path, Json::Object(doc).render()).expect("write perf_baseline.json");
    println!("recorded label '{label}' -> {}", path.display());
}
