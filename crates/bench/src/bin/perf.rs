//! Simulator-throughput micro-benchmark: simulated instructions per
//! second of wall clock, recorded into `results/perf_baseline.json`.
//!
//! Each invocation measures a fixed set of (workload, policy) hot-path
//! shapes and *merges* its numbers into the JSON file under a label, so
//! before/after comparisons survive across commits:
//!
//! ```text
//! cargo run --release --bin perf -- --label seed-alloc
//! # ...optimize...
//! cargo run --release --bin perf -- --label optimized
//! ```
//!
//! The file maps label → case → {insts, iters, total_secs,
//! insts_per_sec}. Labels are overwritten in place when re-measured.
//!
//! Two flags support the CI regression gate:
//!
//! * `--smoke` shortens each measurement window (~0.3 s instead of 2 s)
//!   so the full matrix finishes in a few seconds;
//! * `--compare LABEL` measures fresh rates and fails (exit 1) if any
//!   case regresses more than 10% against the stored `LABEL` numbers.
//!   With `--compare`, nothing is written unless `--label` is also
//!   given explicitly — the gate must not dirty the tracked baseline.

use secsim_bench::timing::{fmt_rate, measure};
use secsim_bench::{results_dir, run_bench, L2Size, RunOpts};
use secsim_core::Policy;
use secsim_stats::Json;
use secsim_workloads::BenchId;
use std::fs;

/// Instructions per measured run: long enough to dwarf workload-image
/// construction, short enough that the full matrix stays under a minute.
const INSTS: u64 = 200_000;

/// Regression-gate floor: `--compare` fails when a fresh rate drops
/// below this fraction of the stored reference.
const GATE_FLOOR: f64 = 0.90;

/// The measured cases: the allocation-heavy shapes the optimization
/// targets. `mcf` is miss-dominated (every L2 miss walks the secure
/// fill path: counter fetch, decrypt, MAC); `swim` is
/// bandwidth-dominated (writebacks exercise seal/MAC-update); `gzip`
/// is cache-resident (pipeline + counter bookkeeping dominates).
const CASES: &[(&str, BenchId)] = &[
    ("mcf/commit", BenchId::Mcf),
    ("swim/commit", BenchId::Swim),
    ("gzip/commit", BenchId::Gzip),
    ("mcf/commit+tree", BenchId::Mcf),
    ("mcf/baseline", BenchId::Mcf),
];

fn policy_for(case: &str) -> Policy {
    if case.ends_with("baseline") {
        Policy::baseline()
    } else {
        Policy::authen_then_commit()
    }
}

/// The stored per-case rates under `label`, if present.
fn stored_rates(doc: &[(String, Json)], label: &str) -> Option<Vec<(String, f64)>> {
    let Json::Object(cases) = doc.iter().find(|(k, _)| k == label).map(|(_, v)| v)? else {
        return None;
    };
    Some(
        cases
            .iter()
            .filter_map(|(case, v)| Some((case.clone(), v.get("insts_per_sec")?.as_f64()?)))
            .collect(),
    )
}

fn main() {
    let mut label: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut budget_secs = 2.0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = Some(args.next().expect("--label needs a value")),
            "--compare" => compare = Some(args.next().expect("--compare needs a value")),
            "--smoke" => budget_secs = 0.3,
            other => {
                eprintln!(
                    "unknown argument: {other} (expected [--label NAME] [--compare NAME] [--smoke])"
                );
                std::process::exit(2);
            }
        }
    }

    let mut cases = Vec::new();
    let mut fresh = Vec::new();
    for &(case, bench) in CASES {
        let opts = RunOpts {
            l2: L2Size::K256,
            max_insts: INSTS,
            tree: case.ends_with("tree"),
            ..RunOpts::default()
        };
        let policy = policy_for(case);
        let m = measure(case, budget_secs, || {
            run_bench(bench, policy, &opts);
        });
        let rate = m.rate(INSTS as f64);
        println!("{:24} {:>12} simulated insts/s  ({:.0} ms/run)", m.label, fmt_rate(rate), m.per_iter_secs() * 1e3);
        fresh.push((case.to_string(), rate));
        cases.push((
            case.to_string(),
            Json::obj(vec![
                ("insts", Json::UInt(INSTS)),
                ("iters", Json::UInt(m.iters)),
                ("total_secs", Json::Float(m.total_secs)),
                ("insts_per_sec", Json::Float(rate)),
            ]),
        ));
    }

    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("perf_baseline.json");
    let mut doc = fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|v| match v {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        })
        .unwrap_or_default();

    if let Some(ref reference) = compare {
        let Some(stored) = stored_rates(&doc, reference) else {
            eprintln!("error: no stored label {reference:?} in {}", path.display());
            std::process::exit(2);
        };
        let mut regressed = false;
        for (case, rate) in &fresh {
            let Some((_, reference_rate)) = stored.iter().find(|(c, _)| c == case) else {
                println!("{case:24} (no stored reference — skipped)");
                continue;
            };
            let ratio = rate / reference_rate;
            let verdict = if ratio < GATE_FLOOR { "REGRESSED" } else { "ok" };
            println!(
                "{case:24} {ratio:>7.2}x vs '{reference}' ({} -> {}) {verdict}",
                fmt_rate(*reference_rate),
                fmt_rate(*rate),
            );
            regressed |= ratio < GATE_FLOOR;
        }
        if regressed {
            eprintln!("perf: regression gate FAILED (>10% below '{reference}')");
            std::process::exit(1);
        }
        println!("perf: regression gate ok (within 10% of '{reference}')");
    }

    // The gate is read-only unless a label was requested explicitly.
    if compare.is_none() || label.is_some() {
        let label = label.unwrap_or_else(|| "current".into());
        doc.retain(|(k, _)| *k != label);
        doc.push((label.clone(), Json::Object(cases)));
        fs::write(&path, Json::Object(doc).render()).expect("write perf_baseline.json");
        println!("recorded label '{label}' -> {}", path.display());
    }
}
