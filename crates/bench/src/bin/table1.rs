//! Table 1: the latency gap between decryption and integrity
//! verification under [Counter mode + HMAC] vs [CBC + CBC-MAC].

use secsim_crypto::{CryptoLatency, EncryptionMode, MacScheme};
use secsim_stats::Table;

fn main() {
    let lat = CryptoLatency::paper_reference();
    let mut t = Table::new([
        "scheme",
        "fetch (cyc)",
        "line (B)",
        "decrypt ready (cyc)",
        "auth ready (cyc)",
        "gap (cyc)",
    ]);
    for fetch in [135u64, 175, 300] {
        for (name, mode, mac) in [
            ("Counter+HMAC", EncryptionMode::CounterMode, MacScheme::HmacSha256),
            ("CBC+CBC-MAC", EncryptionMode::Cbc, MacScheme::CbcMacAes),
        ] {
            let g = lat.latency_gap(mode, mac, fetch, 64);
            t.push_row([
                name.to_string(),
                fetch.to_string(),
                "64".to_string(),
                g.decrypt.to_string(),
                g.auth.to_string(),
                g.gap().to_string(),
            ]);
        }
    }
    secsim_bench::emit(
        "table1",
        "Table 1 — decryption vs authentication latency (80ns AES, 74ns SHA-256, 1 GHz)",
        &t,
    );
    println!(
        "Counter mode hides decryption under the fetch but authentication lags by the hash\n\
         latency; CBC+CBC-MAC has no gap but serializes decryption over the line's chunks."
    );
}
