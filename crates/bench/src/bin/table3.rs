//! Table 3: the processor model parameters, dumped from the live
//! configuration structs (so the table cannot drift from the code).

use secsim_cpu::CpuConfig;
use secsim_mem::MemSystemConfig;
use secsim_stats::Table;

fn main() {
    let cpu = CpuConfig::paper_reference();
    let m256 = MemSystemConfig::paper_256k();
    let m1m = MemSystemConfig::paper_1m();
    let mut t = Table::new(["parameter", "value"]);
    let mut row = |k: &str, v: String| t.push_row([k.to_string(), v]);
    row("Frequency", "1.0 GHz (1 cycle = 1 ns)".into());
    row("Fetch/Decode width", format!("{}", cpu.fetch_width));
    row("Issue/Commit width", format!("{}", cpu.issue_width));
    row(
        "L1 I-Cache",
        format!("DM, {}KB, {}B line", m256.l1i.size_bytes / 1024, m256.l1i.line_bytes),
    );
    row(
        "L1 D-Cache",
        format!("DM, {}KB, {}B line", m256.l1d.size_bytes / 1024, m256.l1d.line_bytes),
    );
    row(
        "L2 Cache",
        format!(
            "{}-way, unified, {}B line, write-back, {}KB and {}KB",
            m256.l2.assoc,
            m256.l2.line_bytes,
            m256.l2.size_bytes / 1024,
            m1m.l2.size_bytes / 1024
        ),
    );
    row("L1 latency", format!("{} cycle", m256.l1d.latency));
    row(
        "L2 latency",
        format!("{} cycles (256KB), {} cycles (1MB)", m256.l2.latency, m1m.l2.latency),
    );
    row("I-TLB / D-TLB", format!("{}-way, {} entries", m256.itlb.assoc, m256.itlb.entries));
    row("RUU", format!("{}, {} entries", cpu.ruu_size, CpuConfig::paper_ruu64().ruu_size));
    row("LSQ", format!("{} entries", cpu.lsq_size));
    row(
        "Memory bus",
        format!(
            "{} MHz, {}B wide",
            1000 / m256.dram.core_per_bus,
            m256.dram.bus_bytes
        ),
    );
    row("CAS latency", format!("{} mem bus clocks", m256.dram.cas));
    row("Precharge (RP)", format!("{} mem bus clocks", m256.dram.rp));
    row("RAS-to-CAS (RCD)", format!("{} mem bus clocks", m256.dram.rcd));
    row("Decryption latency", "80 ns (pipelined AES)".into());
    row("MAC latency", "74 ns (HMAC-SHA256, 512-bit block)".into());
    secsim_bench::emit("table3", "Table 3 — processor model parameters", &t);
}
