//! Fault-injection campaign: fault kinds × injection cycles × all eight
//! policies, measuring detection latency and pre-detection exposure.
//!
//! Every point runs one deterministic victim (a load → compute → store
//! loop over an encrypted image) with a single scheduled fault, under a
//! cycle fence (`SimConfig::max_cycles`) *and* a wall-clock watchdog:
//! a point that runs away ends as `CycleLimitExceeded`, a point that
//! wedges the host thread is abandoned and reported through the
//! existing [`SweepError`] shape — the campaign itself never hangs and
//! never dies mid-grid.
//!
//! Emits one `results/exposure_<kind>.md` table per fault kind. The
//! tables exhibit the paper's control-point ordering: exposure under
//! authen-then-issue ≤ authen-then-commit ≤ authen-then-write ≤
//! authen-then-fetch (the eager gates admit less tampered work), which
//! the binary also asserts, alongside zero undetected integrity faults
//! under any authenticating policy.
//!
//! ```text
//! faults [--smoke] [--timeout-secs N]
//! ```

use secsim_bench::faultpoint::{integrity_kinds, run_point, schemes};
use secsim_bench::SweepError;
use secsim_core::FaultKind;
use secsim_stats::Table;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let timeout_secs = args
        .iter()
        .position(|a| a == "--timeout-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60u64);
    let timeout = Duration::from_secs(timeout_secs);
    let injects: &[u64] = if smoke { &[2_500] } else { &[600, 2_500, 7_000] };

    let mut failed_points: Vec<SweepError> = Vec::new();
    let mut undetected: Vec<String> = Vec::new();
    let mut ordering_errors: Vec<String> = Vec::new();

    for kind in integrity_kinds() {
        let mut t = Table::new([
            "policy", "inject@", "verdict", "detect@", "latency", "issued", "committed", "stores",
            "bus", "exposed", "cycles",
        ]);
        for &inject in injects {
            // Exposure totals in scheme order, for the ordering check.
            let mut totals: Vec<(String, Option<u64>)> = Vec::new();
            for (name, policy) in schemes() {
                let row = match run_point(policy, kind, inject, timeout) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("warning: skipping point: {e}");
                        failed_points.push(e);
                        continue;
                    }
                };
                if policy.authenticate && row.detect_cycle.is_none() {
                    undetected.push(format!("{} {}@{inject}", name, kind.name()));
                }
                if let Some(cause) = row.cause {
                    assert_eq!(cause, kind.cause(), "cause attribution for {name}");
                }
                let x = row.exposure.unwrap_or_default();
                totals.push((name.to_string(), row.detect_cycle.map(|_| x.total())));
                t.push_row([
                    name.to_string(),
                    inject.to_string(),
                    row.verdict.to_string(),
                    row.detect_cycle.map_or("-".into(), |c| c.to_string()),
                    row.detect_cycle.map_or("-".into(), |c| (c - inject).to_string()),
                    x.issued.to_string(),
                    x.committed.to_string(),
                    x.stores_released.to_string(),
                    x.bus_grants.to_string(),
                    x.total().to_string(),
                    row.cycles.to_string(),
                ]);
            }
            // The paper's ordering: each later gate admits at least as
            // much tainted work as the previous, stricter one.
            let chain = ["authen-then-issue", "authen-then-commit", "authen-then-write",
                "authen-then-fetch"];
            let vals: Vec<Option<u64>> = chain
                .iter()
                .map(|n| totals.iter().find(|(name, _)| name == n).and_then(|(_, v)| *v))
                .collect();
            for w in vals.windows(2) {
                if let (Some(a), Some(b)) = (w[0], w[1]) {
                    if a > b {
                        ordering_errors.push(format!(
                            "{}@{inject}: exposure not monotone over the gate chain: {vals:?}",
                            kind.name()
                        ));
                        break;
                    }
                }
            }
        }
        secsim_bench::emit(
            &format!("exposure_{}", kind.name()),
            &format!(
                "Fault campaign — {} injected mid-run: detection latency and \
                 pre-detection exposure per authentication control point",
                kind.name()
            ),
            &t,
        );
    }

    // Verification faults: no data corruption, but the MAC pipeline is
    // delayed or never answers. The cycle fence must contain the
    // dropped-MAC case under every gating policy — no hung points.
    {
        let mut t = Table::new(["policy", "fault", "verdict", "cycles"]);
        // Injected at cycle 0 so the cold-start fills consume the armed
        // delay — later on the victim's working set is cached and no
        // fill would ever pick it up.
        for kind in [FaultKind::MacDelay { extra: 5_000 }, FaultKind::MacDrop] {
            for (name, policy) in schemes() {
                match run_point(policy, kind, 0, timeout) {
                    Ok(o) => t.push_row([
                        name.to_string(),
                        kind.name().to_string(),
                        o.verdict.to_string(),
                        o.cycles.to_string(),
                    ]),
                    Err(e) => {
                        eprintln!("warning: skipping point: {e}");
                        failed_points.push(e);
                    }
                }
            }
        }
        secsim_bench::emit(
            "exposure_mac-faults",
            "Fault campaign — delayed / dropped MAC verification: the cycle fence \
             converts would-be hangs into CycleLimitExceeded",
            &t,
        );
    }

    assert!(
        failed_points.is_empty(),
        "{} campaign point(s) timed out or panicked: {failed_points:?}",
        failed_points.len()
    );
    assert!(
        undetected.is_empty(),
        "integrity faults escaped authenticating policies: {undetected:?}"
    );
    assert!(ordering_errors.is_empty(), "{ordering_errors:?}");
    eprintln!("fault campaign OK: all points bounded, all integrity faults detected, \
               exposure ordering holds");
}
