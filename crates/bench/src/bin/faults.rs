//! Fault-injection campaign: fault kinds × injection cycles × all eight
//! policies, measuring detection latency and pre-detection exposure.
//!
//! Every point runs one deterministic victim (a load → compute → store
//! loop over an encrypted image) with a single scheduled fault, under a
//! cycle fence (`SimConfig::max_cycles`) *and* a wall-clock watchdog:
//! a point that runs away ends as `CycleLimitExceeded`, a point that
//! wedges the host thread is abandoned and reported through the
//! existing [`SweepError`] shape — the campaign itself never hangs and
//! never dies mid-grid.
//!
//! Emits one `results/exposure_<kind>.md` table per fault kind. The
//! tables exhibit the paper's control-point ordering: exposure under
//! authen-then-issue ≤ authen-then-commit ≤ authen-then-write ≤
//! authen-then-fetch (the eager gates admit less tampered work), which
//! the binary also asserts, alongside zero undetected integrity faults
//! under any authenticating policy.
//!
//! ```text
//! faults [--smoke] [--timeout-secs N]
//! ```

use secsim_bench::SweepError;
use secsim_core::{
    EncryptedMemory, Exposure, FaultKind, FaultPlan, FetchGateVariant, Policy, TamperCause,
};
use secsim_cpu::{SimConfig, SimOutcome, SimSession};
use secsim_isa::{Asm, Reg};
use secsim_stats::Table;
use std::sync::mpsc;
use std::time::Duration;

/// Address of the data line the victim re-reads every iteration — the
/// campaign's tamper target.
const TARGET: u32 = 0x2000;
/// Warm scratch line the tainted results are stored to. Keeping the
/// dependent work on-chip makes the exposure ordering structural: no
/// tainted instruction needs a bus grant of its own.
const SCRATCH: u32 = 0x3000;
/// Per-point cycle fence: generous for a ~20k-cycle victim, tiny next
/// to the 2⁴⁰-cycle horizon of a dropped MAC verification.
const FENCE: u64 = 500_000;

/// The victim: `ITERS ×` (load target; two dependent adds; two
/// dependent stores to scratch; count down). Everything the tampered
/// line can taint stays off the bus, so exposure differences between
/// policies come only from the gates.
fn victim() -> EncryptedMemory {
    let mut a = Asm::new(0x0);
    let top = a.new_label();
    a.li(Reg::R1, TARGET);
    a.li(Reg::R4, SCRATCH);
    a.li(Reg::R2, 6000);
    a.bind(top).expect("fresh label");
    a.lw(Reg::R3, Reg::R1, 0);
    a.add(Reg::R5, Reg::R3, Reg::R3);
    a.add(Reg::R5, Reg::R5, Reg::R3);
    a.sw(Reg::R5, Reg::R4, 0);
    a.sw(Reg::R3, Reg::R4, 4);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bne(Reg::R2, Reg::R0, top);
    a.halt();
    let words = a.assemble().expect("victim assembles");
    let mut plain = vec![0u8; 16 << 10];
    for (i, w) in words.iter().enumerate() {
        plain[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    plain[TARGET as usize] = 0x2A; // something nonzero to chew on
    EncryptedMemory::from_plain(0, &plain, &[0xFA; 16], b"fault-campaign")
}

/// The eight schemes of the campaign, in detection-latency order where
/// the paper defines one.
fn schemes() -> [(&'static str, Policy); 8] {
    [
        ("baseline", Policy::baseline()),
        ("authen-then-issue", Policy::authen_then_issue()),
        ("authen-then-commit", Policy::authen_then_commit()),
        ("authen-then-write", Policy::authen_then_write()),
        ("authen-then-fetch", Policy::authen_then_fetch()),
        (
            "authen-then-fetch-drain",
            Policy::authen_then_fetch().with_fetch_variant(FetchGateVariant::Drain),
        ),
        ("commit+fetch", Policy::commit_plus_fetch()),
        ("commit+obf", Policy::commit_plus_obfuscation()),
    ]
}

/// The integrity faults every authenticating policy must catch.
fn integrity_kinds() -> [FaultKind; 5] {
    [
        FaultKind::CiphertextFlip { mask: 0x40 },
        FaultKind::TagCorrupt { mask: 0xDEAD },
        FaultKind::CounterReplay,
        FaultKind::DramFlip { bit: 3 },
        FaultKind::BusCorrupt { mask: 0x08 },
    ]
}

/// What one campaign point produced.
struct PointOutcome {
    verdict: &'static str,
    detect_cycle: Option<u64>,
    cause: Option<TamperCause>,
    exposure: Option<Exposure>,
    cycles: u64,
}

/// Runs one point on a watchdog thread: the simulation is bounded by
/// the cycle fence inside the model and by `timeout` outside it. A
/// point that exceeds the wall clock is abandoned (the thread is
/// detached) and surfaces as a [`SweepError::Failed`] — one hole in the
/// grid, not a hung campaign.
fn run_point(
    policy: Policy,
    kind: FaultKind,
    inject: u64,
    timeout: Duration,
) -> Result<PointOutcome, SweepError> {
    let label = format!("faults/{}@{inject}", kind.name());
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let run = std::panic::catch_unwind(|| {
            let mut image = victim();
            let cfg = SimConfig::paper_256k(policy).with_max_cycles(FENCE);
            let plan = FaultPlan::new().at(inject, TARGET, kind);
            let out = SimSession::new(&cfg).faults(plan).run(&mut image, 0x0);
            let cycles = out.report().cycles;
            match out {
                SimOutcome::Completed(_) => PointOutcome {
                    verdict: "completed",
                    detect_cycle: None,
                    cause: None,
                    exposure: None,
                    cycles,
                },
                SimOutcome::TamperDetected { cycle, cause, exposure, .. } => PointOutcome {
                    verdict: "detected",
                    detect_cycle: Some(cycle),
                    cause: Some(cause),
                    exposure: Some(exposure),
                    cycles,
                },
                SimOutcome::CycleLimitExceeded { .. } => PointOutcome {
                    verdict: "cycle-fence",
                    detect_cycle: None,
                    cause: None,
                    exposure: None,
                    cycles,
                },
            }
        });
        let _ = tx.send(run.map_err(|payload| {
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string())
        }));
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(detail)) => Err(SweepError::Failed { bench: label, detail }),
        Err(_) => Err(SweepError::Failed {
            bench: label,
            detail: format!("wall-clock timeout after {}s", timeout.as_secs()),
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let timeout_secs = args
        .iter()
        .position(|a| a == "--timeout-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60u64);
    let timeout = Duration::from_secs(timeout_secs);
    let injects: &[u64] = if smoke { &[2_500] } else { &[600, 2_500, 7_000] };

    let mut failed_points: Vec<SweepError> = Vec::new();
    let mut undetected: Vec<String> = Vec::new();
    let mut ordering_errors: Vec<String> = Vec::new();

    for kind in integrity_kinds() {
        let mut t = Table::new([
            "policy", "inject@", "verdict", "detect@", "latency", "issued", "committed", "stores",
            "bus", "exposed", "cycles",
        ]);
        for &inject in injects {
            // Exposure totals in scheme order, for the ordering check.
            let mut totals: Vec<(String, Option<u64>)> = Vec::new();
            for (name, policy) in schemes() {
                let row = match run_point(policy, kind, inject, timeout) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("warning: skipping point: {e}");
                        failed_points.push(e);
                        continue;
                    }
                };
                if policy.authenticate && row.detect_cycle.is_none() {
                    undetected.push(format!("{} {}@{inject}", name, kind.name()));
                }
                if let Some(cause) = row.cause {
                    assert_eq!(cause, kind.cause(), "cause attribution for {name}");
                }
                let x = row.exposure.unwrap_or_default();
                totals.push((name.to_string(), row.detect_cycle.map(|_| x.total())));
                t.push_row([
                    name.to_string(),
                    inject.to_string(),
                    row.verdict.to_string(),
                    row.detect_cycle.map_or("-".into(), |c| c.to_string()),
                    row.detect_cycle.map_or("-".into(), |c| (c - inject).to_string()),
                    x.issued.to_string(),
                    x.committed.to_string(),
                    x.stores_released.to_string(),
                    x.bus_grants.to_string(),
                    x.total().to_string(),
                    row.cycles.to_string(),
                ]);
            }
            // The paper's ordering: each later gate admits at least as
            // much tainted work as the previous, stricter one.
            let chain = ["authen-then-issue", "authen-then-commit", "authen-then-write",
                "authen-then-fetch"];
            let vals: Vec<Option<u64>> = chain
                .iter()
                .map(|n| totals.iter().find(|(name, _)| name == n).and_then(|(_, v)| *v))
                .collect();
            for w in vals.windows(2) {
                if let (Some(a), Some(b)) = (w[0], w[1]) {
                    if a > b {
                        ordering_errors.push(format!(
                            "{}@{inject}: exposure not monotone over the gate chain: {vals:?}",
                            kind.name()
                        ));
                        break;
                    }
                }
            }
        }
        secsim_bench::emit(
            &format!("exposure_{}", kind.name()),
            &format!(
                "Fault campaign — {} injected mid-run: detection latency and \
                 pre-detection exposure per authentication control point",
                kind.name()
            ),
            &t,
        );
    }

    // Verification faults: no data corruption, but the MAC pipeline is
    // delayed or never answers. The cycle fence must contain the
    // dropped-MAC case under every gating policy — no hung points.
    {
        let mut t = Table::new(["policy", "fault", "verdict", "cycles"]);
        // Injected at cycle 0 so the cold-start fills consume the armed
        // delay — later on the victim's working set is cached and no
        // fill would ever pick it up.
        for kind in [FaultKind::MacDelay { extra: 5_000 }, FaultKind::MacDrop] {
            for (name, policy) in schemes() {
                match run_point(policy, kind, 0, timeout) {
                    Ok(o) => t.push_row([
                        name.to_string(),
                        kind.name().to_string(),
                        o.verdict.to_string(),
                        o.cycles.to_string(),
                    ]),
                    Err(e) => {
                        eprintln!("warning: skipping point: {e}");
                        failed_points.push(e);
                    }
                }
            }
        }
        secsim_bench::emit(
            "exposure_mac-faults",
            "Fault campaign — delayed / dropped MAC verification: the cycle fence \
             converts would-be hangs into CycleLimitExceeded",
            &t,
        );
    }

    assert!(
        failed_points.is_empty(),
        "{} campaign point(s) timed out or panicked: {failed_points:?}",
        failed_points.len()
    );
    assert!(
        undetected.is_empty(),
        "integrity faults escaped authenticating policies: {undetected:?}"
    );
    assert!(ordering_errors.is_empty(), "{ordering_errors:?}");
    eprintln!("fault campaign OK: all points bounded, all integrity faults detected, \
               exposure ordering holds");
}
