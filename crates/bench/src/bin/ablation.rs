//! Ablation studies for the model decisions DESIGN.md §2b calls out,
//! plus the *lazy authentication* comparison of the paper's related
//! work ([20, 25]).
//!
//! Sections:
//!  1. counter prediction on/off (the \[19\] decryption scheme)
//!  2. encryption mode: counter vs CBC (+ matching MAC)
//!  3. authen-then-fetch variant: LastRequest tag vs drain
//!  4. MAC latency sensitivity
//!  5. authentication-queue capacity
//!  6. lazy authentication: performance vs vulnerability window

use secsim_attack::{run_exploit, Exploit};
use secsim_bench::{cell, RunOpts, Sweep, SweepPoint};
use secsim_core::{FetchGateVariant, Policy, TreeConfig};
use secsim_cpu::SimConfig;
use secsim_crypto::{CryptoLatency, EncryptionMode, MacScheme};
use secsim_stats::Table;
use secsim_workloads::{BenchId, DATA_BASE};

const BENCHES: [BenchId; 4] = [BenchId::Mcf, BenchId::Art, BenchId::Twolf, BenchId::Swim];
const SEED: u64 = 5;

fn geomean_norm(sweep: &Sweep, policy: Policy, tweak: impl Fn(&mut SimConfig)) -> f64 {
    // One (policy, baseline) pair per benchmark, run as a single grid.
    let points: Vec<SweepPoint> = BENCHES
        .iter()
        .flat_map(|&bench| {
            let tweak = &tweak;
            [policy, Policy::baseline()].into_iter().map(move |p| {
                let mut cfg = SimConfig::paper_256k(p)
                    .with_max_insts(RunOpts::default().max_insts.min(200_000));
                cfg.secure = cfg.secure.with_protected_region(DATA_BASE, bench.profile().footprint);
                tweak(&mut cfg);
                SweepPoint::from_config(bench, SEED, cfg)
            })
        })
        .collect();
    let ipcs: Vec<f64> =
        sweep.run(&points).into_iter().map(|r| r.expect("bench").ipc()).collect();
    let acc: f64 = ipcs.chunks(2).map(|pair| pair[0] / pair[1]).product();
    acc.powf(1.0 / BENCHES.len() as f64)
}

fn section_ctr_predict(sweep: &Sweep) {
    let mut t = Table::new(["policy", "predicted counters [19]", "explicit counter fetches"]);
    for policy in [Policy::authen_then_issue(), Policy::authen_then_commit()] {
        t.push_row([
            policy.to_string(),
            cell(geomean_norm(sweep, policy, |_| {})),
            cell(geomean_norm(sweep, policy, |c| c.secure.ctrl.ctr_predict = false)),
        ]);
    }
    secsim_bench::emit(
        "ablation_ctr_predict",
        "Ablation 1 — counter prediction vs explicit counter fetches (geomean, 4 benchmarks)",
        &t,
    );
}

fn section_enc_mode(sweep: &Sweep) {
    let mut t = Table::new(["policy", "CTR + HMAC", "CBC + CBC-MAC"]);
    for policy in [Policy::authen_then_issue(), Policy::authen_then_commit()] {
        t.push_row([
            policy.to_string(),
            cell(geomean_norm(sweep, policy, |_| {})),
            cell(geomean_norm(sweep, policy, |c| {
                c.secure.ctrl.enc_mode = EncryptionMode::Cbc;
                c.secure.ctrl.mac_scheme = MacScheme::CbcMacAes;
            })),
        ]);
    }
    secsim_bench::emit(
        "ablation_enc_mode",
        "Ablation 2 — encryption mode (CBC also serializes the baseline's decryption)",
        &t,
    );
}

fn section_fetch_variant(sweep: &Sweep) {
    let mut t = Table::new(["policy", "LastRequest tag", "drain"]);
    for policy in [Policy::authen_then_fetch(), Policy::commit_plus_fetch()] {
        t.push_row([
            policy.to_string(),
            cell(geomean_norm(sweep, policy, |_| {})),
            cell(geomean_norm(
                sweep,
                policy.with_fetch_variant(FetchGateVariant::Drain),
                |_| {},
            )),
        ]);
    }
    secsim_bench::emit(
        "ablation_fetch_variant",
        "Ablation 3 — authen-then-fetch implementation variant",
        &t,
    );
}

fn section_mac_latency(sweep: &Sweep) {
    let mut t = Table::new(["mac latency (cyc)", "issue", "commit", "fetch"]);
    for mac in [20u64, 74, 148, 296] {
        t.push_row([
            mac.to_string(),
            cell(geomean_norm(sweep, Policy::authen_then_issue(), |c| {
                c.secure.ctrl.queue.mac_latency = mac;
            })),
            cell(geomean_norm(sweep, Policy::authen_then_commit(), |c| {
                c.secure.ctrl.queue.mac_latency = mac;
            })),
            cell(geomean_norm(sweep, Policy::authen_then_fetch(), |c| {
                c.secure.ctrl.queue.mac_latency = mac;
            })),
        ]);
    }
    secsim_bench::emit(
        "ablation_mac_latency",
        "Ablation 4 — MAC latency sensitivity (the decrypt→verify gap)",
        &t,
    );
}

fn section_queue_capacity(sweep: &Sweep) {
    let mut t = Table::new(["queue capacity", "issue", "commit+fetch"]);
    for cap in [2usize, 4, 16, 64] {
        t.push_row([
            cap.to_string(),
            cell(geomean_norm(sweep, Policy::authen_then_issue(), |c| {
                c.secure.ctrl.queue.capacity = cap;
            })),
            cell(geomean_norm(sweep, Policy::commit_plus_fetch(), |c| {
                c.secure.ctrl.queue.capacity = cap;
            })),
        ]);
    }
    secsim_bench::emit(
        "ablation_queue_capacity",
        "Ablation 5 — authentication queue capacity",
        &t,
    );
}

fn section_lazy(sweep: &Sweep) {
    // Performance: lazy verification under commit gating.
    let mut t = Table::new(["lazy delay (cyc)", "commit norm-IPC", "exploit window (cyc)"]);
    for delay in [0u64, 500, 5_000] {
        let perf = geomean_norm(sweep, Policy::authen_then_commit(), |c| {
            c.secure.ctrl.lazy_delay = delay;
        });
        // Vulnerability window: time between the exploit's leak and the
        // (delayed) exception, measured on the pointer-conversion attack
        // under write-gating (the lazy schemes of [25] gate only
        // writes/outputs).
        let window = {
            let mut policy = Policy::authen_then_write();
            policy.authenticate = true;
            
            run_exploit_with_lazy(Exploit::PointerConversion, policy, delay)
        };
        t.push_row([delay.to_string(), cell(perf), window]);
    }
    secsim_bench::emit(
        "ablation_lazy",
        "Ablation 6 — lazy authentication [20,25]: gating cost vs vulnerable window",
        &t,
    );
}

fn run_exploit_with_lazy(exploit: Exploit, policy: Policy, delay: u64) -> String {
    // The attack crate pins its own config; emulate the lazy window by
    // reporting how much later the exception would fire.
    let out = run_exploit(exploit, policy);
    match out.exception_cycle {
        Some(c) => format!("{} (+{delay} lazy)", c + delay),
        None => "never".into(),
    }
}

fn section_prefetch(sweep: &Sweep) {
    let mut t = Table::new(["policy", "no prefetch", "next-line prefetch"]);
    for policy in
        [Policy::baseline(), Policy::authen_then_issue(), Policy::commit_plus_fetch()]
    {
        t.push_row([
            policy.to_string(),
            cell(geomean_norm(sweep, policy, |_| {})),
            cell(geomean_norm(sweep, policy, |c| c.mem.prefetch_next_line = true)),
        ]);
    }
    secsim_bench::emit(
        "ablation_prefetch",
        "Ablation 7 — next-line prefetch: prefetched lines decrypt AND verify ahead of use",
        &t,
    );
}

fn section_mac_scheme(sweep: &Sweep) {
    let gmac = |c: &mut SimConfig| {
        c.secure.ctrl.mac_scheme = MacScheme::GmacAes;
        c.secure.ctrl.queue.mac_latency = CryptoLatency::paper_reference().gmac_latency();
    };
    let mut t = Table::new(["policy", "HMAC-SHA256 (74 cyc)", "GMAC (26 cyc, parallel GHASH)"]);
    for policy in [
        Policy::authen_then_issue(),
        Policy::authen_then_fetch(),
        Policy::commit_plus_fetch(),
    ] {
        t.push_row([
            policy.to_string(),
            cell(geomean_norm(sweep, policy, |_| {})),
            cell(geomean_norm(sweep, policy, gmac)),
        ]);
    }
    secsim_bench::emit(
        "ablation_mac_scheme",
        "Ablation 8 — MAC scheme: a parallel Galois MAC shrinks the gap the secure \
         policies pay for",
        &t,
    );
}

fn section_tree_organization(sweep: &Sweep) {
    // Trees cover the unified 8 MB region (largest footprint).
    let lines = (8u64 << 20) / 64;
    let chtree =
        |c: &mut SimConfig| c.secure.ctrl.tree = Some(TreeConfig::paper_reference(0x10_0000, lines));
    let bmt =
        |c: &mut SimConfig| c.secure.ctrl.tree = Some(TreeConfig::counter_tree(0x10_0000, lines));
    let mut t = Table::new(["policy", "no tree", "CHTree (data tree)", "counter tree (BMT)"]);
    for policy in [Policy::authen_then_issue(), Policy::authen_then_commit()] {
        t.push_row([
            policy.to_string(),
            cell(geomean_norm(sweep, policy, |_| {})),
            cell(geomean_norm(sweep, policy, chtree)),
            cell(geomean_norm(sweep, policy, bmt)),
        ]);
    }
    secsim_bench::emit(
        "ablation_tree",
        "Ablation 9 — replay-protection tree organization: a counter tree is 8× \
         shallower than CHTree's data tree",
        &t,
    );
}

fn main() {
    let (sweep, _args) = Sweep::from_args();
    section_ctr_predict(&sweep);
    section_enc_mode(&sweep);
    section_fetch_variant(&sweep);
    section_mac_latency(&sweep);
    section_queue_capacity(&sweep);
    section_lazy(&sweep);
    section_prefetch(&sweep);
    section_mac_scheme(&sweep);
    section_tree_organization(&sweep);
}
