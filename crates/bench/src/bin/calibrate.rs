//! Quick calibration sweep: normalized IPC per benchmark per policy.
use secsim_bench::{grid_benches, RunOpts, Sweep, SweepPoint};
use secsim_core::Policy;
use secsim_stats::Table;
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts { max_insts: std::env::var("SECSIM_INSTS").ok().and_then(|s| s.parse().ok()).unwrap_or(300_000), ..RunOpts::default() };
    let policies = [
        ("base", Policy::baseline()),
        ("issue", Policy::authen_then_issue()),
        ("write", Policy::authen_then_write()),
        ("commit", Policy::authen_then_commit()),
        ("fetch", Policy::authen_then_fetch()),
        ("c+f", Policy::commit_plus_fetch()),
        ("c+obf", Policy::commit_plus_obfuscation()),
    ];
    let benches = grid_benches(&sweep, &BenchId::ALL);
    let points: Vec<SweepPoint> = benches
        .iter()
        .flat_map(|&b| policies.iter().map(move |(_, p)| SweepPoint::of(b, *p, &opts)))
        .collect();
    let mut reports = sweep.run(&points).into_iter().map(|r| r.unwrap());
    let mut t = Table::new(["bench", "ipc", "issue", "write", "commit", "fetch", "c+f", "c+obf", "l2miss/ki"]);
    for b in &benches {
        let base = reports.next().expect("grid shape");
        let bipc = base.ipc();
        let mut row = vec![b.to_string(), format!("{bipc:.3}")];
        for _ in policies.iter().skip(1) {
            let r = reports.next().expect("grid shape");
            row.push(format!("{:.3}", r.ipc() / bipc));
        }
        row.push(format!("{:.1}", base.counters.get("l2.miss") as f64 / (base.insts as f64 / 1000.0)));
        t.push_row(row);
    }
    println!("{}", t.to_markdown());
}
