//! Figure 10: normalized IPC with the RUU halved to 64 entries
//! (256 KB L2).

use secsim_bench::{grid_benches, normalized_table, RunOpts, Sweep};
use secsim_core::Policy;
use secsim_cpu::CpuConfig;
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts { cpu: CpuConfig::paper_ruu64(), ..RunOpts::default() };
    let policies = [
        ("issue", Policy::authen_then_issue()),
        ("commit+fetch", Policy::commit_plus_fetch()),
        ("commit", Policy::authen_then_commit()),
        ("write", Policy::authen_then_write()),
    ];
    let t = normalized_table(&sweep, &grid_benches(&sweep, &BenchId::ALL), &policies, &opts);
    secsim_bench::emit(
        "fig10",
        "Figure 10 — normalized IPC, 64-entry RUU, 256KB L2 (baseline: decrypt-only)",
        &t,
    );
}
