//! Figure 9: normalized IPC of authen-then-commit + address obfuscation
//! for three remap-cache sizes (64 KB / 256 KB / 1 MB).
//!
//! With `--server HOST:PORT` the grid is submitted to a running
//! `secsim-serve` instance (see docs/SERVICE.md) instead of simulating
//! in-process; the table is byte-identical either way. Without it,
//! `Sweep::run` executes locally against `results/cache/`.

use secsim_bench::{cell, grid_benches, RunOpts, Sweep, SweepPoint};
use secsim_core::Policy;
use secsim_stats::{Summary, Table};
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let benches = grid_benches(&sweep, &BenchId::ALL);
    let sizes: [(&str, u32); 3] =
        [("64KB", 64 * 1024), ("256KB", 256 * 1024), ("1MB", 1024 * 1024)];
    let mut headers = vec!["bench".to_string()];
    headers.extend(sizes.iter().map(|(l, _)| format!("remap {l}")));
    let mut t = Table::new(headers);
    // Grid: per bench, the baseline plus one obfuscating point per size.
    let mut points = Vec::new();
    for &bench in &benches {
        points.push(SweepPoint::of(bench, Policy::baseline(), &RunOpts::default()));
        for (_, bytes) in sizes {
            let opts = RunOpts { remap_cache_bytes: Some(bytes), ..RunOpts::default() };
            points.push(SweepPoint::of(bench, Policy::commit_plus_obfuscation(), &opts));
        }
    }
    let mut reports = sweep.run(&points).into_iter().map(|r| r.expect("bench").ipc());
    let mut sums = vec![Summary::new(); sizes.len()];
    for &bench in &benches {
        let base = reports.next().expect("grid shape");
        let mut row = vec![bench.to_string()];
        for (i, _) in sizes.iter().enumerate() {
            let norm = reports.next().expect("grid shape") / base;
            sums[i].push(norm.max(1e-9));
            row.push(cell(norm));
        }
        t.push_row(row);
    }
    let mut mean = vec!["MEAN".to_string()];
    mean.extend(sums.iter().map(|s| cell(s.mean())));
    t.push_row(mean);
    secsim_bench::emit(
        "fig9",
        "Figure 9 — normalized IPC vs remap-cache size (commit + obfuscation, 256KB L2)",
        &t,
    );
}
