//! Figure 13: IPC speedup over authen-then-issue under hash-tree
//! authentication.

use secsim_bench::{grid_benches, speedup_over_issue_table, RunOpts, Sweep};
use secsim_core::Policy;
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts { tree: true, ..RunOpts::default() };
    let policies = [
        ("commit", Policy::authen_then_commit()),
        ("commit+fetch", Policy::commit_plus_fetch()),
    ];
    let t = speedup_over_issue_table(&sweep, &grid_benches(&sweep, &BenchId::ALL), &policies, &opts);
    secsim_bench::emit(
        "fig13",
        "Figure 13 — IPC speedup over authen-then-issue, hash-tree authentication",
        &t,
    );
}
