//! The reproduction verifier: checks each of the paper's conclusions
//! programmatically and prints PASS/FAIL. Exit code 0 iff everything
//! holds.
//!
//! This is the "does the repo actually reproduce the paper" gate — run
//! it after any model change:
//!
//! ```text
//! cargo run --release -p secsim-bench --bin verify_repro
//! ```

use secsim_attack::{empirical_matrix, run_exploit, Exploit, SECRET};
use secsim_bench::{L2Size, RunOpts, Sweep, SweepPoint};
use secsim_core::{properties, Policy};
use secsim_crypto::{CryptoLatency, EncryptionMode, MacScheme};
use secsim_cpu::CpuConfig;
use secsim_workloads::BenchId;

struct Verifier {
    failures: u32,
}

impl Verifier {
    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        if ok {
            println!("PASS  {claim} — {detail}");
        } else {
            println!("FAIL  {claim} — {detail}");
            self.failures += 1;
        }
    }
}

fn geomeans(sweep: &Sweep, policies: &[Policy], opts: &RunOpts) -> Vec<f64> {
    const BENCHES: [BenchId; 5] =
        [BenchId::Mcf, BenchId::Art, BenchId::Twolf, BenchId::Swim, BenchId::Wupwise];
    // The whole (bench × policy) grid runs as one parallel sweep;
    // repeated calls hit the in-process memo or the on-disk cache.
    let mut points = Vec::new();
    for bench in BENCHES {
        points.push(SweepPoint::of(bench, Policy::baseline(), opts));
        for p in policies {
            points.push(SweepPoint::of(bench, *p, opts));
        }
    }
    let mut reports = sweep.run(&points).into_iter().map(|r| r.expect("bench").ipc());
    let mut base = 1.0f64;
    let mut acc = vec![1.0f64; policies.len()];
    for _ in BENCHES {
        base *= reports.next().expect("grid shape");
        for a in acc.iter_mut() {
            *a *= reports.next().expect("grid shape");
        }
    }
    acc.iter().map(|a| (a / base).powf(1.0 / BENCHES.len() as f64)).collect()
}

fn main() -> std::process::ExitCode {
    let (sweep, _args) = Sweep::from_args();
    let mut v = Verifier { failures: 0 };
    let opts = RunOpts { max_insts: 150_000, ..RunOpts::default() };

    // ---- Table 1 ----
    let lat = CryptoLatency::paper_reference();
    let ctr = lat.latency_gap(EncryptionMode::CounterMode, MacScheme::HmacSha256, 200, 64);
    let cbc = lat.latency_gap(EncryptionMode::Cbc, MacScheme::CbcMacAes, 200, 64);
    v.check(
        "Table 1: CTR+HMAC gap = hash latency; CBC+CBC-MAC gap = 0 but slow decrypt",
        ctr.gap() == 74 && cbc.gap() == 0 && cbc.decrypt > ctr.decrypt,
        format!("ctr gap {}, cbc gap {}, decrypt {} vs {}", ctr.gap(), cbc.gap(), cbc.decrypt, ctr.decrypt),
    );

    // ---- Table 2 (empirical vs claimed, all policies, all exploits) ----
    let mut all_match = true;
    let mut mismatch = String::new();
    for row in empirical_matrix() {
        let claimed = properties(&row.policy).prevents_fetch_side_channel;
        if row.any_address_leak() == claimed {
            all_match = false;
            mismatch = format!("{}", row.policy);
        }
    }
    v.check(
        "Table 2: empirical exploit matrix matches claimed properties (7 policies × 6 exploits)",
        all_match,
        if all_match { "cell-for-cell".into() } else { format!("mismatch at {mismatch}") },
    );

    // ---- Exploit recovery exactness ----
    let pc = run_exploit(Exploit::PointerConversion, Policy::authen_then_commit());
    v.check(
        "§3.2.1: pointer conversion recovers the full secret under authen-then-commit",
        pc.recovered == Some(SECRET),
        format!("recovered {:x?}", pc.recovered),
    );
    let bs = run_exploit(Exploit::BinarySearch, Policy::authen_then_write());
    v.check(
        "§3.2.2: binary search recovers the secret in exactly 32 trials",
        bs.recovered == Some(SECRET) && bs.trials == 32,
        format!("recovered {:x?} in {} trials", bs.recovered, bs.trials),
    );

    // ---- Figure 7 ordering ----
    let ps = [
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::authen_then_fetch(),
        Policy::commit_plus_fetch(),
        Policy::authen_then_issue(),
        Policy::commit_plus_obfuscation(),
    ];
    let g = geomeans(&sweep, &ps, &opts);
    let (write, commit, fetch, cf, issue, obf) = (g[0], g[1], g[2], g[3], g[4], g[5]);
    v.check(
        "Figure 7: write ≥ commit ≥ fetch ≥ commit+fetch ≥ issue, all < baseline",
        write >= commit && commit >= fetch && fetch >= cf && cf >= issue && write < 1.0001,
        format!("w {write:.3} c {commit:.3} f {fetch:.3} cf {cf:.3} i {issue:.3}"),
    );
    v.check(
        "Figure 7: write within 5% of baseline; issue and obfuscation are the costly schemes",
        write > 0.95 && issue < 0.9 && obf < commit,
        format!("write {write:.3}, issue {issue:.3}, obf {obf:.3}"),
    );

    // ---- Figure 9 monotonicity ----
    let obf_at = |bytes: u32| {
        let o = RunOpts { remap_cache_bytes: Some(bytes), ..opts };
        geomeans(&sweep, &[Policy::commit_plus_obfuscation()], &o)[0]
    };
    let (o64, o256, o1m) = (obf_at(64 << 10), obf_at(256 << 10), obf_at(1 << 20));
    v.check(
        "Figure 9: IPC improves with remap-cache size",
        o64 <= o256 + 1e-9 && o256 <= o1m + 1e-9,
        format!("64K {o64:.3} ≤ 256K {o256:.3} ≤ 1M {o1m:.3}"),
    );

    // ---- Figure 10: RUU sensitivity ----
    let small = RunOpts { cpu: CpuConfig::paper_ruu64(), ..opts };
    let commit_small = geomeans(&sweep, &[Policy::authen_then_commit()], &small)[0];
    let issue_small = geomeans(&sweep, &[Policy::authen_then_issue()], &small)[0];
    v.check(
        "Figures 10–11: halving the RUU hurts commit-gating more than issue-gating",
        (commit - commit_small) > (issue - issue_small) - 1e-9 && commit_small >= issue_small,
        format!(
            "commit {commit:.3}→{commit_small:.3}, issue {issue:.3}→{issue_small:.3}"
        ),
    );

    // ---- Figures 12–13: hash tree ----
    let tree_opts = RunOpts { tree: true, ..opts };
    let gt = geomeans(
        &sweep,
        &[Policy::authen_then_write(), Policy::authen_then_commit(), Policy::authen_then_issue()],
        &tree_opts,
    );
    v.check(
        "Figure 12: hash-tree authentication costs every scheme; write ≈ commit compress",
        gt[0] < write && gt[2] < issue && (gt[0] - gt[1]).abs() < 0.05,
        format!("tree: write {:.3} commit {:.3} issue {:.3}", gt[0], gt[1], gt[2]),
    );
    v.check(
        "Figure 13: commit's advantage over issue grows under the tree",
        gt[1] / gt[2] > commit / issue,
        format!("tree ratio {:.3} vs flat {:.3}", gt[1] / gt[2], commit / issue),
    );

    // ---- L2 size (Fig 7 a/b vs c/d) ----
    let big = RunOpts { l2: L2Size::M1, ..opts };
    let issue_1m = geomeans(&sweep, &[Policy::authen_then_issue()], &big)[0];
    v.check(
        "Figure 7c/d: ranking stable and impact not worse with the 1MB L2",
        issue_1m >= issue - 0.02,
        format!("issue 256K {issue:.3} vs 1M {issue_1m:.3}"),
    );

    println!();
    if v.failures == 0 {
        println!("reproduction verified: every claim holds");
        std::process::ExitCode::SUCCESS
    } else {
        println!("{} claim(s) FAILED", v.failures);
        std::process::ExitCode::FAILURE
    }
}
