//! Regenerates every table and figure in sequence (see DESIGN.md's
//! experiment index). Results land in `results/`.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    // Forward sweep knobs (--jobs / --no-cache) to every experiment.
    let fwd: Vec<String> = std::env::args().skip(1).collect();
    for bin in
        [
        "table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "ablation",
    ]
    {
        eprintln!("== running {bin} ==");
        let status =
            Command::new(dir.join(bin)).args(&fwd).status().expect("spawn experiment binary");
        assert!(status.success(), "{bin} failed");
    }
    eprintln!("all experiments complete; see results/");
}
