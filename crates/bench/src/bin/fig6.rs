//! Figure 6: the timeline difference between authen-then-fetch and
//! authen-then-issue on two dependent external fetches.
//!
//! The second fetch's address depends on the first fetch's data. Under
//! *authen-then-issue* the dependent instruction may not even issue until
//! verification completes; under *authen-then-fetch* it issues as soon as
//! the data decrypts, computes the address, and only the *bus grant*
//! waits for the verification watermark — overlapping address
//! computation with authentication.

use secsim_core::Policy;
use secsim_cpu::{SimConfig, SimSession};
use secsim_isa::{Asm, FlatMem, MemIo, Reg};
use secsim_stats::Table;

fn two_fetch_chain() -> (FlatMem, u32) {
    let mut a = Asm::new(0x1000);
    a.li(Reg::R1, 0x10_0000);
    a.lw(Reg::R1, Reg::R1, 0); // fetch 1
    // some address computation between the fetches
    a.addi(Reg::R1, Reg::R1, 64);
    a.addi(Reg::R1, Reg::R1, -64);
    a.lw(Reg::R2, Reg::R1, 0); // fetch 2 (depends on fetch 1)
    a.halt();
    let mut mem = FlatMem::new(0x1000, 4 << 20);
    mem.load_words(0x1000, &a.assemble().expect("assembles"));
    mem.write_u32(0x10_0000, 0x20_0000); // fetch 1 yields fetch 2's address
    (mem, 0x1000)
}

fn main() {
    let (mem, entry) = two_fetch_chain();
    let mut t = Table::new(["policy", "fetch1 granted", "fetch2 granted", "gap", "total cycles"]);
    for policy in [
        Policy::baseline(),
        Policy::authen_then_fetch(),
        Policy::authen_then_issue(),
    ] {
        let cfg = SimConfig::paper_256k(policy);
        let r = SimSession::new(&cfg).trace_bus(true).run(&mut mem.clone(), entry).into_report();
        let grants: Vec<u64> = r
            .bus_events
            .iter()
            .filter(|e| e.kind == secsim_mem::BusKind::DataFetch)
            .map(|e| e.cycle)
            .collect();
        assert_eq!(grants.len(), 2, "expected exactly two data fetches");
        t.push_row([
            policy.to_string(),
            grants[0].to_string(),
            grants[1].to_string(),
            (grants[1] - grants[0]).to_string(),
            r.cycles.to_string(),
        ]);
    }
    secsim_bench::emit(
        "fig6",
        "Figure 6 — two dependent fetches: authen-then-fetch overlaps address \
         computation with verification; authen-then-issue serializes them",
        &t,
    );
}
