//! Figure 11: IPC speedup over authen-then-issue with a 64-entry RUU
//! (256 KB L2).

use secsim_bench::{grid_benches, speedup_over_issue_table, RunOpts, Sweep};
use secsim_core::Policy;
use secsim_cpu::CpuConfig;
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts { cpu: CpuConfig::paper_ruu64(), ..RunOpts::default() };
    let policies = [
        ("commit", Policy::authen_then_commit()),
        ("commit+fetch", Policy::commit_plus_fetch()),
    ];
    let t = speedup_over_issue_table(&sweep, &grid_benches(&sweep, &BenchId::ALL), &policies, &opts);
    secsim_bench::emit(
        "fig11",
        "Figure 11 — IPC speedup over authen-then-issue, 64-entry RUU, 256KB L2",
        &t,
    );
}
