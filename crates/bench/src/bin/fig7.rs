//! Figure 7 (a–d): normalized IPC of the six authentication schemes,
//! for SPEC2000 INT and FP, under 256 KB and 1 MB L2 caches.
//!
//! Usage: `fig7 [--l2 256k|1m|both]`

use secsim_bench::{grid_benches, normalized_table, L2Size, RunOpts, Sweep};
use secsim_core::Policy;
use secsim_workloads::BenchId;

fn run_l2(sweep: &Sweep, l2: L2Size, panel_int: &str, panel_fp: &str) {
    let opts = RunOpts { l2, ..RunOpts::default() };
    let policies = [
        ("issue", Policy::authen_then_issue()),
        ("write", Policy::authen_then_write()),
        ("commit", Policy::authen_then_commit()),
        ("fetch", Policy::authen_then_fetch()),
        ("commit+fetch", Policy::commit_plus_fetch()),
        ("commit+obf", Policy::commit_plus_obfuscation()),
    ];
    // External `--program` workloads ride along on the INT panel.
    let t = normalized_table(sweep, &grid_benches(sweep, &BenchId::INT), &policies, &opts);
    secsim_bench::emit(
        &format!("fig7{panel_int}"),
        &format!(
            "Figure 7({panel_int}) — normalized IPC, SPEC2000 INT, {} L2 (baseline: decrypt-only)",
            l2.label()
        ),
        &t,
    );
    let t = normalized_table(sweep, &BenchId::FP, &policies, &opts);
    secsim_bench::emit(
        &format!("fig7{panel_fp}"),
        &format!(
            "Figure 7({panel_fp}) — normalized IPC, SPEC2000 FP, {} L2 (baseline: decrypt-only)",
            l2.label()
        ),
        &t,
    );
}

fn main() {
    let (sweep, args) = Sweep::from_args();
    let arg = args.iter().position(|a| a == "--l2").and_then(|i| args.get(i + 1)).cloned();
    let which = arg.as_deref().or(args.last().map(String::as_str)).unwrap_or("both");
    if which != "1m" {
        run_l2(&sweep, L2Size::K256, "a", "b");
    }
    if which != "256k" {
        run_l2(&sweep, L2Size::M1, "c", "d");
    }
}
