//! Figure 8: IPC speedup of authen-then-commit, authen-then-write and
//! commit+fetch over authen-then-issue (256 KB L2).

use secsim_bench::{grid_benches, speedup_over_issue_table, RunOpts, Sweep};
use secsim_core::Policy;
use secsim_workloads::BenchId;

fn main() {
    let (sweep, _args) = Sweep::from_args();
    let opts = RunOpts::default();
    let policies = [
        ("commit", Policy::authen_then_commit()),
        ("write", Policy::authen_then_write()),
        ("commit+fetch", Policy::commit_plus_fetch()),
    ];
    let t = speedup_over_issue_table(&sweep, &grid_benches(&sweep, &BenchId::ALL), &policies, &opts);
    secsim_bench::emit(
        "fig8",
        "Figure 8 — IPC speedup over authen-then-issue, 256KB L2",
        &t,
    );
}
