//! Table 2: security characteristics per policy — measured empirically
//! by running the full exploit suite, then compared against the paper's
//! claims.

use secsim_attack::{empirical_matrix, matrix_table};
use secsim_core::{properties, Policy};
use secsim_stats::Table;

fn main() {
    let rows = empirical_matrix();
    secsim_bench::emit(
        "table2_empirical",
        "Table 2 (empirical) — exploit outcomes per policy",
        &matrix_table(&rows),
    );

    // The static (claimed) matrix, for the other three columns.
    let mut t = Table::new([
        "policy",
        "prevents fetch side-channel",
        "precise exception",
        "auth memory state",
        "auth processor state",
    ]);
    for policy in [
        Policy::authen_then_issue(),
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::authen_then_fetch(),
        Policy::commit_plus_fetch(),
        Policy::commit_plus_obfuscation(),
    ] {
        let p = properties(&policy);
        let y = |b: bool| if b { "yes" } else { "-" };
        t.push_row([
            policy.to_string(),
            y(p.prevents_fetch_side_channel).into(),
            y(p.precise_exception).into(),
            y(p.authenticated_memory_state).into(),
            y(p.authenticated_processor_state).into(),
        ]);
    }
    secsim_bench::emit("table2_properties", "Table 2 — security characteristics", &t);
}
