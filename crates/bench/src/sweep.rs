//! Parallel sweep execution over a grid of simulation points, backed by
//! the content-addressed [`ResultStore`].
//!
//! Every figure/table binary boils down to "run the pipeline over a
//! grid of `(benchmark, SimConfig)` points and aggregate". [`Sweep::run`]
//! executes such a grid across a worker pool (plain `std::thread` —
//! no external dependencies) and returns the reports **in grid order**,
//! so results are byte-identical to a serial run regardless of the
//! worker count.
//!
//! Completed points are persisted in the store under `results/cache/`
//! keyed by a stable fingerprint of the *full* run configuration (see
//! [`SweepPoint::key`]). A second invocation of any experiment binary
//! reloads its reports instead of re-simulating. Cache entries are
//! invalidated implicitly: any change to the benchmark name, seed, or
//! any `SimConfig` field changes the key, and model changes that alter
//! results without changing the config must bump [`CACHE_VERSION`].
//!
//! Concurrent executors — worker threads of one sweep, several sweeps
//! in one process, or separate processes sharing a store directory —
//! deduplicate in flight: an in-process gate plus the store's
//! cross-process claim files guarantee each missing point is simulated
//! exactly once, with everyone else fanning in on the published result
//! (see [`Sweep::stats`]).
//!
//! Knobs:
//!
//! * `SECSIM_JOBS` / `--jobs N` — worker count (default: all cores).
//! * `--no-cache` — skip both store lookup and store writes.
//! * `--server ADDR` — don't simulate locally at all: submit the grid
//!   to a running `secsim-serve` instance (see `docs/SERVICE.md`) and
//!   stream results back. Everything else (output, tables) is
//!   unchanged — the binary becomes a thin client.
//! * `--store-bytes N` (or `SECSIM_STORE_BYTES`) — LRU byte budget for
//!   the local store (0 = unlimited).
//! * `--trace FILE` — after the grid completes, re-run the first point
//!   with event tracing and write a Chrome `trace_event` JSON to FILE
//!   (load it in Perfetto / `chrome://tracing`).
//! * `--program FILE` — assemble (`.sasm`) or load (`.sprog`) an
//!   external program and append it to the binary's benchmark grid as a
//!   [`BenchId::External`] entry (repeatable). External points cache
//!   like built-ins, keyed by the program's content hash.
//! * `SECSIM_RESULTS` — relocates `results/`, and the store with it.
//!
//! # Examples
//!
//! ```no_run
//! use secsim_bench::{RunOpts, Sweep, SweepPoint};
//! use secsim_core::Policy;
//! use secsim_workloads::BenchId;
//!
//! let sweep = Sweep::new();
//! let points: Vec<SweepPoint> = [BenchId::Mcf, BenchId::Gzip]
//!     .map(|b| SweepPoint::of(b, Policy::authen_then_commit(), &RunOpts::default()))
//!     .to_vec();
//! for r in sweep.run(&points) {
//!     match r {
//!         Ok(report) => println!("IPC {:.3}", report.ipc()),
//!         Err(e) => eprintln!("skipped: {e}"),
//!     }
//! }
//! ```

use crate::store::{Claim, ResultStore};
use crate::{results_dir, sim_config_id, RunOpts};
use secsim_core::Policy;
use secsim_cpu::{SimConfig, SimReport, SimSession, TraceConfig};
use secsim_stats::{StableHash, StableHasher};
use secsim_workloads::{BenchId, ParseBenchError, ProgramSource};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a sweep point produced no report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A stringly-typed entry point named a benchmark that does not
    /// exist (see [`BenchId`]).
    UnknownBench(String),
    /// The simulation itself panicked or was cut off by a watchdog; the
    /// grid keeps running and the caller decides how to report the
    /// hole.
    Failed {
        /// Benchmark of the failing point.
        bench: String,
        /// Panic payload, when it was a string.
        detail: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownBench(name) => write!(f, "unknown benchmark {name:?}"),
            SweepError::Failed { bench, detail } => {
                write!(f, "simulation of {bench} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ParseBenchError> for SweepError {
    fn from(e: ParseBenchError) -> Self {
        SweepError::UnknownBench(e.name().to_string())
    }
}

/// Salt for every cache key. Bump when the simulator's *behaviour*
/// changes in a way that is not visible in `SimConfig` (model fixes,
/// workload-generation changes), so stale entries can never be
/// mistaken for fresh results.
pub const CACHE_VERSION: u64 = 2;

/// One cell of a sweep grid: a workload plus the exact configuration to
/// simulate it under.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Benchmark identity.
    pub bench: BenchId,
    /// Workload seed.
    pub seed: u64,
    /// Full simulator configuration.
    pub cfg: SimConfig,
    /// Functional warmup prefix restored from a shared checkpoint
    /// before timed simulation (0 = cold start). Part of the cache key:
    /// a warm report and a cold report of the same config are different
    /// results.
    pub warmup_insts: u64,
}

impl SweepPoint {
    /// The standard-experiment point, from a typed benchmark identity.
    pub fn of(bench: BenchId, policy: Policy, opts: &RunOpts) -> Self {
        Self {
            bench,
            seed: opts.seed,
            cfg: sim_config_id(bench, policy, opts),
            warmup_insts: opts.warmup_insts,
        }
    }

    /// A point with a hand-built configuration (ablations). Starts
    /// cold; set [`warmup_insts`](SweepPoint::warmup_insts) directly to
    /// warm it.
    pub fn from_config(bench: BenchId, seed: u64, cfg: SimConfig) -> Self {
        Self { bench, seed, cfg, warmup_insts: 0 }
    }

    /// Stable cache key: a fingerprint of `(CACHE_VERSION, bench, seed,
    /// cfg)`. Identical across processes, platforms and worker counts —
    /// a built-in benchmark hashes by its canonical *name*, so those
    /// keys are unchanged from the stringly-typed era, while an external
    /// program additionally hashes its content fingerprint so two
    /// programs sharing a file name can never collide in the cache.
    pub fn key(&self) -> u64 {
        let mut h = StableHasher::new();
        CACHE_VERSION.stable_hash(&mut h);
        self.bench.name().stable_hash(&mut h);
        if let Some(hash) = self.bench.external_hash() {
            "external".stable_hash(&mut h);
            hash.stable_hash(&mut h);
        }
        self.seed.stable_hash(&mut h);
        self.cfg.stable_hash(&mut h);
        self.warmup_insts.stable_hash(&mut h);
        h.finish()
    }

    fn run(&self) -> Result<SimReport, SweepError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::with_workload(self.bench, self.seed, |w| {
                let start =
                    crate::checkpoint::warm_start(self.bench, self.seed, self.warmup_insts, w);
                SimSession::new(&self.cfg).resume_from(start).run(&mut w.mem, w.entry).into_report()
            })
        }))
        .map_err(|payload| {
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            SweepError::Failed { bench: self.bench.name().to_string(), detail }
        })
    }
}

/// In-process fan-in gate: the first worker to hit a missing key owns
/// it; everyone else blocks here until the owner publishes the outcome.
#[derive(Debug, Default)]
struct Gate {
    outcome: Mutex<Option<Result<SimReport, SweepError>>>,
    ready: Condvar,
}

impl Gate {
    fn publish(&self, out: &Result<SimReport, SweepError>) {
        *self.outcome.lock().expect("gate poisoned") = Some(out.clone());
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<SimReport, SweepError> {
        let mut slot = self.outcome.lock().expect("gate poisoned");
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("gate poisoned");
        }
        slot.clone().expect("loop exits on Some")
    }
}

/// Execution counters of one [`Sweep`] (exactly-once verification and
/// the server's `status` payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Points this sweep actually simulated (ran the pipeline for).
    pub simulated: u64,
    /// Points served by blocking on another in-process worker's
    /// simulation of the same key (in-flight fan-in).
    pub fanin: u64,
    /// Points served from the in-process memo.
    pub memo_hits: u64,
}

/// The parallel, deduplicating, store-backed sweep executor. See the
/// module docs.
#[derive(Debug)]
pub struct Sweep {
    jobs: usize,
    store: Option<ResultStore>,
    /// `--server ADDR`: route grids to a `secsim-serve` instance
    /// instead of simulating in-process.
    server: Option<String>,
    /// Retry/backoff/timeout policy for the server path
    /// (`--client-timeout`, `--client-retries`).
    retry: crate::client::RetryPolicy,
    /// Chrome-trace output requested via `--trace FILE`; consumed by the
    /// first grid that runs.
    trace_out: Mutex<Option<PathBuf>>,
    /// In-process memo so repeated grids (verify_repro's geomeans, the
    /// shared baselines of the figure tables) simulate at most once per
    /// process even with caching disabled.
    memo: Mutex<HashMap<u64, SimReport>>,
    /// Keys currently being simulated by some worker of this sweep;
    /// concurrent requests for the same key block on the gate instead of
    /// duplicating the run.
    inflight: Mutex<HashMap<u64, Arc<Gate>>>,
    simulated: AtomicU64,
    fanin: AtomicU64,
    memo_hits: AtomicU64,
    /// External programs collected from `--program FILE` arguments;
    /// figure/table binaries append these to their benchmark grids.
    externals: Vec<BenchId>,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

impl Sweep {
    /// A sweep with the default worker count (`SECSIM_JOBS`, else all
    /// cores) and the default store directory (`results/cache`).
    pub fn new() -> Self {
        let jobs = std::env::var("SECSIM_JOBS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self {
            jobs,
            store: Some(ResultStore::new(results_dir().join("cache"))),
            server: None,
            retry: crate::client::RetryPolicy::default(),
            trace_out: Mutex::new(None),
            memo: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            simulated: AtomicU64::new(0),
            fanin: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            externals: Vec::new(),
        }
    }

    /// A sweep configured from the process arguments: consumes
    /// `--jobs N`, `--no-cache`, `--server ADDR`, `--client-timeout S`,
    /// `--client-retries N`, `--store-bytes N`, `--trace FILE` and
    /// `--program FILE`, returning the remaining arguments (without the
    /// program name) for the binary's own parsing.
    pub fn from_args() -> (Self, Vec<String>) {
        let mut sweep = Self::new();
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--jobs" => {
                    let n = args.next().and_then(|s| s.parse().ok()).filter(|&n| n >= 1);
                    let Some(n) = n else {
                        eprintln!("error: --jobs needs a positive integer");
                        std::process::exit(2);
                    };
                    sweep = sweep.with_jobs(n);
                }
                "--no-cache" => sweep = sweep.without_cache(),
                "--server" => {
                    let Some(addr) = args.next() else {
                        eprintln!("error: --server needs an ADDR (host:port)");
                        std::process::exit(2);
                    };
                    sweep = sweep.with_server(addr);
                }
                "--client-timeout" => {
                    let n = args.next().and_then(|s| s.parse::<u64>().ok()).filter(|&n| n >= 1);
                    let Some(n) = n else {
                        eprintln!("error: --client-timeout needs a positive number of seconds");
                        std::process::exit(2);
                    };
                    sweep.retry.read_timeout = std::time::Duration::from_secs(n);
                }
                "--client-retries" => {
                    let n = args.next().and_then(|s| s.parse::<u32>().ok()).filter(|&n| n >= 1);
                    let Some(n) = n else {
                        eprintln!("error: --client-retries needs a positive integer");
                        std::process::exit(2);
                    };
                    sweep.retry.attempts = n;
                }
                "--store-bytes" => {
                    let n = args.next().and_then(|s| s.parse::<u64>().ok());
                    let Some(n) = n else {
                        eprintln!("error: --store-bytes needs a byte count (0 = unlimited)");
                        std::process::exit(2);
                    };
                    sweep = sweep.with_store_bytes(n);
                }
                "--trace" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --trace needs an output file");
                        std::process::exit(2);
                    };
                    sweep = sweep.with_trace_out(PathBuf::from(path));
                }
                "--program" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --program needs a .sasm or .sprog file");
                        std::process::exit(2);
                    };
                    match ProgramSource::from_arg(&path) {
                        Ok(src) => sweep.externals.push(src.bench_id()),
                        Err(e) => {
                            eprintln!("error: --program {path}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                _ => rest.push(arg),
            }
        }
        (sweep, rest)
    }

    /// External programs collected from `--program FILE`, in argument
    /// order. Figure/table binaries append these to their grids so an
    /// external workload rides through the same policies as built-ins.
    pub fn externals(&self) -> &[BenchId] {
        &self.externals
    }

    /// Requests a Chrome-trace JSON of the first point of the next grid
    /// (what `--trace FILE` sets up).
    pub fn with_trace_out(self, path: PathBuf) -> Self {
        *self.trace_out.lock().expect("trace_out poisoned") = Some(path);
        self
    }

    /// Overrides the worker count (1 = serial).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        assert!(jobs >= 1);
        self.jobs = jobs;
        self
    }

    /// Disables the persistent store (the in-process memo remains).
    pub fn without_cache(mut self) -> Self {
        self.store = None;
        self
    }

    /// Redirects the persistent store.
    pub fn with_cache_dir(mut self, dir: PathBuf) -> Self {
        self.store = Some(ResultStore::new(dir));
        self
    }

    /// Replaces the persistent store wholesale (budget, claim deadline
    /// and all — the server configures its store this way).
    pub fn with_store(mut self, store: ResultStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Applies an LRU byte budget to the store (0 = unlimited).
    pub fn with_store_bytes(mut self, bytes: u64) -> Self {
        self.store = self.store.map(|s| s.with_budget((bytes > 0).then_some(bytes)));
        self
    }

    /// Routes [`Sweep::run`] grids to a `secsim-serve` instance at
    /// `addr` instead of simulating in-process.
    pub fn with_server(mut self, addr: String) -> Self {
        self.server = Some(addr);
        self
    }

    /// Overrides the retry/backoff/timeout policy of the server path.
    pub fn with_retry(mut self, retry: crate::client::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The server address grids are routed to, if any.
    pub fn server(&self) -> Option<&str> {
        self.server.as_deref()
    }

    /// The persistent store, if caching is enabled.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Execution counters so far (exactly-once verification).
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            simulated: self.simulated.load(Ordering::Relaxed),
            fanin: self.fanin.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
        }
    }

    /// Runs every point, in parallel, returning one `Result` per point
    /// **in grid order** — an `Err` marks a point whose simulation
    /// panicked, and the rest of the grid still completes. Stored points
    /// are loaded, fresh points are simulated exactly once (concurrent
    /// requests fan in) and persisted.
    ///
    /// With [`with_server`](Sweep::with_server) configured, the grid is
    /// submitted to the remote `secsim-serve` instance instead; a
    /// transport failure aborts the process (a half-remote grid would
    /// silently skew every downstream table).
    pub fn run(&self, points: &[SweepPoint]) -> Vec<Result<SimReport, SweepError>> {
        if let Some(addr) = &self.server {
            match crate::client::run_sweep_with(addr, points, self.retry) {
                Ok((results, stats)) => {
                    if stats.reconnects > 0 {
                        eprintln!(
                            "note: --server {addr}: recovered from {} disconnect(s) \
                             ({} resume(s), {} resubmission(s), {} timeout(s))",
                            stats.reconnects, stats.resumes, stats.resubmits, stats.timeouts
                        );
                    }
                    return results;
                }
                Err(e) => {
                    eprintln!("error: --server {addr}: {e}");
                    std::process::exit(1);
                }
            }
        }
        let mut slots: Vec<Mutex<Option<Result<SimReport, SweepError>>>> =
            Vec::with_capacity(points.len());
        slots.resize_with(points.len(), || Mutex::new(None));
        let todo: Vec<usize> = {
            // Memo prepass keeps fully-warm grids (repeated tables in
            // one binary) from spawning workers at all.
            let memo = self.memo.lock().expect("memo poisoned");
            let mut todo = Vec::new();
            for (i, p) in points.iter().enumerate() {
                match memo.get(&p.key()) {
                    Some(r) => {
                        self.memo_hits.fetch_add(1, Ordering::Relaxed);
                        *slots[i].lock().expect("slot") = Some(Ok(r.clone()));
                    }
                    None => todo.push(i),
                }
            }
            todo
        };

        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(todo.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = todo.get(n) else { break };
                    *slots[i].lock().expect("slot") = Some(self.run_point(&points[i]));
                });
            }
        });

        if let Some(path) = self.trace_out.lock().expect("trace_out poisoned").take() {
            if let Some(p) = points.first() {
                write_chrome_trace(p, &path);
            }
        }
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot poisoned").expect("every slot filled"))
            .collect()
    }

    /// Runs one point through the full dedup stack: in-process memo →
    /// in-flight gate → store lookup → cross-process claim → simulate.
    /// Safe to call from any number of threads concurrently (the server
    /// worker pool does); each distinct key simulates at most once per
    /// store, and everyone else fans in.
    pub fn run_point(&self, p: &SweepPoint) -> Result<SimReport, SweepError> {
        let key = p.key();
        if let Some(r) = self.memo.lock().expect("memo poisoned").get(&key) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r.clone());
        }
        let gate = {
            use std::collections::hash_map::Entry;
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            match inflight.entry(key) {
                Entry::Occupied(e) => {
                    // Another worker owns this key: fan in on its gate.
                    let gate = Arc::clone(e.get());
                    drop(inflight);
                    self.fanin.fetch_add(1, Ordering::Relaxed);
                    return gate.wait();
                }
                Entry::Vacant(v) => Arc::clone(v.insert(Arc::new(Gate::default()))),
            }
        };
        let out = self.resolve_uncontended(p, key);
        if let Ok(r) = &out {
            self.memo.lock().expect("memo poisoned").insert(key, r.clone());
        }
        // Publish-before-remove: a worker arriving after the removal
        // finds the memo entry instead; one arriving before holds the
        // gate and gets the outcome directly. No window re-simulates.
        gate.publish(&out);
        self.inflight.lock().expect("inflight poisoned").remove(&key);
        out
    }

    /// The store-level half of [`run_point`](Sweep::run_point), entered
    /// by exactly one in-process worker per key.
    fn resolve_uncontended(&self, p: &SweepPoint, key: u64) -> Result<SimReport, SweepError> {
        let Some(store) = &self.store else { return self.simulate(p) };
        let bench = p.bench.name();
        if let Some(r) = store.load(bench, key) {
            return Ok(r);
        }
        match store.claim(key) {
            Claim::Won(ticket) => {
                // Double-check after winning: a concurrent process may
                // have published the entry (and released its claim)
                // between our miss above and this claim. Owners always
                // write before releasing, so a recheck hit is final.
                if let Some(r) = store.load(bench, key) {
                    drop(ticket);
                    return Ok(r);
                }
                let out = self.simulate(p);
                if let Ok(r) = &out {
                    store.put(bench, key, r);
                }
                drop(ticket);
                out
            }
            Claim::Lost => {
                // A concurrent process owns the point; wait for its
                // entry. If the owner vanished without publishing,
                // simulate after all — duplicated work beats a wrong or
                // missing result.
                match store.await_entry(bench, key) {
                    Some(r) => Ok(r),
                    None => {
                        let out = self.simulate(p);
                        if let Ok(r) = &out {
                            store.put(bench, key, r);
                        }
                        out
                    }
                }
            }
        }
    }

    fn simulate(&self, p: &SweepPoint) -> Result<SimReport, SweepError> {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        p.run()
    }

    /// Runs a single point (store- and memo-aware).
    pub fn get(
        &self,
        bench: BenchId,
        policy: Policy,
        opts: &RunOpts,
    ) -> Result<SimReport, SweepError> {
        let point = SweepPoint::of(bench, policy, opts);
        self.run(std::slice::from_ref(&point)).pop().expect("one point, one result")
    }
}

/// Re-runs `p` with event tracing on and writes the Chrome
/// `trace_event` JSON to `path` (the `--trace FILE` backend).
fn write_chrome_trace(p: &SweepPoint, path: &Path) {
    let run = crate::with_workload(p.bench, p.seed, |w| {
        let start = crate::checkpoint::warm_start(p.bench, p.seed, p.warmup_insts, w);
        SimSession::new(&p.cfg)
            .resume_from(start)
            .trace(TraceConfig::default())
            .run(&mut w.mem, w.entry)
            .into_run()
    });
    let Some(trace) = run.trace else { return };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = fs::create_dir_all(dir);
        }
    }
    match fs::write(path, trace.to_chrome().render()) {
        Ok(()) => eprintln!(
            "[chrome trace of {} ({} cycles) written to {}]",
            p.bench,
            run.report.cycles,
            path.display()
        ),
        Err(e) => eprintln!("error: failed to write trace {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOpts {
        RunOpts { max_insts: 5_000, ..RunOpts::default() }
    }

    #[test]
    fn key_is_stable_and_config_sensitive() {
        let a = SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts());
        let b = SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts());
        assert_eq!(a.key(), b.key());
        let c = SweepPoint::of(BenchId::Mcf, Policy::authen_then_issue(), &opts());
        assert_ne!(a.key(), c.key());
        let d = SweepPoint::of(BenchId::Gzip, Policy::authen_then_commit(), &opts());
        assert_ne!(a.key(), d.key());
        let e =
            SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &RunOpts { seed: 7, ..opts() });
        assert_ne!(a.key(), e.key());
    }

    #[test]
    fn unknown_bench_is_typed_error() {
        let err: SweepError = "nope".parse::<BenchId>().unwrap_err().into();
        assert_eq!(err, SweepError::UnknownBench("nope".to_string()));
    }

    #[test]
    fn external_points_key_by_content_hash() {
        use secsim_workloads::{assemble_named, register_program};
        let mk = |name: &str, iters: i64| {
            let src = format!("addi r1, r0, {iters}\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n");
            register_program(assemble_named(&src, name).unwrap())
        };
        // Same name, different content: distinct cache keys.
        let a = BenchId::External(mk("dup", 10));
        let b = BenchId::External(mk("dup", 11));
        assert_eq!(a.name(), b.name());
        let pa = SweepPoint::of(a, Policy::baseline(), &opts());
        let pb = SweepPoint::of(b, Policy::baseline(), &opts());
        assert_ne!(pa.key(), pb.key());
        // Same content re-registered: identical key (cache hit across
        // processes loading the same file).
        let a2 = BenchId::External(mk("dup", 10));
        assert_eq!(pa.key(), SweepPoint::of(a2, Policy::baseline(), &opts()).key());
    }

    #[test]
    fn memo_hits_do_not_resimulate() {
        let sweep = Sweep::new().without_cache().with_jobs(2);
        let p = SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts());
        let first = sweep.run(std::slice::from_ref(&p));
        let again = sweep.run(&[p]);
        assert_eq!(
            first[0].as_ref().unwrap().to_json().unwrap().render(),
            again[0].as_ref().unwrap().to_json().unwrap().render()
        );
        let stats = sweep.stats();
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.memo_hits, 1);
    }

    #[test]
    fn duplicate_points_in_one_grid_fan_in() {
        let sweep = Sweep::new().without_cache().with_jobs(4);
        let p = SweepPoint::of(BenchId::Mcf, Policy::baseline(), &opts());
        let grid = vec![p.clone(), p.clone(), p.clone(), p];
        let results = sweep.run(&grid);
        let first = results[0].as_ref().unwrap().to_json().unwrap().render();
        for r in &results {
            assert_eq!(r.as_ref().unwrap().to_json().unwrap().render(), first);
        }
        let stats = sweep.stats();
        assert_eq!(stats.simulated, 1, "one simulation for four identical points");
        assert_eq!(stats.fanin + stats.memo_hits, 3, "the other three fan in: {stats:?}");
    }
}
