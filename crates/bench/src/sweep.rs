//! Parallel sweep execution over a grid of simulation points, backed by
//! a persistent on-disk result cache.
//!
//! Every figure/table binary boils down to "run the pipeline over a
//! grid of `(benchmark, SimConfig)` points and aggregate". [`Sweep::run`]
//! executes such a grid across a worker pool (plain `std::thread` —
//! no external dependencies) and returns the reports **in grid order**,
//! so results are byte-identical to a serial run regardless of the
//! worker count.
//!
//! Completed points are persisted under `results/cache/` keyed by a
//! stable fingerprint of the *full* run configuration (see
//! [`SweepPoint::key`]). A second invocation of any experiment binary
//! reloads its reports instead of re-simulating. Cache entries are
//! invalidated implicitly: any change to the benchmark name, seed, or
//! any `SimConfig` field changes the key, and model changes that alter
//! results without changing the config must bump [`CACHE_VERSION`].
//!
//! Knobs:
//!
//! * `SECSIM_JOBS` / `--jobs N` — worker count (default: all cores).
//! * `--no-cache` — skip both cache lookup and cache writes.
//! * `--trace FILE` — after the grid completes, re-run the first point
//!   with event tracing and write a Chrome `trace_event` JSON to FILE
//!   (load it in Perfetto / `chrome://tracing`).
//! * `--program FILE` — assemble (`.sasm`) or load (`.sprog`) an
//!   external program and append it to the binary's benchmark grid as a
//!   [`BenchId::External`] entry (repeatable). External points cache
//!   like built-ins, keyed by the program's content hash.
//! * `SECSIM_RESULTS` — relocates `results/`, and the cache with it.
//!
//! # Examples
//!
//! ```no_run
//! use secsim_bench::{RunOpts, Sweep, SweepPoint};
//! use secsim_core::Policy;
//! use secsim_workloads::BenchId;
//!
//! let sweep = Sweep::new();
//! let points: Vec<SweepPoint> = [BenchId::Mcf, BenchId::Gzip]
//!     .map(|b| SweepPoint::of(b, Policy::authen_then_commit(), &RunOpts::default()))
//!     .to_vec();
//! for r in sweep.run(&points) {
//!     match r {
//!         Ok(report) => println!("IPC {:.3}", report.ipc()),
//!         Err(e) => eprintln!("skipped: {e}"),
//!     }
//! }
//! ```

use crate::{results_dir, sim_config_id, RunOpts};
use secsim_core::Policy;
use secsim_cpu::{SimConfig, SimReport, SimSession, TraceConfig};
use secsim_stats::{Json, StableHash, StableHasher};
use secsim_workloads::{BenchId, ParseBenchError, ProgramSource, SplitMix64};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why a sweep point produced no report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A stringly-typed entry point named a benchmark that does not
    /// exist (see [`BenchId`]).
    UnknownBench(String),
    /// The simulation itself panicked; the grid keeps running and the
    /// caller decides how to report the hole.
    Failed {
        /// Benchmark of the failing point.
        bench: String,
        /// Panic payload, when it was a string.
        detail: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownBench(name) => write!(f, "unknown benchmark {name:?}"),
            SweepError::Failed { bench, detail } => {
                write!(f, "simulation of {bench} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ParseBenchError> for SweepError {
    fn from(e: ParseBenchError) -> Self {
        SweepError::UnknownBench(e.name().to_string())
    }
}

/// Salt for every cache key. Bump when the simulator's *behaviour*
/// changes in a way that is not visible in `SimConfig` (model fixes,
/// workload-generation changes), so stale entries can never be
/// mistaken for fresh results.
pub const CACHE_VERSION: u64 = 2;

/// One cell of a sweep grid: a workload plus the exact configuration to
/// simulate it under.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Benchmark identity.
    pub bench: BenchId,
    /// Workload seed.
    pub seed: u64,
    /// Full simulator configuration.
    pub cfg: SimConfig,
    /// Functional warmup prefix restored from a shared checkpoint
    /// before timed simulation (0 = cold start). Part of the cache key:
    /// a warm report and a cold report of the same config are different
    /// results.
    pub warmup_insts: u64,
}

impl SweepPoint {
    /// The standard-experiment point, from a typed benchmark identity.
    pub fn of(bench: BenchId, policy: Policy, opts: &RunOpts) -> Self {
        Self {
            bench,
            seed: opts.seed,
            cfg: sim_config_id(bench, policy, opts),
            warmup_insts: opts.warmup_insts,
        }
    }

    /// A point with a hand-built configuration (ablations). Starts
    /// cold; set [`warmup_insts`](SweepPoint::warmup_insts) directly to
    /// warm it.
    pub fn from_config(bench: BenchId, seed: u64, cfg: SimConfig) -> Self {
        Self { bench, seed, cfg, warmup_insts: 0 }
    }

    /// Stable cache key: a fingerprint of `(CACHE_VERSION, bench, seed,
    /// cfg)`. Identical across processes, platforms and worker counts —
    /// a built-in benchmark hashes by its canonical *name*, so those
    /// keys are unchanged from the stringly-typed era, while an external
    /// program additionally hashes its content fingerprint so two
    /// programs sharing a file name can never collide in the cache.
    pub fn key(&self) -> u64 {
        let mut h = StableHasher::new();
        CACHE_VERSION.stable_hash(&mut h);
        self.bench.name().stable_hash(&mut h);
        if let Some(hash) = self.bench.external_hash() {
            "external".stable_hash(&mut h);
            hash.stable_hash(&mut h);
        }
        self.seed.stable_hash(&mut h);
        self.cfg.stable_hash(&mut h);
        self.warmup_insts.stable_hash(&mut h);
        h.finish()
    }

    fn run(&self) -> Result<SimReport, SweepError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::with_workload(self.bench, self.seed, |w| {
                let start =
                    crate::checkpoint::warm_start(self.bench, self.seed, self.warmup_insts, w);
                SimSession::new(&self.cfg).resume_from(start).run(&mut w.mem, w.entry).into_report()
            })
        }))
        .map_err(|payload| {
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            SweepError::Failed { bench: self.bench.name().to_string(), detail }
        })
    }
}

/// The parallel, cached sweep executor. See the module docs.
#[derive(Debug)]
pub struct Sweep {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    /// Chrome-trace output requested via `--trace FILE`; consumed by the
    /// first grid that runs.
    trace_out: Mutex<Option<PathBuf>>,
    /// In-process memo so repeated grids (verify_repro's geomeans, the
    /// shared baselines of the figure tables) simulate at most once per
    /// process even with caching disabled.
    memo: Mutex<HashMap<u64, SimReport>>,
    /// External programs collected from `--program FILE` arguments;
    /// figure/table binaries append these to their benchmark grids.
    externals: Vec<BenchId>,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

impl Sweep {
    /// A sweep with the default worker count (`SECSIM_JOBS`, else all
    /// cores) and the default cache directory (`results/cache`).
    pub fn new() -> Self {
        let jobs = std::env::var("SECSIM_JOBS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self {
            jobs,
            cache_dir: Some(results_dir().join("cache")),
            trace_out: Mutex::new(None),
            memo: Mutex::new(HashMap::new()),
            externals: Vec::new(),
        }
    }

    /// A sweep configured from the process arguments: consumes
    /// `--jobs N`, `--no-cache`, `--trace FILE` and `--program FILE`,
    /// returning the remaining arguments (without the program name) for
    /// the binary's own parsing.
    pub fn from_args() -> (Self, Vec<String>) {
        let mut sweep = Self::new();
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--jobs" => {
                    let n = args.next().and_then(|s| s.parse().ok()).filter(|&n| n >= 1);
                    let Some(n) = n else {
                        eprintln!("error: --jobs needs a positive integer");
                        std::process::exit(2);
                    };
                    sweep = sweep.with_jobs(n);
                }
                "--no-cache" => sweep = sweep.without_cache(),
                "--trace" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --trace needs an output file");
                        std::process::exit(2);
                    };
                    sweep = sweep.with_trace_out(PathBuf::from(path));
                }
                "--program" => {
                    let Some(path) = args.next() else {
                        eprintln!("error: --program needs a .sasm or .sprog file");
                        std::process::exit(2);
                    };
                    match ProgramSource::from_arg(&path) {
                        Ok(src) => sweep.externals.push(src.bench_id()),
                        Err(e) => {
                            eprintln!("error: --program {path}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                _ => rest.push(arg),
            }
        }
        (sweep, rest)
    }

    /// External programs collected from `--program FILE`, in argument
    /// order. Figure/table binaries append these to their grids so an
    /// external workload rides through the same policies as built-ins.
    pub fn externals(&self) -> &[BenchId] {
        &self.externals
    }

    /// Requests a Chrome-trace JSON of the first point of the next grid
    /// (what `--trace FILE` sets up).
    pub fn with_trace_out(self, path: PathBuf) -> Self {
        *self.trace_out.lock().expect("trace_out poisoned") = Some(path);
        self
    }

    /// Overrides the worker count (1 = serial).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        assert!(jobs >= 1);
        self.jobs = jobs;
        self
    }

    /// Disables the persistent cache (the in-process memo remains).
    pub fn without_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// Redirects the persistent cache.
    pub fn with_cache_dir(mut self, dir: PathBuf) -> Self {
        self.cache_dir = Some(dir);
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every point, in parallel, returning one `Result` per point
    /// **in grid order** — an `Err` marks a point whose simulation
    /// panicked, and the rest of the grid still completes. Cached points
    /// are loaded, fresh points are simulated and persisted.
    pub fn run(&self, points: &[SweepPoint]) -> Vec<Result<SimReport, SweepError>> {
        let mut slots: Vec<Mutex<Option<Result<SimReport, SweepError>>>> =
            Vec::with_capacity(points.len());
        slots.resize_with(points.len(), || Mutex::new(None));
        let mut todo: Vec<usize> = Vec::new();
        {
            let memo = self.memo.lock().expect("memo poisoned");
            for (i, p) in points.iter().enumerate() {
                match memo.get(&p.key()) {
                    Some(r) => *slots[i].lock().expect("slot") = Some(Ok(r.clone())),
                    None => todo.push(i),
                }
            }
        }
        // Disk lookups stay serial: they are ~instant next to a run.
        todo.retain(|&i| {
            let p = &points[i];
            match self.load_cached(p) {
                Some(r) => {
                    self.memo.lock().expect("memo poisoned").insert(p.key(), r.clone());
                    *slots[i].lock().expect("slot") = Some(Ok(r));
                    false
                }
                None => true,
            }
        });

        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(todo.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = todo.get(n) else { break };
                    let report = points[i].run();
                    *slots[i].lock().expect("slot") = Some(report);
                });
            }
        });

        for &i in &todo {
            let p = &points[i];
            if let Some(Ok(r)) = slots[i].lock().expect("slot").as_ref() {
                self.store_cached(p, i, r);
                self.memo.lock().expect("memo poisoned").insert(p.key(), r.clone());
            }
        }
        if let Some(path) = self.trace_out.lock().expect("trace_out poisoned").take() {
            if let Some(p) = points.first() {
                write_chrome_trace(p, &path);
            }
        }
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot poisoned").expect("every slot filled"))
            .collect()
    }

    /// Runs a single point (cache- and memo-aware).
    pub fn get(
        &self,
        bench: BenchId,
        policy: Policy,
        opts: &RunOpts,
    ) -> Result<SimReport, SweepError> {
        let point = SweepPoint::of(bench, policy, opts);
        self.run(std::slice::from_ref(&point)).pop().expect("one point, one result")
    }

    fn cache_path(&self, p: &SweepPoint) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| d.join(format!("{}-{:016x}.json", p.bench.name(), p.key())))
    }

    fn load_cached(&self, p: &SweepPoint) -> Option<SimReport> {
        let path = self.cache_path(p)?;
        let text = retry_io(p.key(), || fs::read_to_string(&path))?;
        let v = Json::parse(&text).ok()?;
        if v.get("version")?.as_u64()? != CACHE_VERSION {
            return None;
        }
        if v.get("key")?.as_str()? != format!("{:016x}", p.key()) {
            return None;
        }
        SimReport::from_json(v.get("report")?)
    }

    /// Persists atomically (tmp + rename), so concurrent experiment
    /// processes never observe a torn entry. `idx` only disambiguates
    /// tmp names within one process.
    fn store_cached(&self, p: &SweepPoint, idx: usize, r: &SimReport) {
        let Some(path) = self.cache_path(p) else { return };
        // Traced reports refuse to serialize; sweeps never trace.
        let Some(report) = r.to_json() else { return };
        let entry = Json::obj(vec![
            ("version", Json::UInt(CACHE_VERSION)),
            ("bench", Json::Str(p.bench.name().to_string())),
            ("key", Json::Str(format!("{:016x}", p.key()))),
            ("report", report),
        ]);
        let Some(dir) = path.parent() else { return };
        if retry_io(p.key() ^ 0x5eed, || fs::create_dir_all(dir)).is_none() {
            return;
        }
        let tmp = dir.join(format!(".tmp-{:016x}-{}-{idx}", p.key(), std::process::id()));
        let body = entry.render();
        let committed = retry_io(p.key(), || {
            fs::write(&tmp, &body)?;
            fs::rename(&tmp, &path)
        });
        if committed.is_none() {
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// Runs one cache-file operation with up to three attempts, sleeping a
/// short jittered backoff between tries. A transient filesystem error
/// (EIO, ENOSPC, EAGAIN…) on the shared `results/cache` directory thus
/// degrades to a cache miss / skipped store instead of failing the
/// sweep. `NotFound` is the ordinary miss and returns immediately.
fn retry_io<T>(salt: u64, mut op: impl FnMut() -> std::io::Result<T>) -> Option<T> {
    const ATTEMPTS: u32 = 3;
    for attempt in 0..ATTEMPTS {
        match op() {
            Ok(v) => return Some(v),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                if attempt + 1 == ATTEMPTS {
                    return None;
                }
                // Deterministic jitter (SplitMix64 over the cache key
                // and attempt) desynchronizes workers retrying against
                // the same directory; the base doubles per attempt.
                let mut rng = SplitMix64::new(salt ^ (u64::from(attempt) << 56));
                let micros = (100u64 << attempt) + rng.next_u64() % 400;
                std::thread::sleep(std::time::Duration::from_micros(micros));
            }
        }
    }
    None
}

/// Re-runs `p` with event tracing on and writes the Chrome
/// `trace_event` JSON to `path` (the `--trace FILE` backend).
fn write_chrome_trace(p: &SweepPoint, path: &Path) {
    let run = crate::with_workload(p.bench, p.seed, |w| {
        let start = crate::checkpoint::warm_start(p.bench, p.seed, p.warmup_insts, w);
        SimSession::new(&p.cfg)
            .resume_from(start)
            .trace(TraceConfig::default())
            .run(&mut w.mem, w.entry)
            .into_run()
    });
    let Some(trace) = run.trace else { return };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = fs::create_dir_all(dir);
        }
    }
    match fs::write(path, trace.to_chrome().render()) {
        Ok(()) => eprintln!(
            "[chrome trace of {} ({} cycles) written to {}]",
            p.bench,
            run.report.cycles,
            path.display()
        ),
        Err(e) => eprintln!("error: failed to write trace {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOpts {
        RunOpts { max_insts: 5_000, ..RunOpts::default() }
    }

    #[test]
    fn key_is_stable_and_config_sensitive() {
        let a = SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts());
        let b = SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts());
        assert_eq!(a.key(), b.key());
        let c = SweepPoint::of(BenchId::Mcf, Policy::authen_then_issue(), &opts());
        assert_ne!(a.key(), c.key());
        let d = SweepPoint::of(BenchId::Gzip, Policy::authen_then_commit(), &opts());
        assert_ne!(a.key(), d.key());
        let e =
            SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &RunOpts { seed: 7, ..opts() });
        assert_ne!(a.key(), e.key());
    }

    #[test]
    fn unknown_bench_is_typed_error() {
        let err: SweepError = "nope".parse::<BenchId>().unwrap_err().into();
        assert_eq!(err, SweepError::UnknownBench("nope".to_string()));
    }

    #[test]
    fn external_points_key_by_content_hash() {
        use secsim_workloads::{assemble_named, register_program};
        let mk = |name: &str, iters: i64| {
            let src = format!("addi r1, r0, {iters}\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n");
            register_program(assemble_named(&src, name).unwrap())
        };
        // Same name, different content: distinct cache keys.
        let a = BenchId::External(mk("dup", 10));
        let b = BenchId::External(mk("dup", 11));
        assert_eq!(a.name(), b.name());
        let pa = SweepPoint::of(a, Policy::baseline(), &opts());
        let pb = SweepPoint::of(b, Policy::baseline(), &opts());
        assert_ne!(pa.key(), pb.key());
        // Same content re-registered: identical key (cache hit across
        // processes loading the same file).
        let a2 = BenchId::External(mk("dup", 10));
        assert_eq!(pa.key(), SweepPoint::of(a2, Policy::baseline(), &opts()).key());
    }

    #[test]
    fn retry_io_retries_transients_and_gives_up_cleanly() {
        use std::io::{Error, ErrorKind};
        // Two transient failures, then success: the third attempt wins.
        let mut calls = 0;
        let out = retry_io(42, || {
            calls += 1;
            if calls < 3 {
                Err(Error::from(ErrorKind::Interrupted))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out, Some(7));
        assert_eq!(calls, 3);
        // A persistent failure exhausts exactly three attempts.
        let mut calls = 0;
        let out: Option<()> = retry_io(42, || {
            calls += 1;
            Err(Error::from(ErrorKind::Other))
        });
        assert_eq!(out, None);
        assert_eq!(calls, 3);
        // NotFound is an ordinary cache miss: no retries at all.
        let mut calls = 0;
        let out: Option<()> = retry_io(42, || {
            calls += 1;
            Err(Error::from(ErrorKind::NotFound))
        });
        assert_eq!(out, None);
        assert_eq!(calls, 1);
    }

    #[test]
    fn memo_hits_do_not_resimulate() {
        let sweep = Sweep::new().without_cache().with_jobs(2);
        let p = SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts());
        let first = sweep.run(std::slice::from_ref(&p));
        let again = sweep.run(&[p]);
        assert_eq!(
            first[0].as_ref().unwrap().to_json().unwrap().render(),
            again[0].as_ref().unwrap().to_json().unwrap().render()
        );
    }
}
