//! Wire protocol of the `secsim-serve` job server (versions 1 and 2).
//!
//! Line-delimited JSON over TCP: the client sends **one request
//! object per line**, the server answers with a stream of **event
//! objects, one per line**, then (for job requests) keeps the
//! connection open until the job's `complete` event. The protocol is
//! deliberately std-only and hand-rolled on [`secsim_stats::Json`] —
//! the workspace is dependency-free and offline.
//!
//! # Requests
//!
//! ```json
//! {"v":1,"kind":"sweep","points":[{"bench":"mcf","seed":2006,"warmup":0,"cfg":{…}}]}
//! {"v":1,"kind":"faults","inject":2500}
//! {"v":1,"kind":"status"}
//! {"v":1,"kind":"shutdown"}
//! {"v":2,"kind":"resume","job":3,"since_seq":17}
//! ```
//!
//! Version 2 is a strict superset of version 1 — v1 clients are still
//! accepted verbatim. What v2 adds is *resumability*: every job-stream
//! event carries a monotone `seq` number, and a client that lost its
//! connection mid-stream reconnects and sends `resume` to replay every
//! event after the last one it saw, instead of resubmitting the job.
//! Submissions themselves are deduplicated server-side by a content
//! hash of the request ([`sweep_job_hash`] / [`faults_job_hash`]), so
//! even a client that *does* resubmit after a crash attaches to the
//! already-running (or retained completed) job — exactly-once
//! execution across arbitrary disconnects.
//!
//! A sweep point carries the **full** `SimConfig` — every field, no
//! defaults filled in server-side — so the server reconstructs exactly
//! the [`SweepPoint`] the client would have run
//! in-process, its [`key()`](crate::SweepPoint::key) included. That is
//! what makes server-returned reports byte-identical to local runs and
//! lets N clients fan in on one simulation. External programs ship
//! their serialized `.sprog` image as hex and are registered on the
//! server by content hash.
//!
//! # Events
//!
//! ```json
//! {"event":"queued","job":3,"points":16}
//! {"event":"running","job":3,"seq":1}
//! {"event":"point-done","job":3,"index":0,"report":{…},"seq":2}
//! {"event":"point-done","job":3,"index":1,"error":{"kind":"failed","bench":"mcf","detail":"…"},"seq":3}
//! {"event":"complete","job":3,"ok":15,"failed":1,"seq":4}
//! {"event":"error","code":"malformed-json","detail":"…"}
//! ```
//!
//! Every client-visible failure is a typed `error` event with one of
//! the [`codes`] constants — a malformed line, an oversized request or
//! an unknown version can never panic a worker. A `queue-full` error
//! additionally carries a `retry_after_ms` load-shedding hint derived
//! from the queue depth.

use crate::{SweepError, SweepPoint};
use secsim_core::{FaultKind, FetchGateVariant, Policy, SecureConfig};
use secsim_cpu::{BPredConfig, CpuConfig, SimConfig, SimReport};
use secsim_crypto::{CryptoLatency, EncryptionMode, MacScheme};
use secsim_mem::{CacheConfig, DramConfig, MemSystemConfig, TlbConfig};
use secsim_stats::{Json, StableHash, StableHasher};
use secsim_workloads::{register_program, BenchId, ProgramImage};

/// Version tag every request must carry (`"v"`).
pub const PROTOCOL_VERSION: u64 = 1;

/// Protocol version 2: adds server-assigned job ids, monotone per-job
/// event sequence numbers, and the `resume` request. The server accepts
/// both versions; [`PROTOCOL_VERSION`] clients keep working unchanged.
pub const PROTOCOL_V2: u64 = 2;

/// Upper bound on one request line, bytes. Large enough for a sweep
/// grid with several embedded `.sprog` images, small enough that a
/// stray client cannot balloon the server.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024 * 1024;

/// Typed error codes of `error` events.
pub mod codes {
    /// The request line is not valid JSON.
    pub const MALFORMED_JSON: &str = "malformed-json";
    /// The request line exceeds [`super::MAX_REQUEST_BYTES`].
    pub const OVERSIZED_REQUEST: &str = "oversized-request";
    /// The request's `"v"` is missing or not a version this server
    /// speaks.
    pub const UNSUPPORTED_VERSION: &str = "unsupported-version";
    /// The request's `"kind"` is not one of
    /// `sweep`/`faults`/`status`/`shutdown`.
    pub const UNKNOWN_KIND: &str = "unknown-kind";
    /// The request parsed but its payload is invalid (bad point, bad
    /// program image, …).
    pub const BAD_REQUEST: &str = "bad-request";
    /// The bounded job queue is full; retry later.
    pub const QUEUE_FULL: &str = "queue-full";
    /// The server is draining and refuses new jobs.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The connection closed mid-request or mid-response.
    pub const TRUNCATED: &str = "truncated";
    /// A `resume` named a job this server does not know (never
    /// submitted here, or already garbage-collected).
    pub const UNKNOWN_JOB: &str = "unknown-job";
    /// A `resume` asked for events older than the job's bounded
    /// retained-events buffer still holds; the client must resubmit.
    pub const RESUME_TOO_OLD: &str = "resume-too-old";
}

/// A parse/validation failure: a typed code plus a human detail,
/// rendered as an `error` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl ProtoError {
    fn bad(detail: impl Into<String>) -> Self {
        Self { code: codes::BAD_REQUEST, detail: detail.into() }
    }

    /// The `error` event line for this failure.
    pub fn to_line(&self) -> String {
        error_line(self.code, &self.detail)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ProtoError {}

/// A parsed request.
#[derive(Debug)]
pub enum Request {
    /// Run a sweep grid; stream per-point results.
    Sweep {
        /// The grid, reconstructed server-side (external programs
        /// already registered).
        points: Vec<SweepPoint>,
    },
    /// Run the fault campaign (8 schemes × 5 integrity kinds) with the
    /// fault injected at this cycle; stream per-point outcomes.
    Faults {
        /// Injection cycle.
        inject: u64,
        /// Wall-clock budget per point, seconds (default 60).
        timeout_secs: u64,
    },
    /// Report queue/store/sweep counters.
    Status,
    /// Drain the queue, refuse new jobs, flush counters, exit.
    Shutdown,
    /// Re-attach to a known job and replay every retained event with a
    /// sequence number greater than `since_seq` (v2 only).
    Resume {
        /// Server-assigned job id from the `queued` event.
        job: u64,
        /// Last sequence number the client received (0 = from the
        /// beginning).
        since_seq: u64,
    },
}

/// Parses one request line. Every failure is a [`ProtoError`] carrying
/// the typed code the server answers with.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(ProtoError {
            code: codes::OVERSIZED_REQUEST,
            detail: format!("request is {} bytes, limit {MAX_REQUEST_BYTES}", line.len()),
        });
    }
    let v = Json::parse(line).map_err(|e| ProtoError {
        code: codes::MALFORMED_JSON,
        detail: e.to_string(),
    })?;
    let version = match v.get("v").and_then(Json::as_u64) {
        Some(n @ (PROTOCOL_VERSION | PROTOCOL_V2)) => n,
        got => {
            return Err(ProtoError {
                code: codes::UNSUPPORTED_VERSION,
                detail: match got {
                    Some(n) => format!(
                        "request version {n}, server speaks {PROTOCOL_VERSION} and {PROTOCOL_V2}"
                    ),
                    None => "request carries no numeric \"v\" field".to_string(),
                },
            })
        }
    };
    let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
    match kind {
        "sweep" => {
            let raw = v
                .get("points")
                .and_then(Json::as_array)
                .ok_or_else(|| ProtoError::bad("sweep request carries no \"points\" array"))?;
            if raw.is_empty() {
                return Err(ProtoError::bad("sweep request with an empty grid"));
            }
            let points = raw
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    point_from_json(p).map_err(|e| ProtoError::bad(format!("point {i}: {e}")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Sweep { points })
        }
        "faults" => {
            let inject = v
                .get("inject")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtoError::bad("faults request carries no \"inject\" cycle"))?;
            let timeout_secs = v.get("timeout_secs").and_then(Json::as_u64).unwrap_or(60);
            Ok(Request::Faults { inject, timeout_secs })
        }
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        "resume" if version >= PROTOCOL_V2 => {
            let job = v
                .get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtoError::bad("resume request carries no \"job\" id"))?;
            let since_seq = v.get("since_seq").and_then(Json::as_u64).unwrap_or(0);
            Ok(Request::Resume { job, since_seq })
        }
        other => Err(ProtoError {
            code: codes::UNKNOWN_KIND,
            detail: if other == "resume" {
                format!("\"resume\" needs protocol version {PROTOCOL_V2}")
            } else {
                format!("unknown request kind {other:?}")
            },
        }),
    }
}

/// Renders a sweep request line for `points`.
pub fn sweep_request(points: &[SweepPoint]) -> String {
    Json::obj(vec![
        ("v", Json::UInt(PROTOCOL_VERSION)),
        ("kind", Json::Str("sweep".into())),
        ("points", Json::Array(points.iter().map(point_to_json).collect())),
    ])
    .render()
}

/// Renders a v2 sweep request line for `points` (identical payload to
/// [`sweep_request`], but entitled to `resume` later).
pub fn sweep_request_v2(points: &[SweepPoint]) -> String {
    Json::obj(vec![
        ("v", Json::UInt(PROTOCOL_V2)),
        ("kind", Json::Str("sweep".into())),
        ("points", Json::Array(points.iter().map(point_to_json).collect())),
    ])
    .render()
}

/// Renders a v2 fault-campaign request line.
pub fn faults_request_v2(inject: u64, timeout_secs: u64) -> String {
    Json::obj(vec![
        ("v", Json::UInt(PROTOCOL_V2)),
        ("kind", Json::Str("faults".into())),
        ("inject", Json::UInt(inject)),
        ("timeout_secs", Json::UInt(timeout_secs)),
    ])
    .render()
}

/// Renders a v2 resume request line: replay retained events of `job`
/// with `seq > since_seq`.
pub fn resume_request(job: u64, since_seq: u64) -> String {
    Json::obj(vec![
        ("v", Json::UInt(PROTOCOL_V2)),
        ("kind", Json::Str("resume".into())),
        ("job", Json::UInt(job)),
        ("since_seq", Json::UInt(since_seq)),
    ])
    .render()
}

/// Renders a fault-campaign request line.
pub fn faults_request(inject: u64, timeout_secs: u64) -> String {
    Json::obj(vec![
        ("v", Json::UInt(PROTOCOL_VERSION)),
        ("kind", Json::Str("faults".into())),
        ("inject", Json::UInt(inject)),
        ("timeout_secs", Json::UInt(timeout_secs)),
    ])
    .render()
}

/// Renders a status request line.
pub fn status_request() -> String {
    Json::obj(vec![
        ("v", Json::UInt(PROTOCOL_VERSION)),
        ("kind", Json::Str("status".into())),
    ])
    .render()
}

/// Renders a shutdown request line.
pub fn shutdown_request() -> String {
    Json::obj(vec![
        ("v", Json::UInt(PROTOCOL_VERSION)),
        ("kind", Json::Str("shutdown".into())),
    ])
    .render()
}

/// Renders an `error` event line.
pub fn error_line(code: &str, detail: &str) -> String {
    Json::obj(vec![
        ("event", Json::Str("error".into())),
        ("code", Json::Str(code.into())),
        ("detail", Json::Str(detail.into())),
    ])
    .render()
}

/// Renders the `queue-full` error line with its load-shedding hint:
/// how long the client should wait before retrying, derived from the
/// queue depth.
pub fn queue_full_line(retry_after_ms: u64) -> String {
    Json::obj(vec![
        ("event", Json::Str("error".into())),
        ("code", Json::Str(codes::QUEUE_FULL.into())),
        ("detail", Json::Str("job queue is full; retry later".into())),
        ("retry_after_ms", Json::UInt(retry_after_ms)),
    ])
    .render()
}

/// Content hash of a sweep submission: a stable fingerprint over the
/// grid's point keys **in grid order**. Two clients submitting the same
/// grid — including one client resubmitting after a crash — hash
/// identically, which is what lets the server attach them to one job
/// instead of executing twice.
pub fn sweep_job_hash(points: &[SweepPoint]) -> u64 {
    let mut h = StableHasher::new();
    "sweep".stable_hash(&mut h);
    (points.len() as u64).stable_hash(&mut h);
    for p in points {
        p.key().stable_hash(&mut h);
    }
    h.finish()
}

/// Content hash of a fault-campaign submission (the campaign grid is
/// implied by the server, so the injection cycle and timeout are the
/// whole identity).
pub fn faults_job_hash(inject: u64, timeout_secs: u64) -> u64 {
    let mut h = StableHasher::new();
    "faults".stable_hash(&mut h);
    inject.stable_hash(&mut h);
    timeout_secs.stable_hash(&mut h);
    h.finish()
}

/// Renders a per-point result as the `point-done` event payload.
pub fn result_to_json(r: &Result<SimReport, SweepError>) -> (&'static str, Json) {
    match r {
        Ok(report) => match report.to_json() {
            Some(j) => ("report", j),
            // Traced reports refuse to serialize; the server never
            // traces, but degrade typed rather than panic.
            None => (
                "error",
                sweep_error_to_json(&SweepError::Failed {
                    bench: "?".into(),
                    detail: "report with instruction timings cannot cross the wire".into(),
                }),
            ),
        },
        Err(e) => ("error", sweep_error_to_json(e)),
    }
}

/// Parses what [`result_to_json`] rendered (from a `point-done` event).
pub fn result_from_json(v: &Json) -> Result<Result<SimReport, SweepError>, String> {
    if let Some(r) = v.get("report") {
        return SimReport::from_json(r)
            .map(Ok)
            .ok_or_else(|| "unparseable report in point-done event".to_string());
    }
    let e = v.get("error").ok_or("point-done event carries neither report nor error")?;
    Ok(Err(sweep_error_from_json(e)?))
}

/// `SweepError` as JSON.
pub fn sweep_error_to_json(e: &SweepError) -> Json {
    match e {
        SweepError::UnknownBench(name) => Json::obj(vec![
            ("kind", Json::Str("unknown-bench".into())),
            ("name", Json::Str(name.clone())),
        ]),
        SweepError::Failed { bench, detail } => Json::obj(vec![
            ("kind", Json::Str("failed".into())),
            ("bench", Json::Str(bench.clone())),
            ("detail", Json::Str(detail.clone())),
        ]),
    }
}

/// Parses what [`sweep_error_to_json`] rendered.
pub fn sweep_error_from_json(v: &Json) -> Result<SweepError, String> {
    match v.get("kind").and_then(Json::as_str) {
        Some("unknown-bench") => Ok(SweepError::UnknownBench(str_field(v, "name")?.to_string())),
        Some("failed") => Ok(SweepError::Failed {
            bench: str_field(v, "bench")?.to_string(),
            detail: str_field(v, "detail")?.to_string(),
        }),
        other => Err(format!("unknown sweep-error kind {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Sweep points and the full configuration tree
// ---------------------------------------------------------------------

/// One sweep point as JSON: benchmark identity (external programs ship
/// their `.sprog` image as hex), seed, warmup, and the complete
/// `SimConfig`.
pub fn point_to_json(p: &SweepPoint) -> Json {
    let bench = match p.bench {
        BenchId::External(id) => Json::obj(vec![
            ("name", Json::Str(id.name().to_string())),
            ("sprog", Json::Str(hex_encode(&id.image().to_bytes()))),
        ]),
        b => Json::Str(b.name().to_string()),
    };
    Json::obj(vec![
        ("bench", bench),
        ("seed", Json::UInt(p.seed)),
        ("warmup", Json::UInt(p.warmup_insts)),
        ("cfg", config_to_json(&p.cfg)),
    ])
}

/// Parses what [`point_to_json`] rendered. External programs are
/// registered in this process's program registry (idempotent by content
/// hash), so the reconstructed point's cache key is identical to the
/// sender's.
pub fn point_from_json(v: &Json) -> Result<SweepPoint, String> {
    let bench = match v.get("bench") {
        Some(Json::Str(name)) => {
            name.parse::<BenchId>().map_err(|e| format!("unknown benchmark {:?}", e.name()))?
        }
        Some(obj @ Json::Object(_)) => {
            let bytes = hex_decode(str_field(obj, "sprog")?)
                .ok_or("external program: \"sprog\" is not valid hex")?;
            let image = ProgramImage::from_bytes(&bytes)
                .map_err(|e| format!("external program: bad .sprog image: {e}"))?;
            BenchId::External(register_program(image))
        }
        _ => return Err("point carries no \"bench\"".into()),
    };
    Ok(SweepPoint {
        bench,
        seed: u64_field(v, "seed")?,
        warmup_insts: u64_field(v, "warmup")?,
        cfg: config_from_json(v.get("cfg").ok_or("point carries no \"cfg\"")?)?,
    })
}

/// The complete `SimConfig` as JSON — every field explicit, so a config
/// round-trips bit-exactly and the server never fills in defaults that
/// could skew a cache key.
pub fn config_to_json(c: &SimConfig) -> Json {
    Json::obj(vec![
        ("cpu", cpu_to_json(&c.cpu)),
        ("mem", mem_to_json(&c.mem)),
        ("secure", secure_to_json(&c.secure)),
        ("max_insts", Json::UInt(c.max_insts)),
        ("max_cycles", Json::UInt(c.max_cycles)),
    ])
}

/// Parses what [`config_to_json`] rendered.
pub fn config_from_json(v: &Json) -> Result<SimConfig, String> {
    Ok(SimConfig {
        cpu: cpu_from_json(v.get("cpu").ok_or("cfg carries no \"cpu\"")?)?,
        mem: mem_from_json(v.get("mem").ok_or("cfg carries no \"mem\"")?)?,
        secure: secure_from_json(v.get("secure").ok_or("cfg carries no \"secure\"")?)?,
        max_insts: u64_field(v, "max_insts")?,
        max_cycles: u64_field(v, "max_cycles")?,
    })
}

fn cpu_to_json(c: &CpuConfig) -> Json {
    Json::obj(vec![
        ("fetch_width", Json::UInt(c.fetch_width.into())),
        ("decode_width", Json::UInt(c.decode_width.into())),
        ("issue_width", Json::UInt(c.issue_width.into())),
        ("commit_width", Json::UInt(c.commit_width.into())),
        ("ruu_size", Json::UInt(c.ruu_size.into())),
        ("lsq_size", Json::UInt(c.lsq_size.into())),
        ("store_buffer", Json::UInt(c.store_buffer.into())),
        ("frontend_depth", Json::UInt(c.frontend_depth)),
        ("mispredict_redirect", Json::UInt(c.mispredict_redirect)),
        ("int_alu", Json::UInt(c.int_alu.into())),
        ("int_mul", Json::UInt(c.int_mul.into())),
        ("fp_alu", Json::UInt(c.fp_alu.into())),
        ("fp_mul", Json::UInt(c.fp_mul.into())),
        ("mem_ports", Json::UInt(c.mem_ports.into())),
        (
            "bpred",
            Json::obj(vec![
                ("bimodal_entries", Json::UInt(c.bpred.bimodal_entries.into())),
                ("btb_entries", Json::UInt(c.bpred.btb_entries.into())),
                ("ras_depth", Json::UInt(c.bpred.ras_depth.into())),
            ]),
        ),
    ])
}

fn cpu_from_json(v: &Json) -> Result<CpuConfig, String> {
    let b = v.get("bpred").ok_or("cpu carries no \"bpred\"")?;
    Ok(CpuConfig {
        fetch_width: u32_field(v, "fetch_width")?,
        decode_width: u32_field(v, "decode_width")?,
        issue_width: u32_field(v, "issue_width")?,
        commit_width: u32_field(v, "commit_width")?,
        ruu_size: u32_field(v, "ruu_size")?,
        lsq_size: u32_field(v, "lsq_size")?,
        store_buffer: u32_field(v, "store_buffer")?,
        frontend_depth: u64_field(v, "frontend_depth")?,
        mispredict_redirect: u64_field(v, "mispredict_redirect")?,
        int_alu: u32_field(v, "int_alu")?,
        int_mul: u32_field(v, "int_mul")?,
        fp_alu: u32_field(v, "fp_alu")?,
        fp_mul: u32_field(v, "fp_mul")?,
        mem_ports: u32_field(v, "mem_ports")?,
        bpred: BPredConfig {
            bimodal_entries: u32_field(b, "bimodal_entries")?,
            btb_entries: u32_field(b, "btb_entries")?,
            ras_depth: u32_field(b, "ras_depth")?,
        },
    })
}

fn mem_to_json(m: &MemSystemConfig) -> Json {
    Json::obj(vec![
        ("l1i", cache_to_json(&m.l1i)),
        ("l1d", cache_to_json(&m.l1d)),
        ("l2", cache_to_json(&m.l2)),
        (
            "dram",
            Json::obj(vec![
                ("banks", Json::UInt(m.dram.banks.into())),
                ("row_bytes", Json::UInt(m.dram.row_bytes.into())),
                ("cas", Json::UInt(m.dram.cas)),
                ("rcd", Json::UInt(m.dram.rcd)),
                ("rp", Json::UInt(m.dram.rp)),
                ("core_per_bus", Json::UInt(m.dram.core_per_bus)),
                ("bus_bytes", Json::UInt(m.dram.bus_bytes.into())),
            ]),
        ),
        ("itlb", tlb_to_json(&m.itlb)),
        ("dtlb", tlb_to_json(&m.dtlb)),
        ("prefetch_next_line", Json::Bool(m.prefetch_next_line)),
    ])
}

fn mem_from_json(v: &Json) -> Result<MemSystemConfig, String> {
    let d = v.get("dram").ok_or("mem carries no \"dram\"")?;
    Ok(MemSystemConfig {
        l1i: cache_from_json(v.get("l1i").ok_or("mem carries no \"l1i\"")?)?,
        l1d: cache_from_json(v.get("l1d").ok_or("mem carries no \"l1d\"")?)?,
        l2: cache_from_json(v.get("l2").ok_or("mem carries no \"l2\"")?)?,
        dram: DramConfig {
            banks: u32_field(d, "banks")?,
            row_bytes: u32_field(d, "row_bytes")?,
            cas: u64_field(d, "cas")?,
            rcd: u64_field(d, "rcd")?,
            rp: u64_field(d, "rp")?,
            core_per_bus: u64_field(d, "core_per_bus")?,
            bus_bytes: u32_field(d, "bus_bytes")?,
        },
        itlb: tlb_from_json(v.get("itlb").ok_or("mem carries no \"itlb\"")?)?,
        dtlb: tlb_from_json(v.get("dtlb").ok_or("mem carries no \"dtlb\"")?)?,
        prefetch_next_line: bool_field(v, "prefetch_next_line")?,
    })
}

fn cache_to_json(c: &CacheConfig) -> Json {
    Json::obj(vec![
        ("size_bytes", Json::UInt(c.size_bytes.into())),
        ("line_bytes", Json::UInt(c.line_bytes.into())),
        ("assoc", Json::UInt(c.assoc.into())),
        ("latency", Json::UInt(c.latency)),
    ])
}

fn cache_from_json(v: &Json) -> Result<CacheConfig, String> {
    Ok(CacheConfig {
        size_bytes: u32_field(v, "size_bytes")?,
        line_bytes: u32_field(v, "line_bytes")?,
        assoc: u32_field(v, "assoc")?,
        latency: u64_field(v, "latency")?,
    })
}

fn tlb_to_json(t: &TlbConfig) -> Json {
    Json::obj(vec![
        ("entries", Json::UInt(t.entries.into())),
        ("assoc", Json::UInt(t.assoc.into())),
        ("page_bytes", Json::UInt(t.page_bytes.into())),
        ("miss_penalty", Json::UInt(t.miss_penalty)),
    ])
}

fn tlb_from_json(v: &Json) -> Result<TlbConfig, String> {
    Ok(TlbConfig {
        entries: u32_field(v, "entries")?,
        assoc: u32_field(v, "assoc")?,
        page_bytes: u32_field(v, "page_bytes")?,
        miss_penalty: u64_field(v, "miss_penalty")?,
    })
}

fn secure_to_json(s: &SecureConfig) -> Json {
    let c = &s.ctrl;
    Json::obj(vec![
        ("policy", policy_to_json(&s.policy)),
        (
            "ctrl",
            Json::obj(vec![
                (
                    "crypto",
                    Json::obj(vec![
                        ("aes_cycles", Json::UInt(c.crypto.aes_cycles)),
                        ("sha_block_cycles", Json::UInt(c.crypto.sha_block_cycles)),
                        ("gmac_cycles", Json::UInt(c.crypto.gmac_cycles)),
                    ]),
                ),
                (
                    "enc_mode",
                    Json::Str(
                        match c.enc_mode {
                            EncryptionMode::CounterMode => "counter",
                            EncryptionMode::Cbc => "cbc",
                        }
                        .into(),
                    ),
                ),
                (
                    "mac_scheme",
                    Json::Str(
                        match c.mac_scheme {
                            MacScheme::HmacSha256 => "hmac-sha256",
                            MacScheme::CbcMacAes => "cbc-mac-aes",
                            MacScheme::GmacAes => "gmac-aes",
                        }
                        .into(),
                    ),
                ),
                ("authenticate", Json::Bool(c.authenticate)),
                (
                    "queue",
                    Json::obj(vec![
                        ("capacity", Json::UInt(c.queue.capacity as u64)),
                        ("mac_latency", Json::UInt(c.queue.mac_latency)),
                        ("initiation_interval", Json::UInt(c.queue.initiation_interval)),
                    ]),
                ),
                ("counter_cache", cache_to_json(&c.counter_cache)),
                ("mac_bytes", Json::UInt(c.mac_bytes.into())),
                ("ctr_predict", Json::Bool(c.ctr_predict)),
                ("lazy_delay", Json::UInt(c.lazy_delay)),
                (
                    "tree",
                    match &c.tree {
                        None => Json::Null,
                        Some(t) => Json::obj(vec![
                            ("arity", Json::UInt(t.arity)),
                            ("region_base", Json::UInt(t.region_base.into())),
                            ("covered_lines", Json::UInt(t.covered_lines)),
                            ("line_bytes", Json::UInt(t.line_bytes.into())),
                            ("node_cache", cache_to_json(&t.node_cache)),
                            ("hash_latency", Json::UInt(t.hash_latency)),
                            ("concurrent", Json::Bool(t.concurrent)),
                            ("counter_tree", Json::Bool(t.counter_tree)),
                        ]),
                    },
                ),
                (
                    "obf",
                    match &c.obf {
                        None => Json::Null,
                        Some(o) => Json::obj(vec![
                            ("region_base", Json::UInt(o.region_base.into())),
                            ("region_lines", Json::UInt(o.region_lines.into())),
                            ("line_bytes", Json::UInt(o.line_bytes.into())),
                            ("remap_cache", cache_to_json(&o.remap_cache)),
                            ("seed", Json::UInt(o.seed)),
                            ("swap_writes", Json::Bool(o.swap_writes)),
                            ("chunk_lines", Json::UInt(o.chunk_lines.into())),
                        ]),
                    },
                ),
            ]),
        ),
    ])
}

fn secure_from_json(v: &Json) -> Result<SecureConfig, String> {
    use secsim_core::{AuthQueueConfig, CtrlConfig, ObfConfig, TreeConfig};
    let c = v.get("ctrl").ok_or("secure carries no \"ctrl\"")?;
    let crypto = c.get("crypto").ok_or("ctrl carries no \"crypto\"")?;
    let q = c.get("queue").ok_or("ctrl carries no \"queue\"")?;
    let tree = match c.get("tree") {
        None | Some(Json::Null) => None,
        Some(t) => Some(TreeConfig {
            arity: u64_field(t, "arity")?,
            region_base: u32_field(t, "region_base")?,
            covered_lines: u64_field(t, "covered_lines")?,
            line_bytes: u32_field(t, "line_bytes")?,
            node_cache: cache_from_json(t.get("node_cache").ok_or("tree carries no cache")?)?,
            hash_latency: u64_field(t, "hash_latency")?,
            concurrent: bool_field(t, "concurrent")?,
            counter_tree: bool_field(t, "counter_tree")?,
        }),
    };
    let obf = match c.get("obf") {
        None | Some(Json::Null) => None,
        Some(o) => Some(ObfConfig {
            region_base: u32_field(o, "region_base")?,
            region_lines: u32_field(o, "region_lines")?,
            line_bytes: u32_field(o, "line_bytes")?,
            remap_cache: cache_from_json(o.get("remap_cache").ok_or("obf carries no cache")?)?,
            seed: u64_field(o, "seed")?,
            swap_writes: bool_field(o, "swap_writes")?,
            chunk_lines: u32_field(o, "chunk_lines")?,
        }),
    };
    Ok(SecureConfig {
        policy: policy_from_json(v.get("policy").ok_or("secure carries no \"policy\"")?)?,
        ctrl: CtrlConfig {
            crypto: CryptoLatency {
                aes_cycles: u64_field(crypto, "aes_cycles")?,
                sha_block_cycles: u64_field(crypto, "sha_block_cycles")?,
                gmac_cycles: u64_field(crypto, "gmac_cycles")?,
            },
            enc_mode: match str_field(c, "enc_mode")? {
                "counter" => EncryptionMode::CounterMode,
                "cbc" => EncryptionMode::Cbc,
                other => return Err(format!("unknown enc_mode {other:?}")),
            },
            mac_scheme: match str_field(c, "mac_scheme")? {
                "hmac-sha256" => MacScheme::HmacSha256,
                "cbc-mac-aes" => MacScheme::CbcMacAes,
                "gmac-aes" => MacScheme::GmacAes,
                other => return Err(format!("unknown mac_scheme {other:?}")),
            },
            authenticate: bool_field(c, "authenticate")?,
            queue: AuthQueueConfig {
                capacity: u64_field(q, "capacity")? as usize,
                mac_latency: u64_field(q, "mac_latency")?,
                initiation_interval: u64_field(q, "initiation_interval")?,
            },
            counter_cache: cache_from_json(
                c.get("counter_cache").ok_or("ctrl carries no \"counter_cache\"")?,
            )?,
            mac_bytes: u32_field(c, "mac_bytes")?,
            ctr_predict: bool_field(c, "ctr_predict")?,
            lazy_delay: u64_field(c, "lazy_delay")?,
            tree,
            obf,
        },
    })
}

/// A `Policy` as JSON (used by sweep configs and fault requests).
pub fn policy_to_json(p: &Policy) -> Json {
    Json::obj(vec![
        ("authenticate", Json::Bool(p.authenticate)),
        ("gate_issue", Json::Bool(p.gate_issue)),
        ("gate_commit", Json::Bool(p.gate_commit)),
        ("gate_write", Json::Bool(p.gate_write)),
        ("gate_fetch", Json::Bool(p.gate_fetch)),
        (
            "fetch_variant",
            Json::Str(
                match p.fetch_variant {
                    FetchGateVariant::LastRequestTag => "last-request-tag",
                    FetchGateVariant::Drain => "drain",
                }
                .into(),
            ),
        ),
        ("obfuscate", Json::Bool(p.obfuscate)),
    ])
}

/// Parses what [`policy_to_json`] rendered.
pub fn policy_from_json(v: &Json) -> Result<Policy, String> {
    Ok(Policy {
        authenticate: bool_field(v, "authenticate")?,
        gate_issue: bool_field(v, "gate_issue")?,
        gate_commit: bool_field(v, "gate_commit")?,
        gate_write: bool_field(v, "gate_write")?,
        gate_fetch: bool_field(v, "gate_fetch")?,
        fetch_variant: match str_field(v, "fetch_variant")? {
            "last-request-tag" => FetchGateVariant::LastRequestTag,
            "drain" => FetchGateVariant::Drain,
            other => return Err(format!("unknown fetch_variant {other:?}")),
        },
        obfuscate: bool_field(v, "obfuscate")?,
    })
}

/// A `FaultKind` as JSON.
pub fn fault_kind_to_json(k: &FaultKind) -> Json {
    let mut pairs = vec![("kind", Json::Str(k.name().into()))];
    match k {
        FaultKind::CiphertextFlip { mask } => pairs.push(("mask", Json::UInt((*mask).into()))),
        FaultKind::TagCorrupt { mask } => pairs.push(("mask", Json::UInt(*mask))),
        FaultKind::BusCorrupt { mask } => pairs.push(("mask", Json::UInt((*mask).into()))),
        FaultKind::DramFlip { bit } => pairs.push(("bit", Json::UInt((*bit).into()))),
        FaultKind::MacDelay { extra } => pairs.push(("extra", Json::UInt(*extra))),
        FaultKind::CounterReplay | FaultKind::MacDrop => {}
    }
    Json::obj(pairs)
}

/// Parses what [`fault_kind_to_json`] rendered.
pub fn fault_kind_from_json(v: &Json) -> Result<FaultKind, String> {
    let u8f = |k: &str| -> Result<u8, String> {
        u64_field(v, k)?.try_into().map_err(|_| format!("field {k:?} exceeds u8"))
    };
    match str_field(v, "kind")? {
        "ct-flip" => Ok(FaultKind::CiphertextFlip { mask: u8f("mask")? }),
        "tag-corrupt" => Ok(FaultKind::TagCorrupt { mask: u64_field(v, "mask")? }),
        "counter-replay" => Ok(FaultKind::CounterReplay),
        "dram-flip" => Ok(FaultKind::DramFlip { bit: u8f("bit")? }),
        "bus-corrupt" => Ok(FaultKind::BusCorrupt { mask: u8f("mask")? }),
        "mac-delay" => Ok(FaultKind::MacDelay { extra: u64_field(v, "extra")? }),
        "mac-drop" => Ok(FaultKind::MacDrop),
        other => Err(format!("unknown fault kind {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Field and hex helpers
// ---------------------------------------------------------------------

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field {key:?}"))
}

fn u32_field(v: &Json, key: &str) -> Result<u32, String> {
    u64_field(v, key)?.try_into().map_err(|_| format!("field {key:?} exceeds u32"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key).and_then(Json::as_bool).ok_or_else(|| format!("missing boolean field {key:?}"))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string field {key:?}"))
}

/// Lowercase hex of `bytes` (`.sprog` images on the wire).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex digits.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Option<Vec<u8>> =
        s.chars().map(|c| c.to_digit(16).map(|d| d as u8)).collect();
    let digits = digits?;
    Some(digits.chunks_exact(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sim_config_id, RunOpts};

    #[test]
    fn hex_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex");
        assert_eq!(hex_decode(""), Some(Vec::new()));
    }

    #[test]
    fn point_round_trip_preserves_cache_key() {
        for policy in [
            Policy::baseline(),
            Policy::authen_then_issue(),
            Policy::authen_then_fetch(),
            Policy::commit_plus_obfuscation(),
        ] {
            let opts = RunOpts { max_insts: 9_999, tree: policy.authenticate, ..RunOpts::default() };
            let p = SweepPoint {
                bench: BenchId::Mcf,
                seed: 7,
                cfg: sim_config_id(BenchId::Mcf, policy, &opts),
                warmup_insts: 123,
            };
            let wire = point_to_json(&p).render();
            let back = point_from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back.key(), p.key(), "key must survive the wire for {policy:?}");
            assert_eq!(back.cfg, p.cfg);
        }
    }

    #[test]
    fn external_point_round_trips_by_content() {
        use secsim_workloads::assemble_named;
        let src = "addi r1, r0, 3\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n";
        let id = register_program(assemble_named(src, "wire-test").unwrap());
        let p = SweepPoint {
            bench: BenchId::External(id),
            seed: 2006,
            cfg: sim_config_id(BenchId::External(id), Policy::baseline(), &RunOpts::default()),
            warmup_insts: 0,
        };
        let wire = point_to_json(&p).render();
        let back = point_from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back.key(), p.key());
        assert_eq!(back.bench.name(), "wire-test");
    }

    #[test]
    fn fault_kind_round_trips() {
        for k in [
            FaultKind::CiphertextFlip { mask: 0x40 },
            FaultKind::TagCorrupt { mask: 0xDEAD },
            FaultKind::CounterReplay,
            FaultKind::DramFlip { bit: 3 },
            FaultKind::BusCorrupt { mask: 0x08 },
            FaultKind::MacDelay { extra: 5_000 },
            FaultKind::MacDrop,
        ] {
            let wire = fault_kind_to_json(&k).render();
            let back = fault_kind_from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, k);
        }
    }

    #[test]
    fn request_parse_failures_are_typed() {
        let cases = [
            ("{not json", codes::MALFORMED_JSON),
            ("{\"kind\":\"sweep\"}", codes::UNSUPPORTED_VERSION),
            ("{\"v\":99,\"kind\":\"sweep\"}", codes::UNSUPPORTED_VERSION),
            ("{\"v\":1,\"kind\":\"reticulate\"}", codes::UNKNOWN_KIND),
            ("{\"v\":1,\"kind\":\"sweep\"}", codes::BAD_REQUEST),
            ("{\"v\":1,\"kind\":\"sweep\",\"points\":[]}", codes::BAD_REQUEST),
            ("{\"v\":1,\"kind\":\"sweep\",\"points\":[{\"bench\":\"nope\"}]}", codes::BAD_REQUEST),
            ("{\"v\":1,\"kind\":\"faults\"}", codes::BAD_REQUEST),
            // resume is a v2 verb: a v1 client asking for it is typed,
            // and a v2 resume still validates its payload.
            ("{\"v\":1,\"kind\":\"resume\",\"job\":3}", codes::UNKNOWN_KIND),
            ("{\"v\":2,\"kind\":\"resume\"}", codes::BAD_REQUEST),
            ("{\"v\":2,\"kind\":\"reticulate\"}", codes::UNKNOWN_KIND),
        ];
        for (line, want) in cases {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, want, "for {line:?}: {err}");
        }
        let big = format!("{{\"v\":1,\"pad\":\"{}\"}}", "x".repeat(MAX_REQUEST_BYTES));
        assert_eq!(parse_request(&big).unwrap_err().code, codes::OVERSIZED_REQUEST);
    }

    #[test]
    fn well_formed_requests_parse() {
        let p = SweepPoint {
            bench: BenchId::Gzip,
            seed: 2006,
            cfg: sim_config_id(BenchId::Gzip, Policy::baseline(), &RunOpts::default()),
            warmup_insts: 0,
        };
        match parse_request(&sweep_request(std::slice::from_ref(&p))).unwrap() {
            Request::Sweep { points } => {
                assert_eq!(points.len(), 1);
                assert_eq!(points[0].key(), p.key());
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request(&faults_request(2_500, 60)).unwrap(),
            Request::Faults { inject: 2_500, timeout_secs: 60 }
        ));
        assert!(matches!(parse_request(&status_request()).unwrap(), Request::Status));
        assert!(matches!(parse_request(&shutdown_request()).unwrap(), Request::Shutdown));
    }

    #[test]
    fn v2_requests_parse_and_v1_payloads_are_accepted_unchanged() {
        let p = SweepPoint {
            bench: BenchId::Gzip,
            seed: 2006,
            cfg: sim_config_id(BenchId::Gzip, Policy::baseline(), &RunOpts::default()),
            warmup_insts: 0,
        };
        match parse_request(&sweep_request_v2(std::slice::from_ref(&p))).unwrap() {
            Request::Sweep { points } => assert_eq!(points[0].key(), p.key()),
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request(&faults_request_v2(2_500, 60)).unwrap(),
            Request::Faults { inject: 2_500, timeout_secs: 60 }
        ));
        assert!(matches!(
            parse_request(&resume_request(7, 42)).unwrap(),
            Request::Resume { job: 7, since_seq: 42 }
        ));
        // since_seq is optional: resume-from-the-beginning.
        assert!(matches!(
            parse_request("{\"v\":2,\"kind\":\"resume\",\"job\":0}").unwrap(),
            Request::Resume { job: 0, since_seq: 0 }
        ));
    }

    #[test]
    fn job_hashes_are_content_addressed() {
        let mk = |seed: u64| SweepPoint {
            bench: BenchId::Gzip,
            seed,
            cfg: sim_config_id(BenchId::Gzip, Policy::baseline(), &RunOpts::default()),
            warmup_insts: 0,
        };
        let (a, b) = (mk(1), mk(2));
        let grid1 = vec![a.clone(), b.clone()];
        let grid2 = vec![mk(1), mk(2)];
        assert_eq!(sweep_job_hash(&grid1), sweep_job_hash(&grid2), "same content, same hash");
        assert_ne!(
            sweep_job_hash(&grid1),
            sweep_job_hash(&[b, a]),
            "grid order is part of the identity (results stream by index)"
        );
        assert_ne!(sweep_job_hash(&grid1), sweep_job_hash(&grid1[..1]));
        assert_eq!(faults_job_hash(2_500, 60), faults_job_hash(2_500, 60));
        assert_ne!(faults_job_hash(2_500, 60), faults_job_hash(2_501, 60));
        assert_ne!(faults_job_hash(2_500, 60), sweep_job_hash(&grid1));
    }

    #[test]
    fn queue_full_line_carries_the_retry_hint() {
        let ev = Json::parse(&queue_full_line(350)).unwrap();
        assert_eq!(ev.get("event").and_then(Json::as_str), Some("error"));
        assert_eq!(ev.get("code").and_then(Json::as_str), Some(codes::QUEUE_FULL));
        assert_eq!(ev.get("retry_after_ms").and_then(Json::as_u64), Some(350));
    }

    #[test]
    fn sweep_error_round_trips() {
        for e in [
            SweepError::UnknownBench("nope".into()),
            SweepError::Failed { bench: "mcf".into(), detail: "boom".into() },
        ] {
            let wire = sweep_error_to_json(&e).render();
            assert_eq!(sweep_error_from_json(&Json::parse(&wire).unwrap()).unwrap(), e);
        }
    }
}
