//! Criterion-free wall-clock measurement: the offline substitute for the
//! optional criterion harness used by `benches/` and the `perf` binary.
//!
//! # Examples
//!
//! ```
//! use secsim_bench::timing::measure;
//!
//! let mut x = 0u64;
//! let m = measure("noop", 0.01, || x = x.wrapping_add(1));
//! assert!(m.iters > 0 && m.total_secs > 0.0);
//! assert!(m.per_iter_secs() > 0.0);
//! ```

use std::time::Instant;

/// One timed measurement: `iters` executions of the workload took
/// `total_secs` of wall clock.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// What was measured.
    pub label: String,
    /// Number of executions timed.
    pub iters: u64,
    /// Total wall-clock seconds across all executions.
    pub total_secs: f64,
}

impl Measurement {
    /// Mean seconds per execution.
    pub fn per_iter_secs(&self) -> f64 {
        self.total_secs / self.iters as f64
    }

    /// Throughput in `units`/second given `units` of work per execution
    /// (e.g. simulated instructions, bytes).
    pub fn rate(&self, units_per_iter: f64) -> f64 {
        units_per_iter * self.iters as f64 / self.total_secs
    }
}

/// Times `f` repeatedly for at least `min_secs` of wall clock (after one
/// untimed warmup call) and returns the measurement.
pub fn measure(label: &str, min_secs: f64, mut f: impl FnMut()) -> Measurement {
    f(); // warmup: cold caches and lazy init don't pollute the numbers
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs {
            return Measurement { label: label.to_string(), iters, total_secs: elapsed };
        }
    }
}

/// Formats a rate with an SI-ish suffix (`12.3M/s`).
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k/s", rate / 1e3)
    } else {
        format!("{rate:.2}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iters() {
        let mut n = 0u32;
        let m = measure("spin", 0.001, || n += 1);
        assert_eq!(u64::from(n), m.iters + 1); // +1 warmup
        assert!(m.total_secs >= 0.001);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(1.5e9), "1.50G/s");
        assert_eq!(fmt_rate(2.5e6), "2.50M/s");
        assert_eq!(fmt_rate(3.5e3), "3.50k/s");
        assert_eq!(fmt_rate(12.0), "12.00/s");
    }
}
