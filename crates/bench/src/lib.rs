//! The experiment harness: shared machinery for the binaries that
//! regenerate every table and figure of the paper.
//!
//! Each `src/bin/*.rs` binary corresponds to one table or figure (see
//! DESIGN.md's experiment index); this library provides the common
//! plumbing: running a benchmark under a policy, normalizing IPC against
//! the decrypt-only baseline, and emitting Markdown/CSV into `results/`.
//!
//! # Examples
//!
//! ```no_run
//! use secsim_bench::{run_bench, L2Size, RunOpts};
//! use secsim_core::Policy;
//! use secsim_workloads::BenchId;
//!
//! let opts = RunOpts::default();
//! let r = run_bench(BenchId::Mcf, Policy::authen_then_issue(), &opts);
//! println!("mcf IPC = {:.3}", r.ipc());
//! ```

pub mod chaos;
pub mod checkpoint;
pub mod client;
pub mod faultpoint;
pub mod protocol;
pub mod store;
pub mod sweep;
pub mod timing;

pub use store::{ResultStore, StoreCounters};
pub use sweep::{Sweep, SweepError, SweepPoint, SweepStats, CACHE_VERSION};

use secsim_core::{Policy, SecureConfig};
use secsim_cpu::{CpuConfig, SimConfig, SimReport, SimSession};
use secsim_mem::MemSystemConfig;
use secsim_stats::{FastMap, Table};
use secsim_workloads::{BenchId, Workload};
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// L2 capacity point (paper Table 3 evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Size {
    /// 256 KB, 4 cycles.
    K256,
    /// 1 MB, 8 cycles.
    M1,
}

impl L2Size {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            L2Size::K256 => "256KB",
            L2Size::M1 => "1MB",
        }
    }

    fn mem_config(self) -> MemSystemConfig {
        match self {
            L2Size::K256 => MemSystemConfig::paper_256k(),
            L2Size::M1 => MemSystemConfig::paper_1m(),
        }
    }
}

/// Options shared by every experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// L2 capacity.
    pub l2: L2Size,
    /// Pipeline configuration (RUU sweep uses `paper_ruu64`).
    pub cpu: CpuConfig,
    /// Instructions simulated per run (scaled down ~100× from the
    /// paper's 400 M; see DESIGN.md).
    pub max_insts: u64,
    /// Cycle fence forwarded to `SimConfig::max_cycles` (0 = unlimited);
    /// the per-point watchdog of the fault campaign.
    pub max_cycles: u64,
    /// Workload seed.
    pub seed: u64,
    /// Hash-tree authentication (Figure 12/13).
    pub tree: bool,
    /// Remap-cache capacity override for obfuscating policies
    /// (Figure 9); `None` keeps the 256 KB default.
    pub remap_cache_bytes: Option<u32>,
    /// Instructions to fast-forward *functionally* before timed
    /// simulation begins (0 = start cold). Warmup is policy-independent,
    /// so the whole policy × latency grid shares one checkpointed
    /// snapshot (see [`checkpoint`]).
    pub warmup_insts: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            l2: L2Size::K256,
            cpu: CpuConfig::paper_reference(),
            max_insts: default_insts(),
            max_cycles: 0,
            seed: 2006,
            tree: false,
            remap_cache_bytes: None,
            warmup_insts: 0,
        }
    }
}

/// Default instruction budget per run. Override with the
/// `SECSIM_INSTS` environment variable.
pub fn default_insts() -> u64 {
    std::env::var("SECSIM_INSTS").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000_000)
}

/// The full simulator configuration for `bench` under `policy` —
/// derived from the benchmark's declared geometry alone (no workload
/// image is built), so it is cheap enough to fingerprint for cache
/// keys. External programs contribute their own protected-region base
/// and footprint; built-ins keep the fixed [`secsim_workloads::DATA_BASE`] layout.
pub fn sim_config_id(bench: BenchId, policy: Policy, opts: &RunOpts) -> SimConfig {
    let (data_base, data_bytes) = (bench.data_base(), bench.footprint());
    let mut secure = if opts.tree {
        SecureConfig::paper_with_tree(policy, data_base, data_bytes)
    } else {
        SecureConfig::paper(policy)
    }
    .with_protected_region(data_base, data_bytes);
    if let Some(bytes) = opts.remap_cache_bytes {
        secure = secure.with_remap_cache_bytes(bytes);
    }
    SimConfig {
        cpu: opts.cpu,
        mem: opts.l2.mem_config(),
        secure,
        max_insts: opts.max_insts,
        max_cycles: opts.max_cycles,
    }
}

/// Builds the workload image for `(bench, seed)` through a process-wide
/// memo. Construction (program assembly plus data-image initialization)
/// costs a sizable fraction of a short run, and the experiment binaries
/// revisit the same point dozens of times across the policy × latency
/// grid — so each image is built once and cloned per run.
pub fn build_workload(bench: BenchId, seed: u64) -> Workload {
    let mut map = workload_memo().lock().expect("workload memo poisoned");
    map.entry((bench, seed)).or_insert_with(|| bench.build(seed)).clone()
}

/// The process-wide pristine-image memo backing [`build_workload`].
fn workload_memo() -> &'static Mutex<FastMap<(BenchId, u64), Workload>> {
    static CACHE: OnceLock<Mutex<FastMap<(BenchId, u64), Workload>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(FastMap::default()))
}

/// Runs `f` over a pristine workload image for `(bench, seed)` without
/// cloning a fresh image per run: each thread keeps a scratch copy that
/// is restored in place from the pristine memo (one straight copy into
/// already-faulted pages) before `f` sees it.
pub fn with_workload<R>(bench: BenchId, seed: u64, f: impl FnOnce(&mut Workload) -> R) -> R {
    use std::collections::hash_map::Entry;
    thread_local! {
        static SCRATCH: std::cell::RefCell<FastMap<(BenchId, u64), Workload>> =
            std::cell::RefCell::new(FastMap::default());
    }
    SCRATCH.with(|s| {
        let mut map = s.borrow_mut();
        match map.entry((bench, seed)) {
            Entry::Occupied(e) => {
                let w = e.into_mut();
                {
                    let memo = workload_memo().lock().expect("workload memo poisoned");
                    let pristine =
                        memo.get(&(bench, seed)).expect("scratch entry implies memo entry");
                    w.mem.restore_from(&pristine.mem);
                }
                f(w)
            }
            Entry::Vacant(v) => f(v.insert(build_workload(bench, seed))),
        }
    })
}

/// Runs `bench` under `policy` and returns the report. Always
/// simulates — use [`Sweep`] for the parallel, cached path.
pub fn run_bench(bench: BenchId, policy: Policy, opts: &RunOpts) -> SimReport {
    let cfg = sim_config_id(bench, policy, opts);
    with_workload(bench, opts.seed, |w| {
        let start = checkpoint::warm_start(bench, opts.seed, opts.warmup_insts, w);
        SimSession::new(&cfg).resume_from(start).run(&mut w.mem, w.entry).into_report()
    })
}

/// Runs `bench` under `policy` and the decrypt-only baseline, returning
/// `IPC(policy) / IPC(baseline)` — the normalization used throughout the
/// paper's figures. `None` when the baseline produced no cycles.
pub fn normalized_ipc(bench: BenchId, policy: Policy, opts: &RunOpts) -> Option<f64> {
    let base = run_bench(bench, Policy::baseline(), opts).ipc();
    let p = run_bench(bench, policy, opts).ipc();
    (base > 0.0).then(|| p / base)
}

/// Writes a table as Markdown + CSV under `results/` and prints the
/// Markdown to stdout.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("## {title}\n");
    println!("{}", table.to_markdown());
    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join(format!("{name}.md")), format!("## {title}\n\n{}", table.to_markdown()));
    let _ = fs::write(dir.join(format!("{name}.csv")), table.to_csv());
    eprintln!("[written to {}/{name}.md and .csv]", dir.display());
}

/// Where experiment outputs land (`SECSIM_RESULTS` or `./results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("SECSIM_RESULTS").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a ratio cell.
pub fn cell(x: f64) -> String {
    format!("{x:.3}")
}

/// The benchmark grid for a figure/table binary: `base` plus any
/// external programs the user supplied via `--program FILE` (collected
/// by [`Sweep::from_args`]), so an external workload rides every grid
/// the built-ins do.
pub fn grid_benches(sweep: &Sweep, base: &[BenchId]) -> Vec<BenchId> {
    base.iter().copied().chain(sweep.externals().iter().copied()).collect()
}

/// Runs the full `(benches × (reference + policies))` grid through
/// `sweep` and returns, per benchmark, the reference IPC plus each
/// policy's IPC — the shared shape of every ratio table. Failed points
/// are reported on stderr and surface as `None` cells.
fn ipc_grid(
    sweep: &Sweep,
    benches: &[BenchId],
    reference: Policy,
    policies: &[(&str, Policy)],
    opts: &RunOpts,
) -> Vec<(Option<f64>, Vec<Option<f64>>)> {
    let mut points = Vec::with_capacity(benches.len() * (policies.len() + 1));
    for &bench in benches {
        points.push(SweepPoint::of(bench, reference, opts));
        for (_, policy) in policies {
            points.push(SweepPoint::of(bench, *policy, opts));
        }
    }
    let reports = sweep.run(&points);
    let mut it = reports.into_iter().map(|r| match r {
        Ok(report) => Some(report.ipc()),
        Err(e) => {
            eprintln!("warning: skipping point: {e}");
            None
        }
    });
    let mut rows = Vec::with_capacity(benches.len());
    for _ in benches {
        let base = it.next().expect("grid shape");
        let row = policies.iter().map(|_| it.next().expect("grid shape")).collect();
        rows.push((base, row));
    }
    rows
}

/// Builds a normalized-IPC table: one row per benchmark in `benches`,
/// one column per `(label, policy)`, plus arithmetic-mean and
/// geometric-mean rows — the layout of the paper's Figure 7/10/12 data.
/// Skipped points render as `-` and are excluded from the means.
pub fn normalized_table(
    sweep: &Sweep,
    benches: &[BenchId],
    policies: &[(&str, Policy)],
    opts: &RunOpts,
) -> Table {
    let mut headers: Vec<String> = vec!["bench".into()];
    headers.extend(policies.iter().map(|(l, _)| (*l).to_string()));
    let mut table = Table::new(headers);
    let mut sums = vec![secsim_stats::Summary::new(); policies.len()];
    let grid = ipc_grid(sweep, benches, Policy::baseline(), policies, opts);
    for (&bench, (base, ipcs)) in benches.iter().zip(grid) {
        let mut row = vec![bench.to_string()];
        for (i, ipc) in ipcs.into_iter().enumerate() {
            match (base, ipc) {
                (Some(base), Some(ipc)) if base > 0.0 => {
                    let norm = ipc / base;
                    sums[i].push(norm.max(1e-9));
                    row.push(cell(norm));
                }
                _ => row.push("-".to_string()),
            }
        }
        table.push_row(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    mean_row.extend(sums.iter().map(|s| cell(s.mean())));
    table.push_row(mean_row);
    let mut geo_row = vec!["GEOMEAN".to_string()];
    geo_row.extend(sums.iter().map(|s| cell(s.geomean())));
    table.push_row(geo_row);
    table
}

/// Builds a speedup-over-`authen-then-issue` table (Figures 8/11/13):
/// `IPC(policy) / IPC(issue) - 1`, reported as percentages. Skipped
/// points render as `-` and are excluded from the mean.
pub fn speedup_over_issue_table(
    sweep: &Sweep,
    benches: &[BenchId],
    policies: &[(&str, Policy)],
    opts: &RunOpts,
) -> Table {
    let mut headers: Vec<String> = vec!["bench".into()];
    headers.extend(policies.iter().map(|(l, _)| format!("{l} (%)")));
    let mut table = Table::new(headers);
    let mut sums = vec![secsim_stats::Summary::new(); policies.len()];
    let grid = ipc_grid(sweep, benches, Policy::authen_then_issue(), policies, opts);
    for (&bench, (issue, ipcs)) in benches.iter().zip(grid) {
        let mut row = vec![bench.to_string()];
        for (i, ipc) in ipcs.into_iter().enumerate() {
            match (issue, ipc) {
                (Some(issue), Some(ipc)) if issue > 0.0 => {
                    let pct = (ipc / issue - 1.0) * 100.0;
                    sums[i].push((pct + 1000.0).max(1e-9)); // offset keeps Summary positive
                    row.push(format!("{pct:+.1}"));
                }
                _ => row.push("-".to_string()),
            }
        }
        table.push_row(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    mean_row.extend(sums.iter().map(|s| format!("{:+.1}", s.mean() - 1000.0)));
    table.push_row(mean_row);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_labels() {
        assert_eq!(L2Size::K256.label(), "256KB");
        assert_eq!(L2Size::M1.label(), "1MB");
    }

    #[test]
    fn unknown_bench_fails_to_parse() {
        assert!("nope".parse::<BenchId>().is_err());
    }

    #[test]
    fn tiny_run_produces_ipc() {
        let opts = RunOpts { max_insts: 20_000, ..RunOpts::default() };
        let r = run_bench(BenchId::Gzip, Policy::baseline(), &opts);
        assert!(r.ipc() > 0.1);
        assert_eq!(r.insts, 20_000);
    }

    #[test]
    fn normalized_ipc_below_one_for_issue_gating() {
        let opts = RunOpts { max_insts: 60_000, ..RunOpts::default() };
        let n = normalized_ipc(BenchId::Mcf, Policy::authen_then_issue(), &opts).expect("mcf");
        assert!(n < 1.0, "authen-then-issue must cost something on mcf, got {n}");
        assert!(n > 0.3, "sanity: {n}");
    }
}
