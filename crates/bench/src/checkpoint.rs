//! Checkpointed functional fast-forward for warmup.
//!
//! Long experiment grids re-simulate the same `(bench, seed)` point
//! under many policies and latencies, and every run repeats the same
//! warmup prefix before the region of interest. The warmup prefix is
//! *functional* — architectural state and memory only, no timing — so
//! it is policy-independent: one fast-forwarded snapshot can seed the
//! whole 8-policy × latency grid.
//!
//! This module provides that snapshot. [`fast_forward`] steps the
//! golden interpreter for `warmup_insts` instructions;
//! [`warm_start`] wraps it with an on-disk checkpoint store beside the
//! sweep cache (`results/checkpoints/`), keyed by a
//! [`StableHasher`] fingerprint of `(CHECKPOINT_VERSION, bench, seed,
//! warmup_insts)`. The serialized form round-trips *exactly* (registers,
//! PC, instruction count, halt flag, memory bytes, out-of-bounds
//! counter), so a restored run is byte-for-byte identical to one that
//! fast-forwarded from scratch — the invariant the checkpoint
//! determinism tests pin.
//!
//! Timing state is deliberately **not** checkpointed: caches, branch
//! predictor, and MAC queue start cold either way, exactly as they do
//! in a cold run, so checkpoints can never change a report.
//!
//! # Examples
//!
//! ```
//! use secsim_bench::checkpoint;
//! use secsim_isa::{Asm, FlatMem, Reg};
//!
//! let mut a = Asm::new(0x1000);
//! a.addi(Reg::R1, Reg::R0, 7);
//! a.halt();
//! let mut mem = FlatMem::new(0x1000, 1 << 12);
//! mem.load_words(0x1000, &a.assemble().unwrap());
//!
//! let st = checkpoint::fast_forward(&mut mem, 0x1000, 1);
//! assert_eq!(st.icount, 1);
//! let bytes = checkpoint::to_bytes(&st, &mem);
//! let (st2, mem2) = checkpoint::from_bytes(&bytes).unwrap();
//! assert_eq!(st, st2);
//! assert_eq!(mem.as_bytes(), mem2.as_bytes());
//! ```

use secsim_isa::{step, ArchState, FReg, FlatMem, Reg};
use secsim_stats::{StableHash, StableHasher};
use secsim_workloads::{BenchId, Workload};
use std::fs;
use std::path::{Path, PathBuf};

/// Salt for every checkpoint key and the on-disk format version. Bump
/// on any serialization change *or* any functional-semantics change
/// that would make old snapshots diverge from a fresh fast-forward.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File magic: identifies a secsim checkpoint regardless of version.
const MAGIC: &[u8; 8] = b"SSIMCKPT";

/// Stable checkpoint key: a fingerprint of
/// `(CHECKPOINT_VERSION, bench, seed, warmup_insts)`. Identical across
/// processes and platforms; policy and latency are deliberately absent
/// (the snapshot is shared across the whole grid).
pub fn checkpoint_key(bench: BenchId, seed: u64, warmup_insts: u64) -> u64 {
    let mut h = StableHasher::new();
    (CHECKPOINT_VERSION as u64).stable_hash(&mut h);
    bench.name().stable_hash(&mut h);
    // External programs key by content, not just (sanitized) file name,
    // mirroring the sweep cache.
    if let Some(hash) = bench.external_hash() {
        "external".stable_hash(&mut h);
        hash.stable_hash(&mut h);
    }
    seed.stable_hash(&mut h);
    warmup_insts.stable_hash(&mut h);
    h.finish()
}

/// Where checkpoints land: `checkpoints/` beside the sweep cache,
/// relocated together with it by `SECSIM_RESULTS`.
pub fn checkpoints_dir() -> PathBuf {
    crate::results_dir().join("checkpoints")
}

/// Steps the golden interpreter until `warmup_insts` instructions have
/// retired (or the program halts or faults first), mutating `mem` in
/// place, and returns the architectural state at the boundary.
///
/// A decode fault ends the fast-forward early with the PC parked on the
/// faulting instruction — the subsequent timed run re-encounters the
/// same fault and handles it under its own rules, exactly as a cold run
/// reaching that point would.
pub fn fast_forward(mem: &mut FlatMem, entry: u32, warmup_insts: u64) -> ArchState {
    let mut st = ArchState::new(entry);
    while st.icount < warmup_insts && !st.halted {
        if step(&mut st, mem).is_err() {
            break;
        }
    }
    st
}

/// Serializes a warmup snapshot: fixed-width little-endian fields, no
/// framing dependencies, fully self-describing via magic + version.
pub fn to_bytes(state: &ArchState, mem: &FlatMem) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + 4 + 1 + 8 + 32 * 4 + 32 * 8 + 4 + 8 + 8 + mem.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&state.pc.to_le_bytes());
    out.push(state.halted as u8);
    out.extend_from_slice(&state.icount.to_le_bytes());
    for i in 0..32 {
        out.extend_from_slice(&state.reg(Reg::from_index(i)).to_le_bytes());
    }
    for i in 0..32 {
        out.extend_from_slice(&state.freg(FReg::from_index(i)).to_bits().to_le_bytes());
    }
    out.extend_from_slice(&mem.base().to_le_bytes());
    out.extend_from_slice(&mem.oob_count().to_le_bytes());
    out.extend_from_slice(&(mem.len() as u64).to_le_bytes());
    out.extend_from_slice(mem.as_bytes());
    out
}

/// Parses a snapshot serialized by [`to_bytes`]. `None` on any
/// malformation — wrong magic, unknown version, or truncation — so a
/// torn or stale file degrades to a fresh fast-forward, never a panic.
pub fn from_bytes(bytes: &[u8]) -> Option<(ArchState, FlatMem)> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if cur.u32()? != CHECKPOINT_VERSION {
        return None;
    }
    let pc = cur.u32()?;
    let halted = match cur.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let icount = cur.u64()?;
    let mut state = ArchState::new(pc);
    state.halted = halted;
    state.icount = icount;
    for i in 0..32 {
        let v = cur.u32()?;
        state.set_reg(Reg::from_index(i), v);
    }
    for i in 0..32 {
        let v = f64::from_bits(cur.u64()?);
        state.set_freg(FReg::from_index(i), v);
    }
    let base = cur.u32()?;
    let oob = cur.u64()?;
    let len = cur.u64()? as usize;
    let data = cur.take(len)?;
    if cur.pos != bytes.len() {
        return None; // trailing garbage: treat as corrupt
    }
    let mut mem = FlatMem::new(base, len);
    mem.as_bytes_mut().copy_from_slice(data);
    mem.set_oob_count(oob);
    Some((state, mem))
}

/// Fast-forwards `w` by `warmup_insts` instructions through the
/// checkpoint store and returns the warm start state: a valid on-disk
/// snapshot is restored in place (one straight copy into the image), a
/// miss fast-forwards functionally and persists the result for the rest
/// of the grid. `warmup_insts == 0` is a cold start and touches neither
/// the image nor the store.
///
/// Store I/O is best-effort: an unreadable entry or unwritable
/// directory silently degrades to the fresh path. Writes go through a
/// per-process temporary file renamed into place, so concurrent sweep
/// workers never observe a torn checkpoint.
pub fn warm_start(bench: BenchId, seed: u64, warmup_insts: u64, w: &mut Workload) -> ArchState {
    if warmup_insts == 0 {
        return ArchState::new(w.entry);
    }
    let path = checkpoints_dir()
        .join(format!("{:016x}.ckpt", checkpoint_key(bench, seed, warmup_insts)));
    if let Ok(bytes) = fs::read(&path) {
        if let Some((state, mem)) = from_bytes(&bytes) {
            if mem.base() == w.mem.base() && mem.len() == w.mem.len() {
                w.mem.restore_from(&mem);
                return state;
            }
        }
    }
    let state = fast_forward(&mut w.mem, w.entry, warmup_insts);
    save_atomic(&path, &to_bytes(&state, &w.mem));
    state
}

/// Best-effort atomic write: temp file in the target directory, then
/// rename. Failures are swallowed — a missing checkpoint only costs the
/// next run a fast-forward.
fn save_atomic(path: &Path, bytes: &[u8]) {
    let Some(dir) = path.parent() else { return };
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if fs::write(&tmp, bytes).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_isa::Asm;

    fn program() -> (FlatMem, u32) {
        let mut a = Asm::new(0x1000);
        a.li(Reg::R1, 0x2000);
        a.addi(Reg::R2, Reg::R0, 5);
        let top = a.new_label();
        a.bind(top).unwrap();
        a.sw(Reg::R2, Reg::R1, 0);
        a.addi(Reg::R1, Reg::R1, 4);
        a.addi(Reg::R2, Reg::R2, -1);
        a.bne(Reg::R2, Reg::R0, top);
        a.halt();
        let mut mem = FlatMem::new(0x1000, 1 << 13);
        mem.load_words(0x1000, &a.assemble().unwrap());
        (mem, 0x1000)
    }

    #[test]
    fn round_trip_is_exact() {
        let (mut mem, entry) = program();
        let st = fast_forward(&mut mem, entry, 9);
        assert_eq!(st.icount, 9);
        assert!(!st.halted);
        let bytes = to_bytes(&st, &mem);
        let (st2, mem2) = from_bytes(&bytes).expect("round trip");
        assert_eq!(st, st2);
        assert_eq!(mem, mem2);
        assert_eq!(mem.oob_count(), mem2.oob_count());
    }

    #[test]
    fn oob_counter_survives_round_trip() {
        use secsim_isa::MemIo;
        let (mut mem, entry) = program();
        mem.write_u32(0x9999_0000, 1); // out of image
        let st = fast_forward(&mut mem, entry, 3);
        let (_, mem2) = from_bytes(&to_bytes(&st, &mem)).unwrap();
        assert_eq!(mem2.oob_count(), mem.oob_count());
        assert!(mem2.oob_count() >= 1);
    }

    #[test]
    fn malformed_snapshots_are_rejected_not_panicking() {
        let (mut mem, entry) = program();
        let st = fast_forward(&mut mem, entry, 2);
        let good = to_bytes(&st, &mem);
        assert!(from_bytes(&good).is_some());
        // Truncations at every prefix length fail cleanly.
        for cut in [0, 4, MAGIC.len(), MAGIC.len() + 3, good.len() / 2, good.len() - 1] {
            assert!(from_bytes(&good[..cut]).is_none(), "cut={cut}");
        }
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(from_bytes(&bad).is_none());
        // Unknown version.
        let mut bad = good.clone();
        bad[MAGIC.len()] ^= 0xFF;
        assert!(from_bytes(&bad).is_none());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(from_bytes(&bad).is_none());
    }

    #[test]
    fn fast_forward_stops_at_halt() {
        let (mut mem, entry) = program();
        let st = fast_forward(&mut mem, entry, 1_000_000);
        assert!(st.halted);
        assert!(st.icount < 1_000_000);
    }

    #[test]
    fn keys_separate_every_dimension() {
        let k = |b: &str, s, w| checkpoint_key(b.parse().unwrap(), s, w);
        let base = k("mcf", 2006, 1000);
        assert_ne!(base, k("gzip", 2006, 1000));
        assert_ne!(base, k("mcf", 2007, 1000));
        assert_ne!(base, k("mcf", 2006, 1001));
        assert_eq!(base, k("mcf", 2006, 1000));
    }
}
