//! The fault-campaign point runner, shared by the `faults` binary and
//! the `secsim-serve` job server.
//!
//! One campaign point = one deterministic victim (a load → compute →
//! store loop over an encrypted image) with a single scheduled fault,
//! under a policy. Each point is bounded twice: by the model's cycle
//! fence (`SimConfig::max_cycles`) and by a wall-clock watchdog thread
//! outside it — a point that runs away ends as `CycleLimitExceeded`, a
//! point that wedges its host thread is abandoned and surfaces as a
//! [`SweepError::Failed`] hole in the grid, never a hung campaign.

use crate::SweepError;
use secsim_core::{EncryptedMemory, Exposure, FaultKind, FaultPlan, FetchGateVariant, Policy,
    TamperCause};
use secsim_cpu::{SimConfig, SimOutcome, SimSession};
use secsim_isa::{Asm, Reg};
use std::sync::mpsc;
use std::time::Duration;

/// Address of the data line the victim re-reads every iteration — the
/// campaign's tamper target.
pub const TARGET: u32 = 0x2000;
/// Warm scratch line the tainted results are stored to. Keeping the
/// dependent work on-chip makes the exposure ordering structural: no
/// tainted instruction needs a bus grant of its own.
pub const SCRATCH: u32 = 0x3000;
/// Per-point cycle fence: generous for a ~20k-cycle victim, tiny next
/// to the 2⁴⁰-cycle horizon of a dropped MAC verification.
pub const FENCE: u64 = 500_000;

/// The victim: `ITERS ×` (load target; two dependent adds; two
/// dependent stores to scratch; count down). Everything the tampered
/// line can taint stays off the bus, so exposure differences between
/// policies come only from the gates.
pub fn victim() -> EncryptedMemory {
    let mut a = Asm::new(0x0);
    let top = a.new_label();
    a.li(Reg::R1, TARGET);
    a.li(Reg::R4, SCRATCH);
    a.li(Reg::R2, 6000);
    a.bind(top).expect("fresh label");
    a.lw(Reg::R3, Reg::R1, 0);
    a.add(Reg::R5, Reg::R3, Reg::R3);
    a.add(Reg::R5, Reg::R5, Reg::R3);
    a.sw(Reg::R5, Reg::R4, 0);
    a.sw(Reg::R3, Reg::R4, 4);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bne(Reg::R2, Reg::R0, top);
    a.halt();
    let words = a.assemble().expect("victim assembles");
    let mut plain = vec![0u8; 16 << 10];
    for (i, w) in words.iter().enumerate() {
        plain[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    plain[TARGET as usize] = 0x2A; // something nonzero to chew on
    EncryptedMemory::from_plain(0, &plain, &[0xFA; 16], b"fault-campaign")
}

/// The eight schemes of the campaign, in detection-latency order where
/// the paper defines one.
pub fn schemes() -> [(&'static str, Policy); 8] {
    [
        ("baseline", Policy::baseline()),
        ("authen-then-issue", Policy::authen_then_issue()),
        ("authen-then-commit", Policy::authen_then_commit()),
        ("authen-then-write", Policy::authen_then_write()),
        ("authen-then-fetch", Policy::authen_then_fetch()),
        (
            "authen-then-fetch-drain",
            Policy::authen_then_fetch().with_fetch_variant(FetchGateVariant::Drain),
        ),
        ("commit+fetch", Policy::commit_plus_fetch()),
        ("commit+obf", Policy::commit_plus_obfuscation()),
    ]
}

/// The integrity faults every authenticating policy must catch.
pub fn integrity_kinds() -> [FaultKind; 5] {
    [
        FaultKind::CiphertextFlip { mask: 0x40 },
        FaultKind::TagCorrupt { mask: 0xDEAD },
        FaultKind::CounterReplay,
        FaultKind::DramFlip { bit: 3 },
        FaultKind::BusCorrupt { mask: 0x08 },
    ]
}

/// What one campaign point produced.
#[derive(Debug, Clone, Copy)]
pub struct FaultOutcome {
    /// `"completed"`, `"detected"` or `"cycle-fence"`.
    pub verdict: &'static str,
    /// Cycle at which tamper detection fired, if it did.
    pub detect_cycle: Option<u64>,
    /// Attributed cause of a detection.
    pub cause: Option<TamperCause>,
    /// Pre-detection exposure ledger of a detection.
    pub exposure: Option<Exposure>,
    /// Total cycles simulated.
    pub cycles: u64,
}

/// Runs one point on a watchdog thread: the simulation is bounded by
/// the cycle fence inside the model and by `timeout` outside it. A
/// point that exceeds the wall clock is abandoned (the thread is
/// detached) and surfaces as a [`SweepError::Failed`] — one hole in the
/// grid, not a hung campaign.
pub fn run_point(
    policy: Policy,
    kind: FaultKind,
    inject: u64,
    timeout: Duration,
) -> Result<FaultOutcome, SweepError> {
    let label = format!("faults/{}@{inject}", kind.name());
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let run = std::panic::catch_unwind(|| {
            let mut image = victim();
            let cfg = SimConfig::paper_256k(policy).with_max_cycles(FENCE);
            let plan = FaultPlan::new().at(inject, TARGET, kind);
            let out = SimSession::new(&cfg).faults(plan).run(&mut image, 0x0);
            let cycles = out.report().cycles;
            match out {
                SimOutcome::Completed(_) => FaultOutcome {
                    verdict: "completed",
                    detect_cycle: None,
                    cause: None,
                    exposure: None,
                    cycles,
                },
                SimOutcome::TamperDetected { cycle, cause, exposure, .. } => FaultOutcome {
                    verdict: "detected",
                    detect_cycle: Some(cycle),
                    cause: Some(cause),
                    exposure: Some(exposure),
                    cycles,
                },
                SimOutcome::CycleLimitExceeded { .. } => FaultOutcome {
                    verdict: "cycle-fence",
                    detect_cycle: None,
                    cause: None,
                    exposure: None,
                    cycles,
                },
            }
        });
        let _ = tx.send(run.map_err(|payload| {
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string())
        }));
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(detail)) => Err(SweepError::Failed { bench: label, detail }),
        Err(_) => Err(SweepError::Failed {
            bench: label,
            detail: format!("wall-clock timeout after {}s", timeout.as_secs()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_point_reports_cause_and_exposure() {
        let kind = FaultKind::CiphertextFlip { mask: 0x40 };
        let out = run_point(
            Policy::authen_then_commit(),
            kind,
            2_500,
            Duration::from_secs(60),
        )
        .expect("point completes");
        assert_eq!(out.verdict, "detected");
        assert_eq!(out.cause, Some(kind.cause()));
        assert!(out.exposure.is_some());
        assert!(out.detect_cycle.unwrap() >= 2_500);
    }
}
