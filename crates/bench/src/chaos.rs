//! Deterministic network-fault injection for the service layer.
//!
//! The repo's core methodology — seeded, replayable fault injection
//! with a checkable invariant — applied one layer up: instead of
//! flipping bits in a simulated pipeline ([`crate::faultpoint`]), the
//! [`ChaosProxy`] sits between a `secsim-serve` client and server and
//! corrupts the *transport*. Every fault is drawn from a [`ChaosPlan`]
//! seeded by SplitMix64, so a failing run replays exactly: the fault
//! hitting connection `n` is a pure function of `(seed, n)`.
//!
//! The invariant under test is the service-layer analogue of "zero
//! undetected tampering": under arbitrary connection faults,
//! reconnecting clients must still terminate with results
//! byte-identical to a fault-free run and `simulated == unique points`
//! (exactly-once execution — nothing lost, nothing duplicated).
//!
//! # Fault kinds
//!
//! Per accepted connection the plan rolls one [`ConnFault`]:
//!
//! * `None` — transparent relay.
//! * `Delay` — stall the server→client stream once for a bounded time.
//! * `Truncate` — forward a byte prefix (typically ending mid-line),
//!   then sever both directions.
//! * `Garbage` — splice a junk burst (control chars, never parseable
//!   as an event) into the server→client stream, then keep relaying.
//! * `Drop` — sever both directions after a byte prefix of the
//!   *client→server* stream (the submission itself may be lost).
//! * `Blackhole` — forward a prefix, then silently discard all further
//!   server→client bytes while keeping the socket open; only a client
//!   read timeout gets out of this one.
//!
//! Faults fire at most once per connection; a reconnecting client gets
//! a fresh roll. With a nonzero fault rate a multi-point job stream is
//! overwhelmingly likely to be interrupted at least once, which is what
//! exercises the protocol-v2 resume path.

use secsim_workloads::SplitMix64;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The seeded fault schedule. Copyable config: the proxy derives each
/// connection's fault on the fly, so a plan is just `(seed, rate)`.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    /// Seed for the per-connection fault rolls.
    pub seed: u64,
    /// Percentage of connections that receive a fault (0–100).
    pub fault_rate_pct: u8,
}

impl ChaosPlan {
    /// A plan injecting faults on `fault_rate_pct`% of connections.
    pub fn new(seed: u64, fault_rate_pct: u8) -> Self {
        Self { seed, fault_rate_pct: fault_rate_pct.min(100) }
    }

    /// The fault for the `conn`-th accepted connection — a pure
    /// function of `(seed, conn)`, so schedules replay exactly.
    pub fn fault_for(&self, conn: u64) -> ConnFault {
        let mut rng = SplitMix64::new(
            self.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        );
        if rng.next_u64() % 100 >= u64::from(self.fault_rate_pct) {
            return ConnFault::None;
        }
        let roll = rng.next_u64();
        match roll % 5 {
            0 => ConnFault::Delay { ms: 10 + roll % 150 },
            1 => ConnFault::Truncate { after: 64 + rng.next_u64() % 1536 },
            2 => ConnFault::Garbage { after: 64 + rng.next_u64() % 1024 },
            3 => ConnFault::Drop { after: rng.next_u64() % 2048 },
            _ => ConnFault::Blackhole { after: rng.next_u64() % 1024 },
        }
    }
}

/// What happens to one proxied connection. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Transparent relay.
    None,
    /// Server→client stream stalls once for `ms` milliseconds.
    Delay {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Server→client stream is cut after `after` bytes (mid-line for
    /// any realistic event stream), then both directions sever.
    Truncate {
        /// Bytes forwarded before the cut.
        after: u64,
    },
    /// A junk burst is spliced into the server→client stream after
    /// `after` bytes, corrupting the event line it lands in.
    Garbage {
        /// Bytes forwarded before the junk burst.
        after: u64,
    },
    /// Client→server stream severs after `after` bytes — possibly
    /// before the submission finishes.
    Drop {
        /// Client bytes forwarded before the cut.
        after: u64,
    },
    /// Server→client bytes are silently discarded after `after` bytes;
    /// the socket stays open. Forces the client read timeout.
    Blackhole {
        /// Bytes forwarded before the black hole opens.
        after: u64,
    },
}

/// A fault-injecting TCP relay in front of one upstream address.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts relaying every accepted
    /// connection to `upstream` under `plan`'s fault schedule.
    pub fn spawn(plan: ChaosPlan, upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let conn = accepted.fetch_add(1, Ordering::Relaxed);
                            let fault = plan.fault_for(conn);
                            thread::spawn(move || relay(client, upstream, fault));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Self { addr, stop, accepted, accept_thread: Some(accept_thread) })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections. In-flight relays run to their
    /// natural end (EOF or fault).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Severs both directions of both sockets. Errors are already-dead
/// sockets and ignorable.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(std::net::Shutdown::Both);
    let _ = b.shutdown(std::net::Shutdown::Both);
}

/// Runs one proxied connection to completion.
fn relay(client: TcpStream, upstream: SocketAddr, fault: ConnFault) {
    let Ok(server) = TcpStream::connect(upstream) else {
        // Upstream gone: drop the client, which sees a connect-reset —
        // exactly the failure its backoff loop is built for.
        let _ = client.shutdown(std::net::Shutdown::Both);
        return;
    };
    let (Ok(c2s_r), Ok(c2s_w)) = (client.try_clone(), server.try_clone()) else {
        sever(&client, &server);
        return;
    };
    // Client→server pump: plain relay except for `Drop`, which cuts the
    // submission short.
    let c2s = thread::spawn(move || match fault {
        ConnFault::Drop { after } => pump_cut(c2s_r, c2s_w, after),
        _ => pump_plain(c2s_r, c2s_w),
    });
    // Server→client pump (this thread) carries every other fault.
    match fault {
        ConnFault::None | ConnFault::Drop { .. } => pump_plain(server, client),
        ConnFault::Delay { ms } => {
            thread::sleep(Duration::from_millis(ms));
            pump_plain(server, client);
        }
        ConnFault::Truncate { after } => pump_cut(server, client, after),
        ConnFault::Garbage { after } => pump_garbage(server, client, after),
        ConnFault::Blackhole { after } => pump_blackhole(server, client, after),
    }
    let _ = c2s.join();
}

/// Transparent byte pump. EOF half-closes the write side (so the
/// protocol's truncation detection still sees orderly shutdown); errors
/// sever both.
fn pump_plain(mut from: TcpStream, to: TcpStream) {
    let mut to_w = &to;
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) => {
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            Ok(n) => {
                if to_w.write_all(&buf[..n]).is_err() {
                    sever(&from, &to);
                    return;
                }
            }
            Err(_) => {
                sever(&from, &to);
                return;
            }
        }
    }
}

/// Forwards `after` bytes, then severs both directions — a mid-stream
/// (usually mid-line) disconnect.
fn pump_cut(mut from: TcpStream, to: TcpStream, after: u64) {
    let mut to_w = &to;
    let mut left = after;
    let mut buf = [0u8; 4096];
    loop {
        let want = (buf.len() as u64).min(left.max(1)) as usize;
        if left == 0 {
            sever(&from, &to);
            return;
        }
        match from.read(&mut buf[..want]) {
            Ok(0) => {
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            Ok(n) => {
                left -= n as u64;
                if to_w.write_all(&buf[..n]).is_err() {
                    sever(&from, &to);
                    return;
                }
            }
            Err(_) => {
                sever(&from, &to);
                return;
            }
        }
    }
}

/// Forwards `after` bytes, injects a newline-terminated junk burst,
/// then keeps relaying. The burst contains no `"` or `}`, so splicing
/// it into the middle of a JSON event line always leaves unclosed
/// structure: neither the spliced line nor the orphaned tail of the
/// real line can ever parse as a valid event.
fn pump_garbage(mut from: TcpStream, to: TcpStream, after: u64) {
    let mut to_w = &to;
    let mut left = after;
    let mut injected = false;
    let mut buf = [0u8; 4096];
    loop {
        if left == 0 && !injected {
            injected = true;
            if to_w.write_all(b"\x01\x02garbage\x7f\x1b[31mnoise\n").is_err() {
                sever(&from, &to);
                return;
            }
        }
        let want = if injected { buf.len() } else { (buf.len() as u64).min(left) as usize };
        match from.read(&mut buf[..want.max(1)]) {
            Ok(0) => {
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            Ok(n) => {
                left = left.saturating_sub(n as u64);
                if to_w.write_all(&buf[..n]).is_err() {
                    sever(&from, &to);
                    return;
                }
            }
            Err(_) => {
                sever(&from, &to);
                return;
            }
        }
    }
}

/// Forwards `after` bytes, then silently discards the rest while
/// keeping the client socket open — the wedge that only a client read
/// timeout escapes.
fn pump_blackhole(mut from: TcpStream, to: TcpStream, after: u64) {
    let mut to_w = &to;
    let mut left = after;
    let mut buf = [0u8; 4096];
    loop {
        let want = if left == 0 { buf.len() } else { (buf.len() as u64).min(left) as usize };
        match from.read(&mut buf[..want.max(1)]) {
            Ok(0) => {
                // Server finished; keep the client hanging regardless.
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            Ok(n) => {
                if left > 0 {
                    left -= n as u64;
                    if to_w.write_all(&buf[..n]).is_err() {
                        sever(&from, &to);
                        return;
                    }
                }
                // left == 0: swallow the bytes, say nothing.
            }
            Err(_) => {
                sever(&from, &to);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn fault_schedule_is_a_pure_function_of_seed_and_connection() {
        let plan = ChaosPlan::new(0xC0FFEE, 80);
        let again = ChaosPlan::new(0xC0FFEE, 80);
        let schedule: Vec<ConnFault> = (0..64).map(|c| plan.fault_for(c)).collect();
        let replay: Vec<ConnFault> = (0..64).map(|c| again.fault_for(c)).collect();
        assert_eq!(schedule, replay, "same seed must replay the same schedule");
        let other: Vec<ConnFault> = (0..64).map(|c| ChaosPlan::new(0xBEEF, 80).fault_for(c)).collect();
        assert_ne!(schedule, other, "a different seed must differ somewhere");
        // At 80% the schedule must actually contain faults — and more
        // than one kind of them.
        let faulted = schedule.iter().filter(|f| **f != ConnFault::None).count();
        assert!(faulted > 32, "80% rate produced only {faulted}/64 faults");
        let kinds: std::collections::HashSet<_> =
            schedule.iter().map(std::mem::discriminant).collect();
        assert!(kinds.len() >= 4, "expected fault-kind diversity, got {kinds:?}");
    }

    #[test]
    fn rate_zero_is_fully_transparent() {
        let plan = ChaosPlan::new(7, 0);
        assert!((0..256).all(|c| plan.fault_for(c) == ConnFault::None));
    }

    #[test]
    fn proxy_relays_bytes_both_ways_at_rate_zero() {
        // Line-echo upstream: reads lines, echoes them back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (sock, _) = upstream.accept().unwrap();
            let mut reader = BufReader::new(sock.try_clone().unwrap());
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 {
                (&sock).write_all(line.as_bytes()).unwrap();
                line.clear();
            }
        });
        let mut proxy = ChaosProxy::spawn(ChaosPlan::new(1, 0), up_addr).unwrap();
        let sock = TcpStream::connect(proxy.addr()).unwrap();
        (&sock).write_all(b"hello through the proxy\n").unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello through the proxy\n");
        sock.shutdown(std::net::Shutdown::Both).unwrap();
        echo.join().unwrap();
        assert_eq!(proxy.accepted(), 1);
        proxy.stop();
    }
}
