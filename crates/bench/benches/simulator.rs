//! End-to-end benchmarks: simulated instructions per second of
//! wall-clock for representative workloads and policies, plus the cost
//! of one full exploit run.
//!
//! Offline builds (the default) use a plain `std::time` harness; enable
//! the `criterion` feature (and restore the criterion dev-dependency —
//! see Cargo.toml) for the statistical harness.

#[cfg(feature = "criterion")]
mod with_criterion {
    use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
    use secsim_attack::{run_exploit, Exploit};
    use secsim_core::Policy;
    use secsim_cpu::{SimConfig, SimSession};
    use secsim_workloads::BenchId;

    const INSTS: u64 = 30_000;

    fn bench_simulate(c: &mut Criterion) {
        let mut g = c.benchmark_group("simulate_30k");
        g.throughput(Throughput::Elements(INSTS));
        g.sample_size(10);
        for bench in [BenchId::Gzip, BenchId::Mcf, BenchId::Swim] {
            for (label, policy) in [
                ("baseline", Policy::baseline()),
                ("issue", Policy::authen_then_issue()),
                ("commit+fetch", Policy::commit_plus_fetch()),
            ] {
                g.bench_with_input(
                    BenchmarkId::new(bench.name(), label),
                    &policy,
                    |b, &policy| {
                        let w = bench.build(11);
                        let mut cfg = SimConfig::paper_256k(policy).with_max_insts(INSTS);
                        cfg.secure =
                            cfg.secure.with_protected_region(w.data_base, w.data_bytes);
                        b.iter(|| {
                            let mut m = w.mem.clone();
                            SimSession::new(&cfg).run(&mut m, w.entry).into_report()
                        })
                    },
                );
            }
        }
        g.finish();
    }

    fn bench_exploit(c: &mut Criterion) {
        let mut g = c.benchmark_group("exploit");
        g.sample_size(10);
        g.bench_function("pointer_conversion_commit", |b| {
            b.iter(|| run_exploit(Exploit::PointerConversion, Policy::authen_then_commit()))
        });
        g.bench_function("disclosing_kernel_issue", |b| {
            b.iter(|| run_exploit(Exploit::DisclosingKernel, Policy::authen_then_issue()))
        });
        g.finish();
    }

    criterion_group!(benches, bench_simulate, bench_exploit);

    pub fn main() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

#[cfg(not(feature = "criterion"))]
mod plain {
    use secsim_attack::{run_exploit, Exploit};
    use secsim_bench::timing::{fmt_rate, measure};
    use secsim_core::Policy;
    use secsim_cpu::{SimConfig, SimSession};
    use secsim_workloads::BenchId;

    const INSTS: u64 = 30_000;

    pub fn main() {
        for bench in [BenchId::Gzip, BenchId::Mcf, BenchId::Swim] {
            for (label, policy) in [
                ("baseline", Policy::baseline()),
                ("issue", Policy::authen_then_issue()),
                ("commit+fetch", Policy::commit_plus_fetch()),
            ] {
                let w = bench.build(11);
                let mut cfg = SimConfig::paper_256k(policy).with_max_insts(INSTS);
                cfg.secure = cfg.secure.with_protected_region(w.data_base, w.data_bytes);
                let m = measure(&format!("simulate_30k/{bench}/{label}"), 1.0, || {
                    let mut mem = w.mem.clone();
                    SimSession::new(&cfg).run(&mut mem, w.entry);
                });
                println!(
                    "{:40} {:>12} simulated insts/s  ({:.2} ms/run)",
                    m.label,
                    fmt_rate(m.rate(INSTS as f64)),
                    m.per_iter_secs() * 1e3
                );
            }
        }
        for (label, exploit, policy) in [
            ("pointer_conversion_commit", Exploit::PointerConversion, Policy::authen_then_commit()),
            ("disclosing_kernel_issue", Exploit::DisclosingKernel, Policy::authen_then_issue()),
        ] {
            let m = measure(&format!("exploit/{label}"), 1.0, || {
                run_exploit(exploit, policy);
            });
            println!("{:40} {:>12.2} ms/run", m.label, m.per_iter_secs() * 1e3);
        }
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    with_criterion::main();
    #[cfg(not(feature = "criterion"))]
    plain::main();
}
