//! Microbenchmarks for the cryptographic substrate — the functional
//! engines the secure processor's latency model stands in for.
//!
//! Offline builds (the default) use a plain `std::time` harness; enable
//! the `criterion` feature (and restore the criterion dev-dependency —
//! see Cargo.toml) for the statistical harness.

#[cfg(feature = "criterion")]
mod with_criterion {
    use criterion::{black_box, criterion_group, Criterion, Throughput};
    use secsim_core::MerkleTree;
    use secsim_crypto::{Aes, CbcMac, CtrKeystream, HmacSha256, Sha256};

    fn bench_aes(c: &mut Criterion) {
        let mut g = c.benchmark_group("aes");
        g.throughput(Throughput::Bytes(16));
        let aes128 = Aes::new_128(&[7; 16]);
        g.bench_function("encrypt_block_128", |b| {
            let mut block = [0u8; 16];
            b.iter(|| {
                aes128.encrypt_block(black_box(&mut block));
            })
        });
        let aes256 = Aes::new_256(&[7; 32]);
        g.bench_function("encrypt_block_256", |b| {
            let mut block = [0u8; 16];
            b.iter(|| {
                aes256.encrypt_block(black_box(&mut block));
            })
        });
        g.finish();
    }

    fn bench_hashes(c: &mut Criterion) {
        let mut g = c.benchmark_group("mac");
        let line = [0xA5u8; 64];
        g.throughput(Throughput::Bytes(64));
        g.bench_function("sha256_line", |b| b.iter(|| Sha256::digest(black_box(&line))));
        let hmac = HmacSha256::new(b"bench-key");
        g.bench_function("hmac_line_truncated", |b| {
            b.iter(|| hmac.compute_truncated(black_box(&line)))
        });
        let cbc = CbcMac::new(Aes::new_128(&[3; 16]));
        g.bench_function("cbcmac_line", |b| b.iter(|| cbc.compute_truncated(black_box(&line))));
        g.finish();
    }

    fn bench_ctr(c: &mut Criterion) {
        let mut g = c.benchmark_group("ctr");
        g.throughput(Throughput::Bytes(64));
        let ks = CtrKeystream::new(Aes::new_128(&[1; 16]));
        g.bench_function("encrypt_line", |b| {
            let mut line = [0u8; 64];
            b.iter(|| ks.apply(black_box(0x8000), black_box(5), &mut line))
        });
        g.finish();
    }

    fn bench_merkle(c: &mut Criterion) {
        let data = vec![0x5Au8; 256 * 64]; // 256 lines
        let tree = MerkleTree::build(&data, 64, 8, b"tree");
        let mut g = c.benchmark_group("merkle");
        g.bench_function("verify_leaf_256", |b| {
            b.iter(|| tree.verify_leaf(black_box(&data[0..64]), black_box(0)))
        });
        let mut tree2 = tree.clone();
        g.bench_function("update_leaf_256", |b| {
            b.iter(|| tree2.update_leaf(black_box(3), black_box(&data[0..64])))
        });
        g.finish();
    }

    criterion_group!(benches, bench_aes, bench_hashes, bench_ctr, bench_merkle);

    pub fn main() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

#[cfg(not(feature = "criterion"))]
mod plain {
    use secsim_bench::timing::{fmt_rate, measure};
    use secsim_core::MerkleTree;
    use secsim_crypto::{Aes, CbcMac, CtrKeystream, HmacSha256, Sha256};

    fn report_bytes(label: &str, bytes: u64, f: impl FnMut()) {
        let m = measure(label, 0.5, f);
        println!(
            "{:28} {:>12}  ({:.1} ns/op)",
            m.label,
            fmt_rate(m.rate(bytes as f64)),
            m.per_iter_secs() * 1e9
        );
    }

    pub fn main() {
        let aes128 = Aes::new_128(&[7; 16]);
        let mut block = [0u8; 16];
        report_bytes("aes/encrypt_block_128", 16, || aes128.encrypt_block(&mut block));
        let aes256 = Aes::new_256(&[7; 32]);
        report_bytes("aes/encrypt_block_256", 16, || aes256.encrypt_block(&mut block));

        let line = [0xA5u8; 64];
        report_bytes("mac/sha256_line", 64, || {
            Sha256::digest(std::hint::black_box(&line));
        });
        let hmac = HmacSha256::new(b"bench-key");
        report_bytes("mac/hmac_line_truncated", 64, || {
            std::hint::black_box(hmac.compute_truncated(&line));
        });
        let cbc = CbcMac::new(Aes::new_128(&[3; 16]));
        report_bytes("mac/cbcmac_line", 64, || {
            std::hint::black_box(cbc.compute_truncated(&line));
        });

        let ks = CtrKeystream::new(Aes::new_128(&[1; 16]));
        let mut ctline = [0u8; 64];
        report_bytes("ctr/encrypt_line", 64, || ks.apply(0x8000, 5, &mut ctline));

        let data = vec![0x5Au8; 256 * 64]; // 256 lines
        let tree = MerkleTree::build(&data, 64, 8, b"tree");
        report_bytes("merkle/verify_leaf_256", 64, || {
            std::hint::black_box(tree.verify_leaf(&data[0..64], 0));
        });
        let mut tree2 = tree.clone();
        report_bytes("merkle/update_leaf_256", 64, || tree2.update_leaf(3, &data[0..64]));
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    with_criterion::main();
    #[cfg(not(feature = "criterion"))]
    plain::main();
}
