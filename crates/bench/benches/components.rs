//! Microbenchmarks for the timing-model components: how fast the
//! simulator itself simulates.
//!
//! Offline builds (the default) use a plain `std::time` harness; enable
//! the `criterion` feature (and restore the criterion dev-dependency —
//! see Cargo.toml) for the statistical harness.

#[cfg(feature = "criterion")]
mod with_criterion {
    use criterion::{black_box, criterion_group, Criterion};
    use secsim_core::{AuthQueue, AuthQueueConfig, CtrlConfig, ObfConfig, Obfuscator, SecureMemCtrl};
    use secsim_mem::{
        AccessKind, Cache, CacheConfig, Channel, Dram, DramConfig, FillEngine, FillRequest,
    };

    fn bench_cache(c: &mut Criterion) {
        let mut g = c.benchmark_group("cache");
        g.bench_function("l2_access_hit", |b| {
            let mut cache = Cache::new(CacheConfig::paper_l2_256k());
            cache.access(0x1000, false);
            b.iter(|| cache.access(black_box(0x1000), false))
        });
        g.bench_function("l2_access_stream", |b| {
            let mut cache = Cache::new(CacheConfig::paper_l2_256k());
            let mut addr: u32 = 0;
            b.iter(|| {
                addr = addr.wrapping_add(64);
                cache.access(black_box(addr), false)
            })
        });
        g.finish();
    }

    fn bench_dram(c: &mut Criterion) {
        let mut g = c.benchmark_group("dram");
        g.bench_function("access_page_hit", |b| {
            let mut d = Dram::new(DramConfig::paper_reference());
            let mut now = 0u64;
            b.iter(|| {
                let r = d.access(black_box(0x100), 64, now);
                now = r.done;
                r
            })
        });
        g.finish();
    }

    fn bench_auth_queue(c: &mut Criterion) {
        c.bench_function("auth_queue_request", |b| {
            let mut q = AuthQueue::new(AuthQueueConfig::default());
            let mut t = 0u64;
            b.iter(|| {
                t += 50;
                q.request(black_box(t), 0)
            })
        });
    }

    fn bench_secure_fill(c: &mut Criterion) {
        c.bench_function("secure_fill", |b| {
            let mut ctrl = SecureMemCtrl::new(CtrlConfig::paper_reference());
            let mut chan = Channel::new(DramConfig::paper_reference());
            let mut t = 0u64;
            let mut addr = 0u32;
            b.iter(|| {
                t += 200;
                addr = addr.wrapping_add(64);
                ctrl.fill(
                    FillRequest {
                        line_addr: addr,
                        demand_addr: addr,
                        bytes: 64,
                        kind: AccessKind::Load,
                        now: t,
                        bus_not_before: 0,
                    },
                    &mut chan,
                )
            })
        });
    }

    fn bench_obfuscator(c: &mut Criterion) {
        c.bench_function("obf_lookup", |b| {
            let mut obf = Obfuscator::new(ObfConfig::paper_reference(0, 1 << 14));
            let mut chan = Channel::new(DramConfig::paper_reference());
            let mut t = 0u64;
            let mut addr = 0u32;
            b.iter(|| {
                t += 100;
                addr = (addr + 64) & ((1 << 20) - 1);
                obf.lookup(black_box(addr), t, &mut chan)
            })
        });
    }

    criterion_group!(
        benches,
        bench_cache,
        bench_dram,
        bench_auth_queue,
        bench_secure_fill,
        bench_obfuscator
    );

    pub fn main() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

#[cfg(not(feature = "criterion"))]
mod plain {
    use secsim_bench::timing::{fmt_rate, measure};
    use secsim_core::{AuthQueue, AuthQueueConfig, CtrlConfig, ObfConfig, Obfuscator, SecureMemCtrl};
    use secsim_mem::{
        AccessKind, Cache, CacheConfig, Channel, Dram, DramConfig, FillEngine, FillRequest,
    };

    fn report(m: secsim_bench::timing::Measurement) {
        println!(
            "{:28} {:>12} ops/s  ({:.1} ns/op)",
            m.label,
            fmt_rate(m.rate(1.0)),
            m.per_iter_secs() * 1e9
        );
    }

    pub fn main() {
        let mut cache = Cache::new(CacheConfig::paper_l2_256k());
        cache.access(0x1000, false);
        report(measure("cache/l2_access_hit", 0.5, || {
            std::hint::black_box(cache.access(0x1000, false));
        }));

        let mut cache = Cache::new(CacheConfig::paper_l2_256k());
        let mut addr: u32 = 0;
        report(measure("cache/l2_access_stream", 0.5, || {
            addr = addr.wrapping_add(64);
            std::hint::black_box(cache.access(addr, false));
        }));

        let mut d = Dram::new(DramConfig::paper_reference());
        let mut now = 0u64;
        report(measure("dram/access_page_hit", 0.5, || {
            let r = d.access(0x100, 64, now);
            now = r.done;
        }));

        let mut q = AuthQueue::new(AuthQueueConfig::default());
        let mut t = 0u64;
        report(measure("auth_queue_request", 0.5, || {
            t += 50;
            std::hint::black_box(q.request(t, 0));
        }));

        let mut ctrl = SecureMemCtrl::new(CtrlConfig::paper_reference());
        let mut chan = Channel::new(DramConfig::paper_reference());
        let mut t = 0u64;
        let mut addr = 0u32;
        report(measure("secure_fill", 0.5, || {
            t += 200;
            addr = addr.wrapping_add(64);
            std::hint::black_box(ctrl.fill(
                FillRequest {
                    line_addr: addr,
                    demand_addr: addr,
                    bytes: 64,
                    kind: AccessKind::Load,
                    now: t,
                    bus_not_before: 0,
                },
                &mut chan,
            ));
        }));

        let mut obf = Obfuscator::new(ObfConfig::paper_reference(0, 1 << 14));
        let mut chan = Channel::new(DramConfig::paper_reference());
        let mut t = 0u64;
        let mut addr = 0u32;
        report(measure("obf_lookup", 0.5, || {
            t += 100;
            addr = (addr + 64) & ((1 << 20) - 1);
            std::hint::black_box(obf.lookup(addr, t, &mut chan));
        }));
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    with_criterion::main();
    #[cfg(not(feature = "criterion"))]
    plain::main();
}
