//! Concurrency regressions for the content-addressed result store:
//! two independent `Sweep`s (stand-ins for two processes) sharing one
//! store directory must simulate each unique point exactly once, and a
//! claim left behind by a crashed owner must not wedge anyone.

use secsim_bench::{ResultStore, RunOpts, Sweep, SweepError, SweepPoint};
use secsim_core::Policy;
use secsim_cpu::SimReport;
use secsim_workloads::BenchId;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("secsim-store-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn grid() -> Vec<SweepPoint> {
    let opts = RunOpts { max_insts: 8_000, ..RunOpts::default() };
    vec![
        SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Gzip, Policy::authen_then_commit(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::authen_then_issue(), &opts),
    ]
}

fn renders(results: Vec<Result<SimReport, SweepError>>) -> Vec<String> {
    results
        .into_iter()
        .map(|r| r.expect("point reports").to_json().expect("untraced").render())
        .collect()
}

/// The satellite regression: N concurrent sweeps over one store, each
/// unique point simulated exactly once *in total* — in-process gates
/// dedup within a sweep, claim files dedup across sweeps.
#[test]
fn concurrent_sweeps_sharing_a_store_simulate_each_point_exactly_once() {
    let dir = temp_dir("exactly-once");
    let sweeps: Vec<Arc<Sweep>> = (0..2)
        .map(|_| Arc::new(Sweep::new().with_store(ResultStore::new(dir.clone()))))
        .collect();
    let handles: Vec<_> = sweeps
        .iter()
        .map(|s| {
            let s = Arc::clone(s);
            std::thread::spawn(move || s.run(&grid()))
        })
        .collect();
    let outs: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| renders(h.join().expect("sweep thread")))
        .collect();
    assert_eq!(outs[0], outs[1], "both sweeps must see byte-identical reports");

    let total: u64 = sweeps.iter().map(|s| s.stats().simulated).sum();
    assert_eq!(
        total, 3,
        "3 unique points across 2 concurrent sweeps must simulate exactly 3 times"
    );
    // Whoever lost a claim must have been served from the store, not by
    // re-simulating.
    let entries = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| !e.file_name().to_string_lossy().starts_with('.'))
        })
        .count();
    assert_eq!(entries, 3, "one store entry per unique point, no stragglers");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A claim file whose owner crashed (never published an entry) is
/// broken after the stale deadline and the waiter simulates the point
/// itself — duplicated work, never a missing result.
#[test]
fn stale_claim_from_a_dead_owner_is_broken_and_the_point_still_runs() {
    let dir = temp_dir("stale-claim");
    std::fs::create_dir_all(&dir).expect("store dir");
    let point = grid().remove(0);
    std::fs::write(dir.join(format!(".claim-{:016x}", point.key())), b"").expect("orphan claim");

    let store =
        ResultStore::new(dir.clone()).with_claim_wait(Duration::from_millis(100));
    let sweep = Sweep::new().with_store(store);
    let out = sweep.run(std::slice::from_ref(&point));
    assert!(out[0].is_ok(), "the point must still produce a report");
    assert_eq!(sweep.stats().simulated, 1, "the waiter simulates after breaking the claim");
    let counters = sweep.store().expect("store configured").counters();
    assert!(counters.claim_breaks >= 1, "the orphan claim must be counted as broken");
    assert!(
        !dir.join(format!(".claim-{:016x}", point.key())).exists(),
        "the orphan claim file must be gone"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
