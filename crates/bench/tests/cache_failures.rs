//! Failure-path tests for the persistent sweep cache: a corrupt,
//! stale-versioned, or torn cache entry must silently fall back to a
//! fresh simulation and leave a valid, byte-identical entry behind —
//! never a panic, never a poisoned result.

use secsim_bench::{RunOpts, Sweep, SweepPoint, CACHE_VERSION};
use secsim_core::Policy;
use secsim_workloads::BenchId;
use std::fs;
use std::path::{Path, PathBuf};

fn opts() -> RunOpts {
    RunOpts { max_insts: 3_000, ..RunOpts::default() }
}

fn point() -> SweepPoint {
    SweepPoint::of(BenchId::Gzip, Policy::authen_then_commit(), &opts())
}

fn temp_cache(tag: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join(format!("secsim-cache-fail-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("temp dir");
    d
}

fn entry_path(dir: &Path, p: &SweepPoint) -> PathBuf {
    dir.join(format!("{}-{:016x}.json", p.bench, p.key()))
}

/// Runs the point through a fresh `Sweep` (fresh in-process memo) over
/// `dir` and returns the report's serialized form for comparison.
fn run_once(dir: &Path) -> String {
    let sweep = Sweep::new().with_jobs(1).with_cache_dir(dir.to_path_buf());
    let r = sweep
        .run(std::slice::from_ref(&point()))
        .pop()
        .expect("one point in, one result out")
        .expect("known bench simulates");
    r.to_json().expect("untraced report serializes").render()
}

#[test]
fn truncated_entry_falls_back_and_rewrites() {
    let dir = temp_cache("truncated");
    let baseline = run_once(&dir);
    let path = entry_path(&dir, &point());
    assert!(path.is_file(), "first run must write the entry");

    // Truncate mid-JSON, as a crashed writer without the atomic-rename
    // discipline would have left it.
    let full = fs::read_to_string(&path).unwrap();
    fs::write(&path, &full[..full.len() / 2]).unwrap();

    let again = run_once(&dir);
    assert_eq!(again, baseline, "fallback simulation must agree with the original");
    let healed = fs::read_to_string(&path).unwrap();
    assert_eq!(healed, full, "corrupt entry must be rewritten valid and byte-identical");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_is_ignored_and_replaced() {
    let dir = temp_cache("version");
    let baseline = run_once(&dir);
    let path = entry_path(&dir, &point());
    let full = fs::read_to_string(&path).unwrap();

    // Forge a future CACHE_VERSION with otherwise-valid JSON: a format
    // bump must invalidate old entries even when they parse.
    let forged = full.replacen(&format!("\"version\":{CACHE_VERSION}"), "\"version\":9999", 1);
    assert_ne!(forged, full, "version field not found — cache format changed?");
    fs::write(&path, &forged).unwrap();

    let again = run_once(&dir);
    assert_eq!(again, baseline);
    assert_eq!(fs::read_to_string(&path).unwrap(), full, "stale entry must be replaced");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn key_mismatch_is_ignored() {
    let dir = temp_cache("key");
    let baseline = run_once(&dir);
    let path = entry_path(&dir, &point());
    let full = fs::read_to_string(&path).unwrap();

    // An entry whose embedded key disagrees with its filename (e.g. a
    // hand-copied file) must not be trusted.
    let forged = full.replacen("\"key\":\"", "\"key\":\"0", 1);
    fs::write(&path, &forged).unwrap();

    let again = run_once(&dir);
    assert_eq!(again, baseline);
    assert_eq!(fs::read_to_string(&path).unwrap(), full);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn leftover_tmp_files_do_not_confuse_the_cache() {
    let dir = temp_cache("tmp");
    // Plant torn tmp files (a mid-write crash) before any run.
    let p = point();
    fs::write(dir.join(format!(".tmp-{:016x}-999-0", p.key())), "{\"version\"").unwrap();
    fs::write(dir.join(".tmp-garbage"), "not json at all").unwrap();

    let baseline = run_once(&dir);
    let path = entry_path(&dir, &p);
    assert!(path.is_file());

    // A second fresh sweep must load the real entry (cache hit path)
    // and still agree.
    let again = run_once(&dir);
    assert_eq!(again, baseline);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_entry_degrades_to_cache_miss_not_error() {
    // Replace the cache entry with a *directory* of the same name:
    // `read_to_string` then fails with a persistent non-NotFound error,
    // which the retry loop must exhaust and degrade to a fresh
    // simulation — never a SweepError, never a panic.
    let dir = temp_cache("unreadable");
    let baseline = run_once(&dir);
    let path = entry_path(&dir, &point());
    fs::remove_file(&path).unwrap();
    fs::create_dir(&path).unwrap();

    let again = run_once(&dir);
    assert_eq!(again, baseline, "degraded run must agree with the original");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_cache_dir_skips_the_store_silently() {
    // Point the cache at a path whose parent is a plain file:
    // `create_dir_all` fails persistently, so stores are skipped after
    // the retries — the sweep itself must still produce its report.
    let holder = temp_cache("unwritable");
    let blocker = holder.join("blocker");
    fs::write(&blocker, "i am a file, not a directory").unwrap();
    let cache = blocker.join("cache");

    let first = run_once(&cache);
    let second = run_once(&cache);
    assert_eq!(first, second, "two uncached runs must still agree");
    assert!(!entry_path(&cache, &point()).exists(), "nothing can have been written");
    let _ = fs::remove_dir_all(&holder);
}

#[test]
fn cache_round_trip_is_byte_stable_across_processes_shape() {
    // Same point, two independent Sweep instances (separate memos):
    // the second must *load* rather than re-simulate, and the loaded
    // report must serialize identically — the property the persistent
    // result cache exists for.
    let dir = temp_cache("stable");
    let first = run_once(&dir);
    let path = entry_path(&dir, &point());
    let mtime = fs::metadata(&path).unwrap().modified().unwrap();
    let second = run_once(&dir);
    assert_eq!(first, second);
    assert_eq!(
        fs::metadata(&path).unwrap().modified().unwrap(),
        mtime,
        "cache hit must not rewrite the entry"
    );
    let _ = fs::remove_dir_all(&dir);
}
