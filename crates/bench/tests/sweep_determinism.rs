//! The sweep engine's two reproducibility guarantees:
//!
//! 1. a parallel sweep returns results **byte-identical** to a serial
//!    one, in the same (grid) order;
//! 2. a cache hit reproduces the original report exactly.
//!
//! Reports carry no `PartialEq`; byte-identity is asserted on the
//! deterministic JSON rendering, which covers every serialized field.

use secsim_bench::{RunOpts, Sweep, SweepPoint};
use secsim_core::Policy;
use secsim_workloads::BenchId;
use std::fs;
use std::path::PathBuf;

fn opts() -> RunOpts {
    RunOpts { max_insts: 8_000, ..RunOpts::default() }
}

fn grid() -> Vec<SweepPoint> {
    let policies = [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_commit(),
        Policy::commit_plus_fetch(),
    ];
    [BenchId::Gzip, BenchId::Mcf, BenchId::Swim]
        .iter()
        .flat_map(|&b| policies.iter().map(move |p| SweepPoint::of(b, *p, &opts())))
        .collect()
}

fn renders(sweep: &Sweep, points: &[SweepPoint]) -> Vec<String> {
    sweep
        .run(points)
        .into_iter()
        .map(|r| r.expect("bench").to_json().expect("untraced").render())
        .collect()
}

/// A scratch cache directory, removed on drop even if the test fails.
struct TempCache(PathBuf);

impl TempCache {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("secsim-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let points = grid();
    let serial = renders(&Sweep::new().with_jobs(1).without_cache(), &points);
    let parallel = renders(&Sweep::new().with_jobs(4).without_cache(), &points);
    assert_eq!(serial.len(), points.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "point {i} diverged between jobs=1 and jobs=4");
    }
}

#[test]
fn cache_hit_reproduces_report_exactly() {
    let cache = TempCache::new("sweep-cache-test");
    let points = grid();
    let fresh = renders(&Sweep::new().with_jobs(4).with_cache_dir(cache.0.clone()), &points);
    let entries = fs::read_dir(&cache.0).expect("cache dir created").count();
    assert_eq!(entries, points.len(), "one cache file per grid point");
    // A brand-new sweep (empty memo) must reload every report from disk
    // byte-for-byte.
    let cached = renders(&Sweep::new().with_jobs(1).with_cache_dir(cache.0.clone()), &points);
    assert_eq!(fresh, cached);
    assert_eq!(
        fs::read_dir(&cache.0).expect("cache dir").count(),
        entries,
        "cache hits must not create new entries"
    );
}

#[test]
fn stale_cache_entries_are_ignored() {
    let cache = TempCache::new("sweep-stale-test");
    let point = SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts());
    let sweep = Sweep::new().with_jobs(1).with_cache_dir(cache.0.clone());
    let first = renders(&sweep, std::slice::from_ref(&point));
    // Corrupt the entry; a fresh sweep must fall back to simulation and
    // reproduce the same report.
    let file = fs::read_dir(&cache.0).expect("dir").next().expect("entry").expect("entry").path();
    fs::write(&file, "{\"version\":0}").expect("overwrite");
    let again = renders(
        &Sweep::new().with_jobs(1).with_cache_dir(cache.0.clone()),
        std::slice::from_ref(&point),
    );
    assert_eq!(first, again);
}
