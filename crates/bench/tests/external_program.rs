//! External programs are first-class workloads: a hand-assembled copy
//! of a built-in kernel must be indistinguishable from its builtin
//! counterpart — byte-identical initialized memory and byte-identical
//! `SimReport`s across policies — and must ride the same warm-start
//! checkpoint machinery.
//!
//! Reports carry no `PartialEq`; byte-identity is asserted on the
//! deterministic JSON rendering, which covers every serialized field.

use secsim_bench::checkpoint;
use secsim_bench::{run_bench, RunOpts};
use secsim_core::Policy;
use secsim_isa::disassemble;
use secsim_workloads::{assemble_named, register_program, BenchId, Segment, DATA_BASE};
use std::fs;

const CODE_BASE: u32 = 0x1000;

/// Rebuilds `bench` as an external program: disassemble its code words,
/// run them back through the text assembler, and attach the builtin's
/// initialized data region as one loader segment (exactly what a
/// shipped `.sprog` of the kernel would contain).
fn hand_assembled(bench: BenchId, seed: u64) -> BenchId {
    let w = bench.build(seed);
    let bytes = w.mem.as_bytes();

    // Code occupies [CODE_BASE, last nonzero word]; the gap up to the
    // data base is untouched zeros in a built image.
    let region = &bytes[CODE_BASE as usize..DATA_BASE as usize];
    let n = region
        .chunks_exact(4)
        .rposition(|c| c != [0, 0, 0, 0])
        .expect("builtin has code")
        + 1;
    let words: Vec<u32> =
        region[..4 * n].chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();

    let text = disassemble(&words);
    assert!(text.lines().last().unwrap().contains("halt"), "code extraction overran");

    let mut img = assemble_named(&text, "hand").expect("disassembly reassembles");
    assert_eq!(img.code, words, "reassembly must reproduce the builtin's words");
    assert_eq!(img.entry, w.entry);

    img.data_base = w.data_base;
    img.footprint = w.data_bytes;
    img.segments =
        vec![Segment { addr: w.data_base, bytes: bytes[w.data_base as usize..].to_vec() }];
    img.validate().expect("hand-assembled image is well-formed");
    BenchId::External(register_program(img))
}

#[test]
fn hand_assembled_builtin_is_byte_identical_under_every_gate() {
    let opts = RunOpts { max_insts: 20_000, ..RunOpts::default() };
    assert_eq!(opts.warmup_insts, 0, "cold runs: no checkpoint files, no env coupling");

    let builtin = BenchId::Gzip;
    let ext = hand_assembled(builtin, opts.seed);

    // The initial machine states agree bit for bit...
    let a = builtin.build(opts.seed);
    let b = ext.build(opts.seed);
    assert_eq!(a.entry, b.entry);
    assert_eq!((a.data_base, a.data_bytes), (b.data_base, b.data_bytes));
    assert_eq!(a.mem.as_bytes(), b.mem.as_bytes(), "initialized images differ");

    // ...so every timed run must too, gated or not.
    for policy in [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_commit(),
        Policy::commit_plus_obfuscation(),
    ] {
        assert_eq!(
            run_bench(builtin, policy, &opts).to_json().unwrap().render(),
            run_bench(ext, policy, &opts).to_json().unwrap().render(),
            "external copy of {builtin} diverged under {policy}"
        );
    }
}

#[test]
fn external_program_rides_the_warm_start_checkpoint_path() {
    // Redirect the results tree to a scratch dir. This is the only test
    // in this binary touching `SECSIM_RESULTS` (the byte-identity test
    // above runs cold and never reads the results dir).
    let dir = std::env::temp_dir().join(format!("secsim-extprog-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    std::env::set_var("SECSIM_RESULTS", &dir);

    let src = "\
        .entry top\n\
        .alias n, r1\n\
        top:  li   n, 5000\n\
        spin: addi n, n, -1\n\
        bne  n, r0, spin\n\
        halt\n";
    let ext = BenchId::External(register_program(assemble_named(src, "spin").unwrap()));

    let opts = RunOpts { max_insts: 4_000, warmup_insts: 1_000, ..RunOpts::default() };
    let policy = Policy::authen_then_commit();

    // Miss: fast-forwards functionally and persists the snapshot.
    let miss = run_bench(ext, policy, &opts);
    let ckpt_dir = checkpoint::checkpoints_dir();
    let entries = fs::read_dir(&ckpt_dir).expect("checkpoint dir created").count();
    assert_eq!(entries, 1, "one checkpoint per (program, seed, warmup)");

    // Hit: restores it. Byte-identical or the content-hash key is wrong.
    let hit = run_bench(ext, policy, &opts);
    assert_eq!(
        miss.to_json().unwrap().render(),
        hit.to_json().unwrap().render(),
        "disk-restored external warmup diverged from the run that wrote it"
    );
    assert_eq!(fs::read_dir(&ckpt_dir).unwrap().count(), entries, "hit must not re-snapshot");

    // A same-named program with different content must not collide.
    let other = BenchId::External(register_program(
        assemble_named(&src.replace("5000", "6000"), "spin").unwrap(),
    ));
    run_bench(other, policy, &opts);
    assert_eq!(
        fs::read_dir(&ckpt_dir).unwrap().count(),
        entries + 1,
        "distinct content under one name must get its own checkpoint"
    );

    std::env::remove_var("SECSIM_RESULTS");
    let _ = fs::remove_dir_all(&dir);
}
