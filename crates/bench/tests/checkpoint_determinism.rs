//! The checkpoint subsystem's guarantee: a timed run resumed from a
//! *restored* snapshot is byte-for-byte identical to one resumed from a
//! fresh functional fast-forward — across every policy of the grid,
//! because warmup is policy-independent.
//!
//! Reports carry no `PartialEq`; byte-identity is asserted on the
//! deterministic JSON rendering, which covers every serialized field.

use secsim_bench::checkpoint::{self, fast_forward, from_bytes, to_bytes};
use secsim_bench::{run_bench, sim_config_id, with_workload, RunOpts, SweepPoint};
use secsim_core::{FetchGateVariant, Policy};
use secsim_cpu::SimSession;
use secsim_workloads::BenchId;
use std::fs;

const WARMUP: u64 = 4_000;

fn opts() -> RunOpts {
    RunOpts { max_insts: 20_000, warmup_insts: WARMUP, ..RunOpts::default() }
}

/// The full 8-policy grid of the paper (fetch in both last-request-tag
/// and drain variants, plus the combined policies).
fn policies8() -> [Policy; 8] {
    [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_commit(),
        Policy::authen_then_write(),
        Policy::authen_then_fetch(),
        Policy::authen_then_fetch().with_fetch_variant(FetchGateVariant::Drain),
        Policy::commit_plus_fetch(),
        Policy::commit_plus_obfuscation(),
    ]
}

#[test]
fn restored_snapshot_matches_fresh_fast_forward_across_all_8_policies() {
    let bench: BenchId = "mcf".parse().unwrap();
    let opts = opts();

    // Snapshot once: serialize the warmup boundary of a pristine image.
    let snapshot = with_workload(bench, opts.seed, |w| {
        let st = fast_forward(&mut w.mem, w.entry, WARMUP);
        assert_eq!(st.icount, WARMUP, "warmup must not run off the program");
        to_bytes(&st, &w.mem)
    });

    for policy in policies8() {
        let cfg = sim_config_id(bench, policy, &opts);

        // Cold path: fast-forward functionally, then simulate.
        let cold = with_workload(bench, opts.seed, |w| {
            let st = fast_forward(&mut w.mem, w.entry, WARMUP);
            SimSession::new(&cfg).resume_from(st).run(&mut w.mem, w.entry).into_report()
        });

        // Restore path: deserialize the shared snapshot, copy it over
        // the image, then simulate.
        let restored = with_workload(bench, opts.seed, |w| {
            let (st, mem) = from_bytes(&snapshot).expect("valid snapshot");
            w.mem.restore_from(&mem);
            SimSession::new(&cfg).resume_from(st).run(&mut w.mem, w.entry).into_report()
        });

        assert_eq!(
            cold.to_json().unwrap().render(),
            restored.to_json().unwrap().render(),
            "checkpoint restore diverged from cold fast-forward under {policy}"
        );
    }
}

#[test]
fn warm_start_disk_store_hit_reproduces_miss_exactly() {
    // Redirect the results tree (and with it `results/checkpoints/`) to
    // a scratch dir. This is the only test in this binary touching
    // `SECSIM_RESULTS`, so the process-global env var is safe to set.
    let dir = std::env::temp_dir().join(format!("secsim-ckpt-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    std::env::set_var("SECSIM_RESULTS", &dir);

    let opts = RunOpts { max_insts: 12_000, warmup_insts: 2_000, ..RunOpts::default() };
    let policy = Policy::authen_then_commit();

    // Miss: fast-forwards functionally and persists the snapshot.
    let miss = run_bench(BenchId::Gzip, policy, &opts);
    let ckpt_dir = checkpoint::checkpoints_dir();
    let entries = fs::read_dir(&ckpt_dir).expect("checkpoint dir created").count();
    assert_eq!(entries, 1, "one checkpoint per (bench, seed, warmup)");

    // Hit: restores the snapshot from disk.
    let hit = run_bench(BenchId::Gzip, policy, &opts);
    assert_eq!(
        miss.to_json().unwrap().render(),
        hit.to_json().unwrap().render(),
        "disk-restored warmup diverged from the run that wrote it"
    );
    assert_eq!(
        fs::read_dir(&ckpt_dir).expect("checkpoint dir").count(),
        entries,
        "hits must not create new checkpoints"
    );

    // A corrupt store degrades to the fresh path, never a failure.
    for e in fs::read_dir(&ckpt_dir).unwrap() {
        fs::write(e.unwrap().path(), b"garbage").unwrap();
    }
    let degraded = run_bench(BenchId::Gzip, policy, &opts);
    assert_eq!(
        miss.to_json().unwrap().render(),
        degraded.to_json().unwrap().render(),
        "corrupt checkpoint must degrade to a fresh fast-forward"
    );

    std::env::remove_var("SECSIM_RESULTS");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn zero_warmup_is_the_plain_cold_session() {
    let bench: BenchId = "swim".parse().unwrap();
    let opts = RunOpts { max_insts: 10_000, ..RunOpts::default() };
    assert_eq!(opts.warmup_insts, 0, "default is cold");
    let cfg = sim_config_id(bench, Policy::authen_then_issue(), &opts);
    let via_run_bench = run_bench(BenchId::Swim, Policy::authen_then_issue(), &opts);
    let direct = with_workload(bench, opts.seed, |w| {
        SimSession::new(&cfg).run(&mut w.mem, w.entry).into_report()
    });
    assert_eq!(
        via_run_bench.to_json().unwrap().render(),
        direct.to_json().unwrap().render(),
        "warmup_insts == 0 must not perturb the existing cold path"
    );
}

#[test]
fn warmup_is_part_of_the_sweep_cache_key() {
    let cold = SweepPoint::of("mcf".parse().unwrap(), Policy::baseline(), &RunOpts::default());
    let warm = SweepPoint::of(
        "mcf".parse().unwrap(),
        Policy::baseline(),
        &RunOpts { warmup_insts: 1_000, ..RunOpts::default() },
    );
    assert_ne!(cold.key(), warm.key(), "warm and cold reports must never collide");
}
