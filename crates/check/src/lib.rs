//! `secsim-check`: differential co-simulation with security-invariant
//! oracles.
//!
//! The cycle-level pipeline (a [`secsim_cpu::SimSession`] with an
//! observer) and the ISA golden model ([`secsim_isa::step`]) execute
//! the same program from the same image. The pipeline emits one [`RetireRecord`] per
//! committed instruction; [`diff`] replays the golden model in lockstep
//! against that stream, comparing PCs, decoded instructions, memory
//! effects, destination values, I/O and control outcomes, and the final
//! architectural state and memory image. Any mismatch is a
//! [`Divergence`], minimized and dumped as a self-contained JSON repro.
//!
//! [`oracle`] audits the same record stream against the *definition* of
//! each authentication control point — authen-then-issue, -commit,
//! -write and -fetch — independently of the inline asserts compiled
//! into the pipeline (those abort; these report, and can be exercised
//! on doctored records to prove they fire). A fifth oracle audits the
//! stall-attribution ledger of every report
//! ([`oracle::check_stall_completeness`]).
//!
//! [`grid`] sweeps deterministic fuzz programs
//! ([`secsim_workloads::generate_fuzz`]) across the full policy ×
//! MAC-latency grid.
//!
//! [`oblivious`] is the 7th oracle — *confidentiality* rather than
//! integrity: secret-carrying programs run twice with differing secret
//! bytes, and the observable bus trace (event kinds, addresses, cycle
//! timings) must be identical, up to a renaming of remapped lines under
//! the obfuscating policy. Non-obfuscating policies are expected to
//! *fail* (that is the leak the paper's §4.3 engine closes); the report
//! shows which policies are data-oblivious and which leak.
//!
//! [`RetireRecord`]: secsim_cpu::RetireRecord
//! [`Divergence`]: diff::Divergence

pub mod diff;
pub mod grid;
pub mod oblivious;
pub mod oracle;

pub use diff::{diff_run, dump_divergence, golden_compare, Divergence, RunOutcome};
pub use grid::{check_config, policy_grid, run_batch, BatchSummary, GridPoint, PointStats};
pub use oblivious::{
    canonicalize, check_obliviousness, compare_traces, digest_pair, dump_oblivious_divergence,
    fuzz_oblivious, policy_oblivious, run_oblivious_batch, victim_config, victim_oblivious,
    ObliviousDivergence, OblivBatchSummary, OblivPointStats, OblivReport, Observable,
    ObservableCfg, TraceDivergence,
};
pub use oracle::{check_exposure, check_records, check_stall_completeness, GateViolation};
