//! `secsim-check`: differential co-simulation with security-invariant
//! oracles.
//!
//! The cycle-level pipeline (a [`secsim_cpu::SimSession`] with an
//! observer) and the ISA golden model ([`secsim_isa::step`]) execute
//! the same program from the same image. The pipeline emits one [`RetireRecord`] per
//! committed instruction; [`diff`] replays the golden model in lockstep
//! against that stream, comparing PCs, decoded instructions, memory
//! effects, destination values, I/O and control outcomes, and the final
//! architectural state and memory image. Any mismatch is a
//! [`Divergence`], minimized and dumped as a self-contained JSON repro.
//!
//! [`oracle`] audits the same record stream against the *definition* of
//! each authentication control point — authen-then-issue, -commit,
//! -write and -fetch — independently of the inline asserts compiled
//! into the pipeline (those abort; these report, and can be exercised
//! on doctored records to prove they fire). A fifth oracle audits the
//! stall-attribution ledger of every report
//! ([`oracle::check_stall_completeness`]).
//!
//! [`grid`] sweeps deterministic fuzz programs
//! ([`secsim_workloads::generate_fuzz`]) across the full policy ×
//! MAC-latency grid.
//!
//! [`RetireRecord`]: secsim_cpu::RetireRecord
//! [`Divergence`]: diff::Divergence

pub mod diff;
pub mod grid;
pub mod oracle;

pub use diff::{diff_run, dump_divergence, golden_compare, Divergence, RunOutcome};
pub use grid::{check_config, policy_grid, run_batch, BatchSummary, GridPoint, PointStats};
pub use oracle::{check_exposure, check_records, check_stall_completeness, GateViolation};
