//! Lockstep differential comparison against the ISA golden model.
//!
//! The pipeline is execution-driven — it *already* calls the golden
//! model once per instruction to obtain values and branch outcomes — so
//! the comparison here is an independent re-execution: a second
//! [`ArchState`] over a second copy of the image replays one
//! [`step`] per retired instruction and must reproduce every
//! architectural effect the pipeline observed, and the same final
//! state. This catches retirement-stream corruption (skipped, repeated
//! or reordered instructions), state leaking between the timing and
//! functional layers, and image aliasing bugs.

use secsim_cpu::{RetireRecord, SimConfig, SimReport, SimSession};
use secsim_isa::{step, ArchState, FReg, Reg, RegRef};
use secsim_stats::{Json, StableHash, StableHasher};
use secsim_workloads::Workload;
use std::path::{Path, PathBuf};

/// A confirmed pipeline/golden-model disagreement, self-contained
/// enough to reproduce: the program is regenerated from `(bench,
/// seed)`, the configuration is pinned by fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Benchmark name (`"fuzz"` for generated programs).
    pub bench: String,
    /// Workload/program seed.
    pub seed: u64,
    /// Stable fingerprint of the full [`SimConfig`].
    pub config_fingerprint: u64,
    /// Zero-based retirement index of the first disagreement
    /// (`u64::MAX` for final-state-only divergences).
    pub retire_index: u64,
    /// Which compared field disagreed (`"pc"`, `"dst"`, `"final.state"`, …).
    pub field: String,
    /// Golden-model value.
    pub expected: String,
    /// Pipeline-observed value.
    pub actual: String,
    /// Smallest `max_insts` that still reproduces the divergence.
    pub min_insts: u64,
}

/// One differential run: the pipeline report, its retirement stream,
/// and the first divergence (if any).
#[derive(Debug)]
pub struct RunOutcome {
    /// The pipeline's timing report.
    pub report: SimReport,
    /// One record per committed instruction, program order.
    pub records: Vec<RetireRecord>,
    /// First pipeline/golden disagreement, minimized.
    pub divergence: Option<Divergence>,
}

/// Stable fingerprint of a full simulator configuration.
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    let mut h = StableHasher::new();
    cfg.stable_hash(&mut h);
    h.finish()
}

/// Bit-exact architectural-state equality: FP registers compare by raw
/// bits, so identical NaNs on both sides are equal (the derived `==`
/// would report a fuzz program that computes `0.0 / 0.0` as a
/// divergence even when both states hold the very same NaN).
fn states_bit_equal(a: &ArchState, b: &ArchState) -> bool {
    a.pc == b.pc
        && a.halted == b.halted
        && a.icount == b.icount
        && Reg::ALL.iter().all(|&r| a.reg(r) == b.reg(r))
        && FReg::ALL.iter().all(|&f| a.freg(f).to_bits() == b.freg(f).to_bits())
}

/// Replays the golden model against `records` and returns the first
/// disagreement as `(retire_index, field, expected, actual)`.
///
/// `decode_fault` is the pipeline's claim that the instruction *after*
/// the last record faulted; `pipe_final` is the pipeline's final
/// architectural state and image (skip to compare the stream only).
pub fn golden_compare(
    w: &Workload,
    records: &[RetireRecord],
    decode_fault: bool,
    pipe_final: Option<(&ArchState, &secsim_isa::FlatMem)>,
) -> Option<(u64, &'static str, String, String)> {
    let mut mem = w.mem.clone();
    let mut st = ArchState::new(w.entry);
    for r in records {
        let i = r.seq;
        let info = match step(&mut st, &mut mem) {
            Ok(info) => info,
            Err(f) => {
                return Some((i, "golden-fault", "a decodable instruction".into(), format!("{f:?}")))
            }
        };
        if info.pc != r.pc {
            return Some((i, "pc", format!("{:#x}", info.pc), format!("{:#x}", r.pc)));
        }
        if info.inst != r.inst {
            return Some((i, "inst", format!("{:?}", info.inst), format!("{:?}", r.inst)));
        }
        if info.next_pc != r.next_pc {
            return Some((i, "next_pc", format!("{:#x}", info.next_pc), format!("{:#x}", r.next_pc)));
        }
        if info.mem != r.mem {
            return Some((i, "mem", format!("{:?}", info.mem), format!("{:?}", r.mem)));
        }
        if info.out != r.out {
            return Some((i, "out", format!("{:?}", info.out), format!("{:?}", r.out)));
        }
        if info.control != r.control {
            return Some((i, "control", format!("{:?}", info.control), format!("{:?}", r.control)));
        }
        if let Some((dst, bits)) = r.dst {
            let golden = match dst {
                RegRef::Int(r) => u64::from(st.reg(r)),
                RegRef::Fp(f) => st.freg(f).to_bits(),
            };
            if golden != bits {
                return Some((
                    i,
                    "dst",
                    format!("{dst:?}={golden:#x}"),
                    format!("{dst:?}={bits:#x}"),
                ));
            }
        }
    }
    let n = records.len() as u64;
    if decode_fault && step(&mut st, &mut mem).is_ok() {
        return Some((n, "decode-fault", "a fault".into(), "a decodable instruction".into()));
    }
    if let Some((fst, fmem)) = pipe_final {
        if !decode_fault && !states_bit_equal(fst, &st) {
            return Some((u64::MAX, "final.state", format!("{st:?}"), format!("{fst:?}")));
        }
        if fmem.as_bytes() != mem.as_bytes() {
            let at = fmem
                .as_bytes()
                .iter()
                .zip(mem.as_bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Some((
                u64::MAX,
                "final.mem",
                format!("byte {at:#x} = {:#04x}", mem.as_bytes()[at]),
                format!("byte {at:#x} = {:#04x}", fmem.as_bytes()[at]),
            ));
        }
    }
    None
}

fn run_once(w: &Workload, cfg: &SimConfig) -> (SimReport, Vec<RetireRecord>, ArchState, secsim_isa::FlatMem) {
    let mut mem = w.mem.clone();
    let mut records = Vec::new();
    let run = SimSession::new(cfg)
        .observe(|r: &RetireRecord| records.push(*r))
        .run(&mut mem, w.entry)
        .into_run();
    (run.report, records, run.state, mem)
}

/// Runs `w` under `cfg` on the pipeline, replays the golden model
/// against the retirement stream, and minimizes any divergence by
/// re-running with `max_insts` clamped to the first divergent retire.
pub fn diff_run(bench: &str, seed: u64, w: &Workload, cfg: &SimConfig) -> RunOutcome {
    let (report, records, st, mem) = run_once(w, cfg);
    let raw = golden_compare(w, &records, report.decode_fault, Some((&st, &mem)));
    let divergence = raw.map(|(idx, field, expected, actual)| {
        // Minimize: a stream divergence at retire k still reproduces
        // with max_insts = k + 1; final-state divergences need the
        // whole run.
        let mut min_insts = report.insts;
        if idx != u64::MAX {
            let mut short = *cfg;
            short.max_insts = idx + 1;
            let (srep, srecs, sst, smem) = run_once(w, &short);
            if golden_compare(w, &srecs, srep.decode_fault, Some((&sst, &smem))).is_some() {
                min_insts = idx + 1;
            }
        }
        Divergence {
            bench: bench.to_string(),
            seed,
            config_fingerprint: config_fingerprint(cfg),
            retire_index: idx,
            field: field.to_string(),
            expected,
            actual,
            min_insts,
        }
    });
    RunOutcome { report, records, divergence }
}

/// Writes a self-contained JSON repro of `d` (with the program words)
/// into `dir`, returning the file path.
pub fn dump_divergence(dir: &Path, d: &Divergence, words: &[u32]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "{}-seed{}-cfg{:016x}.json",
        d.bench, d.seed, d.config_fingerprint
    ));
    let json = Json::obj(vec![
        ("bench", Json::Str(d.bench.clone())),
        ("seed", Json::UInt(d.seed)),
        ("config_fingerprint", Json::Str(format!("{:016x}", d.config_fingerprint))),
        ("retire_index", Json::UInt(d.retire_index)),
        ("field", Json::Str(d.field.clone())),
        ("expected", Json::Str(d.expected.clone())),
        ("actual", Json::Str(d.actual.clone())),
        ("min_insts", Json::UInt(d.min_insts)),
        (
            "program",
            Json::Array(words.iter().map(|w| Json::Str(format!("{w:08x}"))).collect()),
        ),
    ]);
    std::fs::write(&path, json.render())?;
    Ok(path)
}
