//! The 7th oracle: two-run secret-independence (data-obliviousness)
//! checking over bus traces.
//!
//! A program carries a *secret-tagged* memory region
//! ([`SecretSpec`](secsim_workloads::SecretSpec)); the oracle runs it
//! twice under [`SimSession`] with the secret bytes set to `0x00` and
//! `0xFF` and compares what a bus eavesdropper observes. Everything
//! else — program words, the rest of the image, the configuration — is
//! identical across the pair, so any observable difference is *caused*
//! by the secret.
//!
//! **What "observable" means.** A [`BusEvent`] is `(kind, addr,
//! cycle)`. The comparison splits it into two channels:
//!
//! * the **address channel** — the sequence of `(kind, address)` pairs.
//!   Under a non-obfuscating policy addresses compare verbatim. Under
//!   `commit_plus_obfuscation` the eavesdropper sees *remapped*
//!   addresses drawn from a secret permutation, so two runs are
//!   indistinguishable iff their traces are equal up to a renaming of
//!   protected (and remap-metadata) lines — the comparison
//!   canonicalizes each line to its first-occurrence index, keeping the
//!   within-line column offset (which the permutation does not hide)
//!   verbatim. This is equality in distribution: with a fresh random
//!   remap per run, renamed-equal traces induce identical observable
//!   distributions.
//! * the **timing channel** — the sequence of `(kind, cycle)` pairs,
//!   always compared bit-exactly. The paper's obfuscation targets the
//!   address side channel only, so the headline *oblivious* verdict is
//!   the address channel; timing divergences are reported separately.
//!
//! A divergence minimizes (binary search on `max_insts`) to a JSON
//! repro in `results/divergence/`, like the differential harness.

use crate::diff::config_fingerprint;
use crate::grid::{check_config, GridPoint, SEED_STRIDE};
use secsim_attack::{Victim, VictimKind, IMAGE_BYTES};
use secsim_core::{Policy, REMAP_BASE};
use secsim_cpu::{SecureImage, SimConfig, SimSession};
use secsim_mem::{BusDigest, BusEvent};
use secsim_stats::Json;
use secsim_workloads::{generate_secret_fuzz, DATA_BASE, FUZZ_FOOTPRINT};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The two secret fills of a run pair: all-zeros vs all-ones, so every
/// bit (and so every probed field) of the secret differs.
pub const SECRET_FILLS: (u8, u8) = (0x00, 0xFF);

/// What the bus eavesdropper can resolve for one run pair — which
/// address ranges the active policy remaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservableCfg {
    /// Base of the obfuscation-protected region.
    pub protected_base: u32,
    /// Size of the protected region in bytes.
    pub protected_bytes: u32,
    /// Whether the policy remaps protected addresses
    /// ([`Policy::obfuscate`]); when false every address compares
    /// verbatim.
    pub obfuscated: bool,
}

impl ObservableCfg {
    /// The observable semantics for `policy` over the protected region
    /// `[base, base + bytes)`.
    pub fn for_policy(policy: &Policy, base: u32, bytes: u32) -> Self {
        Self { protected_base: base, protected_bytes: bytes, obfuscated: policy.obfuscate }
    }
}

/// Renamed regions of the canonicalized address space.
const REGION_PROTECTED: u8 = 1;
const REGION_REMAP_META: u8 = 2;

/// One bus event after canonicalization: what an eavesdropper can
/// actually distinguish under the active policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observable {
    /// The address is visible verbatim.
    Verbatim {
        /// `BusKind` index.
        kind: u8,
        /// The raw bus address.
        addr: u32,
    },
    /// The line is remapped: the eavesdropper can tell *which* line of
    /// a region it is relative to the other lines seen (first-occurrence
    /// token) and the within-line column, but not its identity.
    Renamed {
        /// `BusKind` index.
        kind: u8,
        /// `REGION_PROTECTED` (1) or `REGION_REMAP_META` (2).
        region: u8,
        /// First-occurrence index of the line within this run's trace.
        token: u32,
        /// Within-line byte offset (column), preserved by remapping.
        offset: u32,
    },
}

impl std::fmt::Display for Observable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Observable::Verbatim { kind, addr } => write!(f, "kind{kind} addr={addr:#x}"),
            Observable::Renamed { kind, region, token, offset } => {
                write!(f, "kind{kind} region{region} line#{token}+{offset:#x}")
            }
        }
    }
}

fn kind_index(k: secsim_mem::BusKind) -> u8 {
    use secsim_mem::BusKind::*;
    match k {
        InstrFetch => 0,
        DataFetch => 1,
        Writeback => 2,
        MacFetch => 3,
        MacWrite => 4,
        CounterFetch => 5,
        RemapFetch => 6,
        RemapWrite => 7,
        TreeFetch => 8,
    }
}

/// Canonicalizes one run's events under `obs`. Without obfuscation
/// every event is [`Observable::Verbatim`]. With it, protected-region
/// and remap-metadata lines are renamed to first-occurrence tokens;
/// everything else (e.g. counter-metadata addresses, which derive from
/// the *logical* line and would be a real leak) stays verbatim.
pub fn canonicalize(obs: &ObservableCfg, events: &[BusEvent]) -> Vec<Observable> {
    let mut tokens: [HashMap<u32, u32>; 2] = [HashMap::new(), HashMap::new()];
    let mut rename = |slot: usize, line: u32| -> u32 {
        let next = tokens[slot].len() as u32;
        *tokens[slot].entry(line).or_insert(next)
    };
    events
        .iter()
        .map(|e| {
            let kind = kind_index(e.kind);
            if !obs.obfuscated {
                return Observable::Verbatim { kind, addr: e.addr };
            }
            let line = e.addr & !63;
            let offset = e.addr & 63;
            let protected = e.addr >= obs.protected_base
                && e.addr - obs.protected_base < obs.protected_bytes;
            // Remap-table entries cover region_lines * 4 bytes above
            // REMAP_BASE; a generous page-aligned bound is fine — no
            // other region lives within 2^28 of REMAP_BASE.
            let remap_meta = e.addr >= REMAP_BASE;
            if protected {
                Observable::Renamed {
                    kind,
                    region: REGION_PROTECTED,
                    token: rename(0, line),
                    offset,
                }
            } else if remap_meta {
                Observable::Renamed {
                    kind,
                    region: REGION_REMAP_META,
                    token: rename(1, line),
                    offset,
                }
            } else {
                Observable::Verbatim { kind, addr: e.addr }
            }
        })
        .collect()
}

/// The first point at which two observable traces differ on one
/// channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// `"addr"` or `"timing"`.
    pub channel: &'static str,
    /// Event index of the first disagreement (`min(len_a, len_b)` when
    /// one trace is a prefix of the other).
    pub index: u64,
    /// What the `0x00`-fill run observed.
    pub expected: String,
    /// What the `0xFF`-fill run observed.
    pub actual: String,
}

/// Compares two bus traces under `obs`; returns the first divergence on
/// the address channel and on the timing channel (independently).
pub fn compare_traces(
    obs: &ObservableCfg,
    a: &[BusEvent],
    b: &[BusEvent],
) -> (Option<TraceDivergence>, Option<TraceDivergence>) {
    let ca = canonicalize(obs, a);
    let cb = canonicalize(obs, b);
    let mut addr = None;
    for (i, (x, y)) in ca.iter().zip(cb.iter()).enumerate() {
        if x != y {
            addr = Some(TraceDivergence {
                channel: "addr",
                index: i as u64,
                expected: x.to_string(),
                actual: y.to_string(),
            });
            break;
        }
    }
    if addr.is_none() && ca.len() != cb.len() {
        addr = Some(TraceDivergence {
            channel: "addr",
            index: ca.len().min(cb.len()) as u64,
            expected: format!("{} events", ca.len()),
            actual: format!("{} events", cb.len()),
        });
    }
    let mut timing = None;
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if (x.kind, x.cycle) != (y.kind, y.cycle) {
            timing = Some(TraceDivergence {
                channel: "timing",
                index: i as u64,
                expected: format!("kind{} @{}", kind_index(x.kind), x.cycle),
                actual: format!("kind{} @{}", kind_index(y.kind), y.cycle),
            });
            break;
        }
    }
    if timing.is_none() && a.len() != b.len() {
        timing = Some(TraceDivergence {
            channel: "timing",
            index: a.len().min(b.len()) as u64,
            expected: format!("{} events", a.len()),
            actual: format!("{} events", b.len()),
        });
    }
    (addr, timing)
}

/// The verdict of one two-run comparison.
#[derive(Debug, Clone)]
pub struct OblivReport {
    /// First address-channel divergence (the headline verdict).
    pub addr: Option<TraceDivergence>,
    /// First timing-channel divergence (informational: obfuscation
    /// targets the address channel).
    pub timing: Option<TraceDivergence>,
    /// Bus events observed in the `0x00`-fill run.
    pub events: u64,
    /// Instructions retired in the `0x00`-fill run.
    pub insts: u64,
    /// Cycles simulated in the `0x00`-fill run.
    pub cycles: u64,
}

impl OblivReport {
    /// Whether the address channel is secret-independent.
    pub fn addr_oblivious(&self) -> bool {
        self.addr.is_none()
    }

    /// Whether the timing channel is secret-independent.
    pub fn timing_oblivious(&self) -> bool {
        self.timing.is_none()
    }
}

/// Runs the image pair produced by `images(0)` / `images(1)` under
/// `cfg` with full bus tracing and compares the observable traces
/// under `obs`. The closure owns the fill: `images(i)` must differ
/// *only* in the secret bytes.
pub fn check_obliviousness<M: SecureImage>(
    cfg: &SimConfig,
    obs: &ObservableCfg,
    mut images: impl FnMut(usize) -> (M, u32),
) -> OblivReport {
    let (mut img_a, entry_a) = images(0);
    let a = SimSession::new(cfg).trace_bus(true).run(&mut img_a, entry_a).into_report();
    let (mut img_b, entry_b) = images(1);
    let b = SimSession::new(cfg).trace_bus(true).run(&mut img_b, entry_b).into_report();
    let (addr, timing) = compare_traces(obs, &a.bus_events, &b.bus_events);
    OblivReport {
        addr,
        timing,
        events: a.bus_events.len() as u64,
        insts: a.insts,
        cycles: a.cycles,
    }
}

/// The streaming-scale variant: runs the pair with
/// [`SimSession::trace_bus_digest`] and returns both constant-memory
/// digests. Digest equality is *verbatim* trace equality (no
/// canonicalization), so it is the right tool for non-obfuscating
/// policies at 100M-instruction scale: `full` compares both channels,
/// `addrs`/`timing` localize which one diverged.
pub fn digest_pair<M: SecureImage>(
    cfg: &SimConfig,
    mut images: impl FnMut(usize) -> (M, u32),
) -> (BusDigest, BusDigest) {
    let (mut img_a, entry_a) = images(0);
    let a = SimSession::new(cfg).trace_bus_digest().run(&mut img_a, entry_a).into_report();
    let (mut img_b, entry_b) = images(1);
    let b = SimSession::new(cfg).trace_bus_digest().run(&mut img_b, entry_b).into_report();
    (a.bus_digest.expect("digest tracing was on"), b.bus_digest.expect("digest tracing was on"))
}

/// Checks the secret fuzz program for `seed` under one grid point.
pub fn fuzz_oblivious(policy: Policy, mac_latency: u64, seed: u64) -> OblivReport {
    let fz = generate_secret_fuzz(seed);
    let cfg = check_config(policy, mac_latency, fz.max_icount + 8);
    fuzz_oblivious_cfg(&cfg, seed)
}

fn fuzz_oblivious_cfg(cfg: &SimConfig, seed: u64) -> OblivReport {
    let fz = generate_secret_fuzz(seed);
    let spec = fz.secret.expect("secret fuzz programs carry a SecretSpec");
    let obs = ObservableCfg::for_policy(&cfg.secure.policy, DATA_BASE, FUZZ_FOOTPRINT);
    check_obliviousness(cfg, &obs, |i| {
        let mut mem = fz.workload.mem.clone();
        spec.apply(&mut mem, if i == 0 { SECRET_FILLS.0 } else { SECRET_FILLS.1 });
        (mem, fz.workload.entry)
    })
}

/// The victim configuration: the paper's 256 KB reference machine with
/// the whole 64 KB encrypted image protected.
pub fn victim_config(policy: Policy) -> SimConfig {
    let mut cfg = SimConfig::paper_256k(policy);
    cfg.secure = cfg.secure.with_protected_region(0, IMAGE_BYTES as u32);
    cfg.max_cycles = 10_000_000;
    cfg
}

/// Checks one hand-built victim under `policy`: two builds differing
/// only in the secret word (`0x0000_0000` vs `0xFFFF_FFFF`).
pub fn victim_oblivious(kind: VictimKind, policy: Policy) -> OblivReport {
    let cfg = victim_config(policy);
    let obs = ObservableCfg::for_policy(&policy, 0, IMAGE_BYTES as u32);
    check_obliviousness(&cfg, &obs, |i| {
        let secret = if i == 0 { 0x0000_0000 } else { 0xFFFF_FFFF };
        let v = Victim::build(kind, secret);
        (v.image, v.entry)
    })
}

/// Whether `policy` is address-oblivious on both hand-built
/// secret-dependent victims — the pinned `oblivious` column of the
/// attack snapshot matrix.
pub fn policy_oblivious(policy: Policy) -> bool {
    [VictimKind::SecretIndexedLoad, VictimKind::SecretBranch]
        .into_iter()
        .all(|k| victim_oblivious(k, policy).addr_oblivious())
}

/// A confirmed obliviousness violation, self-contained enough to
/// reproduce: the program regenerates from `(bench, seed)`, the two
/// fills are recorded, and the configuration is pinned by fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObliviousDivergence {
    /// `"fuzz"` for generated programs.
    pub bench: String,
    /// Program seed.
    pub seed: u64,
    /// Grid-point label.
    pub point: String,
    /// Stable fingerprint of the full [`SimConfig`].
    pub config_fingerprint: u64,
    /// `"addr"` or `"timing"`.
    pub channel: String,
    /// Event index of the first disagreement.
    pub index: u64,
    /// `0x00`-fill observation at that index.
    pub expected: String,
    /// `0xFF`-fill observation at that index.
    pub actual: String,
    /// Smallest `max_insts` that still reproduces an address-channel
    /// divergence (equal to the full run's `insts` for timing-only
    /// divergences).
    pub min_insts: u64,
}

/// Writes a self-contained JSON repro of `d` (with the program words)
/// into `dir`, returning the file path.
pub fn dump_oblivious_divergence(
    dir: &Path,
    d: &ObliviousDivergence,
    words: &[u32],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "oblivious-{}-seed{}-cfg{:016x}.json",
        d.bench, d.seed, d.config_fingerprint
    ));
    let json = Json::obj(vec![
        ("bench", Json::Str(d.bench.clone())),
        ("seed", Json::UInt(d.seed)),
        ("point", Json::Str(d.point.clone())),
        ("config_fingerprint", Json::Str(format!("{:016x}", d.config_fingerprint))),
        ("channel", Json::Str(d.channel.clone())),
        ("index", Json::UInt(d.index)),
        ("expected", Json::Str(d.expected.clone())),
        ("actual", Json::Str(d.actual.clone())),
        ("min_insts", Json::UInt(d.min_insts)),
        (
            "secret_fills",
            Json::Array(vec![
                Json::UInt(u64::from(SECRET_FILLS.0)),
                Json::UInt(u64::from(SECRET_FILLS.1)),
            ]),
        ),
        (
            "program",
            Json::Array(words.iter().map(|w| Json::Str(format!("{w:08x}"))).collect()),
        ),
    ]);
    std::fs::write(&path, json.render())?;
    Ok(path)
}

/// Minimizes an address-channel divergence by binary search on
/// `max_insts`: the smallest instruction budget that still diverges.
fn minimize_fuzz(cfg: &SimConfig, seed: u64, full_insts: u64) -> u64 {
    let (mut lo, mut hi) = (1u64, full_insts);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut short = *cfg;
        short.max_insts = mid;
        if fuzz_oblivious_cfg(&short, seed).addr.is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Per-grid-point statistics of one oblivious batch.
#[derive(Debug, Clone, Default)]
pub struct OblivPointStats {
    /// Grid-point label.
    pub label: String,
    /// Whether this point's policy obfuscates addresses.
    pub obfuscated: bool,
    /// Programs (run pairs) checked.
    pub programs: u64,
    /// Run pairs whose address channel diverged.
    pub addr_divergences: u64,
    /// Run pairs whose timing channel diverged.
    pub timing_divergences: u64,
    /// Instructions retired (per `0x00`-fill run, summed).
    pub insts: u64,
    /// Bus events observed (per `0x00`-fill run, summed).
    pub events: u64,
}

impl OblivPointStats {
    /// The point's verdict: address-oblivious over every checked pair.
    pub fn addr_oblivious(&self) -> bool {
        self.addr_divergences == 0
    }
}

/// The outcome of a whole oblivious batch.
#[derive(Debug, Default)]
pub struct OblivBatchSummary {
    /// Per-point statistics, grid order.
    pub points: Vec<OblivPointStats>,
    /// First address-channel divergence per grid point, minimized
    /// (leaking points only).
    pub divergences: Vec<ObliviousDivergence>,
    /// Total run pairs.
    pub programs: u64,
    /// Total instructions retired across `0x00`-fill runs.
    pub insts: u64,
}

struct OblivTask {
    insts: u64,
    events: u64,
    addr: Option<TraceDivergence>,
    timing: Option<TraceDivergence>,
}

/// Runs `per_point` secret fuzz pairs through every grid point,
/// `jobs`-way parallel, aggregating deterministically (pair `k` uses
/// the same seed at every point). The first address divergence of each
/// leaking point is minimized and reported.
pub fn run_oblivious_batch(
    points: &[GridPoint],
    per_point: usize,
    base_seed: u64,
    jobs: usize,
) -> OblivBatchSummary {
    let total = points.len() * per_point;
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<OblivTask>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let workers = jobs.clamp(1, total.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let point = &points[i / per_point];
                let k = (i % per_point) as u64;
                let seed = base_seed ^ k.wrapping_mul(SEED_STRIDE);
                let rep = fuzz_oblivious(point.policy, point.mac_latency, seed);
                *results[i].lock().unwrap() = Some(OblivTask {
                    insts: rep.insts,
                    events: rep.events,
                    addr: rep.addr,
                    timing: rep.timing,
                });
            });
        }
    });

    let mut summary = OblivBatchSummary::default();
    for (pi, point) in points.iter().enumerate() {
        let mut stats = OblivPointStats {
            label: point.label.clone(),
            obfuscated: point.policy.obfuscate,
            ..OblivPointStats::default()
        };
        let mut first: Option<(u64, u64, TraceDivergence)> = None;
        for k in 0..per_point {
            let seed = base_seed ^ (k as u64).wrapping_mul(SEED_STRIDE);
            let r = results[pi * per_point + k].lock().unwrap().take().expect("every task ran");
            stats.programs += 1;
            stats.insts += r.insts;
            stats.events += r.events;
            if let Some(d) = r.addr {
                stats.addr_divergences += 1;
                if first.is_none() {
                    first = Some((seed, r.insts, d));
                }
            }
            if r.timing.is_some() {
                stats.timing_divergences += 1;
            }
        }
        if let Some((seed, insts, d)) = first {
            let fz = generate_secret_fuzz(seed);
            let cfg = check_config(point.policy, point.mac_latency, fz.max_icount + 8);
            summary.divergences.push(ObliviousDivergence {
                bench: "fuzz".into(),
                seed,
                point: point.label.clone(),
                config_fingerprint: config_fingerprint(&cfg),
                channel: d.channel.into(),
                index: d.index,
                expected: d.expected,
                actual: d.actual,
                min_insts: minimize_fuzz(&cfg, seed, insts),
            });
        }
        summary.programs += stats.programs;
        summary.insts += stats.insts;
        summary.points.push(stats);
    }
    summary
}
