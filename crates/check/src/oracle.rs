//! Security-invariant oracles over the retirement stream.
//!
//! Each of the paper's four authentication control points has a precise
//! definition in terms of event cycles, and every [`RetireRecord`]
//! carries exactly the cycles needed to audit it:
//!
//! * **authen-then-issue** — nothing issues from an unverified I-line,
//!   and no loaded value becomes usable before its D-line verifies;
//! * **authen-then-commit** — nothing commits before its I-line and any
//!   touched D-line verify;
//! * **authen-then-write** — no store leaves the store buffer for the
//!   (DRAM-visible) cache before its *LastRequest* watermark verifies;
//! * **authen-then-fetch** — no demand bus transfer is granted below
//!   the authentication watermark passed with the request.
//!
//! These checks duplicate the inline asserts compiled into the pipeline
//! — deliberately. The inline asserts abort at the violation site; these
//! run over plain data, so tests can doctor a record and prove each
//! oracle actually fires (a dead oracle is worse than none).

use secsim_core::Policy;
use secsim_cpu::RetireRecord;

/// One violated gate at one retired instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateViolation {
    /// Retirement index of the offending instruction.
    pub seq: u64,
    /// Its fetch PC.
    pub pc: u32,
    /// Which control point was violated (`"issue"`, `"commit"`,
    /// `"write"`, `"fetch"`).
    pub gate: &'static str,
    /// Human-readable cycle evidence.
    pub detail: String,
}

impl std::fmt::Display for GateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} pc={:#x} {} gate: {}", self.seq, self.pc, self.gate, self.detail)
    }
}

/// Audits `records` against the gates `policy` promises, returning
/// every violation (empty = all invariants held).
pub fn check_records(policy: &Policy, records: &[RetireRecord]) -> Vec<GateViolation> {
    let mut out = Vec::new();
    for r in records {
        if policy.gate_issue {
            if r.issue < r.iline_auth {
                out.push(GateViolation {
                    seq: r.seq,
                    pc: r.pc,
                    gate: "issue",
                    detail: format!("issued at {} before I-line verified at {}", r.issue, r.iline_auth),
                });
            }
            if r.complete < r.data_auth {
                out.push(GateViolation {
                    seq: r.seq,
                    pc: r.pc,
                    gate: "issue",
                    detail: format!(
                        "value usable at {} before data verified at {}",
                        r.complete, r.data_auth
                    ),
                });
            }
        }
        if policy.gate_commit && r.commit < r.iline_auth.max(r.data_auth) {
            out.push(GateViolation {
                seq: r.seq,
                pc: r.pc,
                gate: "commit",
                detail: format!(
                    "committed at {} before verification at {}",
                    r.commit,
                    r.iline_auth.max(r.data_auth)
                ),
            });
        }
        if policy.gate_write
            && r.mem.is_some_and(|m| m.is_store)
            && r.store_release < r.store_tag_done
        {
            out.push(GateViolation {
                seq: r.seq,
                pc: r.pc,
                gate: "write",
                detail: format!(
                    "store released at {} before watermark {}",
                    r.store_release, r.store_tag_done
                ),
            });
        }
        // The bus floor is 0 when fetch gating is off, so this check is
        // unconditional: a granted transfer must respect the floor it
        // was requested with.
        for (what, floor, granted) in [
            ("D-access", r.bus_floor, r.bus_granted),
            ("I-fetch", r.ifetch_floor, r.ifetch_granted),
        ] {
            if granted != 0 && granted < floor {
                out.push(GateViolation {
                    seq: r.seq,
                    pc: r.pc,
                    gate: "fetch",
                    detail: format!(
                        "{what} bus granted at {granted} below auth watermark {floor}"
                    ),
                });
            }
        }
    }
    out
}
