//! Security-invariant oracles over the retirement stream.
//!
//! Each of the paper's four authentication control points has a precise
//! definition in terms of event cycles, and every [`RetireRecord`]
//! carries exactly the cycles needed to audit it:
//!
//! * **authen-then-issue** — nothing issues from an unverified I-line,
//!   and no loaded value becomes usable before its D-line verifies;
//! * **authen-then-commit** — nothing commits before its I-line and any
//!   touched D-line verify;
//! * **authen-then-write** — no store leaves the store buffer for the
//!   (DRAM-visible) cache before its *LastRequest* watermark verifies;
//! * **authen-then-fetch** — no demand bus transfer is granted below
//!   the authentication watermark passed with the request.
//!
//! These checks duplicate the inline asserts compiled into the pipeline
//! — deliberately. The inline asserts abort at the violation site; these
//! run over plain data, so tests can doctor a record and prove each
//! oracle actually fires (a dead oracle is worse than none).
//!
//! Alongside the four control-point oracles,
//! [`check_stall_completeness`] audits the cycle-accounting ledger of
//! the report itself: every commit slot of every cycle must be either a
//! retired instruction or exactly one attributed [`StallCause`] —
//! `stall.total() + insts == commit_width × cycles`.
//!
//! [`StallCause`]: secsim_cpu::StallCause

use secsim_core::{Exposure, Policy};
use secsim_cpu::{RetireRecord, SimReport};

/// One violated gate at one retired instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateViolation {
    /// Retirement index of the offending instruction.
    pub seq: u64,
    /// Its fetch PC.
    pub pc: u32,
    /// Which oracle was violated (`"issue"`, `"commit"`, `"write"`,
    /// `"fetch"`, or `"stall"` for the cycle-accounting ledger).
    pub gate: &'static str,
    /// Human-readable cycle evidence.
    pub detail: String,
}

impl std::fmt::Display for GateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} pc={:#x} {} gate: {}", self.seq, self.pc, self.gate, self.detail)
    }
}

/// Audits `records` against the gates `policy` promises, returning
/// every violation (empty = all invariants held).
pub fn check_records(policy: &Policy, records: &[RetireRecord]) -> Vec<GateViolation> {
    let mut out = Vec::new();
    for r in records {
        if policy.gate_issue {
            if r.issue < r.iline_auth {
                out.push(GateViolation {
                    seq: r.seq,
                    pc: r.pc,
                    gate: "issue",
                    detail: format!("issued at {} before I-line verified at {}", r.issue, r.iline_auth),
                });
            }
            if r.complete < r.data_auth {
                out.push(GateViolation {
                    seq: r.seq,
                    pc: r.pc,
                    gate: "issue",
                    detail: format!(
                        "value usable at {} before data verified at {}",
                        r.complete, r.data_auth
                    ),
                });
            }
        }
        if policy.gate_commit && r.commit < r.iline_auth.max(r.data_auth) {
            out.push(GateViolation {
                seq: r.seq,
                pc: r.pc,
                gate: "commit",
                detail: format!(
                    "committed at {} before verification at {}",
                    r.commit,
                    r.iline_auth.max(r.data_auth)
                ),
            });
        }
        if policy.gate_write
            && r.mem.is_some_and(|m| m.is_store)
            && r.store_release < r.store_tag_done
        {
            out.push(GateViolation {
                seq: r.seq,
                pc: r.pc,
                gate: "write",
                detail: format!(
                    "store released at {} before watermark {}",
                    r.store_release, r.store_tag_done
                ),
            });
        }
        // The bus floor is 0 when fetch gating is off, so this check is
        // unconditional: a granted transfer must respect the floor it
        // was requested with.
        for (what, floor, granted) in [
            ("D-access", r.bus_floor, r.bus_granted),
            ("I-fetch", r.ifetch_floor, r.ifetch_granted),
        ] {
            if granted != 0 && granted < floor {
                out.push(GateViolation {
                    seq: r.seq,
                    pc: r.pc,
                    gate: "fetch",
                    detail: format!(
                        "{what} bus granted at {granted} below auth watermark {floor}"
                    ),
                });
            }
        }
    }
    out
}

/// Audits the pre-detection [`Exposure`] of a `TamperDetected` outcome
/// against the gates `policy` promises: work a gate holds back can
/// never appear in the exposure window of a detected tamper.
///
/// * `gate_issue` — no tainted instruction issued (and a fortiori none
///   committed, no tainted store released);
/// * `gate_commit` — no tainted instruction committed, no tainted
///   store released (release waits for commit);
/// * `gate_write` — no tainted store reached the DRAM-visible cache;
/// * `gate_fetch` — no bus transfer on behalf of tainted work.
///
/// Violations use `seq`/`pc` of zero — exposure is a whole-run
/// property, not tied to one instruction.
pub fn check_exposure(policy: &Policy, exposure: &Exposure) -> Vec<GateViolation> {
    let mut out = Vec::new();
    let mut push = |gate: &'static str, what: &str, n: u64| {
        if n != 0 {
            out.push(GateViolation {
                seq: 0,
                pc: 0,
                gate,
                detail: format!("{n} tainted {what} escaped before detection ({exposure})"),
            });
        }
    };
    if policy.gate_issue {
        push("issue", "instructions issued", exposure.issued);
    }
    if policy.gate_issue || policy.gate_commit {
        push("commit", "instructions committed", exposure.committed);
        push("write", "stores released", exposure.stores_released);
    }
    if policy.gate_write {
        push("write", "stores released", exposure.stores_released);
    }
    if policy.gate_fetch {
        push("fetch", "bus grants", exposure.bus_grants);
    }
    out
}

/// Audits the stall-attribution ledger of `report`: the pipeline must
/// charge every commit slot of every cycle either to a retired
/// instruction or to exactly one stall cause, so
/// `stall.total() + insts == commit_width × cycles` holds exactly.
///
/// Returns the single `"stall"`-gate violation if the ledger leaks or
/// double-counts slots (`seq`/`pc` are zero — the ledger is a
/// whole-run property, not tied to one instruction).
pub fn check_stall_completeness(commit_width: u32, report: &SimReport) -> Option<GateViolation> {
    let slots = u64::from(commit_width) * report.cycles;
    let accounted = report.stall.total() + report.insts;
    (accounted != slots).then(|| GateViolation {
        seq: 0,
        pc: 0,
        gate: "stall",
        detail: format!(
            "ledger accounts {accounted} slots ({} stalled + {} retired), machine had {slots} \
             ({} cycles × width {commit_width})",
            report.stall.total(),
            report.insts,
            report.cycles,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_cpu::{SimSession, StallCause};
    use secsim_workloads::generate_fuzz;

    /// The exposure oracle must pass a gate-respecting exposure and
    /// fire on every component a policy's gates forbid.
    #[test]
    fn exposure_oracle_holds_clean_and_fires_doctored() {
        use secsim_core::Exposure;
        let zero = Exposure::default();
        for p in Policy::figure7_schemes() {
            assert!(check_exposure(&p, &zero).is_empty(), "{p}: zero exposure is clean");
        }

        let leaked =
            Exposure { issued: 5, committed: 3, stores_released: 2, bus_grants: 1 };
        let v = check_exposure(&Policy::authen_then_issue(), &leaked);
        let gates: Vec<_> = v.iter().map(|g| g.gate).collect();
        assert_eq!(gates, ["issue", "commit", "write"], "issue gating forbids all three");
        let v = check_exposure(&Policy::authen_then_commit(), &leaked);
        assert_eq!(v.iter().map(|g| g.gate).collect::<Vec<_>>(), ["commit", "write"]);
        let v = check_exposure(&Policy::authen_then_write(), &leaked);
        assert_eq!(v.iter().map(|g| g.gate).collect::<Vec<_>>(), ["write"]);
        let v = check_exposure(&Policy::authen_then_fetch(), &leaked);
        assert_eq!(v.iter().map(|g| g.gate).collect::<Vec<_>>(), ["fetch"]);
        assert!(v[0].detail.contains("bus"), "detail carries the evidence: {}", v[0]);
        assert!(check_exposure(&Policy::baseline(), &leaked).is_empty(), "no gates, no claims");
    }

    /// The completeness oracle must hold on a live run and fire on a
    /// doctored ledger — in both directions (leaked and double-counted
    /// slots).
    #[test]
    fn stall_completeness_holds_live_and_fires_doctored() {
        let fz = generate_fuzz(7);
        let cfg =
            crate::grid::check_config(Policy::authen_then_commit(), 74, fz.max_icount + 8);
        let out = SimSession::new(&cfg).run(&mut fz.workload.mem.clone(), fz.workload.entry);
        let mut report = out.into_report();
        assert_eq!(check_stall_completeness(cfg.cpu.commit_width, &report), None);

        report.stall.add(StallCause::Drain, 1);
        let v = check_stall_completeness(cfg.cpu.commit_width, &report)
            .expect("over-counted ledger must fire");
        assert_eq!(v.gate, "stall");
        assert!(v.detail.contains("retired"), "detail carries the evidence: {v}");

        report.cycles += 1; // now the ledger under-counts instead
        assert!(check_stall_completeness(cfg.cpu.commit_width, &report).is_some());
    }
}
