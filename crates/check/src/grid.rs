//! The policy × MAC-latency check grid and the parallel batch runner.

use crate::diff::{diff_run, Divergence};
use crate::oracle::{check_records, check_stall_completeness, GateViolation};
use secsim_core::{FetchGateVariant, Policy};
use secsim_cpu::SimConfig;
use secsim_workloads::{generate_fuzz, DATA_BASE, FUZZ_FOOTPRINT};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Seed-spreading constant (the SplitMix64 increment), so per-program
/// seeds are well distributed even from a small base seed.
pub const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// One point of the check grid.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Display label (`"authen-then-fetch-drain @160"`, …).
    pub label: String,
    /// The gating policy.
    pub policy: Policy,
    /// Authentication-engine MAC latency (cycles).
    pub mac_latency: u64,
}

/// Every policy variant (including the drain flavour of
/// authen-then-fetch) crossed with the paper's MAC latency (74 = SHA-1
/// reference) and a slow-engine point that stretches every verification
/// window.
pub fn policy_grid() -> Vec<GridPoint> {
    let policies = [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_commit(),
        Policy::authen_then_write(),
        Policy::authen_then_fetch(),
        Policy::authen_then_fetch().with_fetch_variant(FetchGateVariant::Drain),
        Policy::commit_plus_fetch(),
        Policy::commit_plus_obfuscation(),
    ];
    let mut grid = Vec::new();
    for p in policies {
        let drain = p.gate_fetch && p.fetch_variant == FetchGateVariant::Drain;
        for mac in [74u64, 160] {
            let suffix = if drain { "-drain" } else { "" };
            grid.push(GridPoint {
                label: format!("{p}{suffix} @{mac}"),
                policy: p,
                mac_latency: mac,
            });
        }
    }
    grid
}

/// The simulator configuration for one grid point: the paper's 256 KB
/// reference machine with the protected region pointed at the fuzz
/// footprint and the authentication engine slowed to `mac_latency`.
pub fn check_config(policy: Policy, mac_latency: u64, max_insts: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_256k(policy);
    cfg.secure = cfg.secure.with_protected_region(DATA_BASE, FUZZ_FOOTPRINT);
    cfg.secure.ctrl.queue.mac_latency = mac_latency;
    cfg.max_insts = max_insts;
    // Default cycle fence: orders of magnitude above any legitimate
    // check run, so a wedged point ends as `CycleLimitExceeded` and one
    // bad configuration cannot hang a whole batch.
    cfg.max_cycles = 10_000_000;
    cfg
}

/// Aggregate statistics for one grid point.
#[derive(Debug, Clone, Default)]
pub struct PointStats {
    /// Grid-point label.
    pub label: String,
    /// Programs run.
    pub programs: u64,
    /// Instructions retired across them.
    pub insts: u64,
    /// Cycles simulated across them.
    pub cycles: u64,
    /// Divergences found.
    pub divergences: u64,
    /// Oracle violations found.
    pub violations: u64,
}

/// The outcome of a whole batch.
#[derive(Debug, Default)]
pub struct BatchSummary {
    /// Per-point statistics, grid order.
    pub points: Vec<PointStats>,
    /// Every divergence (already minimized).
    pub divergences: Vec<Divergence>,
    /// Oracle violations with their grid-point label (capped at 100).
    pub violations: Vec<(String, GateViolation)>,
    /// Total programs run.
    pub programs: u64,
    /// Total instructions retired.
    pub insts: u64,
}

struct TaskResult {
    insts: u64,
    cycles: u64,
    divergence: Option<Divergence>,
    violations: Vec<GateViolation>,
}

/// Runs `per_point` fuzz programs through every grid point, `jobs`-way
/// parallel, aggregating deterministically (program `k` uses the same
/// seed at every point, so all policies see identical programs).
pub fn run_batch(
    points: &[GridPoint],
    per_point: usize,
    base_seed: u64,
    jobs: usize,
) -> BatchSummary {
    let total = points.len() * per_point;
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<TaskResult>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let workers = jobs.clamp(1, total.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let point = &points[i / per_point];
                let k = (i % per_point) as u64;
                let seed = base_seed ^ k.wrapping_mul(SEED_STRIDE);
                let fz = generate_fuzz(seed);
                let cfg = check_config(point.policy, point.mac_latency, fz.max_icount + 8);
                let out = diff_run("fuzz", seed, &fz.workload, &cfg);
                let mut violations = check_records(&point.policy, &out.records);
                violations.extend(check_stall_completeness(cfg.cpu.commit_width, &out.report));
                *results[i].lock().unwrap() = Some(TaskResult {
                    insts: out.report.insts,
                    cycles: out.report.cycles,
                    divergence: out.divergence,
                    violations,
                });
            });
        }
    });

    let mut summary = BatchSummary::default();
    for (pi, point) in points.iter().enumerate() {
        let mut stats = PointStats { label: point.label.clone(), ..PointStats::default() };
        for k in 0..per_point {
            let r = results[pi * per_point + k]
                .lock()
                .unwrap()
                .take()
                .expect("every task ran");
            stats.programs += 1;
            stats.insts += r.insts;
            stats.cycles += r.cycles;
            if let Some(d) = r.divergence {
                stats.divergences += 1;
                summary.divergences.push(d);
            }
            stats.violations += r.violations.len() as u64;
            for v in r.violations {
                if summary.violations.len() < 100 {
                    summary.violations.push((point.label.clone(), v));
                }
            }
        }
        summary.programs += stats.programs;
        summary.insts += stats.insts;
        summary.points.push(stats);
    }
    summary
}
