//! `secsim-check`: run the differential co-simulation batch.
//!
//! ```text
//! secsim-check [--programs N] [--seed S] [--smoke] [--jobs N] [--no-cache]
//! secsim-check oblivious [--programs N] [--seed S] [--smoke] [--jobs N]
//! ```
//!
//! The default mode runs `N` deterministic fuzz programs (default 500,
//! `--smoke` = 40) per policy against the golden model at every policy
//! × MAC-latency grid point, audits the four control-point oracles,
//! sweeps the same grid through the cached [`secsim_bench::Sweep`]
//! executor for an IPC table, and exits nonzero on any divergence or
//! violation. Divergence repros land in `results/divergence/`.
//!
//! `oblivious` runs the 7th oracle instead: `N` secret-carrying fuzz
//! pairs per policy (default 100, `--smoke` = 8), two runs each with
//! differing secret bytes, over the 8-policy grid — plus the two
//! hand-built secret victims. Obfuscation must be address-oblivious;
//! every other policy must demonstrably leak. Divergences minimize to
//! `results/divergence/oblivious-*.json`.

use secsim_attack::VictimKind;
use secsim_bench::checkpoint::{fast_forward, from_bytes, to_bytes};
use secsim_bench::{emit, results_dir, sim_config_id, with_workload, RunOpts, Sweep, SweepPoint};
use secsim_check::{
    check_config, check_exposure, dump_divergence, dump_oblivious_divergence, policy_grid,
    run_batch, run_oblivious_batch, victim_oblivious, GridPoint,
};
use secsim_core::{EncryptedMemory, FaultKind, FaultPlan};
use secsim_cpu::{SimOutcome, SimSession};
use secsim_stats::Table;
use secsim_workloads::{generate_fuzz, generate_secret_fuzz, BenchId};

/// Fault-recovery pass: one scheduled ciphertext flip against an
/// encrypted victim at every grid policy. Every authenticating policy
/// must convert it into a precise `TamperDetected` whose exposure
/// respects that policy's gates ([`check_exposure`]); the baseline must
/// sail through untouched by the recovery machinery.
///
/// Returns `(label, violation-text)` pairs, empty when the pass holds.
fn fault_pass() -> Vec<(String, String)> {
    use secsim_isa::{Asm, Reg};
    const TARGET: u32 = 0x2000;
    let mut a = Asm::new(0x0);
    let top = a.new_label();
    a.li(Reg::R1, TARGET);
    a.li(Reg::R2, 2_000);
    a.bind(top).expect("fresh label");
    a.lw(Reg::R3, Reg::R1, 0);
    a.add(Reg::R5, Reg::R3, Reg::R3);
    a.sw(Reg::R5, Reg::R1, 64);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bne(Reg::R2, Reg::R0, top);
    a.halt();
    let words = a.assemble().expect("victim assembles");
    let mut plain = vec![0u8; 16 << 10];
    for (i, w) in words.iter().enumerate() {
        plain[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }

    let mut out = Vec::new();
    for g in policy_grid().iter().filter(|g| g.mac_latency == 74) {
        let mut image = EncryptedMemory::from_plain(0, &plain, &[0x5A; 16], b"check-faults");
        let cfg = check_config(g.policy, g.mac_latency, 0);
        let plan =
            FaultPlan::new().at(800, TARGET, FaultKind::CiphertextFlip { mask: 0x01 });
        match SimSession::new(&cfg).faults(plan).run(&mut image, 0x0) {
            SimOutcome::TamperDetected { cycle, exposure, .. } => {
                if cycle < 800 {
                    out.push((g.label.clone(), format!("detected at {cycle}, before injection")));
                }
                for v in check_exposure(&g.policy, &exposure) {
                    out.push((g.label.clone(), v.to_string()));
                }
            }
            SimOutcome::Completed(_) if !g.policy.authenticate => {}
            other => out.push((
                g.label.clone(),
                format!("expected a detection verdict, got {}", other.verdict_name()),
            )),
        }
    }
    out
}

/// Checkpoint-determinism pass: at every grid policy, a timed run
/// resumed from a *serialized-and-restored* warmup snapshot must be
/// byte-identical to one resumed from a fresh functional fast-forward.
/// Warmup is policy-independent, so one snapshot seeds the whole grid —
/// exactly how the sweep executor shares checkpoints.
///
/// Returns `(label, violation-text)` pairs, empty when the pass holds.
fn checkpoint_pass() -> Vec<(String, String)> {
    const WARMUP: u64 = 2_000;
    let bench: BenchId = "mcf".parse().expect("mcf exists");
    let opts = RunOpts { max_insts: 10_000, warmup_insts: WARMUP, ..RunOpts::default() };

    let snapshot = with_workload(bench, opts.seed, |w| {
        let st = fast_forward(&mut w.mem, w.entry, WARMUP);
        to_bytes(&st, &w.mem)
    });

    let mut out = Vec::new();
    for g in policy_grid().iter().filter(|g| g.mac_latency == 74) {
        let cfg = sim_config_id(bench, g.policy, &opts);
        let cold = with_workload(bench, opts.seed, |w| {
            let st = fast_forward(&mut w.mem, w.entry, WARMUP);
            SimSession::new(&cfg).resume_from(st).run(&mut w.mem, w.entry).into_report()
        });
        let restored = with_workload(bench, opts.seed, |w| {
            let Some((st, mem)) = from_bytes(&snapshot) else {
                out.push((g.label.clone(), "snapshot failed to deserialize".into()));
                return cold.clone();
            };
            w.mem.restore_from(&mem);
            SimSession::new(&cfg).resume_from(st).run(&mut w.mem, w.entry).into_report()
        });
        let (c, r) = (cold.to_json(), restored.to_json());
        match (c, r) {
            (Some(c), Some(r)) if c.render() == r.render() => {}
            (Some(_), Some(_)) => out.push((
                g.label.clone(),
                "restored-checkpoint report diverged from cold fast-forward".into(),
            )),
            _ => out.push((g.label.clone(), "report failed to serialize".into())),
        }
    }
    out
}

/// The `oblivious` batch mode: the two-run secret-independence oracle
/// over the 8-policy grid (one MAC latency — obliviousness is a gating
/// property, not a latency one), on generated secret-carrying fuzz
/// programs plus the two hand-built secret victims.
///
/// The expectation is two-sided and enforced with a nonzero exit:
/// the obfuscating policy must show **zero** address divergences, and
/// every non-obfuscating policy must show **at least one** (otherwise
/// the oracle has lost its teeth — the secret probes stopped reaching
/// the bus). Each leaking point's first divergence is minimized and
/// dumped to `results/divergence/oblivious-*.json`.
fn oblivious_main(rest: Vec<String>, sweep: &Sweep) {
    let mut pairs_per_policy: usize = 100;
    let mut base_seed: u64 = 2006;
    let mut args = rest.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--programs" => {
                let n = args.next().and_then(|s| s.parse().ok()).filter(|&n| n >= 1);
                let Some(n) = n else {
                    eprintln!("error: --programs needs a positive integer");
                    std::process::exit(2);
                };
                pairs_per_policy = n;
            }
            "--seed" => {
                let Some(s) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("error: --seed needs an integer");
                    std::process::exit(2);
                };
                base_seed = s;
            }
            "--smoke" => pairs_per_policy = 8,
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!("usage: secsim-check oblivious [--programs N] [--seed S] [--smoke] [--jobs N]");
                std::process::exit(2);
            }
        }
    }

    let points: Vec<GridPoint> =
        policy_grid().into_iter().filter(|g| g.mac_latency == 74).collect();
    eprintln!(
        "secsim-check oblivious: {} run pairs/policy over {} policies, base seed {base_seed}, {} jobs",
        pairs_per_policy,
        points.len(),
        sweep.jobs(),
    );
    let summary = run_oblivious_batch(&points, pairs_per_policy, base_seed, sweep.jobs());

    let mut failures: Vec<String> = Vec::new();
    let mut table = Table::new([
        "point", "pairs", "insts", "events", "addr div", "timing div", "verdict",
    ]);
    for p in &summary.points {
        table.push_row([
            p.label.clone(),
            p.programs.to_string(),
            p.insts.to_string(),
            p.events.to_string(),
            p.addr_divergences.to_string(),
            p.timing_divergences.to_string(),
            if p.addr_oblivious() { "oblivious".into() } else { "LEAKS".to_string() },
        ]);
        if p.obfuscated && !p.addr_oblivious() {
            failures.push(format!(
                "[{}] obfuscating policy leaked: {} address divergence(s)",
                p.label, p.addr_divergences,
            ));
        }
        if !p.obfuscated && p.addr_oblivious() {
            failures.push(format!(
                "[{}] expected a demonstrable address leak, found none in {} pairs \
                 (the secret probes are no longer reaching the bus)",
                p.label, p.programs,
            ));
        }
    }
    emit("oblivious_check", "Two-run secret-independence oracle across the policy grid", &table);

    let dump_dir = results_dir().join("divergence");
    for d in &summary.divergences {
        let words = generate_secret_fuzz(d.seed).words;
        match dump_oblivious_divergence(&dump_dir, d, &words) {
            Ok(path) => eprintln!(
                "OBLIVIOUS-DIVERGENCE [{}] {} @{} ({} vs {}), min {} insts -> {}",
                d.point,
                d.channel,
                d.index,
                d.expected,
                d.actual,
                d.min_insts,
                path.display(),
            ),
            Err(e) => eprintln!("OBLIVIOUS-DIVERGENCE [{}] (dump failed: {e})", d.point),
        }
    }

    // The hand-built secret victims: one address-channel verdict per
    // policy per victim, same two-sided expectation as the fuzz pairs.
    let mut victims = Table::new(["policy", "secret-indexed-load", "secret-branch"]);
    for g in &points {
        let mut row = vec![g.label.clone()];
        for kind in [VictimKind::SecretIndexedLoad, VictimKind::SecretBranch] {
            let rep = victim_oblivious(kind, g.policy);
            row.push(if rep.addr_oblivious() { "oblivious".into() } else { "LEAKS".to_string() });
            if g.policy.obfuscate && !rep.addr_oblivious() {
                failures.push(format!("[{}] {kind:?} victim leaked under obfuscation", g.label));
            }
            if !g.policy.obfuscate && rep.addr_oblivious() {
                failures.push(format!(
                    "[{}] {kind:?} victim expected to leak but did not",
                    g.label,
                ));
            }
        }
        victims.push_row(row);
    }
    emit("oblivious_victims", "Secret-victim address-obliviousness per policy", &victims);

    for f in &failures {
        eprintln!("OBLIVIOUS-VIOLATION {f}");
    }
    eprintln!(
        "secsim-check oblivious: {} run pairs, {} insts, {} leaking points minimized -> {}",
        summary.programs,
        summary.insts,
        summary.divergences.len(),
        if failures.is_empty() { "ok" } else { "FAIL" },
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn main() {
    let (sweep, rest) = Sweep::from_args();
    if rest.first().map(String::as_str) == Some("oblivious") {
        return oblivious_main(rest[1..].to_vec(), &sweep);
    }
    let mut programs_per_policy: usize = 500;
    let mut base_seed: u64 = 2006;
    let mut args = rest.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--programs" => {
                let n = args.next().and_then(|s| s.parse().ok()).filter(|&n| n >= 1);
                let Some(n) = n else {
                    eprintln!("error: --programs needs a positive integer");
                    std::process::exit(2);
                };
                programs_per_policy = n;
            }
            "--seed" => {
                let Some(s) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("error: --seed needs an integer");
                    std::process::exit(2);
                };
                base_seed = s;
            }
            "--smoke" => programs_per_policy = 40,
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!(
                    "usage: secsim-check [--programs N] [--seed S] [--smoke] [--jobs N] [--no-cache]"
                );
                std::process::exit(2);
            }
        }
    }

    let grid = policy_grid();
    // Each policy appears at two MAC latencies; split its program
    // budget between them so `--programs` counts programs *per policy*.
    let per_point = programs_per_policy.div_ceil(2);
    eprintln!(
        "secsim-check: {} programs/policy ({} grid points x {per_point}), base seed {base_seed}, {} jobs",
        programs_per_policy,
        grid.len(),
        sweep.jobs(),
    );
    let summary = run_batch(&grid, per_point, base_seed, sweep.jobs());

    let mut table = Table::new(["point", "programs", "insts", "cycles", "divergences", "violations"]);
    for p in &summary.points {
        table.push_row([
            p.label.clone(),
            p.programs.to_string(),
            p.insts.to_string(),
            p.cycles.to_string(),
            p.divergences.to_string(),
            p.violations.to_string(),
        ]);
    }
    emit("check_summary", "Differential co-simulation batch", &table);

    for (label, v) in &summary.violations {
        eprintln!("VIOLATION [{label}] {v}");
    }
    let dump_dir = results_dir().join("divergence");
    for d in &summary.divergences {
        let words = generate_fuzz(d.seed).words;
        match dump_divergence(&dump_dir, d, &words) {
            Ok(path) => eprintln!("DIVERGENCE {} @{} -> {}", d.field, d.retire_index, path.display()),
            Err(e) => eprintln!("DIVERGENCE {} @{} (dump failed: {e})", d.field, d.retire_index),
        }
    }

    // Fault-recovery pass: injected tampering must end in a precise,
    // gate-respecting detection at every authenticating grid point.
    let fault_violations = fault_pass();
    for (label, v) in &fault_violations {
        eprintln!("FAULT-VIOLATION [{label}] {v}");
    }
    eprintln!(
        "secsim-check: fault pass over {} policies -> {}",
        policy_grid().iter().filter(|g| g.mac_latency == 74).count(),
        if fault_violations.is_empty() { "ok" } else { "FAIL" },
    );

    // Checkpoint-determinism pass: warmup restore must be invisible in
    // every report, under every policy.
    let checkpoint_violations = checkpoint_pass();
    for (label, v) in &checkpoint_violations {
        eprintln!("CHECKPOINT-VIOLATION [{label}] {v}");
    }
    eprintln!(
        "secsim-check: checkpoint pass over {} policies -> {}",
        policy_grid().iter().filter(|g| g.mac_latency == 74).count(),
        if checkpoint_violations.is_empty() { "ok" } else { "FAIL" },
    );

    // IPC sanity sweep over the same grid through the cached executor:
    // exercises the `"fuzz"` bench end-to-end in the standard harness.
    let seeds: Vec<u64> = (0..3).map(|k| base_seed ^ (k as u64).wrapping_mul(secsim_check::grid::SEED_STRIDE)).collect();
    let points: Vec<SweepPoint> = grid
        .iter()
        .flat_map(|g| {
            let cfg = check_config(g.policy, g.mac_latency, 200_000);
            seeds.iter().map(move |&s| SweepPoint::from_config(BenchId::Fuzz, s, cfg))
        })
        .collect();
    let reports = sweep.run(&points);
    let mut ipc = Table::new(["point", "mean IPC"]);
    for (gi, g) in grid.iter().enumerate() {
        let rs: Vec<f64> = (0..seeds.len())
            .filter_map(|si| match &reports[gi * seeds.len() + si] {
                Ok(r) => Some(r.ipc()),
                Err(e) => {
                    eprintln!("warning: skipping {} seed #{si}: {e}", g.label);
                    None
                }
            })
            .collect();
        let mean = rs.iter().sum::<f64>() / rs.len().max(1) as f64;
        ipc.push_row([g.label.clone(), format!("{mean:.3}")]);
    }
    emit("check_fuzz_ipc", "Fuzz-program IPC across the check grid", &ipc);

    let failed = !summary.divergences.is_empty()
        || !summary.violations.is_empty()
        || !fault_violations.is_empty()
        || !checkpoint_violations.is_empty();
    eprintln!(
        "secsim-check: {} programs, {} insts, {} divergences, {} violations -> {}",
        summary.programs,
        summary.insts,
        summary.divergences.len(),
        summary.points.iter().map(|p| p.violations).sum::<u64>(),
        if failed { "FAIL" } else { "ok" },
    );
    if failed {
        std::process::exit(1);
    }
}
