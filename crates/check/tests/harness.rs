//! Tests for the differential harness itself: that clean runs diverge
//! nowhere, and — just as important — that a *broken* gate or a
//! *tampered* stream actually trips the corresponding check. An oracle
//! that cannot fail proves nothing.

use secsim_check::{check_records, diff_run, dump_divergence, golden_compare, policy_grid};
use secsim_check::{check_config, Divergence};
use secsim_core::Policy;
use secsim_cpu::RetireRecord;
use secsim_isa::MemAccess;
use secsim_stats::Json;
use secsim_workloads::generate_fuzz;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("secsim-check-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

#[test]
fn differential_clean_across_grid() {
    // Debug profile is slow; a few seeds across every grid point is
    // plenty here — the 500-per-policy requirement runs in release via
    // `secsim-check` (scripts/tier1.sh check-smoke + CI).
    for point in policy_grid() {
        for k in 0..3u64 {
            let seed = 0x5EED ^ k.wrapping_mul(secsim_check::grid::SEED_STRIDE);
            let fz = generate_fuzz(seed);
            let cfg = check_config(point.policy, point.mac_latency, fz.max_icount + 8);
            let out = diff_run("fuzz", seed, &fz.workload, &cfg);
            assert!(out.report.halted, "{}: seed {seed} did not halt", point.label);
            assert!(
                out.divergence.is_none(),
                "{}: seed {seed} diverged: {:?}",
                point.label,
                out.divergence
            );
            let v = check_records(&point.policy, &out.records);
            assert!(v.is_empty(), "{}: seed {seed} violations: {v:?}", point.label);
        }
    }
}

fn sample_records(policy: Policy) -> Vec<RetireRecord> {
    let fz = generate_fuzz(1);
    let cfg = check_config(policy, 74, fz.max_icount + 8);
    let out = diff_run("fuzz", 1, &fz.workload, &cfg);
    assert!(out.divergence.is_none());
    out.records
}

#[test]
fn issue_oracle_fires_on_broken_gate() {
    let mut recs = sample_records(Policy::authen_then_issue());
    let i = recs.iter().position(|r| r.iline_auth > 0).expect("authenticated fetches exist");
    // Pretend the instruction issued before its I-line verified.
    recs[i].issue = recs[i].iline_auth - 1;
    let v = check_records(&Policy::authen_then_issue(), &recs);
    assert!(v.iter().any(|v| v.gate == "issue" && v.seq == recs[i].seq), "{v:?}");
    // The same records are fine under a policy that never promised it.
    assert!(check_records(&Policy::baseline(), &recs).is_empty());
}

#[test]
fn commit_oracle_fires_on_broken_gate() {
    let mut recs = sample_records(Policy::authen_then_commit());
    let i = recs.iter().position(|r| r.iline_auth > 0).expect("authenticated fetches exist");
    recs[i].commit = recs[i].iline_auth.max(recs[i].data_auth) - 1;
    let v = check_records(&Policy::authen_then_commit(), &recs);
    assert!(v.iter().any(|v| v.gate == "commit" && v.seq == recs[i].seq), "{v:?}");
}

#[test]
fn write_oracle_fires_on_broken_gate() {
    let mut recs = sample_records(Policy::authen_then_write());
    let i = recs
        .iter()
        .position(|r| r.mem.is_some_and(|m| m.is_store) && r.store_tag_done > 0)
        .expect("gated stores exist");
    // Pretend the store buffer released the store before its watermark.
    recs[i].store_release = recs[i].store_tag_done - 1;
    let v = check_records(&Policy::authen_then_write(), &recs);
    assert!(v.iter().any(|v| v.gate == "write" && v.seq == recs[i].seq), "{v:?}");
}

#[test]
fn fetch_oracle_fires_on_broken_gate() {
    let mut recs = sample_records(Policy::authen_then_fetch());
    let i = recs
        .iter()
        .position(|r| r.bus_granted > 1 && r.bus_floor > 1)
        .expect("gated bus transfers exist");
    // Pretend the bus granted the transfer below the auth watermark.
    recs[i].bus_granted = recs[i].bus_floor - 1;
    let v = check_records(&Policy::authen_then_fetch(), &recs);
    assert!(v.iter().any(|v| v.gate == "fetch" && v.seq == recs[i].seq), "{v:?}");
}

#[test]
fn nan_in_fp_state_is_not_a_divergence() {
    // Found by the 500-program batch: this program's `fdiv` computes a
    // NaN that survives into the final FP register file. The final
    // state must compare bit-exactly — derived f64 `==` would flag two
    // identical states as diverged because NaN != NaN.
    let seed = 13099462982940348493;
    let fz = generate_fuzz(seed);
    let cfg = check_config(Policy::baseline(), 74, fz.max_icount + 8);
    let out = diff_run("fuzz", seed, &fz.workload, &cfg);
    // Guard against vacuity: a NaN really is written along the way.
    assert!(
        out.records.iter().any(|r| matches!(
            r.dst,
            Some((secsim_isa::RegRef::Fp(_), bits)) if f64::from_bits(bits).is_nan()
        )),
        "seed no longer produces a NaN — pick a new regression seed"
    );
    assert!(out.divergence.is_none(), "{:?}", out.divergence);
}

#[test]
fn golden_compare_detects_tampered_stream() {
    let fz = generate_fuzz(5);
    let cfg = check_config(Policy::baseline(), 74, fz.max_icount + 8);
    let out = diff_run("fuzz", 5, &fz.workload, &cfg);
    assert!(out.divergence.is_none());

    // Wrong destination value.
    let mut recs = out.records.clone();
    let i = recs.iter().position(|r| r.dst.is_some()).expect("dst writers exist");
    let (d, bits) = recs[i].dst.unwrap();
    recs[i].dst = Some((d, bits ^ 1));
    let div = golden_compare(&fz.workload, &recs, false, None).expect("tamper detected");
    assert_eq!(div.0, recs[i].seq);
    assert_eq!(div.1, "dst");

    // Wrong memory effect.
    let mut recs = out.records.clone();
    let i = recs.iter().position(|r| r.mem.is_some()).expect("memory ops exist");
    let ma = recs[i].mem.unwrap();
    recs[i].mem = Some(MemAccess { addr: ma.addr ^ 4, ..ma });
    let div = golden_compare(&fz.workload, &recs, false, None).expect("tamper detected");
    assert_eq!((div.0, div.1), (recs[i].seq, "mem"));

    // Dropped instruction: everything after slides, so the stream
    // mismatches immediately at the drop point.
    let mut recs = out.records.clone();
    recs.remove(3);
    let div = golden_compare(&fz.workload, &recs, false, None).expect("tamper detected");
    assert!(div.0 <= 4, "detected at {}", div.0);
}

#[test]
fn divergence_dump_round_trips() {
    let fz = generate_fuzz(9);
    let d = Divergence {
        bench: "fuzz".into(),
        seed: 9,
        config_fingerprint: 0xDEAD_BEEF_0123_4567,
        retire_index: 42,
        field: "dst".into(),
        expected: "Int(R1)=0x2".into(),
        actual: "Int(R1)=0x3".into(),
        min_insts: 43,
    };
    let dir = temp_dir("dump");
    let path = dump_divergence(&dir, &d, &fz.words).expect("dump written");
    let text = std::fs::read_to_string(&path).expect("readable");
    let j = Json::parse(&text).expect("valid JSON");
    assert_eq!(j.get("seed").and_then(Json::as_u64), Some(9));
    assert_eq!(j.get("retire_index").and_then(Json::as_u64), Some(42));
    assert_eq!(j.get("field").and_then(Json::as_str), Some("dst"));
    assert_eq!(j.get("min_insts").and_then(Json::as_u64), Some(43));
    let prog = j.get("program").and_then(Json::as_array).expect("program array");
    assert_eq!(prog.len(), fz.words.len());
    // The dump must reconstruct the program bytes exactly.
    let w0 = u32::from_str_radix(prog[0].as_str().unwrap(), 16).unwrap();
    assert_eq!(w0, fz.words[0]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn minimization_pins_first_divergent_retire() {
    // A divergence synthesized at a known index minimizes to index + 1
    // instructions. We can't make the real pipeline diverge (that's the
    // point), so exercise the minimizer through a doctored comparison:
    // diff_run on a clean program finds nothing, and golden_compare on
    // a truncated prefix is also clean — consistency both ways.
    let fz = generate_fuzz(2);
    let cfg = check_config(Policy::authen_then_commit(), 74, fz.max_icount + 8);
    let out = diff_run("fuzz", 2, &fz.workload, &cfg);
    assert!(out.divergence.is_none());
    let prefix = &out.records[..out.records.len() / 2];
    assert!(golden_compare(&fz.workload, prefix, false, None).is_none());
}
