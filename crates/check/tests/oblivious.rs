//! Tests for the two-run secret-independence oracle: the engine fires
//! on doctored traces, the policy verdicts match the paper (plain and
//! commit policies leak, obfuscation is address-oblivious), and bus
//! recording is deterministic enough for two-run comparison.

use secsim_attack::VictimKind;
use secsim_check::oblivious::{
    compare_traces, digest_pair, fuzz_oblivious, victim_oblivious, ObservableCfg,
};
use secsim_check::{check_config, policy_grid, run_oblivious_batch};
use secsim_core::{Policy, REMAP_BASE};
use secsim_cpu::SimSession;
use secsim_mem::{BusEvent, BusKind};
use secsim_workloads::generate_secret_fuzz;

fn ev(kind: BusKind, addr: u32, cycle: u64) -> BusEvent {
    BusEvent { kind, addr, cycle }
}

const OBS_PLAIN: ObservableCfg =
    ObservableCfg { protected_base: 0x10_0000, protected_bytes: 1 << 14, obfuscated: false };
const OBS_OBF: ObservableCfg =
    ObservableCfg { protected_base: 0x10_0000, protected_bytes: 1 << 14, obfuscated: true };

// ---- doctored traces: prove the oracle fires ----

#[test]
fn oracle_fires_on_doctored_address() {
    let a = vec![ev(BusKind::DataFetch, 0x10_0000, 100)];
    let b = vec![ev(BusKind::DataFetch, 0x10_0040, 100)];
    let (addr, timing) = compare_traces(&OBS_PLAIN, &a, &b);
    let d = addr.expect("address divergence must fire");
    assert_eq!(d.index, 0);
    assert!(d.expected.contains("0x100000"), "{}", d.expected);
    assert!(d.actual.contains("0x100040"), "{}", d.actual);
    assert!(timing.is_none(), "cycles agree");
}

#[test]
fn oracle_fires_on_doctored_kind_and_cycle() {
    let a = vec![ev(BusKind::DataFetch, 0x10_0000, 100)];
    let kind_flip = vec![ev(BusKind::InstrFetch, 0x10_0000, 100)];
    let (addr, timing) = compare_traces(&OBS_PLAIN, &a, &kind_flip);
    assert!(addr.is_some(), "kind flip shows on the address channel");
    assert!(timing.is_some(), "kind flip shows on the timing channel");

    let cycle_skew = vec![ev(BusKind::DataFetch, 0x10_0000, 101)];
    let (addr, timing) = compare_traces(&OBS_PLAIN, &a, &cycle_skew);
    assert!(addr.is_none(), "addresses agree");
    let t = timing.expect("timing divergence must fire");
    assert_eq!(t.index, 0);
}

#[test]
fn oracle_fires_on_missing_event() {
    let a = vec![ev(BusKind::DataFetch, 0x10_0000, 100), ev(BusKind::DataFetch, 0x10_0040, 200)];
    let b = vec![ev(BusKind::DataFetch, 0x10_0000, 100)];
    let (addr, timing) = compare_traces(&OBS_PLAIN, &a, &b);
    assert_eq!(addr.expect("length divergence").index, 1);
    assert!(timing.is_some());
}

#[test]
fn canonicalization_equates_renamed_lines_but_not_structure() {
    // Two runs touch different protected lines in the same pattern:
    // indistinguishable under remapping.
    let a = vec![
        ev(BusKind::DataFetch, 0x10_0000, 100),
        ev(BusKind::DataFetch, 0x10_0040, 200),
        ev(BusKind::DataFetch, 0x10_0000, 300), // revisit first line
    ];
    let b = vec![
        ev(BusKind::DataFetch, 0x10_1000, 100),
        ev(BusKind::DataFetch, 0x10_0400, 200),
        ev(BusKind::DataFetch, 0x10_1000, 300),
    ];
    let (addr, timing) = compare_traces(&OBS_OBF, &a, &b);
    assert!(addr.is_none(), "renamed-equal traces must match: {addr:?}");
    assert!(timing.is_none());
    // ...but verbatim comparison (no obfuscation) still flags them.
    let (addr, _) = compare_traces(&OBS_PLAIN, &a, &b);
    assert!(addr.is_some());

    // Structure differences survive renaming: b2 revisits the *second*
    // line instead of the first.
    let b2 = vec![
        ev(BusKind::DataFetch, 0x10_1000, 100),
        ev(BusKind::DataFetch, 0x10_0400, 200),
        ev(BusKind::DataFetch, 0x10_0400, 300),
    ];
    let (addr, _) = compare_traces(&OBS_OBF, &a, &b2);
    assert_eq!(addr.expect("revisit structure leaks").index, 2);
}

#[test]
fn canonicalization_preserves_column_offsets_and_unprotected_addrs() {
    // Same line, different within-line column: remapping does not hide
    // the column, so this must diverge even under obfuscation.
    let a = vec![ev(BusKind::DataFetch, 0x10_0000, 100)];
    let b = vec![ev(BusKind::DataFetch, 0x10_0008, 100)];
    let (addr, _) = compare_traces(&OBS_OBF, &a, &b);
    assert!(addr.is_some(), "column offsets are observable");

    // Addresses outside the protected and remap regions compare
    // verbatim even under the obfuscating policy.
    let a = vec![ev(BusKind::CounterFetch, 0xC000_0000, 100)];
    let b = vec![ev(BusKind::CounterFetch, 0xC000_0008, 100)];
    let (addr, _) = compare_traces(&OBS_OBF, &a, &b);
    assert!(addr.is_some(), "counter metadata is not renamed");

    // Remap-metadata lines are renamed like protected lines.
    let a = vec![ev(BusKind::RemapFetch, REMAP_BASE, 100)];
    let b = vec![ev(BusKind::RemapFetch, REMAP_BASE + 0x40, 100)];
    let (addr, _) = compare_traces(&OBS_OBF, &a, &b);
    assert!(addr.is_none(), "remap metadata lines are renamed: {addr:?}");
}

// ---- hand-built victims: negative-path coverage ----

#[test]
fn secret_indexed_load_victim_leaks_without_obfuscation() {
    for policy in [Policy::baseline(), Policy::authen_then_commit()] {
        let rep = victim_oblivious(VictimKind::SecretIndexedLoad, policy);
        assert!(!rep.addr_oblivious(), "secret-indexed load must leak under {policy}");
    }
    let rep = victim_oblivious(VictimKind::SecretIndexedLoad, Policy::commit_plus_obfuscation());
    assert!(
        rep.addr_oblivious(),
        "obfuscation must hide the indexed load: {:?}",
        rep.addr
    );
}

#[test]
fn secret_branch_victim_leaks_without_obfuscation() {
    for policy in [Policy::baseline(), Policy::authen_then_commit()] {
        let rep = victim_oblivious(VictimKind::SecretBranch, policy);
        assert!(!rep.addr_oblivious(), "secret branch must leak under {policy}");
    }
    let rep = victim_oblivious(VictimKind::SecretBranch, Policy::commit_plus_obfuscation());
    assert!(rep.addr_oblivious(), "obfuscation must hide the branch: {:?}", rep.addr);
}

// ---- fuzz programs across policies ----

#[test]
fn fuzz_leaks_under_plain_and_passes_under_obfuscation() {
    let mut plain_div = 0;
    for seed in 0..4u64 {
        if fuzz_oblivious(Policy::baseline(), 74, seed).addr.is_some() {
            plain_div += 1;
        }
        let rep = fuzz_oblivious(Policy::commit_plus_obfuscation(), 74, seed);
        assert!(
            rep.addr_oblivious(),
            "seed {seed}: obfuscation must be address-oblivious: {:?}",
            rep.addr
        );
    }
    assert!(plain_div > 0, "the probe construct must leak under the plain policy");
}

#[test]
fn oblivious_batch_reports_leaks_and_minimizes() {
    let points: Vec<_> =
        policy_grid().into_iter().filter(|p| p.mac_latency == 74).collect();
    assert_eq!(points.len(), 8);
    let summary = run_oblivious_batch(&points, 2, 2006, 2);
    for p in &summary.points {
        if p.obfuscated {
            assert_eq!(p.addr_divergences, 0, "{} must be address-oblivious", p.label);
        } else {
            assert!(p.addr_divergences > 0, "{} must leak the probe addresses", p.label);
        }
    }
    // Every leaking point contributed one minimized divergence.
    let leaking = summary.points.iter().filter(|p| !p.addr_oblivious()).count();
    assert_eq!(summary.divergences.len(), leaking);
    for d in &summary.divergences {
        assert_eq!(d.channel, "addr");
        assert!(d.min_insts > 0);
        // Minimization: re-running with the minimized budget still
        // diverges (spot-check the first one).
    }
    let d = &summary.divergences[0];
    let fz = generate_secret_fuzz(d.seed);
    let point = points.iter().find(|p| p.label == d.point).expect("point exists");
    let mut cfg = check_config(point.policy, point.mac_latency, fz.max_icount + 8);
    assert!(d.min_insts <= fz.max_icount + 8);
    cfg.max_insts = d.min_insts;
    let spec = fz.secret.expect("secret spec");
    let obs = ObservableCfg::for_policy(
        &point.policy,
        secsim_workloads::DATA_BASE,
        secsim_workloads::FUZZ_FOOTPRINT,
    );
    let rep = secsim_check::check_obliviousness(&cfg, &obs, |i| {
        let mut mem = fz.workload.mem.clone();
        spec.apply(&mut mem, if i == 0 { 0x00 } else { 0xFF });
        (mem, fz.workload.entry)
    });
    assert!(rep.addr.is_some(), "minimized budget must still reproduce the divergence");
}

// ---- determinism of bus recording (two runs + parallelism) ----

#[test]
fn bus_trace_is_deterministic_across_runs_and_threads() {
    let reference: Vec<_> = (0..3u64)
        .map(|seed| {
            let fz = generate_secret_fuzz(seed);
            let cfg = check_config(Policy::authen_then_commit(), 74, fz.max_icount + 8);
            let mut mem = fz.workload.mem.clone();
            SimSession::new(&cfg)
                .trace_bus(true)
                .run(&mut mem, fz.workload.entry)
                .into_report()
                .bus_events
        })
        .collect();
    // Re-run the same programs on 3 threads concurrently: recording
    // must not depend on scheduling.
    std::thread::scope(|s| {
        for (seed, expect) in reference.iter().enumerate() {
            s.spawn(move || {
                let fz = generate_secret_fuzz(seed as u64);
                let cfg = check_config(Policy::authen_then_commit(), 74, fz.max_icount + 8);
                let mut mem = fz.workload.mem.clone();
                let events = SimSession::new(&cfg)
                    .trace_bus(true)
                    .run(&mut mem, fz.workload.entry)
                    .into_report()
                    .bus_events;
                assert_eq!(&events, expect, "seed {seed}: bus trace must be deterministic");
            });
        }
    });
}

// ---- streaming digests agree with the full-trace verdict ----

#[test]
fn digest_pair_matches_full_trace_verdict() {
    for seed in 0..3u64 {
        let fz = generate_secret_fuzz(seed);
        let spec = fz.secret.expect("secret spec");
        for policy in [Policy::baseline(), Policy::authen_then_commit()] {
            let cfg = check_config(policy, 74, fz.max_icount + 8);
            let (a, b) = digest_pair(&cfg, |i| {
                let mut mem = fz.workload.mem.clone();
                spec.apply(&mut mem, if i == 0 { 0x00 } else { 0xFF });
                (mem, fz.workload.entry)
            });
            let full = fuzz_oblivious(policy, 74, seed);
            // Verbatim digest equality == no divergence on either channel.
            assert_eq!(
                a == b,
                full.addr.is_none() && full.timing.is_none(),
                "seed {seed} {policy}: digest verdict must match the full trace"
            );
            if full.addr.is_some() {
                assert_ne!(a.addrs, b.addrs, "address-channel digest must catch the leak");
            }
        }
    }
}
