//! Golden snapshot of the empirical attack matrix.
//!
//! `empirical_matrix()` runs every exploit against every policy on the
//! real simulator; the existing unit tests check it against the paper's
//! Table 2 *claims* (a weaker, column-level property). This snapshot
//! pins every individual cell, so any change to the pipeline, the
//! gating logic, the crypto model or the exploit programs that flips a
//! single outcome fails loudly here and forces a deliberate snapshot
//! update.

use secsim_attack::{empirical_matrix, matrix_table, Exploit};
use secsim_check::policy_oblivious;
use secsim_core::Policy;

/// `(policy name, outcomes in Exploit::ALL order)`; `true` = the
/// exploit leaked the secret.
///
/// Columns: pointer-conversion, binary-search, disclosing-kernel,
/// disclosing-kernel-io, shift-window, brute-force-page.
const GOLDEN: [(&str, [bool; 6]); 7] = [
    ("baseline-decrypt-only", [true, true, true, true, true, true]),
    ("authen-then-issue", [false, false, false, false, false, false]),
    ("authen-then-write", [true, true, true, false, true, true]),
    ("authen-then-commit", [true, true, true, false, true, true]),
    ("authen-then-fetch", [false, false, false, true, false, false]),
    ("authen-then-commit+fetch", [false, false, false, false, false, false]),
    ("authen-then-commit+obfuscation", [false, false, false, false, false, false]),
];

#[test]
fn matrix_matches_golden_snapshot() {
    let rows = empirical_matrix();
    assert_eq!(rows.len(), GOLDEN.len(), "policy set changed — update GOLDEN");
    for (row, (name, outcomes)) in rows.iter().zip(GOLDEN) {
        assert_eq!(row.policy.to_string(), name, "policy order changed — update GOLDEN");
        for ((exploit, leaked), want) in row.outcomes.iter().zip(outcomes) {
            assert_eq!(
                *leaked,
                want,
                "{name} / {}: got {}, snapshot says {}",
                exploit.name(),
                if *leaked { "LEAK" } else { "safe" },
                if want { "LEAK" } else { "safe" },
            );
        }
    }
}

/// `(policy name, address-oblivious)` — the passive-eavesdropper
/// column: whether the two-run secret-independence oracle finds the
/// policy's observable bus trace free of secret-dependent addresses on
/// the hand-built secret victims. Only the obfuscating policy is
/// oblivious; every integrity gate (even authen-then-issue, which
/// stops all *tampering* exploits above) leaks passively.
const GOLDEN_OBLIVIOUS: [(&str, bool); 7] = [
    ("baseline-decrypt-only", false),
    ("authen-then-issue", false),
    ("authen-then-write", false),
    ("authen-then-commit", false),
    ("authen-then-fetch", false),
    ("authen-then-commit+fetch", false),
    ("authen-then-commit+obfuscation", true),
];

#[test]
fn oblivious_column_matches_golden_snapshot() {
    let policies = [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::authen_then_fetch(),
        Policy::commit_plus_fetch(),
        Policy::commit_plus_obfuscation(),
    ];
    assert_eq!(policies.len(), GOLDEN_OBLIVIOUS.len());
    for (policy, (name, want)) in policies.into_iter().zip(GOLDEN_OBLIVIOUS) {
        assert_eq!(policy.to_string(), name, "policy order changed — update GOLDEN_OBLIVIOUS");
        assert_eq!(
            policy_oblivious(policy),
            want,
            "{name}: oblivious verdict flipped — a change in the pipeline, the \
             obfuscation engine or the oracle moved a policy across the leak line"
        );
    }
}

#[test]
fn golden_snapshot_is_in_exploit_order() {
    // The snapshot's column order is Exploit::ALL — if the enum order
    // changes the table above silently means something else, so pin it.
    let names: Vec<&str> = Exploit::ALL.iter().map(|e| e.name()).collect();
    assert_eq!(
        names,
        [
            "pointer-conversion",
            "binary-search",
            "disclosing-kernel",
            "disclosing-kernel-io",
            "shift-window",
            "brute-force-page",
        ]
    );
}

#[test]
fn rendered_table_matches_snapshot_cells() {
    // The markdown emitted to results/table2_empirical.md must carry
    // the same verdicts (guards the renderer, not just the data).
    let rows = empirical_matrix();
    let table = matrix_table(&rows);
    for (r, (_, outcomes)) in table.rows().iter().zip(GOLDEN) {
        for (cell, want) in r[1..=6].iter().zip(outcomes) {
            assert_eq!(cell, if want { "LEAK" } else { "safe" });
        }
    }
}
