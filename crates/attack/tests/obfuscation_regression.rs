//! Every exploit, promoted to a regression test pair: the address leak
//! is *present* under the weakest policy that admits it, and *absent*
//! under `commit_plus_obfuscation`. A pipeline or crypto change that
//! re-opens any exploit under obfuscation — or silently breaks an
//! exploit so it no longer demonstrates its leak — fails here by name.

use secsim_attack::{run_exploit, Exploit};
use secsim_core::Policy;

/// The demonstration policy per exploit: the gate configuration its
/// leak is classically shown against. Every exploit except the I/O
/// disclosing kernel leaks under *authen-then-commit* (speculative use
/// of unverified data); the I/O variant is stopped by the commit gate
/// and instead leaks under *authen-then-fetch* (which delays fetches
/// but not I/O retirement).
fn demo_policy(e: Exploit) -> Policy {
    match e {
        Exploit::DisclosingKernelIo => Policy::authen_then_fetch(),
        _ => Policy::authen_then_commit(),
    }
}

fn assert_pair(e: Exploit) {
    let demo = demo_policy(e);
    let with = run_exploit(e, demo);
    assert!(with.leaked, "{} must still demonstrate its leak under {demo}", e.name());
    let obf = Policy::commit_plus_obfuscation();
    let without = run_exploit(e, obf);
    assert!(!without.leaked, "{}'s leak must disappear under {obf}", e.name());
}

#[test]
fn pointer_conversion_leak_disappears_under_obfuscation() {
    assert_pair(Exploit::PointerConversion);
}

#[test]
fn binary_search_leak_disappears_under_obfuscation() {
    assert_pair(Exploit::BinarySearch);
}

#[test]
fn disclosing_kernel_leak_disappears_under_obfuscation() {
    assert_pair(Exploit::DisclosingKernel);
}

#[test]
fn disclosing_kernel_io_leak_disappears_under_obfuscation() {
    assert_pair(Exploit::DisclosingKernelIo);
}

#[test]
fn shift_window_leak_disappears_under_obfuscation() {
    assert_pair(Exploit::ShiftWindow);
}

#[test]
fn brute_force_page_leak_disappears_under_obfuscation() {
    assert_pair(Exploit::BruteForcePage);
}

#[test]
fn regression_suite_covers_every_exploit() {
    // If a new exploit is added to Exploit::ALL, this count forces a
    // matching `*_leak_disappears_under_obfuscation` test.
    assert_eq!(Exploit::ALL.len(), 6, "new exploit: add its obfuscation regression test");
}
