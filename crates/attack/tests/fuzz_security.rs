//! Fuzz-style security property tests: under the *secure* policies
//! (authen-then-issue, commit+fetch), **arbitrary** ciphertext tampering
//! must never put the secret on the bus before the exception — not just
//! the handcrafted exploits.

// Gated behind the `proptest` cargo feature: the external `proptest`
// crate is not available in offline builds. See this crate's Cargo.toml
// for how to enable it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use secsim_attack::{Victim, VictimKind, SECRET};
use secsim_core::Policy;
use secsim_cpu::{SimConfig, SimSession};

fn attack_cfg(policy: Policy) -> SimConfig {
    let mut cfg = SimConfig::paper_256k(policy).with_max_insts(50_000);
    cfg.secure = cfg.secure.with_protected_region(0, 0x1_0000);
    cfg
}

fn secret_leaked(policy: Policy, kind: VictimKind, tampers: &[(u16, [u8; 4])]) -> (bool, bool) {
    let mut victim = Victim::build(kind, SECRET);
    let mut tampered_any = false;
    for (off, mask) in tampers {
        // Keep tampering inside the image, word-aligned.
        let addr = u32::from(*off % 0x3FF0) & !3;
        if mask != &[0; 4] {
            tampered_any = true;
        }
        victim.image.tamper_xor(addr, mask).expect("fuzzed tamper stays in-image");
    }
    let r = SimSession::new(&attack_cfg(policy)).trace_bus(true).run(&mut victim.image, victim.entry).into_report();
    let leaked = secsim_attack::analysis::find_value(
        &r.events_before_exception().copied().collect::<Vec<_>>(),
        SECRET,
        3,
    )
    .is_some();
    let detected = r.exception.is_some();
    let _ = tampered_any;
    (leaked, detected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No tamper pattern leaks the secret under authen-then-issue.
    #[test]
    fn issue_gate_survives_arbitrary_tampering(
        tampers in prop::collection::vec((any::<u16>(), any::<[u8; 4]>()), 1..6),
        kind_sel in 0u8..3,
    ) {
        let kind = match kind_sel {
            0 => VictimKind::LinkedList,
            1 => VictimKind::Compare,
            _ => VictimKind::FunctionCall,
        };
        let (leaked, _) = secret_leaked(Policy::authen_then_issue(), kind, &tampers);
        prop_assert!(!leaked, "authen-then-issue leaked under {tampers:?}");
    }

    /// No tamper pattern leaks the secret under commit+fetch.
    #[test]
    fn commit_plus_fetch_survives_arbitrary_tampering(
        tampers in prop::collection::vec((any::<u16>(), any::<[u8; 4]>()), 1..6),
    ) {
        let (leaked, _) =
            secret_leaked(Policy::commit_plus_fetch(), VictimKind::LinkedList, &tampers);
        prop_assert!(!leaked, "commit+fetch leaked under {tampers:?}");
    }

    /// Any tampering of a line the program actually *touches* is
    /// detected by authentication under every authenticating policy.
    /// We tamper the first code line — always fetched.
    #[test]
    fn tampering_touched_code_is_always_detected(mask in any::<[u8; 4]>()) {
        prop_assume!(mask != [0; 4]);
        for policy in [
            Policy::authen_then_issue(),
            Policy::authen_then_commit(),
            Policy::authen_then_write(),
            Policy::authen_then_fetch(),
        ] {
            let mut victim = Victim::build(VictimKind::LinkedList, SECRET);
            // Flip bits in the *second* instruction word so the entry
            // point still decodes (any decode is fine either way).
            victim.image.tamper_xor(0x1004, &mask).expect("in-image");
            let r = SimSession::new(&attack_cfg(policy)).run(&mut victim.image, victim.entry).into_report();
            prop_assert!(
                r.exception.is_some(),
                "{policy} failed to detect a code tamper with mask {mask:?}"
            );
        }
    }
}
