//! Memory-fetch side-channel exploits against the secure processor
//! (paper §3).
//!
//! Everything here is *real*: victims are assembled ISA programs,
//! encrypted with AES-CTR and MAC-protected with truncated HMAC-SHA256
//! ([`secsim_core::EncryptedMemory`]); the adversary flips ciphertext
//! bits (counter-mode malleability) or rewrites known-plaintext code
//! regions; the victim then runs on the cycle-level pipeline under a
//! chosen [`Policy`](secsim_core::Policy), and the adversary reads the front-side-bus address
//! trace. An exploit *succeeds* if the secret is recoverable from bus
//! (or I/O) events that became visible **before** the authentication
//! exception could have stopped the machine.
//!
//! Implemented exploits:
//!
//! * [`Exploit::PointerConversion`] — the linked-list attack (§3.2.1):
//!   rewrite a terminating NULL into a pointer at the secret, so the
//!   secret itself is dereferenced and appears as a fetch address.
//! * [`Exploit::BinarySearch`] — tamper a comparison constant and watch
//!   the resolved branch direction (§3.2.2); recovers the secret in ≤ 32
//!   adaptive trials.
//! * [`Exploit::DisclosingKernel`] — inject a two-load disclosing kernel
//!   over a predictable code sequence (§3.2.3).
//! * [`Exploit::DisclosingKernelIo`] — variant that writes the secret to
//!   an I/O port instead of using it as an address.
//! * [`Exploit::ShiftWindow`] — the page-mask/shift-window kernel of
//!   Figure 4, leaking the secret 8 bits per load.
//!
//! [`empirical_matrix`] runs every exploit under every policy and
//! reproduces the first column of the paper's Table 2 — empirically, not
//! by assertion.
//!
//! # Examples
//!
//! ```
//! use secsim_attack::{run_exploit, Exploit};
//! use secsim_core::Policy;
//!
//! // Authen-then-commit speculatively executes unverified loads:
//! let out = run_exploit(Exploit::PointerConversion, Policy::authen_then_commit());
//! assert!(out.leaked);
//!
//! // Authen-then-issue never lets the tampered pointer reach the bus:
//! let out = run_exploit(Exploit::PointerConversion, Policy::authen_then_issue());
//! assert!(!out.leaked);
//! ```

pub mod analysis;
mod exploits;
mod matrix;
mod victims;

pub use exploits::{run_exploit, Exploit, ExploitOutcome, SECRET};
pub use matrix::{empirical_matrix, matrix_table, MatrixRow};
pub use victims::{Victim, VictimKind, ARM_BASE, ARM_STRIDE, CODE_BASE, CONST_ADDR, FUNC_BASE,
    IMAGE_BYTES, LIST_BASE, NULL_ADDR, PROBE_BASE, SECRET_ADDR, WINDOW_BASE};
