//! The empirical Table 2: every exploit against every policy.

use crate::exploits::{run_exploit, Exploit};
use secsim_core::{properties, Policy};
use secsim_stats::Table;

/// One policy's empirical row.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The policy.
    pub policy: Policy,
    /// `(exploit, leaked)` per exploit, in [`Exploit::ALL`] order.
    pub outcomes: Vec<(Exploit, bool)>,
}

impl MatrixRow {
    /// Whether any *fetch-address* exploit leaked (the I/O-channel
    /// exploit maps to the authenticated-processor-state column, not the
    /// side-channel column).
    pub fn any_address_leak(&self) -> bool {
        self.outcomes
            .iter()
            .any(|(e, leaked)| *leaked && *e != Exploit::DisclosingKernelIo)
    }

    /// Whether the I/O-channel exploit leaked.
    pub fn io_leak(&self) -> bool {
        self.outcomes
            .iter()
            .any(|(e, leaked)| *leaked && *e == Exploit::DisclosingKernelIo)
    }
}

/// Runs the full exploit suite against the six evaluated policies (plus
/// the decrypt-only baseline).
pub fn empirical_matrix() -> Vec<MatrixRow> {
    let policies = [
        Policy::baseline(),
        Policy::authen_then_issue(),
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::authen_then_fetch(),
        Policy::commit_plus_fetch(),
        Policy::commit_plus_obfuscation(),
    ];
    policies
        .into_iter()
        .map(|policy| MatrixRow {
            policy,
            outcomes: Exploit::ALL
                .into_iter()
                .map(|e| (e, run_exploit(e, policy).leaked))
                .collect(),
        })
        .collect()
}

/// Renders the empirical matrix alongside the paper's Table 2 claims.
pub fn matrix_table(rows: &[MatrixRow]) -> Table {
    let mut headers: Vec<String> = vec!["policy".into()];
    headers.extend(Exploit::ALL.iter().map(|e| e.name().to_string()));
    headers.push("prevents side-channel (measured)".into());
    headers.push("prevents side-channel (Table 2)".into());
    let mut t = Table::new(headers);
    for row in rows {
        let mut cells = vec![row.policy.to_string()];
        for (_, leaked) in &row.outcomes {
            cells.push(if *leaked { "LEAK".into() } else { "safe".into() });
        }
        cells.push(if row.any_address_leak() { "no".into() } else { "yes".into() });
        let claimed = properties(&row.policy).prevents_fetch_side_channel;
        cells.push(if claimed { "yes".into() } else { "no".into() });
        t.push_row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline security result: the empirical leak matrix agrees
    /// with the paper's Table 2 for every policy.
    #[test]
    fn empirical_matches_table2() {
        for row in empirical_matrix() {
            let claimed = properties(&row.policy).prevents_fetch_side_channel;
            assert_eq!(
                !row.any_address_leak(),
                claimed,
                "Table 2 mismatch for {}: outcomes {:?}",
                row.policy,
                row.outcomes
            );
        }
    }

    #[test]
    fn io_channel_tracks_processor_state_column() {
        for row in empirical_matrix() {
            let protected = properties(&row.policy).authenticated_memory_state;
            assert_eq!(
                !row.io_leak(),
                protected,
                "I/O column mismatch for {}",
                row.policy
            );
        }
    }

    #[test]
    fn table_renders() {
        let rows = empirical_matrix();
        let t = matrix_table(&rows);
        assert_eq!(t.len(), 7);
        assert!(t.to_markdown().contains("authen-then-issue"));
    }
}
