//! Reusable bus-trace analysis: the eavesdropper's toolbox.
//!
//! The exploit drivers use purpose-built checks; this module offers the
//! general-purpose versions a downstream user would want when studying
//! their own victims: value scanning at a chosen granularity, control
//! flow reconstruction, and address-entropy summaries (how much a trace
//! reveals under obfuscation).

use secsim_mem::BusEvent;
use std::collections::HashMap;

/// Scans a trace for a 32-bit value appearing as a demand-fetch address,
/// ignoring the low `granularity_bits` (the bus exposes 8-byte columns ⇒
/// 3 bits; a line-granular probe ⇒ 6 bits).
///
/// # Examples
///
/// ```
/// use secsim_attack::analysis::find_value;
/// use secsim_mem::{BusEvent, BusKind};
///
/// let trace = [BusEvent { cycle: 10, addr: 0xBEE8, kind: BusKind::DataFetch }];
/// assert!(find_value(&trace, 0xBEEA, 3).is_some()); // same 8-byte column
/// assert!(find_value(&trace, 0xBF00, 3).is_none());
/// ```
pub fn find_value(trace: &[BusEvent], value: u32, granularity_bits: u32) -> Option<&BusEvent> {
    let mask = !((1u32 << granularity_bits) - 1);
    trace
        .iter()
        .find(|e| e.kind.is_demand_fetch() && e.addr & mask == value & mask)
}

/// Reconstructs the instruction-line walk from a trace: the sequence of
/// distinct I-line addresses in fetch order — the paper's "partial
/// reconstruction of program control flow" (§3.1).
pub fn control_flow_lines(trace: &[BusEvent], line_bytes: u32) -> Vec<u32> {
    let mask = !(line_bytes - 1);
    let mut out: Vec<u32> = Vec::new();
    for e in trace {
        if e.kind == secsim_mem::BusKind::InstrFetch {
            let line = e.addr & mask;
            if out.last() != Some(&line) {
                out.push(line);
            }
        }
    }
    out
}

/// Shannon entropy (bits) of the line-address distribution of the
/// demand fetches in a trace. Obfuscation drives this toward
/// `log2(#lines touched)` uniformity *and* decorrelates it from the
/// logical access pattern; re-running the same victim should yield a
/// different sequence.
pub fn address_entropy(trace: &[BusEvent], line_bytes: u32) -> f64 {
    let mask = !(line_bytes - 1);
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let mut total = 0u64;
    for e in trace {
        if e.kind.is_demand_fetch() {
            *counts.entry(e.addr & mask).or_insert(0) += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// How many bits of a secret are recoverable by exact-address matching
/// at the bus granularity: 32 minus the masked-away low bits, or 0 if
/// the value never appears.
pub fn recoverable_bits(trace: &[BusEvent], value: u32, granularity_bits: u32) -> u32 {
    if find_value(trace, value, granularity_bits).is_some() {
        32 - granularity_bits
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_mem::BusKind;

    fn ev(cycle: u64, addr: u32, kind: BusKind) -> BusEvent {
        BusEvent { cycle, addr, kind }
    }

    #[test]
    fn find_value_respects_granularity() {
        let t = [ev(1, 0x1008, BusKind::DataFetch)];
        assert!(find_value(&t, 0x100F, 3).is_some());
        assert!(find_value(&t, 0x1010, 3).is_none());
        assert!(find_value(&t, 0x1030, 6).is_some()); // same 64B line
    }

    #[test]
    fn find_value_ignores_metadata_traffic() {
        let t = [ev(1, 0x2000, BusKind::MacFetch)];
        assert!(find_value(&t, 0x2000, 3).is_none());
    }

    #[test]
    fn control_flow_dedups_consecutive() {
        let t = [
            ev(1, 0x1000, BusKind::InstrFetch),
            ev(2, 0x1020, BusKind::InstrFetch), // same 64B line
            ev(3, 0x1040, BusKind::InstrFetch),
            ev(4, 0x1000, BusKind::InstrFetch), // revisit
            ev(5, 0x3000, BusKind::DataFetch),  // not control flow
        ];
        assert_eq!(control_flow_lines(&t, 64), vec![0x1000, 0x1040, 0x1000]);
    }

    #[test]
    fn entropy_bounds() {
        let uniform: Vec<BusEvent> =
            (0..64u32).map(|i| ev(i as u64, i * 64, BusKind::DataFetch)).collect();
        assert!((address_entropy(&uniform, 64) - 6.0).abs() < 1e-9);
        let constant: Vec<BusEvent> =
            (0..64u32).map(|i| ev(i as u64, 0x40, BusKind::DataFetch)).collect();
        assert_eq!(address_entropy(&constant, 64), 0.0);
        assert_eq!(address_entropy(&[], 64), 0.0);
    }

    #[test]
    fn recoverable_bits_math() {
        let t = [ev(1, 0xBEE8, BusKind::DataFetch)];
        assert_eq!(recoverable_bits(&t, 0xBEE8, 3), 29);
        assert_eq!(recoverable_bits(&t, 0x1234, 3), 0);
    }
}
