//! Victim programs: small, realistic code patterns whose encrypted
//! images the exploits tamper with.
//!
//! Layout of every victim image (one flat region, encrypted at 64-byte
//! line granularity):
//!
//! * code at [`CODE_BASE`];
//! * a linked list / comparison constants in low data;
//! * the 32-bit secret at [`Victim::secret_addr`];
//! * a "shift window" region the disclosing kernels dereference into.

use secsim_core::EncryptedMemory;
use secsim_isa::{Asm, Inst, Reg};

/// Code segment base.
pub const CODE_BASE: u32 = 0x1000;
/// Linked-list nodes (one per 256 bytes).
pub const LIST_BASE: u32 = 0x2000;
/// Address of the terminating NULL pointer (last node's `next`).
pub const NULL_ADDR: u32 = 0x2200;
/// Comparison constant's address.
pub const CONST_ADDR: u32 = 0x2400;
/// The secret's address (8-aligned so the full value survives the
/// 8-byte bus granularity when used as a fetch address).
pub const SECRET_ADDR: u32 = 0x3008;
/// Base of the window region used by shift-window kernels.
pub const WINDOW_BASE: u32 = 0x8000;
/// First instruction of the rewritable "function body" (the predictable
/// code sequence a disclosing kernel overwrites).
pub const FUNC_BASE: u32 = 0x1400;
/// Taken-path target of the comparison victim.
pub const BIG_BASE: u32 = 0x1800;
/// First arm of the secret-branch victim; the second arm sits
/// [`ARM_STRIDE`] bytes later. Both arms live in the same 4 KiB DRAM
/// row, so only their *addresses* (not their bank/row timing) differ.
pub const ARM_BASE: u32 = 0x1C00;
/// Byte distance between the two secret-branch arms.
pub const ARM_STRIDE: u32 = 0x200;
/// Probe array of the secret-indexed-load victim: 8 lines of 64 bytes,
/// indexed by the secret's low 3 bits.
pub const PROBE_BASE: u32 = 0x4000;

const ENC_KEY: [u8; 16] = [0x42; 16];
const MAC_KEY: &[u8] = b"secsim-attack-mac-key";
/// Victim image size (64 KB); attacks protect exactly this region.
pub const IMAGE_BYTES: usize = 0x1_0000;

/// Which victim program to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimKind {
    /// Traverses the linked list until NULL, then halts.
    LinkedList,
    /// Loads the secret and a constant, branches on `secret >= const`.
    Compare,
    /// Calls a function with a predictable ~32-instruction body
    /// (the injection site), then halts.
    FunctionCall,
    /// Loads `probe[secret & 7]` — the canonical secret-indexed data
    /// access. Passively leaks the secret's low bits through the fetch
    /// address unless obfuscation is on.
    SecretIndexedLoad,
    /// Jumps indirectly to one of two byte-identical arms selected by
    /// the secret's low bit. The *instruction fetch* address is the
    /// leak; both arms share one DRAM row so their timing matches.
    SecretBranch,
}

/// A built victim: its encrypted image plus layout knowledge shared with
/// the adversary (addresses are public; *contents* are secret).
#[derive(Debug, Clone)]
pub struct Victim {
    /// The AES-CTR + HMAC protected memory image.
    pub image: EncryptedMemory,
    /// Entry PC.
    pub entry: u32,
    /// PC of the comparison branch (Compare victim).
    pub branch_pc: u32,
    /// The *plaintext* words of the rewritable function body
    /// (FunctionCall victim) — "compiler output is predictable".
    pub func_plaintext: Vec<u32>,
    secret: u32,
}

impl Victim {
    /// Builds a victim holding `secret` at [`SECRET_ADDR`].
    ///
    /// # Panics
    ///
    /// Panics if the victim program fails to assemble (a bug, not an
    /// input condition).
    pub fn build(kind: VictimKind, secret: u32) -> Self {
        let mut plain = vec![0u8; IMAGE_BYTES];
        let mut branch_pc = 0;
        let mut func_plaintext = Vec::new();

        let words = match kind {
            VictimKind::LinkedList => {
                // Nodes: 0x2000 -> 0x2100 -> 0x2200(next=NULL).
                put_u32(&mut plain, 0x2000, 0x2100);
                put_u32(&mut plain, 0x2100, NULL_ADDR);
                put_u32(&mut plain, NULL_ADDR, 0);
                let mut a = Asm::new(CODE_BASE);
                let top = a.new_label();
                let done = a.new_label();
                // The victim legitimately uses its secret before
                // traversing (a hot key): its line is cache-resident
                // when the tampered pointer dereferences it.
                a.li(Reg::R9, SECRET_ADDR);
                a.lw(Reg::R9, Reg::R9, 0);
                a.li(Reg::R1, LIST_BASE);
                a.bind(top).expect("fresh");
                a.beq(Reg::R1, Reg::R0, done);
                a.lw(Reg::R1, Reg::R1, 0); // p = p->next
                a.j(top);
                a.bind(done).expect("fresh");
                a.halt();
                a.assemble().expect("victim assembles")
            }
            VictimKind::Compare => {
                put_u32(&mut plain, CONST_ADDR, 0); // "constant zero is frequent"
                let mut a = Asm::new(CODE_BASE);
                a.li(Reg::R1, SECRET_ADDR);
                a.lw(Reg::R1, Reg::R1, 0);
                a.li(Reg::R2, CONST_ADDR);
                a.lw(Reg::R2, Reg::R2, 0);
                branch_pc = a.here();
                // bgeu needs a label far away: BIG_BASE hosts the taken
                // path; the fall-through "small" path follows inline.
                let big = a.new_label();
                a.push(Inst::Bgeu {
                    rs1: Reg::R1,
                    rs2: Reg::R2,
                    off: ((BIG_BASE - branch_pc - 4) / 4) as i16,
                });
                let _ = big;
                // small path: a little work, then halt.
                for _ in 0..4 {
                    a.addi(Reg::R3, Reg::R3, 1);
                }
                a.halt();
                let mut words = a.assemble().expect("victim assembles");
                // Pad to BIG_BASE, then the big path.
                let pad = ((BIG_BASE - CODE_BASE) / 4) as usize - words.len();
                words.extend(std::iter::repeat_n(secsim_isa::encode(Inst::Nop), pad));
                let mut b = Asm::new(BIG_BASE);
                for _ in 0..4 {
                    b.addi(Reg::R4, Reg::R4, 1);
                }
                b.halt();
                words.extend(b.assemble().expect("big path assembles"));
                words
            }
            VictimKind::FunctionCall => {
                // main: touch the (hot) secret, call func, halt. func:
                // a predictable body (straight-line adds — the
                // "invariant code sequence").
                let mut a = Asm::new(CODE_BASE);
                a.li(Reg::R9, SECRET_ADDR);
                a.lw(Reg::R9, Reg::R9, 0);
                let call_target_off = ((FUNC_BASE - CODE_BASE) / 4) as i32 - (a.len() as i32) - 1;
                a.push(Inst::Jal { off: call_target_off });
                a.halt();
                let mut words = a.assemble().expect("victim assembles");
                let pad = ((FUNC_BASE - CODE_BASE) / 4) as usize - words.len();
                words.extend(std::iter::repeat_n(secsim_isa::encode(Inst::Nop), pad));
                let mut f = Asm::new(FUNC_BASE);
                for i in 0..30 {
                    f.addi(Reg::R3, Reg::R3, (i % 7) as i16);
                }
                f.ret();
                let fw = f.assemble().expect("func assembles");
                func_plaintext = fw.clone();
                words.extend(fw);
                words
            }
            VictimKind::SecretIndexedLoad => {
                let mut a = Asm::new(CODE_BASE);
                a.li(Reg::R1, SECRET_ADDR);
                a.lw(Reg::R1, Reg::R1, 0);
                a.andi(Reg::R1, Reg::R1, 7);
                a.slli(Reg::R1, Reg::R1, 6);
                a.lw(Reg::R2, Reg::R1, PROBE_BASE as i16);
                a.halt();
                a.assemble().expect("victim assembles")
            }
            VictimKind::SecretBranch => {
                // main: arm = ARM_BASE + (secret & 1) * ARM_STRIDE;
                // jalr arm. An *indirect* jump keeps the pipeline's
                // redirect behaviour symmetric across the two targets
                // (a conditional branch would squash asymmetrically).
                let mut a = Asm::new(CODE_BASE);
                a.li(Reg::R1, SECRET_ADDR);
                a.lw(Reg::R1, Reg::R1, 0);
                a.andi(Reg::R1, Reg::R1, 1);
                a.slli(Reg::R1, Reg::R1, 9); // *ARM_STRIDE
                a.li(Reg::R2, ARM_BASE);
                a.add(Reg::R1, Reg::R1, Reg::R2);
                a.jalr(Reg::R31, Reg::R1);
                a.halt(); // not reached: both arms halt
                let mut words = a.assemble().expect("victim assembles");
                // Two byte-identical arms, so only the fetch *address*
                // differs between secrets.
                for arm in 0..2u32 {
                    let base = ARM_BASE + arm * ARM_STRIDE;
                    let pad = ((base - CODE_BASE) / 4) as usize - words.len();
                    words.extend(std::iter::repeat_n(secsim_isa::encode(Inst::Nop), pad));
                    let mut b = Asm::new(base);
                    for _ in 0..4 {
                        b.addi(Reg::R10, Reg::R10, 1);
                    }
                    b.halt();
                    words.extend(b.assemble().expect("arm assembles"));
                }
                words
            }
        };

        for (i, w) in words.iter().enumerate() {
            put_u32(&mut plain, CODE_BASE + 4 * i as u32, *w);
        }
        put_u32(&mut plain, SECRET_ADDR, secret);

        Victim {
            image: EncryptedMemory::from_plain(0, &plain, &ENC_KEY, MAC_KEY),
            entry: CODE_BASE,
            branch_pc,
            func_plaintext,
            secret,
        }
    }

    /// The secret (for verification only — the adversary never reads
    /// this).
    pub fn secret(&self) -> u32 {
        self.secret
    }

    /// The secret's address (public layout knowledge).
    pub fn secret_addr(&self) -> u32 {
        SECRET_ADDR
    }

    /// Rewrites the function body's ciphertext so it decrypts to
    /// `new_insts` (padded with `nop`s), using the known plaintext:
    /// `mask = old_plain ^ new_plain` (§3.2.3).
    ///
    /// # Panics
    ///
    /// Panics if `new_insts` is longer than the function body.
    pub fn inject_kernel(&mut self, new_insts: &[u32]) {
        assert!(
            new_insts.len() <= self.func_plaintext.len(),
            "kernel ({} insts) larger than the predictable region ({})",
            new_insts.len(),
            self.func_plaintext.len()
        );
        for (i, old) in self.func_plaintext.iter().enumerate() {
            let new = new_insts.get(i).copied().unwrap_or_else(|| {
                // Keep the final `ret` so control returns cleanly if the
                // kernel doesn't halt.
                if i == self.func_plaintext.len() - 1 {
                    *old
                } else {
                    secsim_isa::encode(Inst::Nop)
                }
            });
            let mask = (old ^ new).to_le_bytes();
            if mask != [0; 4] {
                self.image
                    .tamper_xor(FUNC_BASE + 4 * i as u32, &mask)
                    .expect("victim code region is in-image");
            }
        }
    }
}

fn put_u32(plain: &mut [u8], addr: u32, v: u32) {
    let off = addr as usize;
    plain[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_isa::{step, ArchState};

    fn run_functional(v: &mut Victim, max: usize) -> ArchState {
        let mut st = ArchState::new(v.entry);
        for _ in 0..max {
            if st.halted {
                break;
            }
            step(&mut st, &mut v.image).expect("no decode fault");
        }
        st
    }

    #[test]
    fn linked_list_victim_terminates() {
        let mut v = Victim::build(VictimKind::LinkedList, 0xDEADBEE8);
        let st = run_functional(&mut v, 1000);
        assert!(st.halted);
        assert!(v.image.invalid_lines().is_empty());
    }

    #[test]
    fn compare_victim_takes_big_path_for_large_secret() {
        let mut v = Victim::build(VictimKind::Compare, 0x8000_0000);
        let st = run_functional(&mut v, 1000);
        assert!(st.halted);
        assert_eq!(st.reg(Reg::R4), 4); // big path ran
        assert_eq!(st.reg(Reg::R3), 0);
    }

    #[test]
    fn compare_victim_takes_small_path_for_small_secret() {
        // constant is 0 and comparison is unsigned `>=`, so only
        // tampered constants ever send it down the small path; check
        // with the constant intact the big path runs (secret >= 0).
        let mut v = Victim::build(VictimKind::Compare, 5);
        let st = run_functional(&mut v, 1000);
        assert!(st.halted);
        assert_eq!(st.reg(Reg::R4), 4);
    }

    #[test]
    fn function_victim_runs_and_returns() {
        let mut v = Victim::build(VictimKind::FunctionCall, 7);
        assert!(!v.func_plaintext.is_empty());
        let st = run_functional(&mut v, 1000);
        assert!(st.halted);
    }

    fn data_addrs(kind: VictimKind, secret: u32) -> Vec<u32> {
        let mut v = Victim::build(kind, secret);
        let mut st = ArchState::new(v.entry);
        let mut addrs = Vec::new();
        for _ in 0..1000 {
            if st.halted {
                break;
            }
            let info = step(&mut st, &mut v.image).expect("no decode fault");
            if let Some(ma) = info.mem {
                addrs.push(ma.addr);
            }
        }
        assert!(st.halted);
        addrs
    }

    #[test]
    fn secret_indexed_load_touches_secret_selected_line() {
        let lo = data_addrs(VictimKind::SecretIndexedLoad, 0);
        let hi = data_addrs(VictimKind::SecretIndexedLoad, 7);
        assert!(lo.contains(&PROBE_BASE));
        assert!(hi.contains(&(PROBE_BASE + 7 * 64)));
        assert_eq!(lo.len(), hi.len(), "control flow is secret-independent");
    }

    #[test]
    fn secret_branch_selects_arm_by_low_bit() {
        for (secret, arm) in [(0u32, ARM_BASE), (1, ARM_BASE + ARM_STRIDE)] {
            let mut v = Victim::build(VictimKind::SecretBranch, secret);
            let mut st = ArchState::new(v.entry);
            let mut hit_arm = None;
            for _ in 0..1000 {
                if st.halted {
                    break;
                }
                if (ARM_BASE..ARM_BASE + 2 * ARM_STRIDE).contains(&st.pc) && hit_arm.is_none() {
                    hit_arm = Some(st.pc);
                }
                step(&mut st, &mut v.image).expect("no decode fault");
            }
            assert!(st.halted);
            assert_eq!(hit_arm, Some(arm), "secret {secret} must route to arm {arm:#x}");
            assert_eq!(st.reg(Reg::R10), 4, "the arm body must execute");
        }
    }

    #[test]
    fn injected_kernel_executes_attacker_code() {
        let mut v = Victim::build(VictimKind::FunctionCall, 0xDEADBEE8);
        let mut k = Asm::new(FUNC_BASE);
        k.addi(Reg::R7, Reg::R0, 77);
        let kernel = k.assemble().expect("kernel assembles");
        v.inject_kernel(&kernel);
        assert!(!v.image.invalid_lines().is_empty(), "tampering must break MACs");
        let st = run_functional(&mut v, 1000);
        assert!(st.halted);
        assert_eq!(st.reg(Reg::R7), 77, "kernel instruction must have executed");
    }
}
