//! Multi-program contention: several architectural contexts sharing
//! one bus and one MAC engine.
//!
//! The single-context pipeline ([`SimSession`](crate::SimSession))
//! models one program owning the whole memory system. Real secure
//! processors time-share: every context's L2 misses cross the *same*
//! processor–memory bus and every fetched line waits on the *same* MAC
//! verification engine, so an authentication policy that gates fetch or
//! issue turns the MAC unit into a shared bottleneck — exactly the
//! contention the paper's control-point comparison is about.
//!
//! [`MultiSession`] is a deliberately minimal queueing model over the
//! functional ISA core, not a second out-of-order pipeline:
//!
//! * each context executes instructions functionally at one
//!   instruction per cycle while its lines are resident;
//! * a private line-presence table (direct-mapped, sized like the
//!   configured L2) decides which accesses miss;
//! * misses queue on the shared **bus** (single server, DRAM-derived
//!   fill latency) and, when the policy authenticates, on the shared
//!   **MAC engine** (pipelined: one verification may start per
//!   initiation interval, each taking the full MAC latency);
//! * a policy that gates **fetch or issue** blocks the context until
//!   verification completes; other policies resume at data arrival and
//!   hide the MAC latency.
//!
//! Scheduling is event-driven round-robin: the context with the
//! earliest ready-cycle runs next (ties to the lower index), so two
//! identical programs interleave fairly. Everything is deterministic.
//!
//! # Examples
//!
//! ```
//! use secsim_core::Policy;
//! use secsim_cpu::{MultiSession, SimConfig};
//! use secsim_workloads::BenchId;
//!
//! let cfg = SimConfig::paper_256k(Policy::authen_then_fetch()).with_max_insts(20_000);
//! let report = MultiSession::new(&cfg)
//!     .context(BenchId::Gzip)
//!     .context(BenchId::Mcf)
//!     .run();
//! assert_eq!(report.contexts.len(), 2);
//! assert!(report.contexts.iter().all(|c| c.insts > 0));
//! ```

use crate::config::SimConfig;
use secsim_isa::{step, ArchState, FlatMem};
use secsim_workloads::ProgramSource;

/// What one context did during a [`MultiSession`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextReport {
    /// Program name.
    pub name: &'static str,
    /// Instructions retired.
    pub insts: u64,
    /// Cycle the context finished (halted, faulted, or hit a limit).
    pub cycles: u64,
    /// Line fills requested (fetch + data misses).
    pub misses: u64,
    /// Cycles spent waiting for the shared bus behind other traffic.
    pub bus_wait: u64,
    /// Cycles spent waiting on the shared MAC engine (queueing plus,
    /// under fetch/issue gating, the verification latency itself).
    pub mac_wait: u64,
    /// Whether the program ran to a halt (vs. a fault or limit).
    pub halted: bool,
}

impl ContextReport {
    /// Instructions per cycle over the context's own lifetime.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

/// The outcome of a [`MultiSession`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiReport {
    /// Cycle the last context finished.
    pub cycles: u64,
    /// Cycles the shared bus spent transferring lines.
    pub bus_busy: u64,
    /// Cycles the MAC engine's issue slot was occupied.
    pub mac_busy: u64,
    /// Per-context results, in registration order.
    pub contexts: Vec<ContextReport>,
}

impl MultiReport {
    /// Bus utilization over the whole run, in [0, 1].
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bus_busy as f64 / self.cycles as f64
        }
    }
}

struct Context {
    name: &'static str,
    state: ArchState,
    mem: FlatMem,
    /// Direct-mapped line-presence table; `u64::MAX` = empty.
    tags: Vec<u64>,
    /// Next cycle this context can execute.
    ready_at: u64,
    misses: u64,
    bus_wait: u64,
    mac_wait: u64,
    done: bool,
    halted: bool,
}

/// Builder for a shared-bus, shared-MAC multi-program run. The module
/// docs above describe the queueing model.
pub struct MultiSession {
    cfg: SimConfig,
    sources: Vec<(ProgramSource, u64)>,
}

impl MultiSession {
    /// A session over `cfg`; every context shares its bus, MAC-engine
    /// and policy configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Self { cfg: *cfg, sources: Vec::new() }
    }

    /// Adds a context running `source` (built with seed 0).
    pub fn context(self, source: impl Into<ProgramSource>) -> Self {
        self.context_seeded(source, 0)
    }

    /// Adds a context running `source` built deterministically in
    /// `seed`.
    pub fn context_seeded(mut self, source: impl Into<ProgramSource>, seed: u64) -> Self {
        self.sources.push((source.into(), seed));
        self
    }

    /// Runs all contexts to completion (halt, fault, `max_insts`, or
    /// the `max_cycles` fence) and reports per-context.
    ///
    /// # Panics
    ///
    /// If no context was added.
    pub fn run(self) -> MultiReport {
        assert!(!self.sources.is_empty(), "MultiSession::run needs at least one context");
        let cfg = &self.cfg;
        let line_bytes = cfg.mem.l2.line_bytes.max(1);
        let sets = (cfg.mem.l2.size_bytes / line_bytes).max(1) as usize;
        let line_shift = line_bytes.trailing_zeros();

        let mut ctxs: Vec<Context> = self
            .sources
            .iter()
            .map(|&(src, seed)| {
                let w = src.build(seed);
                Context {
                    name: w.name,
                    state: ArchState::new(w.entry),
                    mem: w.mem,
                    tags: vec![u64::MAX; sets],
                    ready_at: 0,
                    misses: 0,
                    bus_wait: 0,
                    mac_wait: 0,
                    done: false,
                    halted: false,
                }
            })
            .collect();

        // Shared single-server resources.
        let mut bus_free: u64 = 0;
        let mut mac_free: u64 = 0;
        let mut bus_busy: u64 = 0;
        let mut mac_busy: u64 = 0;

        let d = &cfg.mem.dram;
        // One line fill: row activate + column access on the memory
        // bus, plus the burst (8 bytes per bus clock), all in core
        // cycles. The bus is held for the whole fill.
        let fill = (d.rcd + d.cas + u64::from(line_bytes / 8)) * d.core_per_bus;
        let q = &cfg.secure.ctrl.queue;
        let authenticate = cfg.secure.policy.authenticate;
        // Fetch/issue gating stalls the context until verification
        // completes; later control points resume at data arrival.
        let gated = authenticate && (cfg.secure.policy.gate_issue || cfg.secure.policy.gate_fetch);

        // Event-driven round-robin: earliest-ready live context, ties
        // to the lower index.
        while let Some(i) =
            (0..ctxs.len()).filter(|&i| !ctxs[i].done).min_by_key(|&i| (ctxs[i].ready_at, i))
        {
            let ctx = &mut ctxs[i];
            if cfg.max_cycles != 0 && ctx.ready_at >= cfg.max_cycles {
                ctx.done = true;
                continue;
            }

            // Execute until the next off-chip event (miss) or the end
            // of the program/slice.
            let mut now = ctx.ready_at;
            let mut pending: Option<u64> = None; // missing line number
            loop {
                if ctx.state.halted {
                    ctx.done = true;
                    ctx.halted = true;
                    break;
                }
                if cfg.max_insts != 0 && ctx.state.icount >= cfg.max_insts {
                    ctx.done = true;
                    break;
                }
                if cfg.max_cycles != 0 && now >= cfg.max_cycles {
                    break;
                }
                let pc = ctx.state.pc;
                let info = match step(&mut ctx.state, &mut ctx.mem) {
                    Ok(info) => info,
                    Err(_) => {
                        ctx.done = true;
                        break;
                    }
                };
                now += 1;
                // Fetch line first, then the data line if any: the
                // first absent one becomes this turn's bus request.
                let fetch_line = u64::from(pc >> line_shift);
                let data_line = info.mem.map(|m| u64::from(m.addr >> line_shift));
                for line in [Some(fetch_line), data_line].into_iter().flatten() {
                    let set = (line as usize) % sets;
                    if ctx.tags[set] != line {
                        ctx.tags[set] = line;
                        pending = Some(line);
                        break;
                    }
                }
                if pending.is_some() {
                    break;
                }
            }

            if let Some(_line) = pending {
                ctx.misses += 1;
                let grant = now.max(bus_free);
                ctx.bus_wait += grant - now;
                bus_free = grant + fill;
                bus_busy += fill;
                let data_ready = grant + fill;
                let mut resume = data_ready;
                if authenticate {
                    let mac_start = data_ready.max(mac_free);
                    mac_free = mac_start + q.initiation_interval;
                    mac_busy += q.initiation_interval;
                    let auth_done = mac_start + q.mac_latency;
                    if gated {
                        ctx.mac_wait += auth_done - data_ready;
                        resume = auth_done;
                    } else {
                        ctx.mac_wait += mac_start - data_ready;
                    }
                }
                ctx.ready_at = resume;
            } else {
                ctx.ready_at = now;
            }
        }

        let contexts: Vec<ContextReport> = ctxs
            .into_iter()
            .map(|c| ContextReport {
                name: c.name,
                insts: c.state.icount,
                cycles: c.ready_at,
                misses: c.misses,
                bus_wait: c.bus_wait,
                mac_wait: c.mac_wait,
                halted: c.halted,
            })
            .collect();
        MultiReport {
            cycles: contexts.iter().map(|c| c.cycles).max().unwrap_or(0),
            bus_busy,
            mac_busy,
            contexts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_core::Policy;
    use secsim_workloads::BenchId;

    fn cfg(policy: Policy) -> SimConfig {
        SimConfig::paper_256k(policy).with_max_insts(30_000)
    }

    #[test]
    fn deterministic_and_fair_for_identical_programs() {
        let c = cfg(Policy::baseline());
        let run = || {
            MultiSession::new(&c)
                .context_seeded(BenchId::Mcf, 1)
                .context_seeded(BenchId::Mcf, 1)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "model must be deterministic");
        let (x, y) = (&a.contexts[0], &a.contexts[1]);
        assert_eq!(x.insts, y.insts, "identical programs retire identically");
        let spread = x.cycles.abs_diff(y.cycles);
        assert!(
            spread * 10 <= x.cycles.max(y.cycles),
            "round-robin keeps identical contexts within 10%: {} vs {}",
            x.cycles,
            y.cycles
        );
    }

    #[test]
    fn contention_costs_cycles() {
        let c = cfg(Policy::baseline());
        let alone = MultiSession::new(&c).context_seeded(BenchId::Mcf, 1).run();
        let pair = MultiSession::new(&c)
            .context_seeded(BenchId::Mcf, 1)
            .context_seeded(BenchId::Mcf, 2)
            .run();
        assert!(
            pair.cycles > alone.cycles,
            "shared bus must cost cycles: {} alone vs {} contended",
            alone.cycles,
            pair.cycles
        );
        assert!(pair.contexts.iter().any(|x| x.bus_wait > 0), "someone queued on the bus");
    }

    #[test]
    fn fetch_gating_serializes_on_the_mac_engine() {
        let base = MultiSession::new(&cfg(Policy::baseline()))
            .context_seeded(BenchId::Mcf, 1)
            .context_seeded(BenchId::Swim, 1)
            .run();
        let fetch = MultiSession::new(&cfg(Policy::authen_then_fetch()))
            .context_seeded(BenchId::Mcf, 1)
            .context_seeded(BenchId::Swim, 1)
            .run();
        assert!(
            fetch.cycles > base.cycles,
            "fetch gating under contention must be slower: {} vs {}",
            base.cycles,
            fetch.cycles
        );
        assert!(fetch.contexts.iter().all(|x| x.mac_wait > 0), "every context waits on MAC");
        // Ungated authentication (authen-then-commit) hides most of the
        // MAC latency: it must land between baseline and fetch-gated.
        let commit = MultiSession::new(&cfg(Policy::authen_then_commit()))
            .context_seeded(BenchId::Mcf, 1)
            .context_seeded(BenchId::Swim, 1)
            .run();
        assert!(commit.cycles < fetch.cycles, "{} !< {}", commit.cycles, fetch.cycles);
        assert!(commit.cycles >= base.cycles);
    }

    #[test]
    fn external_programs_are_first_class_contexts() {
        let img = secsim_workloads::asm::assemble_named(
            "
            .data 0x100000
        buf:    .zero 65536
            .text
            li   r1, buf
            li   r2, 1024
        top: lw  r3, 0(r1)
            addi r1, r1, 64
            addi r2, r2, -1
            bne  r2, r0, top
            halt
            ",
            "streamer",
        )
        .expect("assembles");
        let id = secsim_workloads::register_program(img);
        let report = MultiSession::new(&cfg(Policy::authen_then_fetch()))
            .context(BenchId::External(id))
            .context_seeded(BenchId::Gzip, 1)
            .run();
        let ext = &report.contexts[0];
        assert_eq!(ext.name, "streamer");
        assert!(ext.halted, "external program runs to halt");
        assert!(ext.misses > 0, "streaming over 64 KB must miss");
    }
}
