//! [`StableHash`] implementations for the pipeline configuration, and
//! for [`SimConfig`] — the complete run description the experiment
//! result cache keys on.
//!
//! As in the other crates' impls, exhaustive destructuring turns "added
//! a field, forgot the hash" into a compile error.

use crate::bpred::BPredConfig;
use crate::config::{CpuConfig, SimConfig};
use secsim_stats::{StableHash, StableHasher};

impl StableHash for BPredConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let BPredConfig { bimodal_entries, btb_entries, ras_depth } = *self;
        bimodal_entries.stable_hash(h);
        btb_entries.stable_hash(h);
        ras_depth.stable_hash(h);
    }
}

impl StableHash for CpuConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let CpuConfig {
            fetch_width,
            decode_width,
            issue_width,
            commit_width,
            ruu_size,
            lsq_size,
            store_buffer,
            frontend_depth,
            mispredict_redirect,
            int_alu,
            int_mul,
            fp_alu,
            fp_mul,
            mem_ports,
            bpred,
        } = *self;
        fetch_width.stable_hash(h);
        decode_width.stable_hash(h);
        issue_width.stable_hash(h);
        commit_width.stable_hash(h);
        ruu_size.stable_hash(h);
        lsq_size.stable_hash(h);
        store_buffer.stable_hash(h);
        frontend_depth.stable_hash(h);
        mispredict_redirect.stable_hash(h);
        int_alu.stable_hash(h);
        int_mul.stable_hash(h);
        fp_alu.stable_hash(h);
        fp_mul.stable_hash(h);
        mem_ports.stable_hash(h);
        bpred.stable_hash(h);
    }
}

impl StableHash for SimConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        let SimConfig { cpu, mem, secure, max_insts, max_cycles } = self;
        cpu.stable_hash(h);
        mem.stable_hash(h);
        secure.stable_hash(h);
        max_insts.stable_hash(h);
        max_cycles.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_core::Policy;

    #[test]
    fn config_tweaks_change_digest() {
        let a = SimConfig::paper_256k(Policy::authen_then_issue());
        let b = SimConfig::paper_256k(Policy::authen_then_commit());
        assert_ne!(a.stable_digest(), b.stable_digest());
        let c = a.with_max_insts(1234);
        assert_ne!(a.stable_digest(), c.stable_digest());
        let f = a.with_max_cycles(1234);
        assert_ne!(a.stable_digest(), f.stable_digest());
        let mut d = a;
        d.cpu = CpuConfig::paper_ruu64();
        assert_ne!(a.stable_digest(), d.stable_digest());
        let e = SimConfig::paper_1m(Policy::authen_then_issue());
        assert_ne!(a.stable_digest(), e.stable_digest());
    }

    #[test]
    fn digest_is_deterministic() {
        let a = SimConfig::paper_256k(Policy::commit_plus_obfuscation());
        assert_eq!(a.stable_digest(), a.stable_digest());
    }
}
