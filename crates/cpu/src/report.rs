//! Simulation results.

use crate::trace::StallBreakdown;
use secsim_mem::{BusDigest, BusEvent, BusKind};
use secsim_stats::{CounterSet, Json};

/// An authentication (integrity-verification) failure observed during a
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthException {
    /// Cycle at which verification completed and failed — before this
    /// cycle the machine was running on unverified (possibly
    /// attacker-chosen) state.
    pub cycle: u64,
    /// Line whose MAC failed.
    pub line_addr: u32,
    /// Whether the policy delivers this exception precisely
    /// (issue/commit gating).
    pub precise: bool,
}

/// A value written to an I/O port by an `out` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoEvent {
    /// Port number.
    pub port: u8,
    /// Value written.
    pub value: u32,
    /// Cycle the output becomes externally visible (after any
    /// write/commit gating).
    pub cycle: u64,
}

/// A resolved control transfer (recorded when bus tracing is on; the
/// attack harness uses resolution times to decide whether an observed
/// instruction fetch reflects the *resolved* direction of a tampered
/// comparison or merely an uninformative prediction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEvent {
    /// PC of the control instruction.
    pub pc: u32,
    /// Resolved direction.
    pub taken: bool,
    /// Resolved target.
    pub target: u32,
    /// Cycle the branch resolved (execution complete).
    pub resolved: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Retired instructions.
    pub insts: u64,
    /// Total cycles (last commit).
    pub cycles: u64,
    /// Whether the program executed `halt`.
    pub halted: bool,
    /// Whether an undecodable instruction stopped the run.
    pub decode_fault: bool,
    /// First integrity-verification failure, if any line accessed was
    /// tampered.
    pub exception: Option<AuthException>,
    /// I/O port writes in commit order.
    pub io_events: Vec<IoEvent>,
    /// Captured front-side-bus events (when tracing was enabled).
    pub bus_events: Vec<BusEvent>,
    /// Running digest over every bus event, present whenever bus
    /// tracing was on. In streaming mode
    /// ([`crate::SimSession::trace_bus_digest`]) this is the *only*
    /// bus capture — `bus_events` stays empty and memory stays O(1)
    /// regardless of run length.
    pub bus_digest: Option<BusDigest>,
    /// Resolved control transfers (when tracing was enabled).
    pub control_events: Vec<ControlEvent>,
    /// Stage times of the first [`crate::TIMING_CAP`] instructions
    /// (when tracing was enabled) — feed to
    /// [`crate::render_timeline`].
    pub inst_timings: Vec<crate::InstTiming>,
    /// Merged counters from every component.
    pub counters: CounterSet,
    /// Lost-commit-slot attribution: exactly one [`crate::StallCause`]
    /// per slot; `stall.total() + insts == commit_width × cycles`.
    pub stall: StallBreakdown,
}

impl SimReport {
    /// Instructions per cycle (0.0 for an empty run).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Bus events that became visible *before* the first authentication
    /// exception (i.e. before the machine could have been stopped).
    /// With no exception, every event is visible.
    pub fn events_before_exception(&self) -> impl Iterator<Item = &BusEvent> {
        let cut = self.exception.map_or(u64::MAX, |e| e.cycle);
        self.bus_events.iter().filter(move |e| e.cycle < cut)
    }

    /// I/O outputs that became visible before the first authentication
    /// exception.
    pub fn io_before_exception(&self) -> impl Iterator<Item = &IoEvent> {
        let cut = self.exception.map_or(u64::MAX, |e| e.cycle);
        self.io_events.iter().filter(move |e| e.cycle < cut)
    }

    /// Serializes to JSON for the on-disk experiment result cache.
    ///
    /// Returns `None` when `inst_timings` is non-empty: timing traces
    /// reference decoded instructions and are deliberately not
    /// persisted (the cache only stores trace-off runs). Everything
    /// else round-trips exactly through [`SimReport::from_json`] —
    /// counter names, event order and all integer values included.
    pub fn to_json(&self) -> Option<Json> {
        if !self.inst_timings.is_empty() {
            return None;
        }
        let exception = match self.exception {
            None => Json::Null,
            Some(AuthException { cycle, line_addr, precise }) => Json::obj(vec![
                ("cycle", Json::UInt(cycle)),
                ("line_addr", Json::UInt(u64::from(line_addr))),
                ("precise", Json::Bool(precise)),
            ]),
        };
        let io_events = self
            .io_events
            .iter()
            .map(|&IoEvent { port, value, cycle }| {
                Json::obj(vec![
                    ("port", Json::UInt(u64::from(port))),
                    ("value", Json::UInt(u64::from(value))),
                    ("cycle", Json::UInt(cycle)),
                ])
            })
            .collect();
        let bus_events = self
            .bus_events
            .iter()
            .map(|&BusEvent { cycle, addr, kind }| {
                Json::obj(vec![
                    ("cycle", Json::UInt(cycle)),
                    ("addr", Json::UInt(u64::from(addr))),
                    ("kind", Json::Str(bus_kind_name(kind).to_string())),
                ])
            })
            .collect();
        let control_events = self
            .control_events
            .iter()
            .map(|&ControlEvent { pc, taken, target, resolved }| {
                Json::obj(vec![
                    ("pc", Json::UInt(u64::from(pc))),
                    ("taken", Json::Bool(taken)),
                    ("target", Json::UInt(u64::from(target))),
                    ("resolved", Json::UInt(resolved)),
                ])
            })
            .collect();
        let counters = Json::Object(
            self.counters.iter().map(|(k, v)| (k.to_string(), Json::UInt(v))).collect(),
        );
        let mut fields = vec![
            ("insts", Json::UInt(self.insts)),
            ("cycles", Json::UInt(self.cycles)),
            ("halted", Json::Bool(self.halted)),
            ("decode_fault", Json::Bool(self.decode_fault)),
            ("exception", exception),
            ("io_events", Json::Array(io_events)),
            ("bus_events", Json::Array(bus_events)),
            ("control_events", Json::Array(control_events)),
            ("counters", counters),
            ("stall", self.stall.to_json()),
        ];
        // Omitted (not null) when absent, so trace-off reports render
        // byte-identically to those written before the field existed —
        // the sweep cache stays valid across versions.
        if let Some(d) = self.bus_digest {
            fields.push((
                "bus_digest",
                Json::obj(vec![
                    ("events", Json::UInt(d.events)),
                    ("full", Json::UInt(d.full)),
                    ("addrs", Json::UInt(d.addrs)),
                    ("timing", Json::UInt(d.timing)),
                ]),
            ));
        }
        Some(Json::obj(fields))
    }

    /// Reconstructs a report serialized by [`SimReport::to_json`].
    ///
    /// Returns `None` on any structural mismatch (the cache treats that
    /// as a miss and re-runs the simulation).
    pub fn from_json(v: &Json) -> Option<SimReport> {
        let exception = match v.get("exception")? {
            Json::Null => None,
            e => Some(AuthException {
                cycle: e.get("cycle")?.as_u64()?,
                line_addr: u32::try_from(e.get("line_addr")?.as_u64()?).ok()?,
                precise: e.get("precise")?.as_bool()?,
            }),
        };
        let io_events = v
            .get("io_events")?
            .as_array()?
            .iter()
            .map(|e| {
                Some(IoEvent {
                    port: u8::try_from(e.get("port")?.as_u64()?).ok()?,
                    value: u32::try_from(e.get("value")?.as_u64()?).ok()?,
                    cycle: e.get("cycle")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let bus_events = v
            .get("bus_events")?
            .as_array()?
            .iter()
            .map(|e| {
                Some(BusEvent {
                    cycle: e.get("cycle")?.as_u64()?,
                    addr: u32::try_from(e.get("addr")?.as_u64()?).ok()?,
                    kind: bus_kind_from_name(e.get("kind")?.as_str()?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let control_events = v
            .get("control_events")?
            .as_array()?
            .iter()
            .map(|e| {
                Some(ControlEvent {
                    pc: u32::try_from(e.get("pc")?.as_u64()?).ok()?,
                    taken: e.get("taken")?.as_bool()?,
                    target: u32::try_from(e.get("target")?.as_u64()?).ok()?,
                    resolved: e.get("resolved")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let mut counters = CounterSet::new();
        match v.get("counters")? {
            Json::Object(pairs) => {
                for (name, count) in pairs {
                    counters.add(name, count.as_u64()?);
                }
            }
            _ => return None,
        }
        // The digest key is optional: reports serialized before it
        // existed (or with tracing off) simply lack it.
        let bus_digest = match v.get("bus_digest") {
            None | Some(Json::Null) => None,
            Some(d) => Some(BusDigest {
                events: d.get("events")?.as_u64()?,
                full: d.get("full")?.as_u64()?,
                addrs: d.get("addrs")?.as_u64()?,
                timing: d.get("timing")?.as_u64()?,
            }),
        };
        Some(SimReport {
            insts: v.get("insts")?.as_u64()?,
            cycles: v.get("cycles")?.as_u64()?,
            halted: v.get("halted")?.as_bool()?,
            decode_fault: v.get("decode_fault")?.as_bool()?,
            exception,
            io_events,
            bus_events,
            bus_digest,
            control_events,
            inst_timings: Vec::new(),
            counters,
            // Cache entries written before the stall field existed lack
            // the key and parse as a miss — exactly what we want.
            stall: StallBreakdown::from_json(v.get("stall")?)?,
        })
    }
}

fn bus_kind_name(kind: BusKind) -> &'static str {
    match kind {
        BusKind::InstrFetch => "instr_fetch",
        BusKind::DataFetch => "data_fetch",
        BusKind::Writeback => "writeback",
        BusKind::MacFetch => "mac_fetch",
        BusKind::MacWrite => "mac_write",
        BusKind::CounterFetch => "counter_fetch",
        BusKind::RemapFetch => "remap_fetch",
        BusKind::RemapWrite => "remap_write",
        BusKind::TreeFetch => "tree_fetch",
    }
}

fn bus_kind_from_name(name: &str) -> Option<BusKind> {
    Some(match name {
        "instr_fetch" => BusKind::InstrFetch,
        "data_fetch" => BusKind::DataFetch,
        "writeback" => BusKind::Writeback,
        "mac_fetch" => BusKind::MacFetch,
        "mac_write" => BusKind::MacWrite,
        "counter_fetch" => BusKind::CounterFetch,
        "remap_fetch" => BusKind::RemapFetch,
        "remap_write" => BusKind::RemapWrite,
        "tree_fetch" => BusKind::TreeFetch,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_mem::BusKind;

    #[test]
    fn ipc_math() {
        let r = SimReport { insts: 100, cycles: 50, ..Default::default() };
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(SimReport::default().ipc(), 0.0);
    }

    #[test]
    fn exception_truncates_visibility() {
        let r = SimReport {
            bus_events: vec![
                BusEvent { cycle: 10, addr: 0xA, kind: BusKind::DataFetch },
                BusEvent { cycle: 200, addr: 0xB, kind: BusKind::DataFetch },
            ],
            io_events: vec![
                IoEvent { port: 1, value: 7, cycle: 20 },
                IoEvent { port: 1, value: 8, cycle: 300 },
            ],
            exception: Some(AuthException { cycle: 100, line_addr: 0, precise: true }),
            ..SimReport::default()
        };
        let seen: Vec<u32> = r.events_before_exception().map(|e| e.addr).collect();
        assert_eq!(seen, vec![0xA]);
        let io: Vec<u32> = r.io_before_exception().map(|e| e.value).collect();
        assert_eq!(io, vec![7]);
    }

    #[test]
    fn no_exception_everything_visible() {
        let r = SimReport {
            bus_events: vec![BusEvent { cycle: 10, addr: 1, kind: BusKind::InstrFetch }],
            ..SimReport::default()
        };
        assert_eq!(r.events_before_exception().count(), 1);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = SimReport {
            insts: 12345,
            cycles: 67890,
            halted: true,
            decode_fault: false,
            ..Default::default()
        };
        r.exception = Some(AuthException { cycle: 42, line_addr: 0x8040, precise: true });
        r.io_events = vec![IoEvent { port: 3, value: 0xDEAD_BEEF, cycle: 99 }];
        r.bus_events = vec![
            BusEvent { cycle: 1, addr: 0x1000, kind: BusKind::InstrFetch },
            BusEvent { cycle: 2, addr: 0x2000, kind: BusKind::TreeFetch },
        ];
        r.control_events =
            vec![ControlEvent { pc: 0x1004, taken: true, target: 0x1010, resolved: 7 }];
        r.counters.add("l2.miss", 17);
        r.counters.add("auth.requests", u64::MAX);
        r.stall.add(crate::StallCause::AuthCommit, 321);

        let j = r.to_json().expect("trace-off report serializes");
        let back = SimReport::from_json(&j).expect("round trip");
        assert_eq!(back.stall, r.stall);
        assert_eq!(back.insts, r.insts);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.exception, r.exception);
        assert_eq!(back.io_events, r.io_events);
        assert_eq!(back.bus_events, r.bus_events);
        assert_eq!(back.control_events, r.control_events);
        assert_eq!(back.counters.get("auth.requests"), u64::MAX);
        // Byte-identical re-serialization is what the cache relies on.
        assert_eq!(back.to_json().unwrap().render(), j.render());
    }

    #[test]
    fn bus_digest_round_trips_and_is_omitted_when_absent() {
        let plain = SimReport { insts: 3, ..Default::default() };
        let j = plain.to_json().unwrap();
        assert!(
            !j.render().contains("bus_digest"),
            "absent digest must be omitted, not serialized as null"
        );
        let digested = SimReport {
            insts: 3,
            bus_digest: Some(BusDigest { events: 9, full: 1, addrs: 2, timing: 3 }),
            ..Default::default()
        };
        let j = digested.to_json().unwrap();
        let back = SimReport::from_json(&j).expect("round trip");
        assert_eq!(back.bus_digest, digested.bus_digest);
        assert_eq!(back.to_json().unwrap().render(), j.render());
    }

    #[test]
    fn traced_report_refuses_to_serialize() {
        use secsim_isa::{Inst, Reg};
        let mut r = SimReport::default();
        r.inst_timings.push(crate::InstTiming {
            seq: 0,
            pc: 0x1000,
            inst: Inst::Add { rd: Reg::R1, rs1: Reg::R0, rs2: Reg::R0 },
            fetch: 0,
            dispatch: 1,
            issue: 2,
            complete: 3,
            commit: 4,
        });
        assert!(r.to_json().is_none());
    }

    #[test]
    fn from_json_rejects_mangled_input() {
        let r = SimReport { insts: 5, cycles: 9, ..Default::default() };
        let mut j = r.to_json().unwrap();
        if let Json::Object(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "cycles");
        }
        assert!(SimReport::from_json(&j).is_none());
    }
}
