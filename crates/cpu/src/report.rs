//! Simulation results.

use secsim_mem::BusEvent;
use secsim_stats::CounterSet;

/// An authentication (integrity-verification) failure observed during a
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthException {
    /// Cycle at which verification completed and failed — before this
    /// cycle the machine was running on unverified (possibly
    /// attacker-chosen) state.
    pub cycle: u64,
    /// Line whose MAC failed.
    pub line_addr: u32,
    /// Whether the policy delivers this exception precisely
    /// (issue/commit gating).
    pub precise: bool,
}

/// A value written to an I/O port by an `out` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoEvent {
    /// Port number.
    pub port: u8,
    /// Value written.
    pub value: u32,
    /// Cycle the output becomes externally visible (after any
    /// write/commit gating).
    pub cycle: u64,
}

/// A resolved control transfer (recorded when bus tracing is on; the
/// attack harness uses resolution times to decide whether an observed
/// instruction fetch reflects the *resolved* direction of a tampered
/// comparison or merely an uninformative prediction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEvent {
    /// PC of the control instruction.
    pub pc: u32,
    /// Resolved direction.
    pub taken: bool,
    /// Resolved target.
    pub target: u32,
    /// Cycle the branch resolved (execution complete).
    pub resolved: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Retired instructions.
    pub insts: u64,
    /// Total cycles (last commit).
    pub cycles: u64,
    /// Whether the program executed `halt`.
    pub halted: bool,
    /// Whether an undecodable instruction stopped the run.
    pub decode_fault: bool,
    /// First integrity-verification failure, if any line accessed was
    /// tampered.
    pub exception: Option<AuthException>,
    /// I/O port writes in commit order.
    pub io_events: Vec<IoEvent>,
    /// Captured front-side-bus events (when tracing was enabled).
    pub bus_events: Vec<BusEvent>,
    /// Resolved control transfers (when tracing was enabled).
    pub control_events: Vec<ControlEvent>,
    /// Stage times of the first [`crate::TIMING_CAP`] instructions
    /// (when tracing was enabled) — feed to
    /// [`crate::render_timeline`].
    pub inst_timings: Vec<crate::InstTiming>,
    /// Merged counters from every component.
    pub counters: CounterSet,
}

impl SimReport {
    /// Instructions per cycle (0.0 for an empty run).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Bus events that became visible *before* the first authentication
    /// exception (i.e. before the machine could have been stopped).
    /// With no exception, every event is visible.
    pub fn events_before_exception(&self) -> impl Iterator<Item = &BusEvent> {
        let cut = self.exception.map_or(u64::MAX, |e| e.cycle);
        self.bus_events.iter().filter(move |e| e.cycle < cut)
    }

    /// I/O outputs that became visible before the first authentication
    /// exception.
    pub fn io_before_exception(&self) -> impl Iterator<Item = &IoEvent> {
        let cut = self.exception.map_or(u64::MAX, |e| e.cycle);
        self.io_events.iter().filter(move |e| e.cycle < cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_mem::BusKind;

    #[test]
    fn ipc_math() {
        let r = SimReport { insts: 100, cycles: 50, ..Default::default() };
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(SimReport::default().ipc(), 0.0);
    }

    #[test]
    fn exception_truncates_visibility() {
        let mut r = SimReport::default();
        r.bus_events = vec![
            BusEvent { cycle: 10, addr: 0xA, kind: BusKind::DataFetch },
            BusEvent { cycle: 200, addr: 0xB, kind: BusKind::DataFetch },
        ];
        r.io_events = vec![
            IoEvent { port: 1, value: 7, cycle: 20 },
            IoEvent { port: 1, value: 8, cycle: 300 },
        ];
        r.exception = Some(AuthException { cycle: 100, line_addr: 0, precise: true });
        let seen: Vec<u32> = r.events_before_exception().map(|e| e.addr).collect();
        assert_eq!(seen, vec![0xA]);
        let io: Vec<u32> = r.io_before_exception().map(|e| e.value).collect();
        assert_eq!(io, vec![7]);
    }

    #[test]
    fn no_exception_everything_visible() {
        let mut r = SimReport::default();
        r.bus_events = vec![BusEvent { cycle: 10, addr: 1, kind: BusKind::InstrFetch }];
        assert_eq!(r.events_before_exception().count(), 1);
    }
}
