//! The out-of-order secure-processor pipeline.
//!
//! An execution-driven, cycle-level timing model of an 8-wide
//! out-of-order processor in the style of SimpleScalar's `sim-outorder`
//! (Register Update Unit + load/store queue), with the paper's
//! authentication control points wired into four places:
//!
//! * **issue** — instructions from unverified I-lines, and values loaded
//!   from unverified D-lines, are not usable until verification
//!   completes (*authen-then-issue*);
//! * **commit** — the RUU head retires only once its lines verify
//!   (*authen-then-commit*);
//! * **store release** — a committed store leaves the store buffer only
//!   after its *LastRequest* authentication tag verifies
//!   (*authen-then-write*);
//! * **bus grant** — external fetches carry an authentication watermark
//!   below which the bus is not granted (*authen-then-fetch*, tag or
//!   drain variant).
//!
//! The model executes the program *functionally* (via `secsim-isa`) to
//! obtain values, addresses and branch outcomes — including tampered
//! programs whose decrypted-but-unverified instructions the paper's
//! exploits rely on — and layers resource-constrained timing on top:
//! fetch/decode/issue/commit bandwidth, RUU/LSQ occupancy, functional
//! units, branch prediction, cache hierarchy, bus and DRAM contention,
//! and the cryptographic latencies from `secsim-core`.
//!
//! Runs go through the [`SimSession`] builder, which optionally attaches
//! observers (retire callback, structured event trace, bus trace) without
//! perturbing timing. Every lost commit slot is charged to exactly one
//! [`StallCause`]; the resulting [`StallBreakdown`] rides on
//! [`SimReport::stall`].
//!
//! # Examples
//!
//! ```
//! use secsim_cpu::{SimConfig, SimSession};
//! use secsim_core::Policy;
//! use secsim_isa::{Asm, FlatMem, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1000);
//! let top = a.new_label();
//! a.addi(Reg::R1, Reg::R0, 5000);
//! a.bind(top)?;
//! a.addi(Reg::R1, Reg::R1, -1);
//! a.bne(Reg::R1, Reg::R0, top);
//! a.halt();
//! let mut mem = FlatMem::new(0x1000, 1 << 16);
//! mem.load_words(0x1000, &a.assemble()?);
//!
//! let cfg = SimConfig::paper_256k(Policy::authen_then_commit());
//! let out = SimSession::new(&cfg).run(&mut mem, 0x1000);
//! let report = out.report();
//! assert!(report.halted);
//! assert!(report.ipc() > 0.5);
//! // Every commit slot is accounted for: retired or attributed.
//! let width = u64::from(cfg.cpu.commit_width);
//! assert_eq!(report.stall.total() + report.insts, width * report.cycles);
//! # Ok(())
//! # }
//! ```

mod bpred;
mod config;
mod fingerprint;
mod observe;
mod pipeline;
mod report;
mod multi;
mod sched;
mod session;
mod trace;
mod viz;

pub use bpred::{BPredConfig, BranchPredictor};
pub use config::{CpuConfig, SimConfig};
pub use multi::{ContextReport, MultiReport, MultiSession};
pub use observe::RetireRecord;
pub use pipeline::SecureImage;
pub use report::{AuthException, ControlEvent, IoEvent, SimReport};
pub use secsim_core::{Exposure, FaultEvent, FaultKind, FaultPlan, TamperCause};
pub use session::{SimOutcome, SimRun, SimSession};
pub use trace::{SimTrace, StallBreakdown, StallCause, TraceConfig, TraceEvent};
pub use viz::{render_timeline, InstTiming, TIMING_CAP};
