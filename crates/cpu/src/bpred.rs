//! Branch prediction: bimodal 2-bit counters, a branch target buffer and
//! a return-address stack.

use secsim_isa::{Inst, Reg};
use secsim_stats::CounterSet;

/// Predictor sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BPredConfig {
    /// Bimodal 2-bit counter table entries (power of two).
    pub bimodal_entries: u32,
    /// BTB entries (power of two, direct mapped).
    pub btb_entries: u32,
    /// Return-address stack depth.
    pub ras_depth: u32,
}

impl Default for BPredConfig {
    fn default() -> Self {
        Self { bimodal_entries: 2048, btb_entries: 512, ras_depth: 8 }
    }
}

/// A combined bimodal + BTB + RAS predictor.
///
/// # Examples
///
/// ```
/// use secsim_cpu::{BPredConfig, BranchPredictor};
/// use secsim_isa::{Inst, Reg};
///
/// let mut bp = BranchPredictor::new(BPredConfig::default());
/// let br = Inst::Bne { rs1: Reg::R1, rs2: Reg::R0, off: -2 };
/// // Train it taken a few times; it learns.
/// for _ in 0..4 {
///     let _ = bp.predict(0x1000, &br);
///     bp.update(0x1000, &br, true, 0x0FF8);
/// }
/// let (taken, target) = bp.predict(0x1000, &br);
/// assert!(taken);
/// assert_eq!(target, Some(0x0FF8));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BPredConfig,
    bimodal: Vec<u8>,
    btb: Vec<(u32, u32)>, // (tag pc, target)
    ras: Vec<u32>,
    // Plain fields: bumped on every resolved control transfer.
    pred_hits: u64,
    pred_misses: u64,
}

impl BranchPredictor {
    /// Creates a predictor with weakly-taken counters and an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics unless table sizes are powers of two.
    pub fn new(cfg: BPredConfig) -> Self {
        assert!(cfg.bimodal_entries.is_power_of_two());
        assert!(cfg.btb_entries.is_power_of_two());
        Self {
            cfg,
            bimodal: vec![2; cfg.bimodal_entries as usize],
            btb: vec![(u32::MAX, 0); cfg.btb_entries as usize],
            ras: Vec::new(),
            pred_hits: 0,
            pred_misses: 0,
        }
    }

    fn bim_idx(&self, pc: u32) -> usize {
        ((pc >> 2) & (self.cfg.bimodal_entries - 1)) as usize
    }

    fn btb_idx(&self, pc: u32) -> usize {
        ((pc >> 2) & (self.cfg.btb_entries - 1)) as usize
    }

    /// Predicts `(taken, target)` for the control instruction at `pc`.
    /// `target = None` means "no target known" (BTB miss) — a taken
    /// prediction without a target still redirects late.
    pub fn predict(&mut self, pc: u32, inst: &Inst) -> (bool, Option<u32>) {
        match inst {
            // Direct jumps/calls: target known at decode.
            Inst::J { off } | Inst::Jal { off } => {
                (true, Some(pc.wrapping_add(4).wrapping_add((off << 2) as u32)))
            }
            // Return: pop the RAS.
            Inst::Jalr { rd: Reg::R0, rs1: Reg::R31 } => (true, self.ras.pop()),
            // Other indirect jumps: BTB.
            Inst::Jalr { .. } => {
                let (tag, tgt) = self.btb[self.btb_idx(pc)];
                (true, (tag == pc).then_some(tgt))
            }
            // Conditional branches: bimodal direction + BTB target.
            _ => {
                let taken = self.bimodal[self.bim_idx(pc)] >= 2;
                let (tag, tgt) = self.btb[self.btb_idx(pc)];
                (taken, (tag == pc).then_some(tgt))
            }
        }
    }

    /// Trains the predictor with the resolved outcome. Calls push the
    /// RAS; conditional branches update the bimodal table; taken
    /// transfers install BTB entries.
    pub fn update(&mut self, pc: u32, inst: &Inst, taken: bool, target: u32) {
        match inst {
            Inst::Jal { .. } => {
                self.push_ras(pc.wrapping_add(4));
            }
            Inst::Jalr { rd, .. } if *rd != Reg::R0 => {
                self.push_ras(pc.wrapping_add(4));
            }
            _ => {}
        }
        if inst.class() == secsim_isa::OpClass::Branch {
            let idx = self.bim_idx(pc);
            let c = &mut self.bimodal[idx];
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        if taken {
            let i = self.btb_idx(pc);
            self.btb[i] = (pc, target);
        }
    }

    fn push_ras(&mut self, ret: u32) {
        if self.ras.len() as u32 >= self.cfg.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(ret);
    }

    /// Records outcome statistics (`pred.hit` / `pred.miss`).
    pub fn record_outcome(&mut self, correct: bool) {
        if correct {
            self.pred_hits += 1;
        } else {
            self.pred_misses += 1;
        }
    }

    /// Prediction counters (`pred.hit` / `pred.miss`), materialized on
    /// demand.
    pub fn counters(&self) -> CounterSet {
        [("pred.hit", self.pred_hits), ("pred.miss", self.pred_misses)].into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BPredConfig::default())
    }

    fn branch() -> Inst {
        Inst::Beq { rs1: Reg::R1, rs2: Reg::R2, off: 10 }
    }

    #[test]
    fn bimodal_learns_not_taken() {
        let mut p = bp();
        for _ in 0..3 {
            p.update(0x100, &branch(), false, 0x200);
        }
        let (taken, _) = p.predict(0x100, &branch());
        assert!(!taken);
    }

    #[test]
    fn bimodal_hysteresis() {
        let mut p = bp();
        // starts weakly taken (2); one not-taken flips to 1 → predict NT
        p.update(0x100, &branch(), false, 0);
        assert!(!p.predict(0x100, &branch()).0);
        // one taken goes back to 2 → predict T
        p.update(0x100, &branch(), true, 0x200);
        assert!(p.predict(0x100, &branch()).0);
    }

    #[test]
    fn btb_provides_target_after_taken() {
        let mut p = bp();
        assert_eq!(p.predict(0x100, &branch()).1, None);
        p.update(0x100, &branch(), true, 0x300);
        assert_eq!(p.predict(0x100, &branch()).1, Some(0x300));
    }

    #[test]
    fn direct_jump_always_known() {
        let mut p = bp();
        let j = Inst::J { off: 4 };
        let (taken, tgt) = p.predict(0x100, &j);
        assert!(taken);
        assert_eq!(tgt, Some(0x100 + 4 + 16));
    }

    #[test]
    fn ras_pairs_calls_and_returns() {
        let mut p = bp();
        let call = Inst::Jal { off: 100 };
        p.update(0x1000, &call, true, 0x1194);
        let ret = Inst::Jalr { rd: Reg::R0, rs1: Reg::R31 };
        let (taken, tgt) = p.predict(0x1194, &ret);
        assert!(taken);
        assert_eq!(tgt, Some(0x1004));
    }

    #[test]
    fn ras_depth_bounded() {
        let mut p = BranchPredictor::new(BPredConfig { ras_depth: 2, ..Default::default() });
        let call = Inst::Jal { off: 1 };
        for pc in [0x100u32, 0x200, 0x300] {
            p.update(pc, &call, true, 0);
        }
        let ret = Inst::Jalr { rd: Reg::R0, rs1: Reg::R31 };
        assert_eq!(p.predict(0, &ret).1, Some(0x304));
        assert_eq!(p.predict(0, &ret).1, Some(0x204));
        assert_eq!(p.predict(0, &ret).1, None); // 0x104 fell off
    }

    #[test]
    fn indirect_jump_uses_btb() {
        let mut p = bp();
        let jr = Inst::Jalr { rd: Reg::R1, rs1: Reg::R2 };
        assert_eq!(p.predict(0x500, &jr).1, None);
        p.update(0x500, &jr, true, 0x2000);
        assert_eq!(p.predict(0x500, &jr).1, Some(0x2000));
    }
}
