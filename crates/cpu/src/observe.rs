//! Per-retirement observation records for differential co-simulation.
//!
//! [`SimSession::observe`](crate::SimSession::observe) calls an
//! observer with one [`RetireRecord`] per committed instruction, in
//! program order. The record carries both the *architectural* effect (what the
//! golden ISA model must agree on) and the *microarchitectural* event
//! cycles (what the security-invariant oracles in `secsim-check` audit
//! against the active policy's gates).

use secsim_isa::{Inst, MemAccess, RegRef};

/// Everything observable about one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetireRecord {
    /// Zero-based retirement index.
    pub seq: u64,
    /// Fetch PC.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Architectural next PC (branch targets included).
    pub next_pc: u32,
    /// The memory access, if any.
    pub mem: Option<MemAccess>,
    /// Destination register and its value *after* execution. FP values
    /// are carried as raw bits so the comparison is exact.
    pub dst: Option<(RegRef, u64)>,
    /// `(port, value)` of an `out` instruction.
    pub out: Option<(u8, u32)>,
    /// `(taken, target)` of a control transfer.
    pub control: Option<(bool, u32)>,

    // ---- pipeline event cycles ----
    /// Fetch-slot cycle.
    pub fetch: u64,
    /// Dispatch (rename/RUU-allocate) cycle.
    pub dispatch: u64,
    /// Issue cycle.
    pub issue: u64,
    /// Execution-complete cycle.
    pub complete: u64,
    /// Commit cycle.
    pub commit: u64,

    // ---- gate evidence ----
    /// Verification time of the instruction's I-line (0 = baseline /
    /// unauthenticated).
    pub iline_auth: u64,
    /// Verification time of the D-line a load/store touched (0 = none,
    /// forwarded, or unauthenticated).
    pub data_auth: u64,
    /// Authen-then-write watermark sampled at store issue (0 = not a
    /// store or write gating off).
    pub store_tag_done: u64,
    /// Cycle a store left the store buffer for the cache (0 = not a
    /// store).
    pub store_release: u64,
    /// Fetch-gate floor passed with this instruction's D-access (its
    /// `bus_not_before`; 0 = ungated).
    pub bus_floor: u64,
    /// Cycle the D-access's demand bus transfer was granted (0 = no
    /// off-chip transfer, i.e. cache hit or forwarded).
    pub bus_granted: u64,
    /// Fetch-gate floor for the I-line fetch this instruction triggered
    /// (0 = no new I-line fetched or ungated).
    pub ifetch_floor: u64,
    /// Bus-grant cycle of that I-line fetch (0 = no off-chip transfer).
    pub ifetch_granted: u64,
}
