//! Cycle-slot and functional-unit schedulers for the one-pass timing
//! model.

use std::collections::HashMap;

/// Bandwidth limiter for in-order stages (fetch/dispatch/commit):
/// requests arrive with non-decreasing earliest times, at most `width`
/// grants per cycle.
#[derive(Debug, Clone)]
pub struct InOrderSlots {
    width: u32,
    cycle: u64,
    used: u32,
}

impl InOrderSlots {
    /// Creates a limiter granting `width` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        Self { width, cycle: 0, used: 0 }
    }

    /// Grants a slot at the first cycle `>= at` with capacity.
    /// `at` values must be non-decreasing across calls.
    pub fn take(&mut self, at: u64) -> u64 {
        if at > self.cycle {
            self.cycle = at;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }

    /// The current grant position: `(cycle, slots_used_in_cycle)`. After
    /// a [`take`](InOrderSlots::take) the granted instruction occupies
    /// slot `slots_used_in_cycle - 1` of `cycle` — the stall-attribution
    /// layer uses this to index commit slots globally.
    pub fn occupancy(&self) -> (u64, u32) {
        (self.cycle, self.used)
    }
}

/// Bandwidth limiter for the out-of-order issue stage: requests may
/// target any cycle at or above a monotonically advancing floor.
#[derive(Debug, Clone)]
pub struct WindowSlots {
    width: u32,
    used: HashMap<u64, u32>,
    floor: u64,
    inserts: u64,
}

impl WindowSlots {
    /// Creates a limiter granting `width` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        Self { width, used: HashMap::new(), floor: 0, inserts: 0 }
    }

    /// Grants a slot at the first cycle `>= max(at, floor)` with
    /// capacity.
    pub fn take(&mut self, at: u64) -> u64 {
        let mut c = at.max(self.floor);
        loop {
            let u = self.used.entry(c).or_insert(0);
            if *u < self.width {
                *u += 1;
                self.inserts += 1;
                if self.inserts.is_multiple_of(65536) {
                    self.prune();
                }
                return c;
            }
            c += 1;
        }
    }

    /// Advances the floor: no future `take` will target cycles below
    /// `floor` (the dispatch time of the current instruction, which
    /// lower-bounds all future issue times).
    pub fn advance_floor(&mut self, floor: u64) {
        if floor > self.floor {
            self.floor = floor;
        }
    }

    fn prune(&mut self) {
        let floor = self.floor;
        self.used.retain(|&c, _| c >= floor);
    }
}

/// A pool of identical functional units: each grant occupies the chosen
/// unit for `occupancy` cycles (1 = fully pipelined).
#[derive(Debug, Clone)]
pub struct FuPool {
    free_at: Vec<u64>,
}

impl FuPool {
    /// Creates a pool of `units` units.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: u32) -> Self {
        assert!(units > 0, "unit count must be positive");
        Self { free_at: vec![0; units as usize] }
    }

    /// Grants the earliest-available unit no earlier than `at`,
    /// occupying it for `occupancy` cycles. Returns the start cycle.
    pub fn take(&mut self, at: u64, occupancy: u64) -> u64 {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("pool is non-empty");
        let start = at.max(self.free_at[idx]);
        self.free_at[idx] = start + occupancy.max(1);
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_slots_pack_per_cycle() {
        let mut s = InOrderSlots::new(2);
        assert_eq!(s.take(5), 5);
        assert_eq!(s.take(5), 5);
        assert_eq!(s.take(5), 6);
        assert_eq!(s.take(6), 6); // second slot of cycle 6
        assert_eq!(s.take(6), 7);
        assert_eq!(s.take(100), 100);
    }

    #[test]
    fn window_slots_allow_out_of_order() {
        let mut s = WindowSlots::new(1);
        assert_eq!(s.take(10), 10);
        assert_eq!(s.take(5), 5); // earlier cycle still available
        assert_eq!(s.take(5), 6);
        assert_eq!(s.take(10), 11);
    }

    #[test]
    fn window_floor_blocks_past() {
        let mut s = WindowSlots::new(4);
        s.advance_floor(100);
        assert_eq!(s.take(5), 100);
    }

    #[test]
    fn fu_pool_balances_units() {
        let mut p = FuPool::new(2);
        assert_eq!(p.take(0, 10), 0); // unit 0 busy till 10
        assert_eq!(p.take(0, 10), 0); // unit 1 busy till 10
        assert_eq!(p.take(0, 10), 10); // back to unit 0
    }

    #[test]
    fn fu_pool_pipelined_units() {
        let mut p = FuPool::new(1);
        assert_eq!(p.take(0, 1), 0);
        assert_eq!(p.take(0, 1), 1);
        assert_eq!(p.take(0, 1), 2);
    }

    #[test]
    fn fu_pool_nonpipelined_divider() {
        let mut p = FuPool::new(1);
        assert_eq!(p.take(0, 20), 0);
        assert_eq!(p.take(5, 20), 20);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        InOrderSlots::new(0);
    }
}
