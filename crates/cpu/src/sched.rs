//! Cycle-slot and functional-unit schedulers for the one-pass timing
//! model.

use std::collections::HashMap;

/// Bandwidth limiter for in-order stages (fetch/dispatch/commit):
/// requests arrive with non-decreasing earliest times, at most `width`
/// grants per cycle.
#[derive(Debug, Clone)]
pub struct InOrderSlots {
    width: u32,
    cycle: u64,
    used: u32,
}

impl InOrderSlots {
    /// Creates a limiter granting `width` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        Self { width, cycle: 0, used: 0 }
    }

    /// Grants a slot at the first cycle `>= at` with capacity.
    /// `at` values must be non-decreasing across calls.
    pub fn take(&mut self, at: u64) -> u64 {
        if at > self.cycle {
            self.cycle = at;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }

    /// The current grant position: `(cycle, slots_used_in_cycle)`. After
    /// a [`take`](InOrderSlots::take) the granted instruction occupies
    /// slot `slots_used_in_cycle - 1` of `cycle` — the stall-attribution
    /// layer uses this to index commit slots globally.
    pub fn occupancy(&self) -> (u64, u32) {
        (self.cycle, self.used)
    }
}

/// Bandwidth limiter for the out-of-order issue stage: requests may
/// target any cycle at or above a monotonically advancing floor.
///
/// Internally a dense power-of-two ring of per-cycle grant counts
/// indexed by the cycle's low bits. Live (possibly non-zero) counts
/// always span fewer than `counts.len()` cycles — `[zeroed_to, hi)` —
/// so two live cycles never alias one slot; slots vacated as the floor
/// advances are zeroed lazily before the ring wraps onto them. This
/// replaces a `HashMap<u64, u32>` that dominated the issue-stage
/// profile.
///
/// Ring growth is capped: grants beyond [`WindowSlots::MAX_LEN`]
/// cycles past the reclaimable window spill into a sparse overflow
/// map instead of growing the ring. Only pathological latencies land
/// there — a dropped MAC verification is modeled as a `2^40`-cycle
/// delay, and a dense ring spanning it would be an 8 TB allocation.
#[derive(Debug, Clone)]
pub struct WindowSlots {
    width: u32,
    counts: Vec<u32>,
    /// All cycles below this have had their ring slot zeroed; never
    /// exceeds `floor`.
    zeroed_to: u64,
    /// One past the highest ring-granted cycle (upper bound of live
    /// ring counts; overflow grants are tracked separately).
    hi: u64,
    floor: u64,
    /// Grant counts for cycles at or beyond the capped ring
    /// (`>= zeroed_to + counts.len()` at all times — entries the
    /// window slides over are migrated into the ring by `ensure`).
    overflow: HashMap<u64, u32>,
}

impl WindowSlots {
    const INITIAL_LEN: usize = 1024;
    /// Ring-size cap (2^20 cycles ≈ 4 MB of counts); beyond it the
    /// sparse overflow map takes over.
    const MAX_LEN: usize = 1 << 20;

    /// Creates a limiter granting `width` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        Self {
            width,
            counts: vec![0; Self::INITIAL_LEN],
            zeroed_to: 0,
            hi: 0,
            floor: 0,
            overflow: HashMap::new(),
        }
    }

    /// Grants a slot at the first cycle `>= max(at, floor)` with
    /// capacity.
    pub fn take(&mut self, at: u64) -> u64 {
        let mut c = at.max(self.floor);
        loop {
            self.ensure(c);
            let len = self.counts.len() as u64;
            let mask = self.counts.len() - 1;
            let limit = self.zeroed_to + len;
            if c >= limit {
                // Beyond the capped ring even after reclaiming: the
                // sparse far-future path.
                while *self.overflow.get(&c).unwrap_or(&0) >= self.width {
                    c += 1;
                }
                *self.overflow.entry(c).or_insert(0) += 1;
                return c;
            }
            while c < limit && self.counts[(c as usize) & mask] >= self.width {
                c += 1;
            }
            if c < limit {
                self.counts[(c as usize) & mask] += 1;
                if c >= self.hi {
                    self.hi = c + 1;
                }
                return c;
            }
        }
    }

    /// Advances the floor: no future `take` will target cycles below
    /// `floor` (the dispatch time of the current instruction, which
    /// lower-bounds all future issue times).
    pub fn advance_floor(&mut self, floor: u64) {
        if floor > self.floor {
            self.floor = floor;
        }
    }

    /// Makes cycle `c` addressable if the cap allows: first reclaims
    /// slots below the floor (they can never be granted again), then
    /// doubles the ring — up to [`WindowSlots::MAX_LEN`] — if the live
    /// span `[zeroed_to, c]` still does not fit. Whenever the window
    /// moves, overflow entries it now covers migrate into the ring.
    fn ensure(&mut self, c: u64) {
        let len = self.counts.len() as u64;
        if c < self.zeroed_to + len {
            return;
        }
        let mut moved = false;
        if self.floor > self.zeroed_to {
            if self.floor >= self.zeroed_to + len {
                self.counts.fill(0);
            } else {
                let mask = self.counts.len() - 1;
                for cy in self.zeroed_to..self.floor {
                    self.counts[(cy as usize) & mask] = 0;
                }
            }
            self.zeroed_to = self.floor;
            if self.hi < self.zeroed_to {
                self.hi = self.zeroed_to;
            }
            moved = true;
        }
        if c >= self.zeroed_to + len && self.counts.len() < Self::MAX_LEN {
            let mut new_len = self.counts.len();
            while c >= self.zeroed_to + new_len as u64 && new_len < Self::MAX_LEN {
                new_len *= 2;
            }
            let mut counts = vec![0u32; new_len];
            let old_mask = self.counts.len() - 1;
            for cy in self.zeroed_to..self.hi {
                counts[(cy as usize) & (new_len - 1)] = self.counts[(cy as usize) & old_mask];
            }
            self.counts = counts;
            moved = true;
        }
        if moved && !self.overflow.is_empty() {
            // Re-home overflow entries the window now covers. Slots in
            // [hi, limit) are zero by the ring invariant, so this is a
            // plain store; entries below `zeroed_to` can never be
            // granted again and are dropped outright.
            let limit = self.zeroed_to + self.counts.len() as u64;
            let mask = self.counts.len() - 1;
            let zeroed_to = self.zeroed_to;
            let counts = &mut self.counts;
            let hi = &mut self.hi;
            self.overflow.retain(|&cy, cnt| {
                if cy >= limit {
                    return true;
                }
                if cy >= zeroed_to {
                    counts[(cy as usize) & mask] = *cnt;
                    if cy >= *hi {
                        *hi = cy + 1;
                    }
                }
                false
            });
        }
    }
}

/// A pool of identical functional units: each grant occupies the chosen
/// unit for `occupancy` cycles (1 = fully pipelined).
#[derive(Debug, Clone)]
pub struct FuPool {
    free_at: Vec<u64>,
}

impl FuPool {
    /// Creates a pool of `units` units.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: u32) -> Self {
        assert!(units > 0, "unit count must be positive");
        Self { free_at: vec![0; units as usize] }
    }

    /// Grants the earliest-available unit no earlier than `at`,
    /// occupying it for `occupancy` cycles. Returns the start cycle.
    pub fn take(&mut self, at: u64, occupancy: u64) -> u64 {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("pool is non-empty");
        let start = at.max(self.free_at[idx]);
        self.free_at[idx] = start + occupancy.max(1);
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_slots_pack_per_cycle() {
        let mut s = InOrderSlots::new(2);
        assert_eq!(s.take(5), 5);
        assert_eq!(s.take(5), 5);
        assert_eq!(s.take(5), 6);
        assert_eq!(s.take(6), 6); // second slot of cycle 6
        assert_eq!(s.take(6), 7);
        assert_eq!(s.take(100), 100);
    }

    #[test]
    fn window_slots_allow_out_of_order() {
        let mut s = WindowSlots::new(1);
        assert_eq!(s.take(10), 10);
        assert_eq!(s.take(5), 5); // earlier cycle still available
        assert_eq!(s.take(5), 6);
        assert_eq!(s.take(10), 11);
    }

    #[test]
    fn window_floor_blocks_past() {
        let mut s = WindowSlots::new(4);
        s.advance_floor(100);
        assert_eq!(s.take(5), 100);
    }

    /// Pin the ring-buffer window against a naive unbounded model
    /// through wrap-around (cycles far beyond the 1024-slot initial
    /// ring with the floor advancing behind them, forcing slot reuse),
    /// growth (a live span wider than the ring, forcing a resize that
    /// must carry every live count across), and far leaps past the
    /// ring-size cap (the dropped-MAC `2^40` sentinel, which must land
    /// in the sparse overflow map instead of growing the ring).
    #[test]
    fn window_ring_wrap_and_growth_match_dense_model() {
        fn naive_take(counts: &mut HashMap<u64, u32>, width: u32, floor: u64, at: u64) -> u64 {
            let mut c = at.max(floor);
            while *counts.get(&c).unwrap_or(&0) >= width {
                c += 1;
            }
            *counts.entry(c).or_insert(0) += 1;
            c
        }

        for width in [1u32, 2, 4] {
            let mut ring = WindowSlots::new(width);
            let mut dense: HashMap<u64, u32> = HashMap::new();
            let mut floor = 0u64;
            let mut rng = 0x2006_u64;
            let mut base = 0u64;
            for i in 0..20_000u64 {
                // SplitMix64: deterministic, no external RNG.
                rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;

                // Mostly local jitter; occasionally leap far past the
                // ring (wrap) or stretch the live span (growth).
                let at = match z % 97 {
                    0 => base + 3000 + z % 5000, // wider than the ring: growth
                    1..=5 => base + 1500,        // just past: wrap via reclaim
                    6 => base + (1u64 << 40) + z % 8, // past the cap: overflow map
                    _ => base + z % 64,
                };
                assert_eq!(
                    ring.take(at),
                    naive_take(&mut dense, width, floor, at),
                    "width {width}, step {i}, at {at}, floor {floor}"
                );
                // Advance the floor the way dispatch does: monotonically,
                // trailing the issue front.
                if z.is_multiple_of(11) {
                    base += 1 + z % 40;
                    floor = floor.max(base.saturating_sub(20));
                    ring.advance_floor(floor);
                }
            }
        }
    }

    #[test]
    fn fu_pool_balances_units() {
        let mut p = FuPool::new(2);
        assert_eq!(p.take(0, 10), 0); // unit 0 busy till 10
        assert_eq!(p.take(0, 10), 0); // unit 1 busy till 10
        assert_eq!(p.take(0, 10), 10); // back to unit 0
    }

    #[test]
    fn fu_pool_pipelined_units() {
        let mut p = FuPool::new(1);
        assert_eq!(p.take(0, 1), 0);
        assert_eq!(p.take(0, 1), 1);
        assert_eq!(p.take(0, 1), 2);
    }

    #[test]
    fn fu_pool_nonpipelined_divider() {
        let mut p = FuPool::new(1);
        assert_eq!(p.take(0, 20), 0);
        assert_eq!(p.take(5, 20), 20);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        InOrderSlots::new(0);
    }
}
