//! Cycle accounting and structured event tracing.
//!
//! Two observability layers live here:
//!
//! * **Stall attribution** (always on, allocation-free): every commit
//!   slot the machine *loses* — `commit_width × cycles` minus retired
//!   instructions — is charged to exactly one [`StallCause`],
//!   CPI-stack style. Causes propagate through the dependence graph:
//!   an ALU op waiting on a load that missed to DRAM charges its lost
//!   slots to [`StallCause::DramBus`], not to a generic "data
//!   dependence". The totals land in [`StallBreakdown`] on
//!   [`SimReport`](crate::SimReport), and the completeness invariant
//!   `sum(breakdown) + insts == commit_width × cycles` holds exactly
//!   (checked by `secsim-check`).
//!
//! * **Event tracing** (zero-cost when off): with a [`TraceConfig`],
//!   [`SimSession`](crate::SimSession) records ring-buffered
//!   [`TraceEvent`]s — per-instruction stage spans, store-buffer holds,
//!   MAC-queue verification windows, bus/DRAM transfers — plus RUU and
//!   auth-queue occupancy series, and exports them as Chrome
//!   `trace_event` JSON via [`SimTrace::to_chrome`] (loadable in
//!   `about://tracing` / Perfetto).

use secsim_isa::Inst;
use secsim_mem::{BusKind, BusXfer};
use secsim_stats::{Json, OccupancySeries, Timeline};
use std::collections::VecDeque;

/// Why a commit slot was lost (or, transitively, why a value was late).
///
/// Ordered roughly front-to-back through the pipe; the attribution
/// cascade keeps the *earliest binding* cause on ties so slots are never
/// double-charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallCause {
    /// Fetch/decode/commit bandwidth and pipeline-depth latency — the
    /// residual cost of being a pipeline at all.
    Frontend,
    /// Instruction-line miss (L1I/L2/off-chip fetch path).
    IcacheMiss,
    /// Branch mispredict resolve + redirect.
    Mispredict,
    /// *Authen-then-fetch*: the bus grant waited for the verification
    /// watermark.
    FetchGate,
    /// RUU full: dispatch waited for the commit of the instruction
    /// `ruu_size` ago.
    RuuFull,
    /// LSQ full: dispatch waited for an older memory op to commit.
    LsqFull,
    /// Issue-bandwidth or functional-unit contention.
    FuBusy,
    /// Long-latency execution (divide and friends).
    Exec,
    /// Data-side on-chip miss (L1D miss hitting L2).
    DcacheMiss,
    /// Off-chip latency and bus/DRAM contention on the data side.
    DramBus,
    /// *Authen-then-issue*: instruction or loaded value unusable until
    /// verified.
    AuthIssue,
    /// *Authen-then-commit*: retirement waited for verification.
    AuthCommit,
    /// *Authen-then-write*: store-buffer release watermark (including
    /// back-pressure from a full store buffer and end-of-run drain).
    AuthWrite,
    /// Slots after the last commit while the machine quiesced (runs
    /// capped by `max_insts`, fault tails).
    Drain,
}

impl StallCause {
    /// Number of distinct causes.
    pub const COUNT: usize = 14;

    /// All causes, in display order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::Frontend,
        StallCause::IcacheMiss,
        StallCause::Mispredict,
        StallCause::FetchGate,
        StallCause::RuuFull,
        StallCause::LsqFull,
        StallCause::FuBusy,
        StallCause::Exec,
        StallCause::DcacheMiss,
        StallCause::DramBus,
        StallCause::AuthIssue,
        StallCause::AuthCommit,
        StallCause::AuthWrite,
        StallCause::Drain,
    ];

    /// Stable snake_case name (used in JSON and result tables).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Frontend => "frontend",
            StallCause::IcacheMiss => "icache_miss",
            StallCause::Mispredict => "mispredict",
            StallCause::FetchGate => "fetch_gate",
            StallCause::RuuFull => "ruu_full",
            StallCause::LsqFull => "lsq_full",
            StallCause::FuBusy => "fu_busy",
            StallCause::Exec => "exec",
            StallCause::DcacheMiss => "dcache_miss",
            StallCause::DramBus => "dram_bus",
            StallCause::AuthIssue => "auth_issue",
            StallCause::AuthCommit => "auth_commit",
            StallCause::AuthWrite => "auth_write",
            StallCause::Drain => "drain",
        }
    }

    /// Inverse of [`StallCause::name`].
    pub fn from_name(name: &str) -> Option<StallCause> {
        StallCause::ALL.into_iter().find(|c| c.name() == name)
    }

    fn index(self) -> usize {
        StallCause::ALL.iter().position(|&c| c == self).expect("cause is in ALL")
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lost commit slots per [`StallCause`], accumulated over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallBreakdown {
    slots: [u64; StallCause::COUNT],
}

impl Default for StallBreakdown {
    fn default() -> Self {
        Self { slots: [0; StallCause::COUNT] }
    }
}

impl StallBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `slots` lost slots to `cause`.
    pub fn add(&mut self, cause: StallCause, slots: u64) {
        self.slots[cause.index()] += slots;
    }

    /// Slots charged to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.slots[cause.index()]
    }

    /// Total lost slots across all causes.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// `(cause, slots)` pairs in display order (zeros included).
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.into_iter().map(move |c| (c, self.slots[c.index()]))
    }

    /// Serializes as a name→count object (all causes, fixed order).
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.iter().map(|(c, n)| (c.name().to_string(), Json::UInt(n))).collect(),
        )
    }

    /// Inverse of [`StallBreakdown::to_json`]; `None` on any unknown
    /// or non-integer entry.
    pub fn from_json(v: &Json) -> Option<StallBreakdown> {
        let mut b = StallBreakdown::new();
        match v {
            Json::Object(pairs) => {
                for (name, count) in pairs {
                    b.add(StallCause::from_name(name)?, count.as_u64()?);
                }
                Some(b)
            }
            _ => None,
        }
    }
}

/// Event-trace configuration for [`SimSession`](crate::SimSession).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity per event source: only the last `capacity` events
    /// of each kind are kept (occupancy series always cover the whole
    /// run).
    pub capacity: usize,
    /// Occupancy-counter sampling interval, cycles.
    pub sample_interval: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 4096, sample_interval: 64 }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Per-instruction stage span (fetch → commit) with its commit-time
    /// binding constraint and the commit slots lost ahead of it.
    Inst {
        /// Dynamic instruction index.
        seq: u64,
        /// Program counter.
        pc: u32,
        /// Decoded instruction.
        inst: Inst,
        /// Fetch cycle.
        fetch: u64,
        /// Dispatch cycle.
        dispatch: u64,
        /// Issue cycle.
        issue: u64,
        /// Execution-complete cycle.
        complete: u64,
        /// Commit cycle.
        commit: u64,
        /// Binding constraint on the commit time.
        cause: StallCause,
        /// Commit slots lost immediately before this retire.
        lost: u64,
    },
    /// A store held in the store buffer past commit (authen-then-write).
    StoreRelease {
        /// Dynamic instruction index of the store.
        seq: u64,
        /// Commit cycle.
        commit: u64,
        /// Buffer-release cycle (`>= commit`).
        release: u64,
    },
    /// One MAC-queue verification window.
    Auth {
        /// Request id (1-based).
        id: u64,
        /// Cycle the block's data was home.
        arrive: u64,
        /// Cycle the MAC engine started on it.
        start: u64,
        /// Verification-complete cycle.
        done: u64,
    },
    /// One fully-timed bus/DRAM transaction.
    Bus(BusXfer),
}

/// Everything an event-traced run captured; export with
/// [`SimTrace::to_chrome`].
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// Captured events (per-source ring-buffered to
    /// [`TraceConfig::capacity`]).
    pub events: Vec<TraceEvent>,
    /// RUU occupancy deltas over the whole run.
    pub ruu_occupancy: OccupancySeries,
    /// Auth-queue occupancy deltas (data home → verified) over the
    /// whole run.
    pub authq_occupancy: OccupancySeries,
    /// Total run cycles.
    pub cycles: u64,
    /// Sampling interval the occupancy counters are exported at.
    pub sample_interval: u64,
}

fn bus_kind_label(kind: BusKind) -> &'static str {
    match kind {
        BusKind::InstrFetch => "ifetch",
        BusKind::DataFetch => "dfetch",
        BusKind::Writeback => "writeback",
        BusKind::MacFetch => "mac fetch",
        BusKind::MacWrite => "mac write",
        BusKind::CounterFetch => "counter fetch",
        BusKind::RemapFetch => "remap fetch",
        BusKind::RemapWrite => "remap write",
        BusKind::TreeFetch => "tree fetch",
    }
}

impl SimTrace {
    /// Renders the Chrome `trace_event` JSON document: pipeline spans on
    /// the `pipeline` track, store-buffer holds, MAC-queue windows,
    /// bus-arbitration waits and DRAM bursts each on their own track,
    /// plus `ruu_occupancy` / `authq_occupancy` counters.
    pub fn to_chrome(&self) -> Json {
        let mut tl = Timeline::new();
        for e in &self.events {
            match *e {
                TraceEvent::Inst {
                    seq,
                    pc,
                    inst,
                    fetch,
                    commit,
                    cause,
                    lost,
                    dispatch,
                    issue,
                    complete,
                } => {
                    tl.push_span_args(
                        "pipeline",
                        &inst.to_string(),
                        fetch,
                        commit,
                        vec![
                            ("seq".to_string(), Json::UInt(seq)),
                            ("pc".to_string(), Json::Str(format!("{pc:#x}"))),
                            ("dispatch".to_string(), Json::UInt(dispatch)),
                            ("issue".to_string(), Json::UInt(issue)),
                            ("complete".to_string(), Json::UInt(complete)),
                            ("cause".to_string(), Json::Str(cause.name().to_string())),
                            ("lost_slots".to_string(), Json::UInt(lost)),
                        ],
                    );
                }
                TraceEvent::StoreRelease { seq, commit, release } => {
                    tl.push_span_args(
                        "store-buffer",
                        "hold",
                        commit,
                        release,
                        vec![("seq".to_string(), Json::UInt(seq))],
                    );
                }
                TraceEvent::Auth { id, arrive, start, done } => {
                    tl.push_span_args(
                        "mac-queue",
                        "verify",
                        start,
                        done,
                        vec![
                            ("id".to_string(), Json::UInt(id)),
                            ("arrive".to_string(), Json::UInt(arrive)),
                        ],
                    );
                }
                TraceEvent::Bus(x) => {
                    if x.granted > x.requested {
                        tl.push_span("bus-arb", bus_kind_label(x.kind), x.requested, x.granted);
                    }
                    tl.push_span_args(
                        "dram",
                        bus_kind_label(x.kind),
                        x.granted,
                        x.done,
                        vec![
                            ("addr".to_string(), Json::Str(format!("{:#x}", x.addr))),
                            ("bytes".to_string(), Json::UInt(u64::from(x.bytes))),
                            ("first_ready".to_string(), Json::UInt(x.first_ready)),
                        ],
                    );
                }
            }
        }
        for (ts, level) in self.ruu_occupancy.samples(self.sample_interval) {
            tl.push_counter("ruu_occupancy", ts, level as f64);
        }
        for (ts, level) in self.authq_occupancy.samples(self.sample_interval) {
            tl.push_counter("authq_occupancy", ts, level as f64);
        }
        tl.to_chrome_trace()
    }
}

/// Live event recorder threaded through the pipeline loop (only when a
/// [`TraceConfig`] is set on the session).
#[derive(Debug)]
pub(crate) struct Tracer {
    cfg: TraceConfig,
    insts: VecDeque<TraceEvent>,
    releases: VecDeque<TraceEvent>,
    ruu: OccupancySeries,
}

impl Tracer {
    pub(crate) fn new(cfg: TraceConfig) -> Self {
        Self {
            cfg,
            insts: VecDeque::new(),
            releases: VecDeque::new(),
            ruu: OccupancySeries::new(),
        }
    }

    fn push_ring(ring: &mut VecDeque<TraceEvent>, cap: usize, ev: TraceEvent) {
        if cap == 0 {
            return;
        }
        if ring.len() == cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_inst(
        &mut self,
        seq: u64,
        pc: u32,
        inst: Inst,
        fetch: u64,
        dispatch: u64,
        issue: u64,
        complete: u64,
        commit: u64,
        cause: StallCause,
        lost: u64,
    ) {
        self.ruu.delta(dispatch, 1);
        self.ruu.delta(commit, -1);
        Self::push_ring(
            &mut self.insts,
            self.cfg.capacity,
            TraceEvent::Inst { seq, pc, inst, fetch, dispatch, issue, complete, commit, cause, lost },
        );
    }

    pub(crate) fn record_store_release(&mut self, seq: u64, commit: u64, release: u64) {
        Self::push_ring(
            &mut self.releases,
            self.cfg.capacity,
            TraceEvent::StoreRelease { seq, commit, release },
        );
    }

    /// Folds in the post-run sources (MAC-queue spans, bus transfer log)
    /// and produces the final [`SimTrace`].
    pub(crate) fn finish(
        self,
        auth_spans: impl Iterator<Item = (u64, u64, u64)>,
        bus: &[BusXfer],
        cycles: u64,
    ) -> SimTrace {
        let cap = self.cfg.capacity;
        let mut events: Vec<TraceEvent> = self.insts.into_iter().collect();
        events.extend(self.releases);
        let mut authq = OccupancySeries::new();
        let mut auth_ring: VecDeque<TraceEvent> = VecDeque::new();
        for (id0, (arrive, start, done)) in auth_spans.enumerate() {
            authq.delta(arrive, 1);
            authq.delta(done, -1);
            Self::push_ring(
                &mut auth_ring,
                cap,
                TraceEvent::Auth { id: id0 as u64 + 1, arrive, start, done },
            );
        }
        events.extend(auth_ring);
        let skip = bus.len().saturating_sub(cap);
        events.extend(bus[skip..].iter().map(|&x| TraceEvent::Bus(x)));
        SimTrace {
            events,
            ruu_occupancy: self.ruu,
            authq_occupancy: authq,
            cycles,
            sample_interval: self.cfg.sample_interval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_names_round_trip() {
        for c in StallCause::ALL {
            assert_eq!(StallCause::from_name(c.name()), Some(c));
            assert_eq!(c.to_string(), c.name());
        }
        assert_eq!(StallCause::from_name("nope"), None);
    }

    #[test]
    fn breakdown_accumulates_and_round_trips() {
        let mut b = StallBreakdown::new();
        b.add(StallCause::AuthIssue, 100);
        b.add(StallCause::DramBus, 7);
        b.add(StallCause::AuthIssue, 1);
        assert_eq!(b.get(StallCause::AuthIssue), 101);
        assert_eq!(b.total(), 108);
        let back = StallBreakdown::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn breakdown_rejects_unknown_causes() {
        let j = Json::obj(vec![("not_a_cause", Json::UInt(1))]);
        assert!(StallBreakdown::from_json(&j).is_none());
        assert!(StallBreakdown::from_json(&Json::Null).is_none());
    }

    #[test]
    fn tracer_ring_keeps_last_capacity_events() {
        let mut t = Tracer::new(TraceConfig { capacity: 2, sample_interval: 16 });
        for seq in 0..5u64 {
            t.record_store_release(seq, seq * 10, seq * 10 + 3);
        }
        let trace = t.finish(std::iter::empty(), &[], 100);
        let seqs: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::StoreRelease { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![3, 4]);
    }
}
