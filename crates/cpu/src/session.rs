//! The unified simulation entry point.
//!
//! [`SimSession`] is one builder for every way to run the pipeline:
//! configure bus tracing, event tracing, a retire observer, and an
//! optional [`FaultPlan`], then [`run`](SimSession::run) an image —
//! or [`run_program`](SimSession::run_program) a
//! [`ProgramSource`] (builtin kernel, fuzz spec, or external image),
//! which is the single front door programs enter simulations through.
//! All observers are optional and none affects the computed timing — a
//! bare session is cycle-for-cycle (and byte-for-byte in its
//! [`SimReport`]) identical to the bare pipeline.
//!
//! A run finishes with a structured [`SimOutcome`] rather than an
//! optional exception field callers can ignore: tampering detection and
//! cycle-fence trips are distinct variants carrying their evidence.
//!
//! # Examples
//!
//! ```
//! use secsim_core::Policy;
//! use secsim_cpu::{SimConfig, SimSession, TraceConfig};
//! use secsim_isa::{Asm, FlatMem, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1000);
//! a.addi(Reg::R1, Reg::R0, 7);
//! a.halt();
//! let mut mem = FlatMem::new(0x1000, 1 << 16);
//! mem.load_words(0x1000, &a.assemble()?);
//!
//! let cfg = SimConfig::paper_256k(Policy::authen_then_commit());
//! let mut retires = 0u64;
//! let out = SimSession::new(&cfg)
//!     .trace(TraceConfig::default())
//!     .observe(|_r| retires += 1)
//!     .run(&mut mem, 0x1000);
//! assert!(matches!(out, secsim_cpu::SimOutcome::Completed(_)));
//! assert!(out.report().halted);
//! assert_eq!(retires, out.report().insts);
//! let run = out.into_run();
//! let chrome = run.trace.expect("tracing was on").to_chrome();
//! assert!(chrome.get("traceEvents").is_some());
//! # Ok(())
//! # }
//! ```

use crate::config::SimConfig;
use crate::observe::RetireRecord;
use crate::pipeline::{run_pipeline, BusTraceMode, SecureImage};
use crate::report::SimReport;
use crate::trace::{SimTrace, TraceConfig};
use secsim_core::{Exposure, FaultPlan, TamperCause};
use secsim_isa::ArchState;
use secsim_workloads::ProgramSource;

/// Everything one simulation run produced, however it ended.
#[derive(Debug)]
pub struct SimRun {
    /// Timing report (cycles, counters, stall breakdown, events).
    pub report: SimReport,
    /// Final architectural state of the functional execution.
    pub state: ArchState,
    /// Structured event trace, present iff [`SimSession::trace`] was
    /// configured.
    pub trace: Option<SimTrace>,
}

/// How a simulation run ended.
///
/// Every variant carries the full [`SimRun`]; the variant itself is the
/// security verdict. Callers that only need the report can use
/// [`report`](SimOutcome::report) / [`into_report`](SimOutcome::into_report)
/// regardless of variant.
#[derive(Debug)]
pub enum SimOutcome {
    /// The program ran to completion (halt, decode fault, or
    /// `max_insts`) with no authentication failure.
    Completed(SimRun),
    /// MAC verification failed: a precise security exception was raised
    /// at `cycle` for the line at `line_addr`, the pipeline squashed
    /// everything younger than the detection point, and `exposure`
    /// records how much tainted work beat detection under the active
    /// policy.
    TamperDetected {
        /// The run up to (and draining past) the exception.
        run: SimRun,
        /// Cycle the failing verification completed.
        cycle: u64,
        /// Address of the line that failed verification.
        line_addr: u32,
        /// What corrupted the line, as attributed from the fault plan
        /// ([`TamperCause::StaticImage`] when the image was tampered
        /// before the run).
        cause: TamperCause,
        /// Architectural effects dependent on the tampered line that
        /// predate detection.
        exposure: Exposure,
    },
    /// The cycle fence ([`SimConfig::max_cycles`]) tripped before the
    /// program finished — the watchdog outcome for dropped MAC
    /// verifications and runaway programs.
    CycleLimitExceeded {
        /// The run up to the fence.
        run: SimRun,
        /// The fence that tripped (`cfg.max_cycles`).
        cycle: u64,
    },
}

impl SimOutcome {
    /// The run's artifacts, whichever way it ended.
    pub fn run(&self) -> &SimRun {
        match self {
            SimOutcome::Completed(run) => run,
            SimOutcome::TamperDetected { run, .. } => run,
            SimOutcome::CycleLimitExceeded { run, .. } => run,
        }
    }

    /// Consumes the outcome, keeping the run's artifacts.
    pub fn into_run(self) -> SimRun {
        match self {
            SimOutcome::Completed(run) => run,
            SimOutcome::TamperDetected { run, .. } => run,
            SimOutcome::CycleLimitExceeded { run, .. } => run,
        }
    }

    /// The timing report, whichever way the run ended.
    pub fn report(&self) -> &SimReport {
        &self.run().report
    }

    /// Consumes the outcome, keeping only the timing report.
    pub fn into_report(self) -> SimReport {
        self.into_run().report
    }

    /// The final architectural state.
    pub fn state(&self) -> &ArchState {
        &self.run().state
    }

    /// Whether the run ended in a detected authentication failure.
    pub fn detected(&self) -> bool {
        matches!(self, SimOutcome::TamperDetected { .. })
    }

    /// The exposure ledger, when tampering was detected.
    pub fn exposure(&self) -> Option<Exposure> {
        match self {
            SimOutcome::TamperDetected { exposure, .. } => Some(*exposure),
            _ => None,
        }
    }

    /// The variant's name, for logs and campaign tables.
    pub fn verdict_name(&self) -> &'static str {
        match self {
            SimOutcome::Completed(_) => "Completed",
            SimOutcome::TamperDetected { .. } => "TamperDetected",
            SimOutcome::CycleLimitExceeded { .. } => "CycleLimitExceeded",
        }
    }
}

/// A boxed per-retire observer, as registered by [`SimSession::observe`].
type Observer<'a> = Box<dyn FnMut(&RetireRecord) + 'a>;

/// Builder for one simulation run.
pub struct SimSession<'a> {
    cfg: SimConfig,
    bus_mode: BusTraceMode,
    trace: Option<TraceConfig>,
    observer: Option<Observer<'a>>,
    faults: Option<FaultPlan>,
    start: Option<ArchState>,
    program: Option<ProgramSource>,
    seed: u64,
}

impl<'a> SimSession<'a> {
    /// A session with no observers: a bare pipeline run.
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            cfg: *cfg,
            bus_mode: BusTraceMode::Off,
            trace: None,
            observer: None,
            faults: None,
            start: None,
            program: None,
            seed: 0,
        }
    }

    /// Sets the program to simulate: anything that converts into a
    /// [`ProgramSource`] — a [`BenchId`](secsim_workloads::BenchId)
    /// (builtin kernel or fuzz target), an
    /// [`ExternalId`](secsim_workloads::ExternalId), or an explicit
    /// source. This is the single front door for programs; run with
    /// [`run_program`](SimSession::run_program).
    pub fn program(mut self, source: impl Into<ProgramSource>) -> Self {
        self.program = Some(source.into());
        self
    }

    /// Seed for the program build (kernel data layouts, fuzz program
    /// selection; external images ignore it). Defaults to 0.
    pub fn program_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the configured [`program`](SimSession::program)
    /// deterministically in the configured seed and runs it.
    ///
    /// # Panics
    ///
    /// If no program was set — pass one with
    /// [`program`](SimSession::program) first.
    pub fn run_program(self) -> SimOutcome {
        let source = self.program.expect("SimSession::run_program needs .program(...) first");
        let seed = self.seed;
        let mut w = source.build(seed);
        let entry = w.entry;
        self.run(&mut w.mem, entry)
    }

    /// Starts the run from `state` instead of a cold
    /// `ArchState::new(entry)` — the warmup-checkpoint entry point.
    ///
    /// Only the *functional* state (PC, registers, instruction count) is
    /// warm; every timing structure (caches, predictor, MAC queue) still
    /// starts cold, so two sessions resumed from byte-identical states
    /// produce byte-identical reports. The `entry` argument of
    /// [`run`](SimSession::run) is ignored when a start state is set.
    pub fn resume_from(mut self, state: ArchState) -> Self {
        self.start = Some(state);
        self
    }

    /// Enables (or disables) the attacker-visible bus trace
    /// ([`SimReport::bus_events`]) plus resolved-control and
    /// first-instruction timing capture.
    pub fn trace_bus(mut self, on: bool) -> Self {
        self.bus_mode = BusTraceMode::full_if(on);
        self
    }

    /// Enables the *streaming* bus trace: every attacker-visible event
    /// is folded into the constant-size [`SimReport::bus_digest`]
    /// instead of being retained in [`SimReport::bus_events`]. Memory
    /// stays O(1) however long the run, so two-run obliviousness
    /// comparisons work at checkpointed-warmup (100M-instruction)
    /// scale. Mutually exclusive with [`trace_bus`](Self::trace_bus):
    /// the later call wins.
    pub fn trace_bus_digest(mut self) -> Self {
        self.bus_mode = BusTraceMode::Digest;
        self
    }

    /// Enables structured event tracing; the run's [`SimRun::trace`]
    /// will hold a [`SimTrace`].
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Registers a per-retire observer, called once per committed
    /// instruction in program order.
    pub fn observe(mut self, f: impl FnMut(&RetireRecord) + 'a) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Schedules deterministic mid-run fault injection: each event in
    /// `plan` is applied once the modelled clock passes its cycle.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs `image` from `entry` until it halts, faults, trips the
    /// cycle fence, or detects tampering.
    pub fn run<M: SecureImage>(self, image: &mut M, entry: u32) -> SimOutcome {
        let SimSession { cfg, bus_mode, trace, mut observer, faults, start, .. } = self;
        let observer_dyn: Option<&mut dyn FnMut(&RetireRecord)> = match observer.as_mut() {
            Some(b) => Some(&mut **b),
            None => None,
        };
        let start = start.unwrap_or_else(|| ArchState::new(entry));
        let (report, state, trace, ending) =
            run_pipeline(image, start, &cfg, bus_mode, observer_dyn, trace, faults.as_ref());
        let run = SimRun { report, state, trace };
        if let Some(e) = run.report.exception {
            SimOutcome::TamperDetected {
                run,
                cycle: e.cycle,
                line_addr: e.line_addr,
                cause: ending.cause,
                exposure: ending.exposure,
            }
        } else if let Some(cycle) = ending.cycle_limit {
            SimOutcome::CycleLimitExceeded { run, cycle }
        } else {
            SimOutcome::Completed(run)
        }
    }
}

impl std::fmt::Debug for SimSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("cfg", &self.cfg)
            .field("bus_mode", &self.bus_mode)
            .field("trace", &self.trace)
            .field("observer", &self.observer.as_ref().map(|_| "FnMut"))
            .field("faults", &self.faults)
            .field("start", &self.start)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_core::{EncryptedMemory, FaultKind, Policy};
    use secsim_isa::{Asm, FlatMem, MemIo, Reg};

    fn program() -> (FlatMem, u32) {
        let mut a = Asm::new(0x1000);
        let top = a.new_label();
        a.li(Reg::R1, 0x10_0000);
        a.bind(top).unwrap();
        a.lw(Reg::R1, Reg::R1, 0);
        a.bne(Reg::R1, Reg::R0, top);
        a.halt();
        let mut mem = FlatMem::new(0x1000, 1 << 22);
        mem.load_words(0x1000, &a.assemble().unwrap());
        for i in 0..40u32 {
            let addr = 0x10_0000 + i * 4096;
            let next = if i == 39 { 0 } else { addr + 4096 };
            mem.write_u32(addr, next);
        }
        (mem, 0x1000)
    }

    #[test]
    fn observer_sees_every_retire_in_order() {
        let (mem, entry) = program();
        let cfg = SimConfig::paper_256k(Policy::authen_then_issue());
        let mut seqs = Vec::new();
        let out = SimSession::new(&cfg)
            .observe(|r| seqs.push(r.seq))
            .run(&mut mem.clone(), entry);
        assert_eq!(seqs.len() as u64, out.report().insts);
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn session_matches_bare_pipeline_byte_for_byte() {
        let (mem, entry) = program();
        for policy in [
            Policy::baseline(),
            Policy::authen_then_issue(),
            Policy::authen_then_commit(),
            Policy::authen_then_write(),
            Policy::authen_then_fetch(),
            Policy::commit_plus_fetch(),
        ] {
            let cfg = SimConfig::paper_256k(policy);
            let (old, _, _, _) = crate::pipeline::run_pipeline(
                &mut mem.clone(),
                ArchState::new(entry),
                &cfg,
                BusTraceMode::Off,
                None,
                None,
                None,
            );
            let new = SimSession::new(&cfg).run(&mut mem.clone(), entry).into_report();
            assert_eq!(
                old.to_json().unwrap().render(),
                new.to_json().unwrap().render(),
                "SimSession must reproduce the bare pipeline exactly under {policy}"
            );
        }
    }

    #[test]
    fn digest_session_matches_full_trace_and_retains_no_events() {
        let (mem, entry) = program();
        let cfg = SimConfig::paper_256k(Policy::authen_then_commit());
        let full = SimSession::new(&cfg).trace_bus(true).run(&mut mem.clone(), entry).into_report();
        let digest =
            SimSession::new(&cfg).trace_bus_digest().run(&mut mem.clone(), entry).into_report();
        assert!(!full.bus_events.is_empty(), "full mode retains events");
        assert!(digest.bus_events.is_empty(), "streaming mode retains none");
        assert_eq!(full.bus_digest, digest.bus_digest, "same run, same digest");
        let d = digest.bus_digest.expect("digest mode populates bus_digest");
        assert_eq!(d.events as usize, full.bus_events.len());
    }

    #[test]
    fn faulted_outcome_carries_detection_evidence() {
        // Tight load loop over one data line; the plan corrupts that
        // line mid-run, so the next (re)fetch fails verification.
        let mut a = Asm::new(0x0);
        let top = a.new_label();
        a.li(Reg::R1, 0x1000);
        a.li(Reg::R2, 400);
        a.bind(top).unwrap();
        a.lw(Reg::R3, Reg::R1, 0);
        a.addi(Reg::R2, Reg::R2, -1);
        a.bne(Reg::R2, Reg::R0, top);
        a.halt();
        let words = a.assemble().unwrap();
        let mut plain = vec![0u8; 8192];
        for (i, w) in words.iter().enumerate() {
            plain[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        let mut img = EncryptedMemory::from_plain(0, &plain, &[8; 16], b"sess");
        let cfg = SimConfig::paper_256k(Policy::authen_then_issue());
        let plan = FaultPlan::new().at(300, 0x1000, FaultKind::CiphertextFlip { mask: 0x80 });
        let out = SimSession::new(&cfg).faults(plan).run(&mut img, 0x0);
        match out {
            SimOutcome::TamperDetected { cycle, line_addr, cause, exposure, .. } => {
                assert!(cycle >= 300, "detection postdates injection, got {cycle}");
                assert_eq!(line_addr & !63, 0x1000);
                assert_eq!(cause, TamperCause::CiphertextFlip);
                // Eager (issue) gating admits no tainted work.
                assert_eq!(exposure.total(), 0, "issue gating leaked {exposure}");
            }
            other => panic!("expected TamperDetected, got {other:?}"),
        }
    }

    #[test]
    fn cycle_fence_ends_run_as_limit_exceeded() {
        let (mem, entry) = program();
        let cfg = SimConfig::paper_256k(Policy::baseline()).with_max_cycles(50);
        let out = SimSession::new(&cfg).run(&mut mem.clone(), entry);
        match out {
            SimOutcome::CycleLimitExceeded { cycle, ref run } => {
                assert_eq!(cycle, 50);
                assert!(!run.report.halted);
            }
            other => panic!("expected CycleLimitExceeded, got {other:?}"),
        }
    }
}
