//! The unified simulation entry point.
//!
//! [`SimSession`] replaces the old `simulate` / `simulate_observed`
//! split with one builder: configure bus tracing, event tracing and a
//! retire observer, then [`run`](SimSession::run). All observers are
//! optional and none affects the computed timing — a bare session is
//! cycle-for-cycle (and byte-for-byte in its [`SimReport`]) identical
//! to the deprecated free functions.
//!
//! # Examples
//!
//! ```
//! use secsim_core::Policy;
//! use secsim_cpu::{SimConfig, SimSession, TraceConfig};
//! use secsim_isa::{Asm, FlatMem, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1000);
//! a.addi(Reg::R1, Reg::R0, 7);
//! a.halt();
//! let mut mem = FlatMem::new(0x1000, 1 << 16);
//! mem.load_words(0x1000, &a.assemble()?);
//!
//! let cfg = SimConfig::paper_256k(Policy::authen_then_commit());
//! let mut retires = 0u64;
//! let out = SimSession::new(&cfg)
//!     .trace(TraceConfig::default())
//!     .observe(|_r| retires += 1)
//!     .run(&mut mem, 0x1000);
//! assert!(out.report.halted);
//! assert_eq!(retires, out.report.insts);
//! let chrome = out.trace.expect("tracing was on").to_chrome();
//! assert!(chrome.get("traceEvents").is_some());
//! # Ok(())
//! # }
//! ```

use crate::config::SimConfig;
use crate::observe::RetireRecord;
use crate::pipeline::{run_pipeline, SecureImage};
use crate::report::SimReport;
use crate::trace::{SimTrace, TraceConfig};
use secsim_isa::ArchState;

/// Everything one simulation run produced.
#[derive(Debug)]
pub struct SimOutcome {
    /// Timing report (cycles, counters, stall breakdown, events).
    pub report: SimReport,
    /// Final architectural state of the functional execution.
    pub state: ArchState,
    /// Structured event trace, present iff [`SimSession::trace`] was
    /// configured.
    pub trace: Option<SimTrace>,
}

/// A boxed per-retire observer, as registered by [`SimSession::observe`].
type Observer<'a> = Box<dyn FnMut(&RetireRecord) + 'a>;

/// Builder for one simulation run.
pub struct SimSession<'a> {
    cfg: SimConfig,
    trace_bus: bool,
    trace: Option<TraceConfig>,
    observer: Option<Observer<'a>>,
}

impl<'a> SimSession<'a> {
    /// A session with no observers: equivalent to the deprecated
    /// `simulate(image, entry, cfg, false)`.
    pub fn new(cfg: &SimConfig) -> Self {
        Self { cfg: *cfg, trace_bus: false, trace: None, observer: None }
    }

    /// Enables (or disables) the attacker-visible bus trace
    /// ([`SimReport::bus_events`]) plus resolved-control and
    /// first-instruction timing capture.
    pub fn trace_bus(mut self, on: bool) -> Self {
        self.trace_bus = on;
        self
    }

    /// Enables structured event tracing; the run's [`SimOutcome::trace`]
    /// will hold a [`SimTrace`].
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Registers a per-retire observer, called once per committed
    /// instruction in program order.
    pub fn observe(mut self, f: impl FnMut(&RetireRecord) + 'a) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Runs `image` from `entry` to completion (halt, decode fault, or
    /// `cfg.max_insts`).
    pub fn run<M: SecureImage>(self, image: &mut M, entry: u32) -> SimOutcome {
        let SimSession { cfg, trace_bus, trace, mut observer } = self;
        let observer_dyn: Option<&mut dyn FnMut(&RetireRecord)> = match observer.as_mut() {
            Some(b) => Some(&mut **b),
            None => None,
        };
        let (report, state, trace) =
            run_pipeline(image, entry, &cfg, trace_bus, observer_dyn, trace);
        SimOutcome { report, state, trace }
    }
}

impl std::fmt::Debug for SimSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("cfg", &self.cfg)
            .field("trace_bus", &self.trace_bus)
            .field("trace", &self.trace)
            .field("observer", &self.observer.as_ref().map(|_| "FnMut"))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_core::Policy;
    use secsim_isa::{Asm, FlatMem, MemIo, Reg};

    fn program() -> (FlatMem, u32) {
        let mut a = Asm::new(0x1000);
        let top = a.new_label();
        a.li(Reg::R1, 0x10_0000);
        a.bind(top).unwrap();
        a.lw(Reg::R1, Reg::R1, 0);
        a.bne(Reg::R1, Reg::R0, top);
        a.halt();
        let mut mem = FlatMem::new(0x1000, 1 << 22);
        mem.load_words(0x1000, &a.assemble().unwrap());
        for i in 0..40u32 {
            let addr = 0x10_0000 + i * 4096;
            let next = if i == 39 { 0 } else { addr + 4096 };
            mem.write_u32(addr, next);
        }
        (mem, 0x1000)
    }

    #[test]
    fn observer_sees_every_retire_in_order() {
        let (mem, entry) = program();
        let cfg = SimConfig::paper_256k(Policy::authen_then_issue());
        let mut seqs = Vec::new();
        let out = SimSession::new(&cfg)
            .observe(|r| seqs.push(r.seq))
            .run(&mut mem.clone(), entry);
        assert_eq!(seqs.len() as u64, out.report.insts);
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn session_matches_deprecated_simulate_byte_for_byte() {
        let (mem, entry) = program();
        for policy in [
            Policy::baseline(),
            Policy::authen_then_issue(),
            Policy::authen_then_commit(),
            Policy::authen_then_write(),
            Policy::authen_then_fetch(),
            Policy::commit_plus_fetch(),
        ] {
            let cfg = SimConfig::paper_256k(policy);
            #[allow(deprecated)]
            let old = crate::simulate(&mut mem.clone(), entry, &cfg, false);
            let new = SimSession::new(&cfg).run(&mut mem.clone(), entry).report;
            assert_eq!(
                old.to_json().unwrap().render(),
                new.to_json().unwrap().render(),
                "SimSession must reproduce simulate() exactly under {policy}"
            );
        }
    }
}
