//! The one-pass out-of-order timing model.
//!
//! The simulator executes the program functionally (oracle execution via
//! `secsim_isa::step`) and computes, for every dynamic instruction, the
//! cycle of each pipeline event — fetch, dispatch, issue, complete,
//! commit — under the structural constraints of Table 3 and the gating
//! rules of the active [`Policy`]. In-flight state is carried in ring
//! buffers (RUU / LSQ / store buffer occupancy) and a register-readiness
//! scoreboard, the way SimpleScalar's RUU model does, so policy effects
//! like "commit stalls fill the RUU, which stalls dispatch, which stalls
//! fetch" emerge naturally.
//!
//! ## Model notes (documented simplifications)
//!
//! * Wrong-path instructions are not fetched; a mispredicted branch
//!   instead charges the full resolve + redirect latency to the next
//!   fetch. Wrong-path cache pollution is therefore not modeled.
//! * The *LastRequest tag* variant of authen-then-fetch gates each fetch
//!   on the verification watermark as of its triggering instruction's
//!   issue cycle; the *drain* variant conservatively waits for the whole
//!   queue as filled at that moment.
//! * Store-to-load forwarding matches exact word addresses.

use crate::bpred::BranchPredictor;
use crate::config::SimConfig;
use crate::observe::RetireRecord;
use crate::report::{AuthException, ControlEvent, IoEvent, SimReport};
use crate::sched::{FuPool, InOrderSlots, WindowSlots};
use crate::trace::{SimTrace, StallCause, TraceConfig, Tracer};
use secsim_core::{
    EncryptedMemory, Exposure, FaultEvent, FaultInjector, FaultKind, FaultPlan, FetchGateVariant,
    Policy, SecureMemCtrl, TamperCause, TamperError, MAC_DROP_DELAY,
};
use secsim_isa::{decode, step_decoded, ArchState, FlatMem, Inst, MemIo, MemWidth, OpClass, RegRef};
use secsim_mem::{AccessKind, MemSystem};
use secsim_stats::FastMap;

/// A functional memory image the pipeline can execute from, with an
/// integrity oracle telling which lines would fail MAC verification.
///
/// [`FlatMem`] (plaintext, always valid) and
/// [`EncryptedMemory`] (real ciphertext, tamperable) both qualify.
pub trait SecureImage: MemIo {
    /// Whether the line containing `addr` passes MAC verification.
    fn line_valid(&self, _addr: u32) -> bool {
        true
    }

    /// Applies one scheduled fault to the backing image, reporting
    /// whether stored bits actually changed. Plaintext images carry no
    /// ciphertext, tags, or counters to corrupt, so the default is a
    /// no-op.
    fn apply_fault(&mut self, _ev: &FaultEvent) -> Result<bool, TamperError> {
        Ok(false)
    }
}

impl SecureImage for FlatMem {}

impl SecureImage for EncryptedMemory {
    fn line_valid(&self, addr: u32) -> bool {
        EncryptedMemory::line_valid(self, addr)
    }

    fn apply_fault(&mut self, ev: &FaultEvent) -> Result<bool, TamperError> {
        EncryptedMemory::apply_fault(self, ev)
    }
}

fn reg_slot(r: RegRef) -> usize {
    match r {
        RegRef::Int(x) => x.index(),
        RegRef::Fp(x) => 32 + x.index(),
    }
}

fn exec_latency(inst: &Inst) -> (u64, u64) {
    // (latency, unit occupancy); occupancy > 1 = not pipelined.
    match inst {
        Inst::Mul { .. } => (3, 1),
        Inst::Divu { .. } | Inst::Remu { .. } => (20, 20),
        Inst::Fmul { .. } => (4, 1),
        Inst::Fdiv { .. } => (12, 12),
        i => match i.class() {
            OpClass::FpAlu => (2, 1),
            _ => (1, 1),
        },
    }
}

/// Earliest cycle a new external fetch may be granted under the active
/// policy (0 = ungated). `at` is the cycle the triggering instruction
/// issued — the moment the *LastRequest register* is sampled (§4.2.4).
fn fetch_gate(engine: &SecureMemCtrl, policy: &Policy, at: u64) -> u64 {
    if !policy.gate_fetch {
        return 0;
    }
    let q = engine.queue();
    match policy.fetch_variant {
        // Drain variant: wait for the whole queue as currently filled.
        FetchGateVariant::Drain => q.drain_time(),
        // Tag variant: wait only for requests that existed when the
        // triggering instruction issued.
        FetchGateVariant::LastRequestTag => q.watermark_before(at),
    }
}

/// How a pipeline run ended, beyond what [`SimReport`] captures: the
/// cycle fence (if it tripped), the attributed cause of any detected
/// tampering, and the exposure accumulated before detection. The
/// session layer folds this into a structured `SimOutcome`.
pub(crate) struct RunEnding {
    /// `Some(fence)` when the run was cut off by `cfg.max_cycles`.
    pub cycle_limit: Option<u64>,
    /// What corrupted the detected line (meaningful only when the
    /// report carries an exception).
    pub cause: TamperCause,
    /// Architectural effects dependent on tampered data that predate
    /// the detection cycle.
    pub exposure: Exposure,
}

/// Applies every scheduled fault due at or before `now`: integrity
/// faults corrupt the image and poison any cached copies (so the
/// corruption reaches the chip on the next fill), verification faults
/// arm the controller's one-shot MAC-delay injection. Returns whether
/// any stored bits of the image actually changed (the caller must then
/// drop decoded-instruction caches built over the image).
fn apply_due_faults<M: SecureImage>(
    injector: &mut Option<FaultInjector>,
    now: u64,
    image: &mut M,
    ms: &mut MemSystem<SecureMemCtrl>,
) -> bool {
    let Some(inj) = injector.as_mut() else { return false };
    if !inj.pending() {
        return false;
    }
    let mut mutated = false;
    for ev in inj.take_due(now).to_vec() {
        match ev.kind {
            FaultKind::MacDelay { extra } => ms.engine_mut().inject_mac_delay(extra),
            FaultKind::MacDrop => ms.engine_mut().inject_mac_delay(MAC_DROP_DELAY),
            _ => {
                // A fault aimed outside the image is a scheduled no-op;
                // the injector still records it as applied.
                if image.apply_fault(&ev).unwrap_or(false) {
                    ms.poison_line(ev.addr);
                    mutated = true;
                }
            }
        }
    }
    mutated
}

/// Direct-mapped decoded-instruction cache indexed by word-PC low bits.
///
/// The functional step otherwise re-fetches and re-decodes every dynamic
/// instruction; hot loops span a few dozen static instructions, so a
/// small direct-mapped cache removes that work almost entirely. Program
/// stores probe and evict the covered words (self-modifying fuzz
/// programs stay correct) and injected faults flush the whole cache.
struct DecodeCache {
    /// `pc as u64` per slot; `u64::MAX` = empty (no 32-bit PC matches).
    tags: Vec<u64>,
    insts: Vec<Inst>,
}

impl DecodeCache {
    /// Slots (power of two): covers a 16 KB code footprint exactly.
    const LEN: usize = 4096;

    fn new() -> Self {
        Self { tags: vec![u64::MAX; Self::LEN], insts: vec![Inst::Nop; Self::LEN] }
    }

    #[inline]
    fn slot(pc: u32) -> usize {
        ((pc >> 2) as usize) & (Self::LEN - 1)
    }

    /// The decoding of memory at `pc`, cached.
    #[inline]
    fn lookup<M: MemIo>(&mut self, pc: u32, mem: &mut M) -> Inst {
        let i = Self::slot(pc);
        if self.tags[i] == u64::from(pc) {
            return self.insts[i];
        }
        let inst = decode(mem.fetch_word(pc));
        self.tags[i] = u64::from(pc);
        self.insts[i] = inst;
        inst
    }

    /// Drops any cached decoding of the words a store touched.
    #[inline]
    fn invalidate_store(&mut self, addr: u32, width: MemWidth) {
        let bytes = match width {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        };
        let first = addr & !3;
        let last = addr.wrapping_add(bytes - 1) & !3;
        let mut w = first;
        loop {
            let i = Self::slot(w);
            if self.tags[i] == u64::from(w) {
                self.tags[i] = u64::MAX;
            }
            if w == last {
                break;
            }
            w = w.wrapping_add(4);
        }
    }

    /// Drops everything (the image changed underneath us).
    fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }
}

/// How (and whether) the attacker-visible bus trace is captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum BusTraceMode {
    /// No capture.
    #[default]
    Off,
    /// Retain every [`secsim_mem::BusEvent`] (plus resolved-control and
    /// first-instruction timing capture) — memory grows with the run.
    Full,
    /// Fold events into a constant-size [`secsim_mem::BusDigest`] only:
    /// the streaming mode for 100M-instruction two-run comparisons.
    Digest,
}

impl BusTraceMode {
    pub(crate) fn full_if(on: bool) -> Self {
        if on {
            BusTraceMode::Full
        } else {
            BusTraceMode::Off
        }
    }
}

/// The one-pass timing engine behind [`crate::SimSession`].
///
/// `observer` receives one [`RetireRecord`] per committed instruction;
/// `trace`, when set, turns on structured event tracing and yields a
/// [`SimTrace`]. Neither affects the computed timing. `faults`, when
/// set, schedules deterministic mid-run tampering: due events are
/// applied as the modelled clock advances past their cycle.
///
/// `start` is the architectural state to begin from — `ArchState::new(entry)`
/// for a cold run, or a functionally fast-forwarded state when resuming from
/// a warmup checkpoint. Timing state (caches, predictor, MAC queue) always
/// starts cold; only the *functional* state is warm.
pub(crate) fn run_pipeline<M: SecureImage>(
    image: &mut M,
    start: ArchState,
    cfg: &SimConfig,
    bus_mode: BusTraceMode,
    mut observer: Option<&mut dyn FnMut(&RetireRecord)>,
    trace: Option<TraceConfig>,
    faults: Option<&FaultPlan>,
) -> (SimReport, ArchState, Option<SimTrace>, RunEnding) {
    let policy = cfg.secure.policy;
    let trace_bus = bus_mode == BusTraceMode::Full;
    let mut injector = faults.map(FaultInjector::new);
    let mut ms = MemSystem::new(cfg.mem, SecureMemCtrl::new(cfg.secure.ctrl));
    match bus_mode {
        BusTraceMode::Off => {}
        BusTraceMode::Full => ms.channel_mut().trace_mut().enable(),
        BusTraceMode::Digest => ms.channel_mut().trace_mut().enable_digest(),
    }
    let mut tracer = trace.map(Tracer::new);
    if tracer.is_some() {
        ms.channel_mut().record_transfers();
    }
    let mut bp = BranchPredictor::new(cfg.cpu.bpred);
    let mut st = start;
    let mut icache = DecodeCache::new();

    let ruu = cfg.cpu.ruu_size as usize;
    let lsq = cfg.cpu.lsq_size as usize;
    let sb = cfg.cpu.store_buffer as usize;
    let mut fetch_slots = InOrderSlots::new(cfg.cpu.fetch_width);
    let mut dispatch_slots = InOrderSlots::new(cfg.cpu.decode_width);
    let mut commit_slots = InOrderSlots::new(cfg.cpu.commit_width);
    let mut issue_slots = WindowSlots::new(cfg.cpu.issue_width);
    let mut fu_int = FuPool::new(cfg.cpu.int_alu);
    let mut fu_mul = FuPool::new(cfg.cpu.int_mul);
    let mut fu_fp = FuPool::new(cfg.cpu.fp_alu);
    let mut fu_fpmul = FuPool::new(cfg.cpu.fp_mul);
    let mut fu_mem = FuPool::new(cfg.cpu.mem_ports);

    let mut reg_ready = [0u64; 64];
    // Why each register's value is as late as it is: the stall cause of
    // the producing instruction, inherited through the dependence graph
    // (CPI-stack attribution).
    let mut reg_cause = [StallCause::Frontend; 64];
    let mut commit_ring = vec![0u64; ruu];
    let mut lsq_ring = vec![0u64; lsq];
    let mut store_release_ring = vec![0u64; sb];
    // word address -> (value ready, cache write time, producer cause,
    // producer taint) for forwarding
    let mut store_fwd: FastMap<u32, (u64, u64, StallCause, bool)> = FastMap::default();

    // Exposure accounting: which registers hold values derived from a
    // line that fails verification (one bit per scoreboard slot), and
    // the event cycles of every tainted instruction. Counted against the
    // detection cycle once the run ends; bounded because detection
    // squashes the run.
    let mut reg_taint: u64 = 0;
    let mut cur_iline_tainted = false;
    // Struct-of-arrays taint log: the exposure pass scans each event
    // column independently, and pushes touch four dense u64 streams
    // instead of one padded wide record.
    #[derive(Default)]
    struct TaintLog {
        at_issue: Vec<bool>, // tainted before its own load's data arrived
        issue: Vec<u64>,
        commit: Vec<u64>,
        store_release: Vec<u64>, // 0 = not a store
        bus_granted: Vec<u64>,   // 0 = no dependent off-chip transfer
    }
    const TAINT_CAP: usize = 1 << 20;
    let mut taint_log = TaintLog::default();
    let track_exposure = policy.authenticate;

    let l1i_line_mask = !(cfg.mem.l1i.line_bytes - 1);
    let mut cur_iline: Option<u32> = None;
    let mut iline_auth: u64 = 0;
    let mut fetch_avail: u64 = 0;
    // Why `fetch_avail` is what it is (I-miss, fetch gate, redirect…).
    let mut fetch_cause = StallCause::Frontend;
    let mut prev_commit: u64 = 0;
    let mut prev_commit_cause = StallCause::Frontend;
    // Commit slots consumed or charged so far; every retire advances
    // this past its own global slot index, charging the skipped slots.
    let mut consumed_slots: u64 = 0;
    let commit_width = u64::from(cfg.cpu.commit_width);
    let mut mem_ops: usize = 0;
    let mut stores: usize = 0;
    let mut insts: u64 = 0;
    let mut last_commit: u64 = 0;
    // Cycle the machine fully quiesces: last commit, plus store-buffer
    // and I/O releases that may outlast it (authen-then-write).
    let mut quiesce: u64 = 0;

    let mut report = SimReport::default();
    // Per-instruction counters live in locals — the `CounterSet` name
    // lookup is too slow for the per-inst loop — and flush into
    // `report.counters` once, after the run.
    let mut n_loads: u64 = 0;
    let mut n_load_forwards: u64 = 0;
    let mut n_load_l2_misses: u64 = 0;
    let mut n_stores: u64 = 0;
    let mut n_branches: u64 = 0;
    let mut n_mispredicts: u64 = 0;
    let mut issue_stall_cycles: u64 = 0;
    let mut commit_stall_cycles: u64 = 0;
    let mut write_hold_cycles: u64 = 0;
    let mut exception: Option<AuthException> = None;
    let mut cycle_limit: Option<u64> = None;
    let precise = policy.gate_issue || policy.gate_commit;

    let note_tamper = |image: &M, addr: u32, auth_ready: u64, exc: &mut Option<AuthException>| {
        if auth_ready == 0 {
            return; // not authenticated (baseline) — tampering goes unnoticed
        }
        if !image.line_valid(addr) {
            let better = exc.is_none_or(|e| auth_ready < e.cycle);
            if better {
                *exc = Some(AuthException { cycle: auth_ready, line_addr: addr, precise });
            }
        }
    };

    loop {
        if st.halted {
            report.halted = true;
            break;
        }
        if cfg.max_insts > 0 && insts >= cfg.max_insts {
            break;
        }
        // Recovery: a raised security exception squashes everything
        // younger than the detection point — no instruction whose fetch
        // would postdate the exception enters the pipe. Work already in
        // flight (fetched at or before detection) drains normally; the
        // exposure ledger records how much of it depended on the
        // tampered line.
        if let Some(e) = exception {
            if fetch_avail > e.cycle {
                break;
            }
        }
        // Cycle fence: the watchdog for runs whose modelled clock runs
        // away (dropped MAC verifications, non-terminating fuzz
        // programs). Fetch, commit, and the store-buffer quiesce
        // horizon are the three clocks that can escape.
        if cfg.max_cycles > 0 && fetch_avail.max(prev_commit).max(quiesce) > cfg.max_cycles {
            cycle_limit = Some(cfg.max_cycles);
            break;
        }
        let next_inst = icache.lookup(st.pc, image);
        let info = match step_decoded(&mut st, image, next_inst) {
            Ok(i) => i,
            Err(_) => {
                report.decode_fault = true;
                break;
            }
        };
        // A store may overwrite code: evict any decoding it covered.
        if let Some(ma) = info.mem.filter(|m| m.is_store) {
            icache.invalidate_store(ma.addr, ma.width);
        }

        // ---- fetch ----
        let line = info.pc & l1i_line_mask;
        let mut ifetch_floor: u64 = 0;
        let mut ifetch_granted: u64 = 0;
        if cur_iline != Some(line) {
            if apply_due_faults(&mut injector, fetch_avail, image, &mut ms) {
                icache.flush();
            }
            let bnb = fetch_gate(ms.engine(), &policy, fetch_avail);
            let acc = ms.access(info.pc, AccessKind::IFetch, fetch_avail, bnb);
            note_tamper(image, info.pc, acc.auth_ready, &mut exception);
            cur_iline = Some(line);
            cur_iline_tainted = !image.line_valid(info.pc);
            iline_auth = acc.auth_ready;
            if acc.ready > fetch_avail {
                fetch_cause = if policy.gate_fetch && acc.l2_miss && bnb > fetch_avail {
                    StallCause::FetchGate
                } else if acc.l1_miss {
                    StallCause::IcacheMiss
                } else {
                    StallCause::Frontend
                };
            }
            fetch_avail = fetch_avail.max(acc.ready);
            ifetch_floor = bnb;
            ifetch_granted = acc.bus_granted;
        }
        let ft = fetch_slots.take(fetch_avail);
        let ft_cause = if ft > fetch_avail { StallCause::Frontend } else { fetch_cause };

        // ---- dispatch (rename + RUU/LSQ allocation) ----
        let mut disp_min = ft + cfg.cpu.frontend_depth;
        let mut disp_cause = ft_cause;
        if insts >= ruu as u64 {
            let head = commit_ring[(insts as usize) % ruu];
            if head > disp_min {
                disp_min = head;
                disp_cause = StallCause::RuuFull;
            }
        }
        let is_mem = info.mem.is_some();
        if is_mem && mem_ops >= lsq {
            let head = lsq_ring[mem_ops % lsq];
            if head > disp_min {
                disp_min = head;
                disp_cause = StallCause::LsqFull;
            }
        }
        let dt = dispatch_slots.take(disp_min);
        let dt_cause = if dt > disp_min { StallCause::Frontend } else { disp_cause };
        issue_slots.advance_floor(dt);

        // ---- operand readiness ----
        let mut ready = dt + 1;
        let mut ready_cause = dt_cause;
        let mut tainted_at_issue = cur_iline_tainted;
        for src in info.inst.srcs().into_iter().flatten() {
            let slot = reg_slot(src);
            tainted_at_issue |= (reg_taint >> slot) & 1 != 0;
            if reg_ready[slot] > ready {
                ready = reg_ready[slot];
                ready_cause = reg_cause[slot];
            }
        }
        if policy.gate_issue {
            // The instruction itself must be verified before issue.
            if iline_auth > ready {
                issue_stall_cycles += iline_auth - ready;
                ready = iline_auth;
                ready_cause = StallCause::AuthIssue;
            }
        }

        // ---- issue + execute ----
        let class = info.inst.class();
        let mut data_auth: u64 = 0; // verification time of the D-line touched
        let mut data_tainted = false; // loaded value comes from an invalid line
        let mut store_tag_done: u64 = 0; // authen-then-write watermark
        let mut bus_floor: u64 = 0; // fetch-gate floor of the D-access
        let mut bus_granted: u64 = 0; // its bus-grant cycle (0 = no transfer)
        let it = issue_slots.take(ready);
        let it_cause = if it > ready { StallCause::FuBusy } else { ready_cause };
        // Cause attribution for a D-side access: off-chip misses charge
        // the fetch gate when it held the grant back, else DRAM; on-chip
        // misses charge the cache; L1 hits inherit the issue-time cause.
        let access_cause = |acc: &secsim_mem::MemAccessResult,
                           bnb: u64,
                           start: u64,
                           inherit: StallCause| {
            if acc.ready <= start + 1 {
                inherit
            } else if acc.l2_miss {
                if policy.gate_fetch && bnb > start {
                    StallCause::FetchGate
                } else {
                    StallCause::DramBus
                }
            } else if acc.l1_miss {
                StallCause::DcacheMiss
            } else {
                inherit
            }
        };
        let (complete, complete_cause) = match class {
            OpClass::Load => {
                let start = fu_mem.take(it, 1);
                let start_cause = if start > it { StallCause::FuBusy } else { it_cause };
                let ma = info.mem.expect("load has a memory access");
                let word = ma.addr & !3;
                let fwd = (ma.width != MemWidth::Double)
                    .then(|| store_fwd.get(&word))
                    .flatten()
                    .copied()
                    .filter(|&(_, wtime, _, _)| wtime > start);
                n_loads += 1;
                match fwd {
                    Some((vready, _, producer_cause, fwd_taint)) => {
                        n_load_forwards += 1;
                        data_tainted = fwd_taint;
                        let c = (start + 1).max(vready);
                        (c, if vready > start + 1 { producer_cause } else { start_cause })
                    }
                    None => {
                        if apply_due_faults(&mut injector, start, image, &mut ms) {
                            icache.flush();
                        }
                        let bnb = fetch_gate(ms.engine(), &policy, start);
                        let acc = ms.access(ma.addr, AccessKind::Load, start, bnb);
                        note_tamper(image, ma.addr, acc.auth_ready, &mut exception);
                        data_auth = acc.auth_ready;
                        data_tainted = !image.line_valid(ma.addr);
                        bus_floor = bnb;
                        bus_granted = acc.bus_granted;
                        if acc.l2_miss {
                            n_load_l2_misses += 1;
                        }
                        let mut c = acc.ready;
                        let mut cause = access_cause(&acc, bnb, start, start_cause);
                        if policy.gate_issue && acc.auth_ready > c {
                            // Loaded data unusable until verified.
                            issue_stall_cycles += acc.auth_ready - c;
                            c = acc.auth_ready;
                            cause = StallCause::AuthIssue;
                        }
                        (c, cause)
                    }
                }
            }
            OpClass::Store => {
                let start = fu_mem.take(it, 1);
                let start_cause = if start > it { StallCause::FuBusy } else { it_cause };
                let ma = info.mem.expect("store has a memory access");
                if apply_due_faults(&mut injector, start, image, &mut ms) {
                    icache.flush();
                }
                let bnb = fetch_gate(ms.engine(), &policy, start);
                // Write-allocate fill happens at issue; the commit-time
                // write hits the (now resident) line.
                let acc = ms.access(ma.addr, AccessKind::Store, start, bnb);
                note_tamper(image, ma.addr, acc.auth_ready, &mut exception);
                data_auth = acc.auth_ready;
                bus_floor = bnb;
                bus_granted = acc.bus_granted;
                n_stores += 1;
                if policy.gate_write {
                    let q = ms.engine().queue();
                    store_tag_done = q.done_time(q.last_request());
                }
                // Address generation + buffer entry; the store "finishes"
                // for commit purposes once the line is present.
                let mut c = (start + 1).max(acc.ready);
                let mut cause = access_cause(&acc, bnb, start, start_cause);
                if policy.gate_issue && acc.auth_ready > c {
                    c = acc.auth_ready;
                    cause = StallCause::AuthIssue;
                }
                (c, cause)
            }
            _ => {
                let (lat, occ) = exec_latency(&info.inst);
                let pool = match class {
                    OpClass::IntMul => &mut fu_mul,
                    OpClass::FpAlu => &mut fu_fp,
                    OpClass::FpMulDiv => &mut fu_fpmul,
                    _ => &mut fu_int,
                };
                let start = pool.take(it, occ);
                let cause = if start > it {
                    StallCause::FuBusy
                } else if lat >= 12 {
                    StallCause::Exec
                } else {
                    it_cause
                };
                (start + lat, cause)
            }
        };

        let tainted = tainted_at_issue || data_tainted;
        if let Some(dst) = info.inst.dst() {
            reg_ready[reg_slot(dst)] = complete;
            reg_cause[reg_slot(dst)] = complete_cause;
            // Overwriting a register with a clean value clears its taint.
            reg_taint = (reg_taint & !(1 << reg_slot(dst))) | (u64::from(tainted) << reg_slot(dst));
        }

        // ---- control resolution ----
        if let Some((taken, target)) = info.control {
            n_branches += 1;
            if trace_bus {
                report
                    .control_events
                    .push(ControlEvent { pc: info.pc, taken, target, resolved: complete });
            }
            let (ptaken, ptarget) = bp.predict(info.pc, &info.inst);
            let correct = ptaken == taken && (!taken || ptarget == Some(target));
            bp.record_outcome(correct);
            bp.update(info.pc, &info.inst, taken, target);
            if !correct {
                n_mispredicts += 1;
                let redirect = complete + cfg.cpu.mispredict_redirect;
                if redirect > fetch_avail {
                    fetch_cause = StallCause::Mispredict;
                }
                fetch_avail = fetch_avail.max(redirect);
                cur_iline = None;
            } else if taken {
                // Correctly predicted taken transfer: fetch group breaks.
                if ft + 1 > fetch_avail {
                    fetch_cause = StallCause::Frontend;
                }
                fetch_avail = fetch_avail.max(ft + 1);
                cur_iline = None;
            }
        }

        // ---- commit (in order) ----
        let mut cmin = complete;
        let mut commit_cause = complete_cause;
        if prev_commit > cmin {
            cmin = prev_commit;
            commit_cause = prev_commit_cause;
        }
        if policy.gate_commit {
            let gate = iline_auth.max(data_auth);
            if gate > cmin {
                commit_stall_cycles += gate - cmin;
                cmin = gate;
                commit_cause = StallCause::AuthCommit;
            }
        }
        if class == OpClass::Store && stores >= sb {
            // Store buffer full: the oldest outstanding store must
            // release first (authen-then-write back-pressure).
            let head = store_release_ring[stores % sb];
            if head > cmin {
                cmin = head;
                commit_cause = StallCause::AuthWrite;
            }
        }
        let ct = commit_slots.take(cmin);
        prev_commit = ct;
        prev_commit_cause = commit_cause;
        // ---- commit-slot ledger ----
        // The retire sits at global slot `(ct-1)*width + pos`; every
        // slot skipped since the previous retire is lost, charged to
        // this instruction's binding constraint.
        let (_, slot_pos) = commit_slots.occupancy();
        let slot_idx = (ct - 1) * commit_width + u64::from(slot_pos - 1);
        let lost = slot_idx - consumed_slots;
        if lost > 0 {
            report.stall.add(commit_cause, lost);
        }
        consumed_slots = slot_idx + 1;
        commit_ring[(insts as usize) % ruu] = ct;
        if is_mem {
            lsq_ring[mem_ops % lsq] = ct;
            mem_ops += 1;
        }
        let mut store_release: u64 = 0;
        if class == OpClass::Store {
            let release = ct.max(store_tag_done);
            write_hold_cycles += release - ct;
            quiesce = quiesce.max(release);
            store_release_ring[stores % sb] = release;
            stores += 1;
            store_release = release;
            if let Some(ma) = info.mem {
                if ma.width != MemWidth::Double {
                    store_fwd.insert(ma.addr & !3, (complete, release, complete_cause, tainted));
                }
            }
            if store_fwd.len() > (1 << 20) {
                store_fwd.retain(|_, &mut (_, w, _, _)| w > ct);
            }
        }
        if track_exposure && tainted && taint_log.issue.len() < TAINT_CAP {
            taint_log.at_issue.push(tainted_at_issue);
            taint_log.issue.push(it);
            taint_log.commit.push(ct);
            taint_log.store_release.push(if class == OpClass::Store { store_release } else { 0 });
            taint_log.bus_granted.push(if tainted_at_issue { bus_granted } else { 0 });
        }

        // ---- security-invariant oracles ----
        // Alive under `cargo test` (debug assertions) and the `oracles`
        // feature; compiled out of plain release builds. Each asserts
        // the *definition* of its control point against the cycles the
        // model actually produced.
        if cfg!(any(debug_assertions, feature = "oracles")) {
            if policy.gate_issue {
                assert!(
                    it >= iline_auth,
                    "issue-gate oracle: #{insts} pc={:#x} issued at {it} before \
                     I-line verified at {iline_auth}",
                    info.pc,
                );
                assert!(
                    complete >= data_auth,
                    "issue-gate oracle: #{insts} pc={:#x} load usable at {complete} \
                     before data verified at {data_auth}",
                    info.pc,
                );
            }
            if policy.gate_commit {
                assert!(
                    ct >= iline_auth.max(data_auth),
                    "commit-gate oracle: #{insts} pc={:#x} committed at {ct} before \
                     verification at {}",
                    info.pc,
                    iline_auth.max(data_auth),
                );
            }
            if policy.gate_write && class == OpClass::Store {
                assert!(
                    store_release >= store_tag_done,
                    "write-gate oracle: #{insts} pc={:#x} store released at \
                     {store_release} before watermark {store_tag_done}",
                    info.pc,
                );
            }
        }

        // ---- externally visible I/O ----
        if let Some((port, value)) = info.out {
            // Output channels wait for verification under write gating;
            // commit gating already delayed `ct` past verification.
            let vis = if policy.gate_write {
                let q = ms.engine().queue();
                ct.max(q.done_time(q.last_request()))
            } else {
                ct
            };
            quiesce = quiesce.max(vis);
            report.io_events.push(IoEvent { port, value, cycle: vis });
        }

        if trace_bus && report.inst_timings.len() < crate::TIMING_CAP {
            report.inst_timings.push(crate::InstTiming {
                seq: insts,
                pc: info.pc,
                inst: info.inst,
                fetch: ft,
                dispatch: dt,
                issue: ready.max(dt + 1),
                complete,
                commit: ct,
            });
        }
        if let Some(tr) = tracer.as_mut() {
            tr.record_inst(
                insts,
                info.pc,
                info.inst,
                ft,
                dt,
                it,
                complete,
                ct,
                commit_cause,
                lost,
            );
            if store_release > ct {
                tr.record_store_release(insts, ct, store_release);
            }
        }
        if let Some(obs) = observer.as_mut() {
            obs(&RetireRecord {
                seq: insts,
                pc: info.pc,
                inst: info.inst,
                next_pc: info.next_pc,
                mem: info.mem,
                // `step` already ran, so the state holds post-execution
                // values; FP goes out as raw bits for exact comparison.
                dst: info.inst.dst().map(|d| {
                    let bits = match d {
                        RegRef::Int(r) => u64::from(st.reg(r)),
                        RegRef::Fp(f) => st.freg(f).to_bits(),
                    };
                    (d, bits)
                }),
                out: info.out,
                control: info.control,
                fetch: ft,
                dispatch: dt,
                issue: it,
                complete,
                commit: ct,
                iline_auth,
                data_auth,
                store_tag_done,
                store_release,
                bus_floor,
                bus_granted,
                ifetch_floor,
                ifetch_granted,
            });
        }
        if insts < 40 && std::env::var_os("SECSIM_TRACE_PIPE").is_some() {
            eprintln!(
                "#{insts} pc={:#x} {} ft={ft} dt={dt} ready={ready} complete={complete} ct={ct}",
                info.pc, info.inst
            );
        }
        insts += 1;
        last_commit = ct;
    }

    // ---- final report ----
    report.insts = insts;
    report.cycles = last_commit.max(quiesce).max(1);
    // Close the commit-slot ledger: cycles past the last commit are the
    // write-gate drain (store buffer / gated I/O quiescing), anything
    // else left over is end-of-run drain. After this, exactly
    // `sum(stall) + insts == commit_width × cycles`.
    {
        let total_slots = report.cycles * commit_width;
        let mut trailing = total_slots - consumed_slots;
        if quiesce > last_commit {
            let hold = ((quiesce - last_commit) * commit_width).min(trailing);
            report.stall.add(StallCause::AuthWrite, hold);
            trailing -= hold;
        }
        if trailing > 0 {
            report.stall.add(StallCause::Drain, trailing);
        }
        if cfg!(any(debug_assertions, feature = "oracles")) {
            assert_eq!(
                report.stall.total() + insts,
                total_slots,
                "stall-attribution completeness: breakdown + retires != width × cycles",
            );
        }
    }
    report.exception = exception;
    report.counters.set("pipe.insts", insts);
    report.counters.set("pipe.cycles", report.cycles);
    report.counters.add("pipe.loads", n_loads);
    report.counters.add("pipe.load_forwards", n_load_forwards);
    report.counters.add("pipe.load_l2_miss", n_load_l2_misses);
    report.counters.add("pipe.stores", n_stores);
    report.counters.add("pipe.branches", n_branches);
    report.counters.add("pipe.mispredicts", n_mispredicts);
    report.counters.add("auth.issue_stall_cycles", issue_stall_cycles);
    report.counters.add("auth.commit_stall_cycles", commit_stall_cycles);
    report.counters.add("auth.write_hold_cycles", write_hold_cycles);
    report.counters.merge(&bp.counters());
    {
        let (l1i, l1d, l2) = ms.cache_counters();
        for (prefix, c) in [("l1i", l1i), ("l1d", l1d), ("l2", l2)] {
            for (k, v) in c.iter() {
                report.counters.add(&format!("{prefix}.{k}"), v);
            }
        }
    }
    report.counters.merge(&ms.counters());
    for (k, v) in ms.channel().counters().iter() {
        report.counters.add(&format!("bus.{k}"), v);
    }
    for (k, v) in ms.channel().dram_counters().iter() {
        report.counters.add(&format!("dram.{k}"), v);
    }
    for (k, v) in ms.engine().counters().iter() {
        report.counters.add(&format!("ctrl.{k}"), v);
    }
    for (k, v) in ms.engine().queue().counters().iter() {
        report.counters.add(&format!("auth.{k}"), v);
    }
    if let Some(obf) = ms.engine().obfuscator() {
        for (k, v) in obf.counters().iter() {
            report.counters.add(&format!("obf.{k}"), v);
        }
    }
    if let Some(tree) = ms.engine().tree() {
        for (k, v) in tree.counters().iter() {
            report.counters.add(&format!("tree.{k}"), v);
        }
    }
    if let Some(inj) = &injector {
        report.counters.add("faults.injected", inj.applied().len() as u64);
    }
    report.bus_events = ms.channel().trace().events().to_vec();
    if bus_mode != BusTraceMode::Off {
        report.bus_digest = Some(ms.channel().trace().digest());
    }
    let sim_trace = tracer
        .map(|t| t.finish(ms.engine().queue().spans(), ms.channel().transfers(), report.cycles));

    // ---- exposure ledger ----
    // Count every tainted architectural event that beat detection. The
    // per-policy ordering of the paper falls out: issue gating admits
    // none, commit gating only speculative issues, write gating adds
    // commits, fetch gating adds released stores.
    let exposure = match exception {
        Some(e) if track_exposure => {
            let d = e.cycle;
            let mut x = Exposure::default();
            // Column-wise scans over the SoA log.
            for (&ai, &iss) in taint_log.at_issue.iter().zip(&taint_log.issue) {
                if ai && iss < d {
                    x.issued += 1;
                }
            }
            for &c in &taint_log.commit {
                if c < d {
                    x.committed += 1;
                }
            }
            for &s in &taint_log.store_release {
                if s > 0 && s < d {
                    x.stores_released += 1;
                }
            }
            for &b in &taint_log.bus_granted {
                if b > 0 && b < d {
                    x.bus_grants += 1;
                }
            }
            x
        }
        _ => Exposure::default(),
    };
    let cause = match (exception, &injector) {
        (Some(e), Some(inj)) => inj.cause_for(e.line_addr),
        _ => TamperCause::StaticImage,
    };
    let ending = RunEnding { cycle_limit, cause, exposure };
    (report, st, sim_trace, ending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_isa::{Asm, Reg};

    /// Test shim over the session API (the old free function is
    /// deprecated; tests exercise the same engine through the builder).
    fn simulate<M: SecureImage>(
        image: &mut M,
        entry: u32,
        cfg: &SimConfig,
        trace_bus: bool,
    ) -> SimReport {
        crate::SimSession::new(cfg).trace_bus(trace_bus).run(image, entry).into_report()
    }

    fn program_sum_loop(n: i16) -> (FlatMem, u32) {
        let mut a = Asm::new(0x1000);
        let top = a.new_label();
        a.addi(Reg::R1, Reg::R0, n);
        a.addi(Reg::R2, Reg::R0, 0);
        a.bind(top).unwrap();
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.addi(Reg::R1, Reg::R1, -1);
        a.bne(Reg::R1, Reg::R0, top);
        a.halt();
        let mut mem = FlatMem::new(0x1000, 1 << 20);
        mem.load_words(0x1000, &a.assemble().unwrap());
        (mem, 0x1000)
    }

    /// Pointer-chasing program over a linked list laid out with a large
    /// stride (every node on its own L2 line).
    fn program_pointer_chase(nodes: u32) -> (FlatMem, u32) {
        let mut a = Asm::new(0x1000);
        let top = a.new_label();
        let done = a.new_label();
        a.li(Reg::R1, 0x10_0000); // head
        a.bind(top).unwrap();
        a.lw(Reg::R1, Reg::R1, 0); // next = *p
        a.bne(Reg::R1, Reg::R0, top);
        a.bind(done).unwrap();
        a.halt();
        let mut mem = FlatMem::new(0x1000, 1 << 24);
        mem.load_words(0x1000, &a.assemble().unwrap());
        // Build list: node i at 0x100000 + i*4096 (page-sized stride).
        for i in 0..nodes {
            let addr = 0x10_0000 + i * 4096;
            let next = if i + 1 == nodes { 0 } else { 0x10_0000 + (i + 1) * 4096 };
            mem.write_u32(addr, next);
        }
        (mem, 0x1000)
    }

    #[test]
    fn simple_loop_runs_and_counts() {
        // Long enough that the ~340-cycle cold start (TLB walk + counter
        // fetch + first decryption) amortizes away.
        let (mut mem, entry) = program_sum_loop(5000);
        let cfg = SimConfig::paper_256k(Policy::baseline());
        let r = simulate(&mut mem, entry, &cfg, false);
        assert!(r.halted);
        assert_eq!(r.insts, 3 + 5000 * 3);
        assert!(r.ipc() > 1.0, "tight ALU loop should exceed IPC 1, got {}", r.ipc());
        assert!(r.exception.is_none());
    }

    #[test]
    fn max_insts_caps_run() {
        let (mut mem, entry) = program_sum_loop(10_000);
        let cfg = SimConfig::paper_256k(Policy::baseline()).with_max_insts(500);
        let r = simulate(&mut mem, entry, &cfg, false);
        assert!(!r.halted);
        assert_eq!(r.insts, 500);
    }

    #[test]
    fn policies_order_ipc_on_memory_bound_code() {
        let (mem, entry) = program_pointer_chase(400);
        let mut ipc = std::collections::HashMap::new();
        for policy in [
            Policy::baseline(),
            Policy::authen_then_write(),
            Policy::authen_then_commit(),
            Policy::authen_then_fetch(),
            Policy::authen_then_issue(),
        ] {
            let mut m = mem.clone();
            let cfg = SimConfig::paper_256k(policy);
            let r = simulate(&mut m, entry, &cfg, false);
            assert!(r.halted);
            ipc.insert(policy.to_string(), r.ipc());
        }
        let base = ipc["baseline-decrypt-only"];
        let issue = ipc["authen-then-issue"];
        let write = ipc["authen-then-write"];
        let fetch = ipc["authen-then-fetch"];
        // Dependent-miss chain: issue gating must hurt; write gating must
        // be nearly free; the ordering of the paper must hold.
        assert!(issue < base, "issue {issue} !< base {base}");
        assert!(write <= base + 1e-9);
        assert!(issue < write, "issue {issue} !< write {write}");
        assert!(fetch < write + 1e-9, "fetch {fetch} !<= write {write}");
        assert!(issue <= fetch + 1e-9, "issue {issue} !<= fetch {fetch}");
        assert!(write / issue > 1.02, "gap too small: write {write} vs issue {issue}");
    }

    #[test]
    fn commit_gating_between_issue_and_write() {
        let (mem, entry) = program_pointer_chase(300);
        let run = |p: Policy| {
            let mut m = mem.clone();
            simulate(&mut m, entry, &SimConfig::paper_256k(p), false).ipc()
        };
        let issue = run(Policy::authen_then_issue());
        let commit = run(Policy::authen_then_commit());
        let write = run(Policy::authen_then_write());
        assert!(issue <= commit + 1e-9, "issue {issue} commit {commit}");
        assert!(commit <= write + 1e-9, "commit {commit} write {write}");
    }

    #[test]
    fn bigger_l2_narrows_the_gap() {
        // With a 16KB footprint everything fits either L2; use a larger
        // footprint so the 256KB config actually misses.
        let (mem, entry) = program_pointer_chase(600);
        let run = |cfg: SimConfig| {
            let mut m = mem.clone();
            simulate(&mut m, entry, &cfg, false).ipc()
        };
        // 600 nodes * 4096B stride ≈ 2.4MB footprint: misses both, but
        // that's fine — here we check that IPC under 1MB ≥ under 256KB.
        let small = run(SimConfig::paper_256k(Policy::authen_then_issue()));
        let large = run(SimConfig::paper_1m(Policy::authen_then_issue()));
        assert!(large >= small * 0.95);
    }

    #[test]
    fn deterministic_across_runs() {
        let (mem, entry) = program_pointer_chase(100);
        let cfg = SimConfig::paper_256k(Policy::commit_plus_fetch());
        let r1 = simulate(&mut mem.clone(), entry, &cfg, false);
        let r2 = simulate(&mut mem.clone(), entry, &cfg, false);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.insts, r2.insts);
    }

    #[test]
    fn bus_trace_captured_when_enabled() {
        let (mut mem, entry) = program_pointer_chase(50);
        let cfg = SimConfig::paper_256k(Policy::authen_then_commit());
        let r = simulate(&mut mem, entry, &cfg, true);
        assert!(!r.bus_events.is_empty());
        // Every node address appears as a demand fetch.
        let addrs: std::collections::HashSet<u32> =
            r.bus_events.iter().map(|e| e.addr & !63).collect();
        assert!(addrs.contains(&0x10_0000));
    }

    #[test]
    fn out_instruction_reported() {
        let mut a = Asm::new(0x1000);
        a.addi(Reg::R1, Reg::R0, 42);
        a.out(Reg::R1, 7);
        a.halt();
        let mut mem = FlatMem::new(0x1000, 1 << 16);
        mem.load_words(0x1000, &a.assemble().unwrap());
        let cfg = SimConfig::paper_256k(Policy::authen_then_commit());
        let r = simulate(&mut mem, 0x1000, &cfg, false);
        assert_eq!(r.io_events.len(), 1);
        assert_eq!(r.io_events[0].value, 42);
        assert_eq!(r.io_events[0].port, 7);
    }

    #[test]
    fn store_load_forwarding_works() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::R1, 0x8000);
        a.addi(Reg::R2, Reg::R0, 123);
        a.sw(Reg::R2, Reg::R1, 0);
        a.lw(Reg::R3, Reg::R1, 0);
        a.halt();
        let mut mem = FlatMem::new(0x1000, 1 << 16);
        mem.load_words(0x1000, &a.assemble().unwrap());
        let cfg = SimConfig::paper_256k(Policy::baseline());
        let r = simulate(&mut mem, 0x1000, &cfg, false);
        assert_eq!(r.counters.get("pipe.load_forwards"), 1);
    }

    #[test]
    fn decode_fault_stops_run() {
        let mut mem = FlatMem::new(0x1000, 4096);
        mem.write_u32(0x1000, 0xF800_0001); // illegal
        let cfg = SimConfig::paper_256k(Policy::baseline());
        let r = simulate(&mut mem, 0x1000, &cfg, false);
        assert!(r.decode_fault);
        assert!(!r.halted);
    }

    #[test]
    fn smaller_ruu_hurts_commit_gating_more() {
        let (mem, entry) = program_pointer_chase(300);
        let run = |cpu: crate::CpuConfig| {
            let mut m = mem.clone();
            let mut cfg = SimConfig::paper_256k(Policy::authen_then_commit());
            cfg.cpu = cpu;
            simulate(&mut m, entry, &cfg, false).ipc()
        };
        let big = run(crate::CpuConfig::paper_reference());
        let small = run(crate::CpuConfig::paper_ruu64());
        assert!(small <= big + 1e-9);
    }

    #[test]
    fn stall_breakdown_is_complete_and_attributes_auth() {
        let (mem, entry) = program_pointer_chase(300);
        let run = |p: Policy| {
            let mut m = mem.clone();
            simulate(&mut m, entry, &SimConfig::paper_256k(p), false)
        };
        let base = run(Policy::baseline());
        let issue = run(Policy::authen_then_issue());
        let commit = run(Policy::authen_then_commit());
        let width = u64::from(crate::CpuConfig::paper_reference().commit_width);
        for r in [&base, &issue, &commit] {
            assert_eq!(
                r.stall.total() + r.insts,
                width * r.cycles,
                "completeness: every commit slot accounted for"
            );
        }
        // Ungated runs charge nothing to auth causes.
        assert_eq!(base.stall.get(StallCause::AuthIssue), 0);
        assert_eq!(base.stall.get(StallCause::AuthCommit), 0);
        // The dependent-miss chain shows up as off-chip stall everywhere.
        assert!(base.stall.get(StallCause::DramBus) > 0);
        // Each gate charges its own cause, and the harsher gate loses
        // more slots — mirroring the IPC ordering issue < commit.
        assert!(issue.stall.get(StallCause::AuthIssue) > 0);
        assert!(commit.stall.get(StallCause::AuthCommit) > 0);
        assert!(
            issue.stall.get(StallCause::AuthIssue) > commit.stall.get(StallCause::AuthCommit),
            "issue gate must stall more than commit gate on dependent misses"
        );
    }

    #[test]
    fn event_trace_captures_all_sources() {
        use crate::trace::{TraceConfig, TraceEvent};
        let (mut mem, entry) = program_pointer_chase(60);
        let cfg = SimConfig::paper_256k(Policy::authen_then_commit());
        let out = crate::SimSession::new(&cfg)
            .trace(TraceConfig::default())
            .run(&mut mem, entry)
            .into_run();
        let trace = out.trace.as_ref().expect("trace requested");
        let has = |f: &dyn Fn(&TraceEvent) -> bool| trace.events.iter().any(f);
        assert!(has(&|e| matches!(e, TraceEvent::Inst { .. })));
        assert!(has(&|e| matches!(e, TraceEvent::Auth { .. })));
        assert!(has(&|e| matches!(e, TraceEvent::Bus(_))));
        assert!(!trace.ruu_occupancy.is_empty());
        assert!(!trace.authq_occupancy.is_empty());
        // The exported document is valid JSON with trace events.
        let doc = trace.to_chrome();
        assert!(!doc.get("traceEvents").unwrap().as_array().unwrap().is_empty());
        // And the traced run's timing matches an untraced run exactly.
        let plain = simulate(&mut mem.clone(), entry, &cfg, false);
        assert_eq!(plain.cycles, out.report.cycles);
    }
}
