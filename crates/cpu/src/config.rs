//! Processor and simulation configuration (paper Table 3).

use crate::bpred::BPredConfig;
use secsim_core::{Policy, SecureConfig};
use secsim_mem::MemSystemConfig;

/// Core pipeline parameters.
///
/// Defaults follow the paper's Table 3: 8-wide fetch/decode/issue/commit,
/// 128-entry RUU, 64-entry LSQ (the paper's RUU-size study halves the
/// RUU to 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched (decode/rename) per cycle.
    pub decode_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Register Update Unit (unified ROB/RS) entries.
    pub ruu_size: u32,
    /// Load/store queue entries.
    pub lsq_size: u32,
    /// Store buffer entries (post-commit, pre-write; back-pressures
    /// commit under *authen-then-write*).
    pub store_buffer: u32,
    /// Front-end depth in cycles between fetch and dispatch.
    pub frontend_depth: u64,
    /// Extra cycles to redirect fetch after a mispredicted branch
    /// resolves.
    pub mispredict_redirect: u64,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mul: u32,
    /// FP adders.
    pub fp_alu: u32,
    /// FP multiply/divide units.
    pub fp_mul: u32,
    /// Cache ports (loads + stores per cycle).
    pub mem_ports: u32,
    /// Branch predictor.
    pub bpred: BPredConfig,
}

impl CpuConfig {
    /// Paper Table 3 (128-entry RUU).
    pub fn paper_reference() -> Self {
        Self {
            fetch_width: 8,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_size: 128,
            lsq_size: 64,
            store_buffer: 16,
            frontend_depth: 3,
            mispredict_redirect: 3,
            int_alu: 4,
            int_mul: 1,
            fp_alu: 2,
            fp_mul: 1,
            mem_ports: 2,
            bpred: BPredConfig::default(),
        }
    }

    /// The RUU-sensitivity point: 64-entry RUU (Figures 10–11).
    pub fn paper_ruu64() -> Self {
        Self { ruu_size: 64, ..Self::paper_reference() }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_reference()
    }
}

/// Everything one simulation run needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Pipeline parameters.
    pub cpu: CpuConfig,
    /// Memory hierarchy parameters.
    pub mem: MemSystemConfig,
    /// Security policy + memory-controller configuration.
    pub secure: SecureConfig,
    /// Stop after this many retired instructions (0 = until halt).
    pub max_insts: u64,
    /// Cycle fence (0 = unlimited): once the pipeline's clock passes
    /// this cycle the run ends with
    /// [`SimOutcome::CycleLimitExceeded`](crate::SimOutcome) — the
    /// watchdog for non-terminating fuzz programs and dropped-MAC
    /// faults, whose verification results never arrive.
    pub max_cycles: u64,
}

impl SimConfig {
    /// Paper reference with the 256 KB L2 under `policy`.
    pub fn paper_256k(policy: Policy) -> Self {
        Self {
            cpu: CpuConfig::paper_reference(),
            mem: MemSystemConfig::paper_256k(),
            secure: SecureConfig::paper(policy),
            max_insts: 0,
            max_cycles: 0,
        }
    }

    /// Paper reference with the 1 MB L2 under `policy`.
    pub fn paper_1m(policy: Policy) -> Self {
        Self { mem: MemSystemConfig::paper_1m(), ..Self::paper_256k(policy) }
    }

    /// Caps the run length.
    pub fn with_max_insts(mut self, n: u64) -> Self {
        self.max_insts = n;
        self
    }

    /// Caps the run in cycles (0 = unlimited).
    pub fn with_max_cycles(mut self, n: u64) -> Self {
        self.max_cycles = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = CpuConfig::paper_reference();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.ruu_size, 128);
        assert_eq!(CpuConfig::paper_ruu64().ruu_size, 64);
        assert_eq!(CpuConfig::default(), c);
    }

    #[test]
    fn sim_config_l2_variants() {
        let a = SimConfig::paper_256k(Policy::baseline());
        let b = SimConfig::paper_1m(Policy::baseline());
        assert!(b.mem.l2.size_bytes > a.mem.l2.size_bytes);
        assert_eq!(a.with_max_insts(5).max_insts, 5);
        assert_eq!(a.max_cycles, 0, "unlimited by default");
        assert_eq!(a.with_max_cycles(9).max_cycles, 9);
    }
}
