//! ASCII pipeline-timeline rendering for small traced runs.
//!
//! When a [`SimSession`](crate::SimSession) runs with tracing enabled, the
//! first [`TIMING_CAP`] instructions' stage times are recorded as
//! [`InstTiming`]s; [`render_timeline`] draws them as a Gantt chart —
//! the quickest way to *see* where an authentication policy inserts its
//! stall.

use secsim_isa::Inst;
use std::fmt::Write as _;

/// Per-instruction stage times (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstTiming {
    /// Dynamic instruction number.
    pub seq: u64,
    /// PC.
    pub pc: u32,
    /// The instruction.
    pub inst: Inst,
    /// Fetch cycle.
    pub fetch: u64,
    /// Dispatch (rename) cycle.
    pub dispatch: u64,
    /// Issue cycle.
    pub issue: u64,
    /// Execution-complete cycle.
    pub complete: u64,
    /// Commit cycle.
    pub commit: u64,
}

/// How many leading instructions are recorded per traced run.
pub const TIMING_CAP: usize = 256;

/// Renders timings as an ASCII Gantt chart `width` columns wide.
///
/// Stage markers: `F` fetch, `D` dispatch, `I` issue, `X` complete,
/// `C` commit; `·` fills the span between fetch and commit.
///
/// # Examples
///
/// ```
/// use secsim_cpu::{render_timeline, InstTiming};
/// use secsim_isa::Inst;
///
/// let t = [InstTiming {
///     seq: 0, pc: 0x1000, inst: Inst::Nop,
///     fetch: 0, dispatch: 3, issue: 4, complete: 5, commit: 6,
/// }];
/// let chart = render_timeline(&t, 40);
/// assert!(chart.contains('F') && chart.contains('C'));
/// ```
pub fn render_timeline(timings: &[InstTiming], width: usize) -> String {
    let width = width.max(16);
    let mut out = String::new();
    let Some(first) = timings.first() else {
        return "(no instructions recorded)\n".to_string();
    };
    let t0 = first.fetch;
    let t1 = timings.iter().map(|t| t.commit).max().expect("non-empty").max(t0 + 1);
    let span = (t1 - t0) as f64;
    let col = |t: u64| -> usize {
        (((t.saturating_sub(t0)) as f64 / span) * (width - 1) as f64).round() as usize
    };
    let _ = writeln!(out, "cycles {t0}..{t1}  (F fetch, D dispatch, I issue, X complete, C commit)");
    for t in timings {
        let mut lane = vec![b' '; width];
        let (cf, cd, ci, cx, cc) = (col(t.fetch), col(t.dispatch), col(t.issue), col(t.complete), col(t.commit));
        for slot in lane.iter_mut().take(cc + 1).skip(cf) {
            *slot = b'.';
        }
        // Later markers overwrite earlier ones on collision — commit wins.
        lane[cf] = b'F';
        lane[cd] = b'D';
        lane[ci] = b'I';
        lane[cx] = b'X';
        lane[cc] = b'C';
        let lane = String::from_utf8(lane).expect("ascii");
        let _ = writeln!(out, "{:>4} {:<22} |{}|", t.seq, t.inst.to_string(), lane);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use secsim_isa::Reg;

    fn t(seq: u64, fetch: u64, commit: u64) -> InstTiming {
        InstTiming {
            seq,
            pc: 0x1000 + seq as u32 * 4,
            inst: Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 1 },
            fetch,
            dispatch: fetch + 3,
            issue: fetch + 4,
            complete: fetch + 5,
            commit,
        }
    }

    #[test]
    fn renders_all_markers_in_order() {
        let chart = render_timeline(&[t(0, 0, 20), t(1, 2, 22)], 60);
        assert_eq!(chart.lines().count(), 3);
        for line in chart.lines().skip(1) {
            let f = line.find('F').expect("F");
            let c = line.find('C').expect("C");
            assert!(f < c, "fetch must precede commit: {line}");
        }
    }

    #[test]
    fn empty_input_is_graceful() {
        assert!(render_timeline(&[], 40).contains("no instructions"));
    }

    #[test]
    fn degenerate_same_cycle_run() {
        // All stages in one cycle must not panic or divide by zero.
        let one = InstTiming {
            seq: 0,
            pc: 0,
            inst: Inst::Nop,
            fetch: 5,
            dispatch: 5,
            issue: 5,
            complete: 5,
            commit: 5,
        };
        let chart = render_timeline(&[one], 16);
        assert!(chart.contains('C'));
    }
}
