//! Property-based tests for the pipeline: random straight-line programs
//! must (a) time causally, (b) compute exactly what the functional
//! interpreter computes, (c) be deterministic, and (d) be functionally
//! transparent to the authentication policy.

// Gated behind the `proptest` cargo feature: the external `proptest`
// crate is not available in offline builds. See this crate's Cargo.toml
// for how to enable it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use secsim_core::Policy;
use secsim_cpu::{SimConfig, SimSession};
use secsim_isa::{encode, step, ArchState, FlatMem, Inst, MemIo, Reg};

const DATA_BASE: u32 = 0x8000;
const CODE_BASE: u32 = 0x1000;

/// A generator of *terminating* programs: straight-line integer ALU ops
/// and loads/stores with bounded addresses, finished by `out` + `halt`.
fn straightline_program() -> impl Strategy<Value = Vec<Inst>> {
    let reg = || (1u32..8).prop_map(Reg::from_index);
    let op = prop_oneof![
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Add { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Sub { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Xor { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Mul { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::Divu { rd, rs1, rs2 }),
        (reg(), reg(), -100i16..100).prop_map(|(rd, rs1, imm)| Inst::Addi { rd, rs1, imm }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, rs1, sh)| Inst::Slli { rd, rs1, sh }),
        // Loads/stores at data base + bounded offset (always mapped).
        (reg(), 0i16..256).prop_map(|(rd, off)| Inst::Lw { rd, rs1: Reg::R9, off: off * 4 % 512 }),
        (reg(), 0i16..128).prop_map(|(rs2, off)| Inst::Sw {
            rs1: Reg::R9,
            rs2,
            off: off * 4 % 512,
        }),
    ];
    prop::collection::vec(op, 1..60)
}

fn build_image(body: &[Inst]) -> (FlatMem, u32) {
    let mut mem = FlatMem::new(CODE_BASE, 256 * 1024);
    let mut words = Vec::new();
    // Prologue: r9 = data base; seed a few registers.
    words.push(encode(Inst::Lui { rd: Reg::R9, imm: 0 }));
    words.push(encode(Inst::Ori { rd: Reg::R9, rs1: Reg::R9, imm: DATA_BASE as u16 }));
    for (i, r) in [Reg::R1, Reg::R2, Reg::R3].iter().enumerate() {
        words.push(encode(Inst::Addi { rd: *r, rs1: Reg::R0, imm: (i as i16 + 1) * 17 }));
    }
    words.extend(body.iter().map(|i| encode(*i)));
    // Epilogue: fold registers into r1 and report it.
    for r in [Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7] {
        words.push(encode(Inst::Xor { rd: Reg::R1, rs1: Reg::R1, rs2: r }));
    }
    words.push(encode(Inst::Out { rs1: Reg::R1, port: 0 }));
    words.push(encode(Inst::Halt));
    mem.load_words(CODE_BASE, &words);
    // Initialize data region.
    for i in 0..256u32 {
        mem.write_u32(DATA_BASE + 4 * i, i.wrapping_mul(2654435761));
    }
    (mem, CODE_BASE)
}

/// Runs the pure functional interpreter to get the reference output.
fn reference_output(mem: &FlatMem, entry: u32) -> u32 {
    let mut m = mem.clone();
    let mut st = ArchState::new(entry);
    let mut out = 0;
    for _ in 0..10_000 {
        if st.halted {
            break;
        }
        let info = step(&mut st, &mut m).expect("valid program");
        if let Some((_, v)) = info.out {
            out = v;
        }
    }
    assert!(st.halted, "reference did not halt");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pipeline's architectural results equal the interpreter's, for
    /// every policy, and timing is causal.
    #[test]
    fn pipeline_matches_interpreter_under_all_policies(body in straightline_program()) {
        let (mem, entry) = build_image(&body);
        let expect = reference_output(&mem, entry);
        for policy in [
            Policy::baseline(),
            Policy::authen_then_issue(),
            Policy::authen_then_write(),
            Policy::commit_plus_fetch(),
        ] {
            let cfg = SimConfig::paper_256k(policy);
            let r = SimSession::new(&cfg).run(&mut mem.clone(), entry).into_report();
            prop_assert!(r.halted);
            prop_assert!(r.exception.is_none());
            prop_assert_eq!(r.io_events.len(), 1);
            prop_assert_eq!(r.io_events[0].value, expect, "policy {}", policy);
            prop_assert!(r.cycles >= r.insts / 8, "cannot beat the 8-wide commit limit");
            prop_assert!(r.io_events[0].cycle <= r.cycles);
        }
    }

    /// Gating policies only ever slow things down relative to baseline,
    /// and cycle counts are reproducible.
    #[test]
    fn gating_never_speeds_up(body in straightline_program()) {
        let (mem, entry) = build_image(&body);
        let run = |p: Policy| {
            SimSession::new(&SimConfig::paper_256k(p)).run(&mut mem.clone(), entry).into_report().cycles
        };
        let base = run(Policy::baseline());
        prop_assert_eq!(run(Policy::baseline()), base, "nondeterministic baseline");
        for policy in [Policy::authen_then_issue(), Policy::authen_then_commit()] {
            prop_assert!(run(policy) >= base, "{} beat the baseline", policy);
        }
    }
}
