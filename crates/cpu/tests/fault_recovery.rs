//! End-to-end fault-recovery tests: a ciphertext flip scheduled
//! mid-run must surface as a precise [`SimOutcome::TamperDetected`]
//! under every authenticating policy, with an exposure ledger that
//! shrinks monotonically as the authentication control point moves
//! earlier in the pipeline — the paper's central ordering, measured
//! rather than assumed.

use secsim_core::{
    EncryptedMemory, FaultKind, FaultPlan, Policy, TamperCause,
};
use secsim_cpu::{RetireRecord, SimConfig, SimOutcome, SimSession};
use secsim_isa::{Asm, Reg};

const TARGET: u32 = 0x2000;
const SCRATCH: u32 = 0x3000;
const INJECT: u64 = 1_500;

/// A load → compute → store loop over one encrypted data line, with the
/// dependent stores kept on a warm scratch line so no tainted
/// instruction needs its own bus grant (that makes the exposure
/// ordering structural, not incidental).
fn victim() -> EncryptedMemory {
    let mut a = Asm::new(0x0);
    let top = a.new_label();
    a.li(Reg::R1, TARGET);
    a.li(Reg::R4, SCRATCH);
    a.li(Reg::R2, 4_000);
    a.bind(top).expect("fresh label");
    a.lw(Reg::R3, Reg::R1, 0);
    a.add(Reg::R5, Reg::R3, Reg::R3);
    a.sw(Reg::R5, Reg::R4, 0);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bne(Reg::R2, Reg::R0, top);
    a.halt();
    let words = a.assemble().expect("victim assembles");
    let mut plain = vec![0u8; 16 << 10];
    for (i, w) in words.iter().enumerate() {
        plain[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    plain[TARGET as usize] = 0x11;
    EncryptedMemory::from_plain(0, &plain, &[0xC3; 16], b"fault-recovery")
}

fn run(policy: Policy) -> SimOutcome {
    let mut image = victim();
    let cfg = SimConfig::paper_256k(policy);
    let plan = FaultPlan::new().at(INJECT, TARGET, FaultKind::CiphertextFlip { mask: 0x20 });
    SimSession::new(&cfg).faults(plan).run(&mut image, 0x0)
}

#[test]
fn every_authenticating_policy_detects_the_midrun_flip() {
    for policy in Policy::figure7_schemes() {
        let out = run(policy);
        if !policy.authenticate {
            assert!(
                matches!(out, SimOutcome::Completed(_)),
                "{policy}: the baseline has no authentication to trip"
            );
            continue;
        }
        match out {
            SimOutcome::TamperDetected { cycle, line_addr, cause, .. } => {
                assert!(cycle >= INJECT, "{policy}: detected at {cycle}, before injection");
                assert_eq!(line_addr, TARGET, "{policy}: wrong line blamed");
                assert_eq!(cause, TamperCause::CiphertextFlip, "{policy}: wrong cause");
            }
            other => panic!("{policy}: expected TamperDetected, got {}", other.verdict_name()),
        }
    }
}

/// Moving the control point earlier can only shrink the exposure
/// window: total tainted work admitted before detection must be
/// monotone non-increasing over fetch → write → commit → issue, and
/// each gate's own component must be exactly zero.
#[test]
fn exposure_shrinks_as_the_control_point_moves_earlier() {
    let chain = [
        Policy::authen_then_fetch(),
        Policy::authen_then_write(),
        Policy::authen_then_commit(),
        Policy::authen_then_issue(),
    ];
    let mut prev_total = u64::MAX;
    for policy in chain {
        let x = run(policy).exposure().unwrap_or_else(|| panic!("{policy}: no detection"));
        assert!(
            x.total() <= prev_total,
            "{policy}: exposure {x} exceeds the later gate's {prev_total}"
        );
        prev_total = x.total();
        if policy.gate_issue {
            assert_eq!(x.issued, 0, "{policy} admitted a tainted issue: {x}");
        }
        if policy.gate_issue || policy.gate_commit {
            assert_eq!(x.committed, 0, "{policy} admitted a tainted commit: {x}");
        }
        if policy.gate_write || policy.gate_commit || policy.gate_issue {
            assert_eq!(x.stores_released, 0, "{policy} released a tainted store: {x}");
        }
        if policy.gate_fetch {
            assert_eq!(x.bus_grants, 0, "{policy} granted a tainted bus transfer: {x}");
        }
    }
    assert_eq!(prev_total, 0, "authen-then-issue must admit nothing at all");
}

/// Attaching an observer must not perturb the faulted outcome: the
/// timing report serializes byte-for-byte identically and the verdict
/// evidence (cycle, line, cause, exposure) is unchanged.
#[test]
fn faulted_outcome_is_byte_stable_under_observation() {
    let policy = Policy::authen_then_commit();
    let plain = run(policy);

    let mut image = victim();
    let cfg = SimConfig::paper_256k(policy);
    let plan = FaultPlan::new().at(INJECT, TARGET, FaultKind::CiphertextFlip { mask: 0x20 });
    let mut seen = 0u64;
    let observed = SimSession::new(&cfg)
        .observe(|_: &RetireRecord| seen += 1)
        .faults(plan)
        .run(&mut image, 0x0);

    assert_eq!(plain.verdict_name(), observed.verdict_name());
    assert_eq!(plain.exposure(), observed.exposure());
    match (&plain, &observed) {
        (
            SimOutcome::TamperDetected { cycle: c1, line_addr: a1, cause: k1, .. },
            SimOutcome::TamperDetected { cycle: c2, line_addr: a2, cause: k2, .. },
        ) => {
            assert_eq!((c1, a1, k1), (c2, a2, k2));
        }
        _ => panic!("both runs must detect"),
    }
    let a = plain.report().to_json().expect("untraced report").render();
    let b = observed.report().to_json().expect("untraced report").render();
    assert_eq!(a, b, "observer must not perturb the report");
    assert_eq!(seen, observed.report().insts, "observer sees every retirement");
}
