//! Focused tests of each policy gate's mechanism, using hand-built
//! programs where the expected timing relationship is unambiguous.

use secsim_core::{FetchGateVariant, Policy};
use secsim_cpu::{CpuConfig, SimConfig, SimSession};
use secsim_isa::{Asm, FlatMem, MemIo, Reg};

/// Dependent-miss chain: each load's address comes from the previous
/// load (every hop is an L2 miss).
fn chase(nodes: u32, stride: u32) -> (FlatMem, u32) {
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    let done = a.new_label();
    a.li(Reg::R1, 0x10_0000);
    a.bind(top).expect("fresh");
    a.beq(Reg::R1, Reg::R0, done);
    a.lw(Reg::R1, Reg::R1, 0);
    a.j(top);
    a.bind(done).expect("fresh");
    a.halt();
    let mut mem = FlatMem::new(0x1000, 8 << 20);
    mem.load_words(0x1000, &a.assemble().expect("assembles"));
    for i in 0..nodes {
        let addr = 0x10_0000 + i * stride;
        let next = if i + 1 == nodes { 0 } else { addr + stride };
        mem.write_u32(addr, next);
    }
    (mem, 0x1000)
}

/// Store burst: many stores to distinct lines back to back.
fn store_burst(n: u32) -> (FlatMem, u32) {
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R2, n);
    a.bind(top).expect("fresh");
    a.sw(Reg::R2, Reg::R1, 0);
    a.li(Reg::R3, 4096);
    a.add(Reg::R1, Reg::R1, Reg::R3);
    a.addi(Reg::R2, Reg::R2, -1);
    a.bne(Reg::R2, Reg::R0, top);
    a.halt();
    let mut mem = FlatMem::new(0x1000, 16 << 20);
    mem.load_words(0x1000, &a.assemble().expect("assembles"));
    (mem, 0x1000)
}

fn cycles(mem: &FlatMem, entry: u32, policy: Policy, cpu: Option<CpuConfig>) -> u64 {
    let mut cfg = SimConfig::paper_256k(policy);
    if let Some(c) = cpu {
        cfg.cpu = c;
    }
    SimSession::new(&cfg).run(&mut mem.clone(), entry).into_report().cycles
}

/// The drain variant of authen-then-fetch is never faster than the
/// LastRequest tag variant — it waits for a superset of the queue.
#[test]
fn drain_variant_dominates_tag_variant() {
    let (mem, entry) = chase(300, 4096);
    let tag = cycles(&mem, entry, Policy::authen_then_fetch(), None);
    let drain = cycles(
        &mem,
        entry,
        Policy::authen_then_fetch().with_fetch_variant(FetchGateVariant::Drain),
        None,
    );
    assert!(drain >= tag, "drain {drain} must be >= tag {tag}");
}

/// On a dependent-miss chain the fetch gate binds every hop: the
/// penalty over baseline must be on the order of the MAC latency per
/// node.
#[test]
fn fetch_gate_binds_on_dependent_chain() {
    let n = 300u64;
    let (mem, entry) = chase(n as u32, 4096);
    let base = cycles(&mem, entry, Policy::baseline(), None);
    let fetch = cycles(&mem, entry, Policy::authen_then_fetch(), None);
    let per_hop = (fetch - base) as f64 / n as f64;
    assert!(
        per_hop > 30.0 && per_hop < 200.0,
        "per-hop fetch-gate penalty {per_hop:.1} should be near the 74-cycle MAC latency"
    );
}

/// Issue gating is strictly the harshest on the chain: it pays the gap
/// on *use*, which includes the full line arrival + verification.
#[test]
fn issue_costs_at_least_as_much_as_fetch_on_chain() {
    let (mem, entry) = chase(300, 4096);
    let fetch = cycles(&mem, entry, Policy::authen_then_fetch(), None);
    let issue = cycles(&mem, entry, Policy::authen_then_issue(), None);
    assert!(issue >= fetch, "issue {issue} vs fetch {fetch}");
}

/// authen-then-write stays near-free regardless of store-buffer size:
/// releases share the in-order verification watermark, so a full buffer
/// waits for the same broadcast the head was already waiting for (the
/// reason the paper measures <2% cost for this scheme).
#[test]
fn write_gating_is_near_free_and_buffer_insensitive() {
    let (mem, entry) = store_burst(400);
    let base = cycles(&mem, entry, Policy::baseline(), None);
    let write = cycles(&mem, entry, Policy::authen_then_write(), None);
    // An all-miss store burst is the worst case for write gating;
    // even here it stays well under the cost of the gating schemes.
    assert!((write as f64) < base as f64 * 1.20, "write gating {write} vs baseline {base}");
    let tiny = cycles(
        &mem,
        entry,
        Policy::authen_then_write(),
        Some(CpuConfig { store_buffer: 1, ..CpuConfig::paper_reference() }),
    );
    assert!(tiny >= write, "smaller buffer can never help");
    assert!(
        (tiny as f64) < write as f64 * 1.10,
        "watermark sharing keeps even a 1-entry buffer cheap: {tiny} vs {write}"
    );
}

/// The report's cycle count covers post-halt store/I/O drain (machine
/// quiesce), so it can exceed the final commit but never precede it.
#[test]
fn quiesce_extends_cycles_under_write_gating() {
    let mut a = Asm::new(0x1000);
    a.li(Reg::R1, 0x20_0000);
    a.addi(Reg::R2, Reg::R0, 7);
    a.sw(Reg::R2, Reg::R1, 0);
    a.out(Reg::R2, 0);
    a.halt();
    let mut mem = FlatMem::new(0x1000, 4 << 20);
    mem.load_words(0x1000, &a.assemble().expect("assembles"));
    let cfg = SimConfig::paper_256k(Policy::authen_then_write());
    let r = SimSession::new(&cfg).run(&mut mem, 0x1000).into_report();
    assert!(r.halted);
    let io = r.io_events[0].cycle;
    assert!(io <= r.cycles, "io at {io} must be within the {}-cycle run", r.cycles);
    // The out waited for the verification watermark: it lands after the
    // store line's authentication, i.e. late in the run.
    assert!(io * 2 > r.cycles, "io release should dominate this tiny run");
}

/// Dispatch stalls when the RUU is full: an artificially tiny RUU slows
/// a long dependency-free run.
#[test]
fn ruu_occupancy_limits_throughput() {
    let (mem, entry) = store_burst(300);
    let big = cycles(&mem, entry, Policy::baseline(), None);
    let tiny = cycles(
        &mem,
        entry,
        Policy::baseline(),
        Some(CpuConfig { ruu_size: 8, ..CpuConfig::paper_reference() }),
    );
    assert!(tiny > big, "8-entry RUU ({tiny}) must be slower than 128 ({big})");
}

/// An exception on a tampered line is reported precise exactly for
/// issue/commit gating.
#[test]
fn exception_precision_follows_policy() {
    use secsim_core::EncryptedMemory;
    let mut a = Asm::new(0x0);
    a.li(Reg::R1, 0x1000);
    a.lw(Reg::R2, Reg::R1, 0);
    a.add(Reg::R3, Reg::R2, Reg::R2);
    a.halt();
    let words = a.assemble().expect("assembles");
    let mut plain = vec![0u8; 8192];
    for (i, w) in words.iter().enumerate() {
        plain[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    for (policy, precise) in [
        (Policy::authen_then_issue(), true),
        (Policy::authen_then_commit(), true),
        (Policy::authen_then_write(), false),
        (Policy::authen_then_fetch(), false),
    ] {
        let mut img = EncryptedMemory::from_plain(0, &plain, &[8; 16], b"pg");
        img.tamper_xor(0x1000, &[0xFF]).expect("in-image tamper");
        let cfg = SimConfig::paper_256k(policy);
        let r = SimSession::new(&cfg).run(&mut img, 0x0).into_report();
        let e = r.exception.expect("tamper must be detected");
        assert_eq!(e.precise, precise, "precision flag for {policy}");
        assert_eq!(e.line_addr, 0x1000);
    }
}
