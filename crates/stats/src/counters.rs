use std::collections::BTreeMap;
use std::fmt;

/// A registry of named, monotonically increasing event counters.
///
/// Counter names are dot-separated by convention (`"l2.miss"`,
/// `"auth.stall_cycles"`). Names are ordered, so iteration and the
/// [`Display`](fmt::Display) rendering are deterministic.
///
/// # Examples
///
/// ```
/// use secsim_stats::CounterSet;
///
/// let mut c = CounterSet::new();
/// c.inc("fetch.lines");
/// c.add("fetch.lines", 4);
/// assert_eq!(c.get("fetch.lines"), 5);
/// assert_eq!(c.get("never.touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    map: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to `name`, creating the counter at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(v) = self.map.get_mut(name) {
            *v += n;
        } else {
            self.map.insert(name.to_owned(), n);
        }
    }

    /// Sets `name` to an absolute value (for gauges sampled at end of run).
    pub fn set(&mut self, name: &str, n: u64) {
        self.map.insert(name.to_owned(), n);
    }

    /// Returns the current value of `name`, or 0 if it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Returns `numerator / denominator` as a ratio, or 0.0 when the
    /// denominator counter is zero.
    pub fn ratio(&self, numerator: &str, denominator: &str) -> f64 {
        let d = self.get(denominator);
        if d == 0 {
            0.0
        } else {
            self.get(numerator) as f64 / d as f64
        }
    }

    /// Merges another counter set into this one by summing values.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in &other.map {
            self.add(k, *v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.map {
            writeln!(f, "{k:40} {v}")?;
        }
        Ok(())
    }
}

impl<'a> Extend<(&'a str, u64)> for CounterSet {
    fn extend<T: IntoIterator<Item = (&'a str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

impl<'a> FromIterator<(&'a str, u64)> for CounterSet {
    fn from_iter<T: IntoIterator<Item = (&'a str, u64)>>(iter: T) -> Self {
        let mut c = CounterSet::new();
        c.extend(iter);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_and_add() {
        let mut c = CounterSet::new();
        c.inc("a");
        c.inc("a");
        c.add("b", 10);
        assert_eq!(c.get("a"), 2);
        assert_eq!(c.get("b"), 10);
        assert_eq!(c.get("c"), 0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn set_overwrites() {
        let mut c = CounterSet::new();
        c.add("g", 5);
        c.set("g", 2);
        assert_eq!(c.get("g"), 2);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut c = CounterSet::new();
        c.add("hit", 3);
        assert_eq!(c.ratio("hit", "access"), 0.0);
        c.add("access", 4);
        assert!((c.ratio("hit", "access") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        let mut b = CounterSet::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn iter_is_name_ordered() {
        let c: CounterSet = [("b", 2), ("a", 1)].into_iter().collect();
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn display_not_empty() {
        let mut c = CounterSet::new();
        c.inc("thing");
        assert!(format!("{c}").contains("thing"));
    }
}
