use std::fmt;

/// A fixed-width-bucket histogram over `u64` samples (cycle latencies,
/// queue occupancies).
///
/// Samples beyond the last bucket accumulate in an overflow bucket.
///
/// # Examples
///
/// ```
/// use secsim_stats::Histogram;
///
/// let mut h = Histogram::new(10, 8); // 8 buckets of width 10: [0,10), [10,20), ...
/// h.record(3);
/// h.record(15);
/// h.record(1_000); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width == 0` or `buckets == 0`.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "bucket count must be positive");
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let idx = (x / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += x;
        self.max = self.max.max(x);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `i` (`[i*w, (i+1)*w)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Count of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of configured buckets (excluding overflow).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate p-th percentile (0..=100) using bucket lower bounds;
    /// returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return i as u64 * self.bucket_width;
            }
        }
        self.max
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "count={} mean={:.2} max={}", self.count, self.mean(), self.max)?;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                writeln!(
                    f,
                    "[{:6}, {:6}) {}",
                    i as u64 * self.bucket_width,
                    (i as u64 + 1) * self.bucket_width,
                    b
                )?;
            }
        }
        if self.overflow > 0 {
            writeln!(f, "[overflow    ) {}", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_buckets() {
        let mut h = Histogram::new(5, 4);
        for x in [0, 4, 5, 19, 20, 100] {
            h.record(x);
        }
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 148.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        Histogram::new(0, 4);
    }

    #[test]
    fn percentile_monotone() {
        let mut h = Histogram::new(1, 100);
        for x in 0..100 {
            h.record(x);
        }
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.percentile(50.0), 49);
        assert_eq!(h.percentile(100.0), 99);
        assert!(h.percentile(25.0) <= h.percentile(75.0));
    }

    #[test]
    fn empty_percentile_zero() {
        let h = Histogram::new(1, 2);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn display_shows_counts() {
        let mut h = Histogram::new(10, 2);
        h.record(3);
        h.record(25);
        let out = format!("{h}");
        assert!(out.contains("count=2"));
        assert!(out.contains("overflow"));
    }
}
