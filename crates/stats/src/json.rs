//! A minimal JSON value type with parser and renderer.
//!
//! The result cache persists [`SimReport`]s to disk and
//! `perf_baseline.json` records throughput measurements; both need JSON
//! without pulling `serde` into an offline-only build. This module
//! implements exactly the subset the workspace produces: objects,
//! arrays, strings (with `\uXXXX` escapes), `u64`/`i64`-exact integers,
//! finite floats, booleans and null.
//!
//! Rendering is deterministic — object keys keep insertion order and
//! floats use Rust's shortest round-trip formatting — so two renders of
//! the same value are byte-identical, which the cache's "hit reproduces
//! the report exactly" guarantee relies on.
//!
//! # Examples
//!
//! ```
//! use secsim_stats::Json;
//!
//! let v = Json::parse(r#"{"insts": 100, "ipc": 0.5, "tags": ["a","b"]}"#).unwrap();
//! assert_eq!(v.get("insts").and_then(Json::as_u64), Some(100));
//! let round = Json::parse(&v.render()).unwrap();
//! assert_eq!(round.render(), v.render());
//! ```

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64`/`u64` exactly (kept out of `f64` so
    /// cycle counts above 2⁵³ round-trip losslessly).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A finite float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered, keys unique by construction here.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to a compact JSON string (no whitespace), deterministic
    /// for a given value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                assert!(f.is_finite(), "JSON cannot represent non-finite floats");
                // Keep a decimal point so the value parses back as Float.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must be a single value with only trailing
    /// whitespace after it).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: only what char::from_u32
                            // rejects needs the second half.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            self.pos += 1;
            v = v * 16
                + match b {
                    b'0'..=b'9' => u32::from(b - b'0'),
                    b'a'..=b'f' => u32::from(b - b'a' + 10),
                    b'A'..=b'F' => u32::from(b - b'A' + 10),
                    _ => return Err(self.err("bad hex digit in \\u escape")),
                };
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615", "1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn big_u64_is_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":true},"e":0.25}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}π".to_string());
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::Str("é".to_string()));
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Json::Float(2.0);
        assert_eq!(v.render(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "nul", "[1,]", "{\"a\":}", "{\"a\":1,\"a\":2}", "1 2", "\"\\q\""] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn deterministic_render() {
        let v = Json::obj(vec![
            ("z", Json::Int(1)),
            ("a", Json::Array(vec![Json::Bool(false), Json::Null])),
        ]);
        assert_eq!(v.render(), v.render());
        assert_eq!(v.render(), r#"{"z":1,"a":[false,null]}"#);
    }
}
