//! Statistics and reporting utilities for the `secsim` workspace.
//!
//! This crate is deliberately dependency-free. It provides:
//!
//! * [`CounterSet`] — a named event-counter registry used by every
//!   simulator component (caches, pipeline, authentication engine).
//! * [`Summary`] — streaming summary statistics (mean, geometric mean,
//!   min/max) for per-benchmark metrics such as normalized IPC.
//! * [`Histogram`] — fixed-bucket latency histograms.
//! * [`Table`] — a tiny table builder that renders Markdown and CSV; every
//!   experiment binary in `secsim-bench` reports through it.
//! * [`Json`] — a minimal JSON value with parser and deterministic
//!   renderer, backing the on-disk experiment result cache.
//! * [`StableHash`] / [`StableHasher`] — platform-stable FNV-1a config
//!   fingerprinting for cache keys.
//! * [`FastMap`] / [`FastSet`] / [`FxHasher`] — deterministic, fast
//!   hashing for simulator-internal maps on the hot path.
//! * [`Timeline`] / [`OccupancySeries`] — Chrome `trace_event` JSON
//!   export (spans, counters, lane allocation) for `--trace` output.
//!
//! # Examples
//!
//! ```
//! use secsim_stats::{CounterSet, Table};
//!
//! let mut c = CounterSet::new();
//! c.inc("l2.miss");
//! c.add("l2.miss", 2);
//! assert_eq!(c.get("l2.miss"), 3);
//!
//! let mut t = Table::new(["bench", "ipc"]);
//! t.push_row(["mcf", "0.41"]);
//! assert!(t.to_markdown().contains("mcf"));
//! ```

mod counters;
mod fxhash;
mod histogram;
mod json;
mod stable_hash;
mod summary;
mod table;
mod timeline;

pub use counters::CounterSet;
pub use fxhash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use histogram::Histogram;
pub use json::{Json, JsonError};
pub use stable_hash::{StableHash, StableHasher};
pub use summary::{geomean, Summary};
pub use table::{fmt3, Table};
pub use timeline::{OccupancySeries, Timeline};
