//! A stable, platform-independent 64-bit hash for configuration
//! fingerprinting.
//!
//! The experiment result cache keys cached [`SimReport`]s by a hash of
//! the *complete* run configuration. `std::hash::Hash` is explicitly
//! unstable across Rust releases and platforms, so cache keys built on
//! it would silently invalidate (or worse, collide) between toolchains.
//! This module instead defines:
//!
//! * [`StableHasher`] — FNV-1a over a canonical little-endian byte
//!   encoding, identical on every platform and release;
//! * [`StableHash`] — a trait each config type implements by feeding
//!   every semantically meaningful field to the hasher in a fixed order.
//!
//! Implementations must hash **all** fields that influence simulation
//! results; adding a field to a config struct without extending its
//! `stable_hash` impl silently aliases distinct configurations, so each
//! impl carries a field-count guard comment and, where possible, a
//! destructuring `let` that fails to compile when fields change.
//!
//! # Examples
//!
//! ```
//! use secsim_stats::{StableHash, StableHasher};
//!
//! let mut h = StableHasher::new();
//! 42u64.stable_hash(&mut h);
//! "mcf".stable_hash(&mut h);
//! let a = h.finish();
//!
//! let mut h2 = StableHasher::new();
//! 42u64.stable_hash(&mut h2);
//! "mcf".stable_hash(&mut h2);
//! assert_eq!(a, h2.finish());
//! ```

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A 64-bit FNV-1a hasher over a canonical byte stream.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Canonical hashing of a value's semantic content.
///
/// Unlike `std::hash::Hash`, the digest is guaranteed stable across
/// platforms, Rust releases, and process runs — suitable for on-disk
/// cache keys.
pub trait StableHash {
    /// Feeds this value's content to `h` in a fixed canonical order.
    fn stable_hash(&self, h: &mut StableHasher);

    /// Convenience: hash `self` alone into a 64-bit digest.
    fn stable_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        self.stable_hash(&mut h);
        h.finish()
    }
}

macro_rules! impl_stable_hash_uint {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}
impl_stable_hash_uint!(u8, u16, u32, u64, usize);

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(*self));
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        h.write_u64(self.len() as u64);
        h.write(self.as_bytes());
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u64(0),
            Some(x) => {
                h.write_u64(1);
                x.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for x in self {
            x.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_answer() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is pinned from the
        // reference vectors, guarding against accidental constant edits.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(1u64.stable_digest(), 2u64.stable_digest());
        assert_ne!("ab".stable_digest(), "ba".stable_digest());
        assert_ne!(Some(0u64).stable_digest(), None::<u64>.stable_digest());
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let pair = |a: &str, b: &str| {
            let mut h = StableHasher::new();
            a.stable_hash(&mut h);
            b.stable_hash(&mut h);
            h.finish()
        };
        assert_ne!(pair("ab", "c"), pair("a", "bc"));
    }

    #[test]
    fn digests_stable_across_calls() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.stable_digest(), v.stable_digest());
    }
}
