use std::fmt;

/// A small table builder that renders aligned Markdown and CSV.
///
/// Every experiment binary in `secsim-bench` reports its figure/table
/// through this type so that output formatting is uniform.
///
/// # Examples
///
/// ```
/// use secsim_stats::Table;
///
/// let mut t = Table::new(["bench", "norm-ipc"]);
/// t.push_row(["mcf", "0.71"]);
/// t.push_row(["gzip", "0.97"]);
/// let md = t.to_markdown();
/// assert!(md.lines().count() == 4); // header + separator + 2 rows
/// assert!(t.to_csv().starts_with("bench,norm-ipc\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders an aligned GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(c);
                line.extend(std::iter::repeat_n(' ', w - c.chars().count() + 1));
                line.push('|');
            }
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        let _ = ncol;
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// Formats a float with 3 decimal places for table cells.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new(["a", "bbbb"]);
        t.push_row(["xxxxx", "y"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        // all lines same display width
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
        assert_eq!(lines[0].chars().count(), lines[2].chars().count());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["k"]);
        t.push_row(["has,comma"]);
        t.push_row(["has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn accessors() {
        let mut t = Table::new(["h"]);
        assert!(t.is_empty());
        t.push_row(["v"]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.headers(), &["h".to_owned()]);
        assert_eq!(t.rows()[0][0], "v");
    }

    #[test]
    fn display_matches_markdown() {
        let mut t = Table::new(["h"]);
        t.push_row(["v"]);
        assert_eq!(format!("{t}"), t.to_markdown());
    }
}
