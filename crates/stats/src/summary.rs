use std::fmt;

/// Streaming summary statistics over a sequence of `f64` samples.
///
/// Tracks count, sum, min, max and the sum of natural logarithms (for the
/// geometric mean, the conventional aggregate for normalized IPC across a
/// benchmark suite).
///
/// # Examples
///
/// ```
/// use secsim_stats::Summary;
///
/// let s: Summary = [1.0, 4.0].into_iter().collect();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.geomean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    log_sum: f64,
    min: f64,
    max: f64,
    sum_sq: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN, or if `x <= 0` (the geometric mean is only
    /// defined for positive samples; normalized IPC is always positive).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "summary sample must not be NaN");
        assert!(x > 0.0, "summary sample must be positive, got {x}");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.log_sum += x.ln();
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Geometric mean; 0.0 when empty.
    pub fn geomean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.log_sum / self.count as f64).exp()
        }
    }

    /// Population standard deviation; 0.0 when fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / n;
        var.max(0.0).sqrt()
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} geomean={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.geomean(),
            self.min(),
            self.max()
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Geometric mean of an iterator of positive samples; 0.0 when empty.
///
/// # Examples
///
/// ```
/// assert_eq!(secsim_stats::geomean([2.0, 8.0]), 4.0);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    iter.into_iter().collect::<Summary>().geomean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.geomean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn basic_stats() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.geomean() - 24.0_f64.powf(0.25)).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!(s.stddev() > 1.0 && s.stddev() < 1.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        let mut s = Summary::new();
        s.push(0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }

    #[test]
    fn geomean_helper() {
        assert_eq!(geomean([2.0, 8.0]), 4.0);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn display_contains_fields() {
        let s: Summary = [2.0].into_iter().collect();
        let d = format!("{s}");
        assert!(d.contains("n=1"));
        assert!(d.contains("mean"));
    }
}
