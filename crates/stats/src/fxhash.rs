//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std::collections::HashMap`'s default SipHash shows up prominently in
//! the pipeline profile (store-forwarding and line-metadata lookups run
//! once per memory access). Those maps are keyed by simulator-internal
//! integers — never attacker-controlled data — so DoS-resistant hashing
//! buys nothing. [`FxHasher`] is the compiler-style multiply-xor hash:
//! a couple of instructions per word, and *unseeded*, so map iteration
//! order is reproducible across runs (determinism is a simulator-wide
//! invariant).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word hasher (the `rustc-hash` / FxHash function).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// 64-bit Fibonacci-style multiplier (2^64 / golden ratio, forced odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] — stateless, so two maps built the
/// same way hash identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]: drop-in for hot simulator maps keyed
/// by internal integers.
///
/// # Examples
///
/// ```
/// use secsim_stats::FastMap;
///
/// let mut m: FastMap<u32, u64> = FastMap::default();
/// m.insert(0x1000, 7);
/// assert_eq!(m.get(&0x1000), Some(&7));
/// ```
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(0x1234_5678u32), hash_of(0x1234_5678u32));
        assert_eq!(hash_of((1u64, 2u64)), hash_of((1u64, 2u64)));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        assert_ne!(hash_of(1u32), hash_of(2u32));
        assert_ne!(hash_of(0u64), hash_of(1u64));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 3]));
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([3u8, 2, 1]));
    }

    #[test]
    fn map_behaves_like_hashmap() {
        let mut m: FastMap<u32, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 500);
    }
}
