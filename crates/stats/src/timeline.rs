//! Chrome `trace_event` timeline builder.
//!
//! The tracing layer in `secsim-cpu` records spans (an instruction
//! occupying the RUU, a MAC computation in flight, a bus transfer) and
//! counter samples (auth-queue depth, RUU occupancy). This module turns
//! those into the Chrome/Perfetto `trace_event` JSON format — a
//! `{"traceEvents": [...]}` document of paired `"B"`/`"E"` duration
//! events plus `"C"` counter events — loadable in `about://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! Spans on the same track may overlap in time (two MACs pipelined in
//! the auth engine, two bus transfers with overlapped data return), but
//! the Chrome format nests same-thread events strictly. [`Timeline`]
//! therefore lane-allocates greedily: each track expands into as many
//! virtual threads ("`mac (lane 1)`") as its maximum concurrency
//! requires, and every lane carries non-overlapping spans only.
//!
//! All timestamps are simulator cycles, reported through the `ts` field
//! unscaled (the viewer displays them as microseconds; only relative
//! placement matters for our use).
//!
//! # Examples
//!
//! ```
//! use secsim_stats::Timeline;
//!
//! let mut tl = Timeline::new();
//! tl.push_span("bus", "L2 fill", 10, 25);
//! tl.push_counter("ruu", 10, 3.0);
//! let doc = tl.to_chrome_trace().render();
//! assert!(doc.starts_with("{\"traceEvents\":["));
//! ```

use crate::json::Json;

/// One duration span on a named track.
#[derive(Debug, Clone)]
struct Span {
    track: usize,
    name: String,
    begin: u64,
    end: u64,
    args: Vec<(String, Json)>,
}

/// A builder for Chrome `trace_event` JSON documents.
///
/// Push spans and counter samples in any order; [`to_chrome_trace`]
/// sorts, lane-allocates and renders deterministically.
///
/// [`to_chrome_trace`]: Timeline::to_chrome_trace
#[derive(Debug, Default)]
pub struct Timeline {
    tracks: Vec<String>,
    spans: Vec<Span>,
    counters: Vec<(String, u64, f64)>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    fn track_id(&mut self, track: &str) -> usize {
        if let Some(i) = self.tracks.iter().position(|t| t == track) {
            return i;
        }
        self.tracks.push(track.to_string());
        self.tracks.len() - 1
    }

    /// Adds a `[begin, end)` span named `name` to `track`. Zero-length
    /// spans are widened to one cycle so they stay visible (and keep
    /// `B` strictly before `E`).
    pub fn push_span(&mut self, track: &str, name: &str, begin: u64, end: u64) {
        self.push_span_args(track, name, begin, end, Vec::new());
    }

    /// [`push_span`](Timeline::push_span) with extra `args` attached to
    /// the `B` event (shown in the viewer's detail pane).
    pub fn push_span_args(
        &mut self,
        track: &str,
        name: &str,
        begin: u64,
        end: u64,
        args: Vec<(String, Json)>,
    ) {
        let track = self.track_id(track);
        let end = end.max(begin + 1);
        self.spans.push(Span { track, name: name.to_string(), begin, end, args });
    }

    /// Adds one sample of counter series `name` at cycle `ts`.
    pub fn push_counter(&mut self, name: &str, ts: u64, value: f64) {
        self.counters.push((name.to_string(), ts, value));
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Renders the Chrome `trace_event` document.
    pub fn to_chrome_trace(&self) -> Json {
        // (ts, order, Json): order makes metadata sort first and, at
        // equal ts, closes the previous span before opening the next on
        // the same lane (E=1 < B=2).
        let mut events: Vec<(u64, u8, Json)> = Vec::new();
        let pid = 1u64;

        // Lane-allocate each track: sort its spans by (begin, end) and
        // greedily place each on the first lane free at its begin.
        let mut next_tid = 1u64;
        for (track_id, track_name) in self.tracks.iter().enumerate() {
            let mut spans: Vec<&Span> =
                self.spans.iter().filter(|s| s.track == track_id).collect();
            spans.sort_by_key(|s| (s.begin, s.end));
            let mut lane_free: Vec<u64> = Vec::new();
            let mut lane_tid: Vec<u64> = Vec::new();
            for s in spans {
                let lane = match lane_free.iter().position(|&f| f <= s.begin) {
                    Some(l) => l,
                    None => {
                        let l = lane_free.len();
                        lane_free.push(0);
                        lane_tid.push(next_tid);
                        let label = if l == 0 {
                            track_name.clone()
                        } else {
                            format!("{track_name} (lane {l})")
                        };
                        events.push((
                            0,
                            0,
                            Json::obj(vec![
                                ("name", Json::Str("thread_name".into())),
                                ("ph", Json::Str("M".into())),
                                ("pid", Json::UInt(pid)),
                                ("tid", Json::UInt(next_tid)),
                                ("args", Json::obj(vec![("name", Json::Str(label))])),
                            ]),
                        ));
                        next_tid += 1;
                        l
                    }
                };
                lane_free[lane] = s.end;
                let tid = lane_tid[lane];
                let mut b = vec![
                    ("name".to_string(), Json::Str(s.name.clone())),
                    ("cat".to_string(), Json::Str(track_name.clone())),
                    ("ph".to_string(), Json::Str("B".into())),
                    ("ts".to_string(), Json::UInt(s.begin)),
                    ("pid".to_string(), Json::UInt(pid)),
                    ("tid".to_string(), Json::UInt(tid)),
                ];
                if !s.args.is_empty() {
                    b.push(("args".to_string(), Json::Object(s.args.clone())));
                }
                events.push((s.begin, 2, Json::Object(b)));
                events.push((
                    s.end,
                    1,
                    Json::obj(vec![
                        ("name", Json::Str(s.name.clone())),
                        ("cat", Json::Str(track_name.clone())),
                        ("ph", Json::Str("E".into())),
                        ("ts", Json::UInt(s.end)),
                        ("pid", Json::UInt(pid)),
                        ("tid", Json::UInt(tid)),
                    ]),
                ));
            }
        }

        // Counters ride on tid 0 (the format keys them by name).
        for (name, ts, value) in &self.counters {
            events.push((
                *ts,
                3,
                Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("ph", Json::Str("C".into())),
                    ("ts", Json::UInt(*ts)),
                    ("pid", Json::UInt(pid)),
                    ("tid", Json::UInt(0)),
                    ("args", Json::obj(vec![("value", Json::Float(*value))])),
                ]),
            ));
        }

        events.sort_by_key(|e| (e.0, e.1));
        Json::obj(vec![(
            "traceEvents",
            Json::Array(events.into_iter().map(|(_, _, e)| e).collect()),
        )])
    }
}

/// A bucketed occupancy sampler: feed `+1`/`-1` deltas at event cycles,
/// read back a downsampled step series suitable for counter events.
///
/// The series reports the *maximum* level seen inside each
/// `interval`-cycle bucket, so short queue spikes survive downsampling.
#[derive(Debug, Default, Clone)]
pub struct OccupancySeries {
    deltas: Vec<(u64, i64)>,
}

impl OccupancySeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a level change of `delta` at `cycle`.
    pub fn delta(&mut self, cycle: u64, delta: i64) {
        self.deltas.push((cycle, delta));
    }

    /// True if no deltas were recorded.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The per-bucket maximum level, one `(bucket_start_cycle, level)`
    /// sample per non-empty bucket plus a closing zero-delta sample.
    /// `interval` is clamped to at least 1.
    pub fn samples(&self, interval: u64) -> Vec<(u64, i64)> {
        let interval = interval.max(1);
        let mut deltas = self.deltas.clone();
        deltas.sort_by_key(|&(c, _)| c);
        let mut out: Vec<(u64, i64)> = Vec::new();
        let mut level = 0i64;
        let mut bucket = 0u64;
        let mut bucket_max = 0i64;
        let mut any = false;
        for (c, d) in deltas {
            let b = c / interval;
            if any && b != bucket {
                out.push((bucket * interval, bucket_max));
                // Carry the standing level into skipped buckets.
                bucket_max = level;
            }
            bucket = b;
            any = true;
            level += d;
            bucket_max = bucket_max.max(level);
        }
        if any {
            out.push((bucket * interval, bucket_max));
            out.push(((bucket + 1) * interval, level));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(doc: &Json) -> Vec<Json> {
        doc.get("traceEvents").unwrap().as_array().unwrap().to_vec()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_monotonic_ts() {
        let mut tl = Timeline::new();
        tl.push_span("bus", "b", 20, 30);
        tl.push_span("bus", "a", 5, 12);
        tl.push_counter("ruu", 7, 2.0);
        let doc = tl.to_chrome_trace();
        // Parse maps unsigned literals to Int, so compare renders.
        let round = Json::parse(&doc.render()).unwrap();
        assert_eq!(round.render(), doc.render());
        let mut last = 0;
        for e in events(&doc) {
            // Metadata ("M") events carry no timestamp.
            let Some(ts) = e.get("ts").and_then(Json::as_u64) else {
                continue;
            };
            assert!(ts >= last, "ts went backwards");
            last = ts;
        }
    }

    #[test]
    fn spans_emit_paired_b_e_per_tid() {
        let mut tl = Timeline::new();
        tl.push_span("pipe", "i0", 0, 4);
        tl.push_span("pipe", "i1", 4, 9);
        tl.push_span("pipe", "i2", 2, 6); // overlaps i0 -> second lane
        let doc = tl.to_chrome_trace();
        let mut depth: std::collections::HashMap<u64, i64> = Default::default();
        for e in events(&doc) {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            match ph {
                "B" => *depth.entry(tid).or_default() += 1,
                "E" => {
                    let d = depth.entry(tid).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "E without matching B on tid {tid}");
                }
                _ => {}
            }
            // Our lanes never nest: depth stays 0 or 1.
            assert!(depth.values().all(|&d| d <= 1));
        }
        assert!(depth.values().all(|&d| d == 0), "unclosed span");
    }

    #[test]
    fn overlapping_spans_get_separate_lanes_with_names() {
        let mut tl = Timeline::new();
        tl.push_span("mac", "m0", 0, 100);
        tl.push_span("mac", "m1", 10, 50);
        let doc = tl.to_chrome_trace();
        let meta: Vec<Json> = events(&doc)
            .into_iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        let names: Vec<String> = meta
            .iter()
            .map(|e| {
                e.get("args").unwrap().get("name").unwrap().as_str().unwrap().to_string()
            })
            .collect();
        assert!(names.contains(&"mac".to_string()));
        assert!(names.contains(&"mac (lane 1)".to_string()));
    }

    #[test]
    fn zero_length_span_is_widened() {
        let mut tl = Timeline::new();
        tl.push_span("t", "x", 5, 5);
        let doc = tl.to_chrome_trace();
        let es = events(&doc);
        let b = es.iter().find(|e| e.get("ph").unwrap().as_str() == Some("B")).unwrap();
        let e = es.iter().find(|e| e.get("ph").unwrap().as_str() == Some("E")).unwrap();
        assert_eq!(b.get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(e.get("ts").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn occupancy_samples_track_max_per_bucket() {
        let mut s = OccupancySeries::new();
        s.delta(0, 1);
        s.delta(3, 1); // level 2 inside bucket 0
        s.delta(4, -1);
        s.delta(130, 1);
        let samples = s.samples(64);
        assert_eq!(samples, vec![(0, 2), (128, 2), (192, 2)]);
        assert!(OccupancySeries::new().samples(64).is_empty());
    }
}
