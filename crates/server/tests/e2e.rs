//! End-to-end acceptance: concurrent clients share simulations
//! exactly-once, and the store's LRU eviction under a tiny byte budget
//! never corrupts the surviving entries.

use secsim_bench::{client, ResultStore, RunOpts, Sweep, SweepPoint};
use secsim_core::Policy;
use secsim_server::{JobServer, ServerConfig};
use secsim_stats::Json;
use secsim_workloads::BenchId;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("secsim-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn spawn_server(
    store_dir: &Path,
    store_bytes: Option<u64>,
) -> (String, std::thread::JoinHandle<std::io::Result<Json>>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        threads: 2,
        queue_cap: 8,
        job_timeout: Duration::from_secs(120),
        store_dir: store_dir.to_path_buf(),
        store_bytes,
        ..ServerConfig::default()
    };
    let server = JobServer::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.serve()))
}

fn grid() -> Vec<SweepPoint> {
    let opts = RunOpts { max_insts: 8_000, ..RunOpts::default() };
    vec![
        SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Gzip, Policy::authen_then_commit(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts),
    ]
}

fn renders(results: &[Result<secsim_cpu::SimReport, secsim_bench::SweepError>]) -> Vec<String> {
    results
        .iter()
        .map(|r| r.as_ref().expect("point reports").to_json().expect("untraced").render())
        .collect()
}

fn store_counter(status: &Json, name: &str) -> u64 {
    status
        .get("store")
        .and_then(|s| s.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("status carries store.{name}"))
}

/// The ISSUE acceptance test: two clients submit the identical grid
/// concurrently; each unique point is simulated exactly once on the
/// server, both clients receive complete, byte-identical reports, and
/// those bytes match an in-process `Sweep` of the same grid.
#[test]
fn two_concurrent_clients_share_one_simulation_per_point() {
    let dir = temp_dir("dedup");
    let (addr, handle) = spawn_server(&dir.join("store"), None);

    let points = grid();
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let points = points.clone();
            std::thread::spawn(move || client::run_sweep(&addr, &points))
        })
        .collect();
    let outs: Vec<Vec<String>> = clients
        .into_iter()
        .map(|c| renders(&c.join().expect("client thread").expect("sweep job")))
        .collect();
    assert_eq!(outs[0], outs[1], "both clients must see byte-identical reports");

    let local_store = temp_dir("dedup-local");
    let local = Sweep::new().with_store(ResultStore::new(local_store.clone())).run(&points);
    assert_eq!(outs[0], renders(&local), "server bytes must match in-process Sweep");
    let _ = std::fs::remove_dir_all(&local_store);

    let status = client::status(&addr).expect("status");
    let simulated = status
        .get("sweep")
        .and_then(|s| s.get("simulated"))
        .and_then(Json::as_u64)
        .expect("status carries sweep.simulated");
    assert_eq!(
        simulated,
        points.len() as u64,
        "8 requested points over 4 unique keys must simulate exactly 4 times"
    );

    client::shutdown(&addr).expect("shutdown");
    let final_status = handle.join().expect("server thread").expect("serve returns");
    assert_eq!(
        final_status.get("queue_depth").and_then(Json::as_u64),
        Some(0),
        "the queue must drain before exit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash recovery at startup: a server binding onto a store directory
/// littered with a torn `.tmp-` file and a stale `.claim-` file
/// scavenges both and surfaces the counts in `status`.
#[test]
fn bind_scavenges_crash_debris_and_status_reports_it() {
    let dir = temp_dir("scavenge");
    let store_dir = dir.join("store");
    std::fs::create_dir_all(&store_dir).expect("store dir");
    // Debris a crashed writer / claim owner would leave behind.
    std::fs::write(store_dir.join(".tmp-00000000000000aa-4242-0"), "torn half-entry")
        .expect("plant tmp");
    std::fs::write(store_dir.join(".claim-00000000000000bb"), "4242").expect("plant claim");
    std::thread::sleep(Duration::from_millis(30));

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.clone(),
        claim_wait: Some(Duration::from_millis(10)),
        scavenge_age: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let server = JobServer::bind(&cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.serve());

    assert!(!store_dir.join(".tmp-00000000000000aa-4242-0").exists(), "torn tmp removed");
    assert!(!store_dir.join(".claim-00000000000000bb").exists(), "stale claim removed");
    let status = client::status(&addr).expect("status");
    assert_eq!(store_counter(&status, "scavenged_tmp"), 1);
    assert_eq!(store_counter(&status, "scavenged_claims"), 1);

    client::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(&dir);
}

/// LRU eviction under a byte budget sized for ~2 entries: the first
/// server evicts, a second server on the same store still answers the
/// full grid byte-identically (survivors load, evictees re-simulate).
#[test]
fn lru_eviction_under_a_tiny_budget_keeps_survivors_valid() {
    let points = grid();

    // Measure one entry so the budget is honest about entry size.
    let probe = temp_dir("evict-probe");
    let first = Sweep::new().with_store(ResultStore::new(probe.clone()));
    first.run(std::slice::from_ref(&points[0]));
    let entry_bytes = std::fs::read_dir(&probe)
        .expect("probe store")
        .filter_map(|e| e.ok())
        .filter(|e| !e.file_name().to_string_lossy().starts_with('.'))
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .max()
        .expect("probe entry written");
    let _ = std::fs::remove_dir_all(&probe);
    let budget = entry_bytes * 5 / 2; // room for 2 of the 4 entries

    let dir = temp_dir("evict");
    let store_dir = dir.join("store");
    let (addr, handle) = spawn_server(&store_dir, Some(budget));
    let run1 = client::run_sweep(&addr, &points).expect("first sweep");
    let bytes1 = renders(&run1);
    let status = client::status(&addr).expect("status");
    assert!(
        store_counter(&status, "evictions") >= 1,
        "4 entries against a 2-entry budget must evict"
    );
    assert_eq!(store_counter(&status, "stores"), 4, "every unique point must be stored once");
    client::shutdown(&addr).expect("shutdown first server");
    handle.join().expect("server thread").expect("serve returns");

    // Which points survived? The store is content-addressed, so the
    // on-disk names answer directly: "{bench}-{key:016x}.json".
    let surviving_keys: std::collections::HashSet<u64> = std::fs::read_dir(&store_dir)
        .expect("store dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let stem = name.strip_suffix(".json")?;
            u64::from_str_radix(stem.get(stem.len().checked_sub(16)?..)?, 16).ok()
        })
        .collect();
    let survivors: Vec<SweepPoint> =
        points.iter().filter(|p| surviving_keys.contains(&p.key())).cloned().collect();
    assert!(!survivors.is_empty(), "eviction must keep at least one entry");
    assert!(survivors.len() < points.len(), "eviction must have removed something");

    // A fresh server (empty memo) on the surviving store files. Ask for
    // the survivors alone first: pure loads, no puts, so eviction can't
    // race them out from under us.
    let (addr, handle) = spawn_server(&store_dir, Some(budget));
    let run_survivors = client::run_sweep(&addr, &survivors).expect("survivor sweep");
    let survivor_bytes: Vec<String> = points
        .iter()
        .zip(&bytes1)
        .filter(|(p, _)| surviving_keys.contains(&p.key()))
        .map(|(_, b)| b.clone())
        .collect();
    assert_eq!(
        survivor_bytes,
        renders(&run_survivors),
        "eviction must never corrupt surviving entries"
    );
    let status = client::status(&addr).expect("status");
    assert_eq!(
        store_counter(&status, "hits"),
        survivors.len() as u64,
        "every survivor must be served from the store"
    );
    assert_eq!(
        store_counter(&status, "bad_entries"),
        0,
        "no surviving entry may fail integrity checks"
    );

    // Now the full grid: survivors come from the memo, evictees
    // re-simulate, and the whole result still matches run 1.
    let run2 = client::run_sweep(&addr, &points).expect("second full sweep");
    assert_eq!(bytes1, renders(&run2), "the full grid must reproduce after eviction");
    let status = client::status(&addr).expect("status");
    let sim2 = status
        .get("sweep")
        .and_then(|s| s.get("simulated"))
        .and_then(Json::as_u64)
        .expect("status carries sweep.simulated");
    assert_eq!(
        sim2,
        (points.len() - survivors.len()) as u64,
        "exactly the evicted points re-simulate"
    );
    client::shutdown(&addr).expect("shutdown second server");
    handle.join().expect("server thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(&dir);
}
