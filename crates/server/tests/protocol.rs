//! Wire-protocol coverage against a live `secsim-serve` instance:
//! every malformed input answers a typed error without killing the
//! server (or even the connection), and a well-formed grid returns
//! reports byte-identical to an in-process [`Sweep`].

use secsim_bench::protocol::{codes, MAX_REQUEST_BYTES};
use secsim_bench::{client, faultpoint, ResultStore, RunOpts, Sweep, SweepPoint};
use secsim_server::{JobServer, ServerConfig};
use secsim_stats::Json;
use secsim_workloads::BenchId;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("secsim-serve-proto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn spawn_server(
    dir: &std::path::Path,
) -> (String, std::thread::JoinHandle<std::io::Result<Json>>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        threads: 2,
        queue_cap: 8,
        job_timeout: Duration::from_secs(120),
        store_dir: dir.join("store"),
        store_bytes: None,
        ..ServerConfig::default()
    };
    let server = JobServer::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.serve()))
}

fn stop(addr: &str, handle: std::thread::JoinHandle<std::io::Result<Json>>, dir: &PathBuf) {
    client::shutdown(addr).expect("shutdown request");
    handle.join().expect("server thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(dir);
}

/// Every failure class gets its typed code, all on ONE connection —
/// proving a bad request poisons neither the server nor the session.
#[test]
fn malformed_requests_answer_typed_errors_and_the_session_survives() {
    let dir = temp_dir("failures");
    let (addr, handle) = spawn_server(&dir);

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut ask = |line: &str| -> Json {
        writeln!(writer, "{line}").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        Json::parse(reply.trim()).expect("reply parses")
    };

    for (line, want) in [
        ("this is not json", codes::MALFORMED_JSON),
        ("{\"kind\":\"status\"}", codes::UNSUPPORTED_VERSION),
        ("{\"v\":99,\"kind\":\"status\"}", codes::UNSUPPORTED_VERSION),
        ("{\"v\":1,\"kind\":\"reticulate\"}", codes::UNKNOWN_KIND),
        ("{\"v\":1,\"kind\":\"sweep\"}", codes::BAD_REQUEST),
        ("{\"v\":1,\"kind\":\"sweep\",\"points\":[]}", codes::BAD_REQUEST),
        ("{\"v\":1,\"kind\":\"sweep\",\"points\":[{\"bench\":\"nope\"}]}", codes::BAD_REQUEST),
        ("{\"v\":1,\"kind\":\"faults\"}", codes::BAD_REQUEST),
    ] {
        let ev = ask(line);
        assert_eq!(ev.get("event").and_then(Json::as_str), Some("error"), "for {line}");
        assert_eq!(ev.get("code").and_then(Json::as_str), Some(want), "for {line}");
    }
    // The same battered connection still serves a real request.
    let ev = ask("{\"v\":1,\"kind\":\"status\"}");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("status"));
    drop(reader);
    stop(&addr, handle, &dir);
}

/// A request bigger than the wire cap is refused with
/// `oversized-request` before any of it is interpreted.
#[test]
fn oversized_request_is_refused_with_a_typed_error() {
    let dir = temp_dir("oversized");
    let (addr, handle) = spawn_server(&dir);

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let huge = vec![b'a'; MAX_REQUEST_BYTES + 2];
    writer.write_all(&huge).expect("send oversized");
    writer.write_all(b"\n").expect("terminate");
    writer.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    let ev = Json::parse(reply.trim()).expect("reply parses");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("error"));
    assert_eq!(ev.get("code").and_then(Json::as_str), Some(codes::OVERSIZED_REQUEST));

    // The server itself is fine: a fresh connection works.
    client::status(&addr).expect("status after oversized request");
    stop(&addr, handle, &dir);
}

/// A stream that ends mid-request gets a best-effort `truncated` error.
#[test]
fn truncated_stream_is_answered_with_a_typed_error() {
    let dir = temp_dir("truncated");
    let (addr, handle) = spawn_server(&dir);

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer.write_all(b"{\"v\":1,\"kind\":").expect("send partial");
    writer.flush().expect("flush");
    writer.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    let ev = Json::parse(reply.trim()).expect("reply parses");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("error"));
    assert_eq!(ev.get("code").and_then(Json::as_str), Some(codes::TRUNCATED));

    client::status(&addr).expect("status after truncated stream");
    stop(&addr, handle, &dir);
}

/// The acceptance bar for transparency: one grid over all 8 paper
/// policies, served remotely, must render byte-identical to the same
/// grid run through an in-process `Sweep`.
#[test]
fn server_reports_are_byte_identical_to_in_process_sweep_across_policies() {
    let dir = temp_dir("round-trip");
    let (addr, handle) = spawn_server(&dir);

    let points: Vec<SweepPoint> = faultpoint::schemes()
        .into_iter()
        .map(|(_, policy)| {
            let opts =
                RunOpts { max_insts: 8_000, tree: policy.authenticate, ..RunOpts::default() };
            SweepPoint::of(BenchId::Gzip, policy, &opts)
        })
        .collect();

    let remote = client::run_sweep(&addr, &points).expect("remote sweep");
    let local_store = temp_dir("round-trip-local");
    let local = Sweep::new().with_store(ResultStore::new(local_store.clone())).run(&points);

    assert_eq!(remote.len(), local.len());
    for (i, (r, l)) in remote.iter().zip(local.iter()).enumerate() {
        let r = r.as_ref().expect("remote point reports").to_json().expect("untraced").render();
        let l = l.as_ref().expect("local point reports").to_json().expect("untraced").render();
        assert_eq!(r, l, "policy #{i}: remote and local reports must be byte-identical");
    }
    let _ = std::fs::remove_dir_all(&local_store);
    stop(&addr, handle, &dir);
}
