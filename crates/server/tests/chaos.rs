//! Chaos-hardening acceptance: the service layer under seeded,
//! replayable transport faults.
//!
//! The invariant mirrors the paper's tamper-detection discipline one
//! layer up: under arbitrary connection faults (disconnects, garbage,
//! black holes), reconnecting clients must terminate with results
//! byte-identical to a fault-free run and `simulated == unique points`
//! — every fault is *contained* (retried, resumed, or typed), never
//! silently corrupting a result.

use secsim_bench::chaos::{ChaosPlan, ChaosProxy};
use secsim_bench::client::{self, ClientError, RetryPolicy};
use secsim_bench::{protocol, ResultStore, RunOpts, Sweep, SweepError, SweepPoint};
use secsim_core::Policy;
use secsim_server::{JobServer, ServerConfig};
use secsim_stats::Json;
use secsim_workloads::BenchId;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("secsim-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn spawn_server(cfg: ServerConfig) -> (String, std::thread::JoinHandle<std::io::Result<Json>>) {
    let server = JobServer::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.serve()))
}

fn server_cfg(store_dir: PathBuf) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        threads: 2,
        queue_cap: 8,
        job_timeout: Duration::from_secs(120),
        store_dir,
        ..ServerConfig::default()
    }
}

fn grid() -> Vec<SweepPoint> {
    let opts = RunOpts { max_insts: 8_000, ..RunOpts::default() };
    vec![
        SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Gzip, Policy::authen_then_commit(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts),
    ]
}

fn renders(results: &[Result<secsim_cpu::SimReport, SweepError>]) -> Vec<String> {
    results
        .iter()
        .map(|r| r.as_ref().expect("point reports").to_json().expect("untraced").render())
        .collect()
}

/// The ISSUE acceptance test: two clients hammer the server through a
/// seeded fault proxy at an aggressive fault rate. Both must terminate
/// with results byte-identical to a fault-free in-process run, the
/// server must have simulated each unique point exactly once, and the
/// fault schedule must have actually forced reconnections.
#[test]
fn chaotic_network_cannot_corrupt_or_duplicate_results() {
    const SEED: u64 = 0xC0FFEE;
    const RATE: u8 = 90;

    // Determinism of the schedule itself (the "replays exactly" half of
    // the acceptance criterion).
    let plan = ChaosPlan::new(SEED, RATE);
    let schedule: Vec<_> = (0..32).map(|c| plan.fault_for(c)).collect();
    let replay: Vec<_> = (0..32).map(|c| ChaosPlan::new(SEED, RATE).fault_for(c)).collect();
    assert_eq!(schedule, replay, "same seed must replay the same fault schedule");

    let dir = temp_dir("e2e");
    let (addr, handle) = spawn_server(server_cfg(dir.join("store")));
    let upstream = addr.parse().expect("server addr parses");
    let mut proxy = ChaosProxy::spawn(plan, upstream).expect("proxy spawns");
    let proxy_addr = proxy.addr().to_string();

    let points = grid();
    let clients: Vec<_> = (0..2u64)
        .map(|i| {
            let proxy_addr = proxy_addr.clone();
            let points = points.clone();
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    attempts: 40,
                    base_ms: 10,
                    cap_ms: 200,
                    read_timeout: Duration::from_secs(2),
                    seed: SEED ^ i,
                };
                client::run_sweep_with(&proxy_addr, &points, policy)
            })
        })
        .collect();
    let mut outs = Vec::new();
    let mut reconnects = 0;
    for c in clients {
        let (results, stats) = c
            .join()
            .expect("client thread")
            .expect("sweep must survive the chaos");
        reconnects += stats.reconnects;
        outs.push(renders(&results));
    }
    assert_eq!(outs[0], outs[1], "both chaos clients must see byte-identical reports");

    // Byte-identical to a fault-free, in-process run of the same grid.
    let local_store = temp_dir("e2e-local");
    let local = Sweep::new().with_store(ResultStore::new(local_store.clone())).run(&points);
    assert_eq!(outs[0], renders(&local), "chaos results must match the fault-free run");
    let _ = std::fs::remove_dir_all(&local_store);

    // The fault rate must have actually exercised the recovery path.
    assert!(
        reconnects >= 1,
        "fault rate {RATE}% at seed {SEED:#x} must force at least one reconnect \
         (got {reconnects}; accepted {} proxied connections)",
        proxy.accepted()
    );

    // Exactly-once: disconnect/resume/resubmit storms must not lose or
    // duplicate simulation work. Status goes directly to the server —
    // the proxy played its part.
    let status = client::status(&addr).expect("status");
    let simulated = status
        .get("sweep")
        .and_then(|s| s.get("simulated"))
        .and_then(Json::as_u64)
        .expect("status carries sweep.simulated");
    assert_eq!(
        simulated,
        points.len() as u64,
        "chaos must not change how many unique points are simulated"
    );

    proxy.stop();
    client::shutdown(&addr).expect("shutdown");
    let final_status = handle.join().expect("server thread").expect("serve returns");
    assert_eq!(
        final_status.get("queue_depth").and_then(Json::as_u64),
        Some(0),
        "the queue must drain before exit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Worker panic isolation: a point doctored to panic inside the
/// simulator degrades to a typed `SweepError` hole; its siblings
/// complete, the worker survives, and the next job runs normally.
#[test]
fn panicking_point_degrades_to_a_typed_hole_and_the_worker_survives() {
    let dir = temp_dir("panic");
    let (addr, handle) = spawn_server(server_cfg(dir.join("store")));

    let opts = RunOpts { max_insts: 8_000, ..RunOpts::default() };
    let mut poisoned = SweepPoint::of(BenchId::Gzip, Policy::authen_then_issue(), &opts);
    // A zero commit width trips the pipeline's "width must be positive"
    // assertion on construction: a deterministic, instant panic.
    poisoned.cfg.cpu.commit_width = 0;
    let points = vec![
        SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts),
        poisoned,
        SweepPoint::of(BenchId::Mcf, Policy::baseline(), &opts),
    ];

    let results = client::run_sweep(&addr, &points).expect("job completes despite the panic");
    assert!(results[0].is_ok(), "healthy point before the panic completes");
    match &results[1] {
        Err(SweepError::Failed { bench, detail }) => {
            assert_eq!(bench, "gzip");
            assert!(
                detail.contains("width must be positive"),
                "the typed hole must carry the panic message, got: {detail}"
            );
        }
        other => panic!("poisoned point must be a typed hole, got {other:?}"),
    }
    assert!(results[2].is_ok(), "healthy point after the panic completes");

    // The worker pool survived: a follow-up job runs normally.
    let after = client::run_sweep(&addr, &grid()).expect("next job runs after the panic");
    assert!(after.iter().all(Result::is_ok), "the follow-up job is unaffected");

    client::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The silent-wedge fix: a server that accepts and then never answers
/// must surface a typed timeout, not block forever.
#[test]
fn wedged_server_surfaces_a_typed_timeout() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // Accept and hold connections open without ever writing a byte.
    let wedge = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((sock, _)) = listener.accept() {
            held.push(sock);
            if held.len() >= 2 {
                break;
            }
        }
        std::thread::sleep(Duration::from_secs(2));
        drop(held);
    });

    let policy = RetryPolicy {
        attempts: 1,
        base_ms: 1,
        cap_ms: 10,
        read_timeout: Duration::from_millis(300),
        seed: 7,
    };
    let opts = RunOpts { max_insts: 8_000, ..RunOpts::default() };
    let points = vec![SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts)];
    let started = std::time::Instant::now();
    let err = client::run_sweep_with(&addr, &points, policy)
        .expect_err("a silent server must not look like success");
    assert_eq!(err, ClientError::Timeout { ms: 300 }, "the wedge must be typed as a timeout");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the client must give up promptly, not hang"
    );
    // A second connection unblocks the wedge thread's accept loop.
    let _ = TcpStream::connect(&addr);
    wedge.join().expect("wedge thread");
}

/// Raw-protocol resume: drop the connection mid-stream, reconnect with
/// `resume {job, since_seq}`, and receive exactly the missed events —
/// every point reported once across both connections.
#[test]
fn resume_replays_exactly_the_missed_events() {
    let dir = temp_dir("resume");
    let (addr, handle) = spawn_server(server_cfg(dir.join("store")));
    let points = grid();

    // Connection 1: submit, then vanish after the first point-done.
    let sock = TcpStream::connect(&addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut writer = sock;
    writeln!(writer, "{}", protocol::sweep_request_v2(&points)).expect("submit");
    writer.flush().expect("flush");

    let read_event = |reader: &mut BufReader<TcpStream>| -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).expect("event line");
        assert!(line.ends_with('\n'), "server must never send partial lines");
        Json::parse(line.trim()).expect("event parses")
    };

    let queued = read_event(&mut reader);
    assert_eq!(queued.get("event").and_then(Json::as_str), Some("queued"));
    let job = queued.get("job").and_then(Json::as_u64).expect("server assigns a job id");

    let mut last_seq = 0u64;
    let mut indices_seen: Vec<u64> = Vec::new();
    loop {
        let ev = read_event(&mut reader);
        let seq = ev.get("seq").and_then(Json::as_u64).expect("job events carry seq");
        assert!(seq > last_seq, "live events must carry monotone sequence numbers");
        last_seq = seq;
        if ev.get("event").and_then(Json::as_str) == Some("point-done") {
            indices_seen.push(ev.get("index").and_then(Json::as_u64).expect("index"));
            break; // vanish mid-stream
        }
    }
    drop(reader);
    drop(writer);

    // Connection 2: resume from the cursor; the replay must cover the
    // remaining points exactly, each event strictly newer than the
    // cursor.
    let sock = TcpStream::connect(&addr).expect("reconnect");
    sock.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut writer = sock;
    writeln!(writer, "{}", protocol::resume_request(job, last_seq)).expect("resume");
    writer.flush().expect("flush");

    let ack = read_event(&mut reader);
    assert_eq!(ack.get("event").and_then(Json::as_str), Some("resumed"));
    loop {
        let ev = read_event(&mut reader);
        let seq = ev.get("seq").and_then(Json::as_u64).expect("job events carry seq");
        assert!(seq > last_seq, "replayed events must be strictly newer than the cursor");
        last_seq = seq;
        match ev.get("event").and_then(Json::as_str) {
            Some("point-done") => {
                indices_seen.push(ev.get("index").and_then(Json::as_u64).expect("index"))
            }
            Some("complete") => break,
            _ => {}
        }
    }
    indices_seen.sort_unstable();
    assert_eq!(
        indices_seen,
        (0..points.len() as u64).collect::<Vec<_>>(),
        "across both connections every point must be reported exactly once"
    );

    client::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Typed resume failures: a cursor older than the retention window
/// answers `resume-too-old`; a forgotten job id answers `unknown-job` —
/// and neither kills the connection.
#[test]
fn stale_or_unknown_resume_cursors_answer_typed_errors() {
    let dir = temp_dir("too-old");
    let mut cfg = server_cfg(dir.join("store"));
    cfg.retain_events = 2; // tiny window: any full job overflows it
    let (addr, handle) = spawn_server(cfg);
    let points = grid();

    // Run one job to completion (6 events: running + 4 point-done +
    // complete — far past a 2-event window).
    let results = client::run_sweep(&addr, &points).expect("sweep completes");
    assert!(results.iter().all(Result::is_ok));
    // The completed job got id 0 (first job of this server).
    let job = 0u64;

    let sock = TcpStream::connect(&addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut writer = sock;
    let ask = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| -> Json {
        writeln!(writer, "{line}").expect("send");
        writer.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        Json::parse(reply.trim()).expect("reply parses")
    };

    // Resuming from the beginning is impossible now: typed answer.
    let ack = ask(&mut writer, &mut reader, &protocol::resume_request(job, 0));
    assert_eq!(ack.get("event").and_then(Json::as_str), Some("resumed"));
    let err = {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("error line");
        Json::parse(reply.trim()).expect("error parses")
    };
    assert_eq!(err.get("event").and_then(Json::as_str), Some("error"));
    assert_eq!(err.get("code").and_then(Json::as_str), Some("resume-too-old"));

    // A job id the server never saw (or already forgot): typed answer,
    // same connection keeps working.
    let err = ask(&mut writer, &mut reader, &protocol::resume_request(9_999, 0));
    assert_eq!(err.get("event").and_then(Json::as_str), Some("error"));
    assert_eq!(err.get("code").and_then(Json::as_str), Some("unknown-job"));
    let status = ask(&mut writer, &mut reader, &protocol::status_request());
    assert_eq!(
        status.get("event").and_then(Json::as_str),
        Some("status"),
        "typed resume errors must not poison the connection"
    );

    client::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shutdown race: a wire shutdown while a job is mid-stream must still
/// deliver the job's `complete` to the connected client — never a bare
/// EOF.
#[test]
fn shutdown_mid_stream_still_delivers_complete_never_bare_eof() {
    let dir = temp_dir("shutdown-race");
    let (addr, handle) = spawn_server(server_cfg(dir.join("store")));
    let points = grid();

    let sock = TcpStream::connect(&addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut writer = sock;
    writeln!(writer, "{}", protocol::sweep_request_v2(&points)).expect("submit");
    writer.flush().expect("flush");

    // Wait for the job to be admitted, then yank the rug: shutdown via
    // a second connection while the stream is live.
    let mut line = String::new();
    reader.read_line(&mut line).expect("queued line");
    assert!(Json::parse(line.trim()).expect("queued parses").get("job").is_some());
    client::shutdown(&addr).expect("wire shutdown mid-stream");

    // Keep reading: the stream must terminate with a `complete` (the
    // queued job drains) or a typed error — never a bare EOF.
    let mut saw_terminal = false;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("stream read");
        if n == 0 {
            break; // EOF — only legal after a terminal event
        }
        assert!(line.ends_with('\n'), "no partial lines");
        let ev = Json::parse(line.trim()).expect("event parses");
        match ev.get("event").and_then(Json::as_str) {
            Some("complete") | Some("error") => {
                saw_terminal = true;
                break;
            }
            _ => {}
        }
    }
    assert!(
        saw_terminal,
        "a mid-stream shutdown must deliver `complete` or a typed error, not a bare EOF"
    );

    handle.join().expect("server thread").expect("serve returns");
    let _ = std::fs::remove_dir_all(&dir);
}
