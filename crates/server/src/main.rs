//! `secsim-serve` — the simulation job server.
//!
//! ```text
//! secsim-serve [--addr HOST:PORT] [--workers N] [--threads N]
//!              [--queue N] [--job-timeout-secs N]
//!              [--store-dir PATH] [--store-bytes N]
//!              [--retain-events N] [--retain-jobs N] [--smoke]
//! ```
//!
//! Runs until SIGINT or a `shutdown` request, then drains the queue and
//! flushes `results/server_status.json` + `results/server_timeline.json`.
//! `--smoke` runs the self-contained end-to-end check used by tier-1:
//! an ephemeral server, two concurrent clients submitting the same
//! 2-point grid, exactly-once simulation asserted, clean shutdown.

use secsim_server::{install_sigint_handler, JobServer, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: secsim-serve [--addr HOST:PORT] [--workers N] [--threads N] \
         [--queue N] [--job-timeout-secs N] [--store-dir PATH] [--store-bytes N] \
         [--retain-events N] [--retain-jobs N] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, bool) {
    let mut cfg = ServerConfig::default();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("error: {name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers") as usize,
            "--threads" => cfg.threads = parse_num(&value("--threads"), "--threads") as usize,
            "--queue" => cfg.queue_cap = parse_num(&value("--queue"), "--queue") as usize,
            "--job-timeout-secs" => {
                cfg.job_timeout =
                    Duration::from_secs(parse_num(&value("--job-timeout-secs"), "--job-timeout-secs"))
            }
            "--store-dir" => cfg.store_dir = value("--store-dir").into(),
            "--store-bytes" => {
                let n = parse_num(&value("--store-bytes"), "--store-bytes");
                cfg.store_bytes = (n > 0).then_some(n);
            }
            "--retain-events" => {
                cfg.retain_events = parse_num(&value("--retain-events"), "--retain-events") as usize
            }
            "--retain-jobs" => {
                cfg.retain_jobs = parse_num(&value("--retain-jobs"), "--retain-jobs") as usize
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other}");
                usage()
            }
        }
    }
    (cfg, smoke)
}

fn parse_num(s: &str, name: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: {name} expects a number, got {s:?}");
        usage()
    })
}

fn main() {
    let (cfg, smoke) = parse_args();
    if smoke {
        smoke_test();
        return;
    }
    install_sigint_handler();
    let server = match JobServer::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "secsim-serve listening on {addr} (workers={}, threads={}, queue={}, store={})",
            cfg.workers,
            cfg.threads,
            cfg.queue_cap,
            cfg.store_dir.display()
        ),
        Err(_) => eprintln!("secsim-serve listening on {}", cfg.addr),
    }
    match server.serve() {
        Ok(status) => eprintln!("secsim-serve drained cleanly: {}", status.render()),
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The tier-1 smoke: ephemeral server, two concurrent clients, one
/// identical 2-point grid each. Asserts (a) both clients get complete,
/// byte-identical result sets, (b) the server simulated each unique
/// point exactly once (dedup fan-in), (c) shutdown drains cleanly.
fn smoke_test() {
    use secsim_bench::{client, RunOpts, SweepPoint};
    use secsim_core::Policy;
    use secsim_stats::Json;
    use secsim_workloads::BenchId;

    let tmp = std::env::temp_dir().join(format!("secsim-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        threads: 2,
        queue_cap: 8,
        job_timeout: Duration::from_secs(120),
        store_dir: tmp.join("store"),
        ..ServerConfig::default()
    };
    let server = JobServer::bind(&cfg).expect("smoke: bind ephemeral port");
    let addr = server.local_addr().expect("smoke: local addr").to_string();
    let server_thread = std::thread::spawn(move || server.serve());

    let opts = RunOpts { max_insts: 20_000, ..RunOpts::default() };
    let points = vec![
        SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts),
    ];

    let clients: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let points = points.clone();
            std::thread::spawn(move || client::run_sweep(&addr, &points))
        })
        .collect();
    let mut renders: Vec<Vec<String>> = Vec::new();
    for c in clients {
        let results = c
            .join()
            .expect("smoke: client thread")
            .expect("smoke: sweep job succeeds");
        renders.push(
            results
                .into_iter()
                .map(|r| {
                    r.expect("smoke: every point reports")
                        .to_json()
                        .expect("smoke: untraced report renders")
                        .render()
                })
                .collect(),
        );
    }
    assert_eq!(
        renders[0], renders[1],
        "smoke: concurrent clients must see byte-identical reports"
    );

    let status = client::status(&addr).expect("smoke: status request");
    let simulated = status
        .get("sweep")
        .and_then(|s| s.get("simulated"))
        .and_then(Json::as_u64)
        .expect("smoke: status carries sweep.simulated");
    assert_eq!(
        simulated, 2,
        "smoke: 4 requested points over 2 unique keys must simulate exactly twice \
         (dedup fan-in), got {simulated}"
    );

    client::shutdown(&addr).expect("smoke: shutdown request");
    let final_status = server_thread
        .join()
        .expect("smoke: server thread")
        .expect("smoke: serve returns");
    assert_eq!(
        final_status.get("queue_depth").and_then(Json::as_u64),
        Some(0),
        "smoke: queue must drain before exit"
    );
    let _ = std::fs::remove_dir_all(&tmp);
    println!("serve smoke OK: 2 clients x 2 points, simulated=2, drained clean");
}
