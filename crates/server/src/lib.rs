//! `secsim-serve`: simulation-as-a-service on top of
//! [`secsim_bench::Sweep`].
//!
//! The figure binaries all reduce to "run a grid of points, read the
//! reports". [`JobServer`] lifts that loop out of the CLI process into
//! a long-running service: clients submit sweep or fault-campaign jobs
//! over the line-delimited JSON protocol of [`secsim_bench::protocol`],
//! a bounded queue feeds a worker pool that executes every point
//! through one shared [`Sweep`] — so N clients asking for the same
//! point share **one** simulation (in-process gates plus the store's
//! cross-process claim files), and every completed point lands in one
//! content-addressed [`ResultStore`] that
//! future jobs hit instead of simulating.
//!
//! # Resilience (protocol v2)
//!
//! The server is built to survive misbehaving networks and clients:
//!
//! * **Job registry.** Every job lives in a registry keyed by its
//!   server-assigned id *and* by the content hash of its request
//!   ([`protocol::sweep_job_hash`]). Events are retained in a bounded
//!   per-job buffer with monotone sequence numbers, so a client that
//!   lost its connection can `resume {job, since_seq}` and replay only
//!   what it missed. A client that lost its *job id* resubmits; the
//!   content hash dedups the submission onto the original job —
//!   exactly-once execution either way.
//! * **Panic isolation.** Each point runs under `catch_unwind`; a
//!   panicking point degrades to a typed [`SweepError::Failed`] hole in
//!   the job's results and the worker survives to run the next job.
//! * **Load shedding.** A full queue answers `queue-full` with a
//!   `retry_after_ms` hint derived from the queue depth
//!   ([`retry_after_hint`]) so backoff across clients spreads out.
//! * **Crash-safe store.** [`JobServer::bind`] scavenges torn `.tmp-`
//!   and stale `.claim-` files left by crashed processes
//!   ([`ResultStore::scavenge`]); the counts surface in `status`.
//!
//! Lifecycle: [`JobServer::bind`] → [`JobServer::serve`] (accept loop)
//! → shutdown via a `shutdown` request or SIGINT
//! ([`install_sigint_handler`]) → the server refuses new jobs, drains
//! the queue, waits for connected streams to deliver their final
//! `complete` events (never a bare EOF), flushes its counters and job
//! timeline under `results/`, and returns.
//!
//! Every sweep job is bounded by a wall-clock watchdog: points still
//! missing when the job's deadline passes are reported through the
//! existing [`SweepError::Failed`] degradation path — a slow grid costs
//! holes, never a wedged server.

use secsim_bench::protocol::{self, codes, Request};
use secsim_bench::{faultpoint, results_dir, ResultStore, Sweep, SweepError, SweepPoint};
use secsim_cpu::SimReport;
use secsim_stats::{Json, Timeline};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything a [`JobServer`] needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// Concurrent jobs (worker threads popping the queue).
    pub workers: usize,
    /// Point-level parallelism within one sweep job.
    pub threads: usize,
    /// Bounded queue capacity; a full queue answers `queue-full` with a
    /// `retry_after_ms` hint.
    pub queue_cap: usize,
    /// Wall-clock budget per job; late points degrade to
    /// [`SweepError::Failed`].
    pub job_timeout: Duration,
    /// Directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// LRU byte budget for the store (`None` = unlimited).
    pub store_bytes: Option<u64>,
    /// Events retained per job for `resume`; older events answer
    /// `resume-too-old`.
    pub retain_events: usize,
    /// Completed jobs kept in the registry (resumable / dedup-able)
    /// before being forgotten.
    pub retain_jobs: usize,
    /// Override for the store's stale-claim deadline (`None` = store
    /// default).
    pub claim_wait: Option<Duration>,
    /// Override for the store's torn-tmp scavenge age (`None` = store
    /// default).
    pub scavenge_age: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            addr: "127.0.0.1:2006".to_string(),
            workers: 2,
            threads: cores.div_ceil(2).max(1),
            queue_cap: 64,
            job_timeout: Duration::from_secs(600),
            store_dir: results_dir().join("cache"),
            store_bytes: None,
            retain_events: 4096,
            retain_jobs: 32,
            claim_wait: None,
            scavenge_age: None,
        }
    }
}

/// The `retry_after_ms` hint for a `queue-full` answer: linear in queue
/// fullness, 100ms when nearly empty to 2s when saturated. Spreading
/// hints by depth desynchronizes a thundering herd of backed-off
/// clients.
pub fn retry_after_hint(depth: usize, cap: usize) -> u64 {
    let cap = cap.max(1) as u64;
    let depth = (depth as u64).min(cap);
    100 + (1900 * depth) / cap
}

/// The bounded, sequence-numbered event history of one job.
struct EventBuf {
    /// Sequence number of `events[0]`. Starts at 1; advances past 1
    /// only when the retention cap discards old events.
    first_seq: u64,
    /// Sequence number the next pushed event will get.
    next_seq: u64,
    events: VecDeque<String>,
    /// Set once, after the final (`complete`) event.
    done: bool,
}

impl EventBuf {
    fn new() -> Self {
        Self { first_seq: 1, next_seq: 1, events: VecDeque::new(), done: false }
    }
}

/// One job in the registry: identity plus its event history. Workers
/// push events; any number of follower connections replay them.
struct JobState {
    id: u64,
    /// Content hash of the originating request (submission dedup).
    hash: u64,
    buf: Mutex<EventBuf>,
    ready: Condvar,
}

/// All jobs the server still remembers.
#[derive(Default)]
struct Registry {
    jobs: HashMap<u64, Arc<JobState>>,
    by_hash: HashMap<u64, u64>,
    /// Completed jobs in completion order, for bounded retention.
    done_order: VecDeque<u64>,
}

/// A job waiting for a worker.
struct QueuedJob {
    state: Arc<JobState>,
    kind: JobKind,
}

enum JobKind {
    Sweep(Arc<Vec<SweepPoint>>),
    Faults { inject: u64, timeout_secs: u64 },
}

impl JobKind {
    fn label(&self) -> &'static str {
        match self {
            JobKind::Sweep(_) => "sweep",
            JobKind::Faults { .. } => "faults",
        }
    }
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    sweep: Sweep,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_ready: Condvar,
    queue_cap: usize,
    registry: Mutex<Registry>,
    retain_events: usize,
    retain_jobs: usize,
    /// Connections currently streaming job events; shutdown waits for
    /// this to reach zero so no client ever sees a bare EOF.
    streaming: AtomicUsize,
    /// Cleared when shutdown is requested: no new jobs.
    accepting: AtomicBool,
    active_jobs: AtomicU64,
    jobs_done: AtomicU64,
    next_job: AtomicU64,
    started: Instant,
    timeline: Mutex<Timeline>,
    threads: usize,
    job_timeout: Duration,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The `status` event object (also the shutdown flush payload).
    fn status_json(&self) -> Json {
        let stats = self.sweep.stats();
        let store = match self.sweep.store() {
            Some(s) => {
                let mut obj = s.counters().to_json();
                if let Json::Object(pairs) = &mut obj {
                    pairs.push((
                        "budget_bytes".to_string(),
                        s.budget().map_or(Json::Null, Json::UInt),
                    ));
                }
                obj
            }
            None => Json::Null,
        };
        let jobs_retained = self.registry.lock().expect("registry poisoned").jobs.len();
        Json::obj(vec![
            ("event", Json::Str("status".into())),
            ("protocol", Json::UInt(protocol::PROTOCOL_V2)),
            ("protocol_min", Json::UInt(protocol::PROTOCOL_VERSION)),
            ("accepting", Json::Bool(self.accepting.load(Ordering::Relaxed))),
            (
                "queue_depth",
                Json::UInt(self.queue.lock().expect("queue poisoned").len() as u64),
            ),
            ("queue_cap", Json::UInt(self.queue_cap as u64)),
            ("active_jobs", Json::UInt(self.active_jobs.load(Ordering::Relaxed))),
            ("jobs_done", Json::UInt(self.jobs_done.load(Ordering::Relaxed))),
            ("jobs_retained", Json::UInt(jobs_retained as u64)),
            (
                "sweep",
                Json::obj(vec![
                    ("simulated", Json::UInt(stats.simulated)),
                    ("fanin", Json::UInt(stats.fanin)),
                    ("memo_hits", Json::UInt(stats.memo_hits)),
                ]),
            ),
            ("store", store),
            ("uptime_ms", Json::UInt(self.now_ms())),
        ])
    }

    /// Appends one event to a job's history, assigning its sequence
    /// number and applying the retention cap. Wakes every follower.
    fn push_event(&self, state: &JobState, mut pairs: Vec<(&str, Json)>) {
        let mut buf = state.buf.lock().expect("event buf poisoned");
        let seq = buf.next_seq;
        buf.next_seq += 1;
        pairs.push(("seq", Json::UInt(seq)));
        buf.events.push_back(Json::obj(pairs).render());
        while buf.events.len() > self.retain_events {
            buf.events.pop_front();
            buf.first_seq += 1;
        }
        drop(buf);
        state.ready.notify_all();
    }

    /// Marks a job's stream finished and applies completed-job
    /// retention to the registry.
    fn finish_job(&self, state: &JobState) {
        {
            let mut buf = state.buf.lock().expect("event buf poisoned");
            buf.done = true;
        }
        state.ready.notify_all();
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.done_order.push_back(state.id);
        while reg.done_order.len() > self.retain_jobs {
            let Some(old) = reg.done_order.pop_front() else { break };
            if let Some(gone) = reg.jobs.remove(&old) {
                if reg.by_hash.get(&gone.hash) == Some(&old) {
                    reg.by_hash.remove(&gone.hash);
                }
            }
        }
    }
}

/// Set by the SIGINT handler; polled by every accept loop.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Installs a SIGINT handler that asks every running [`JobServer`] to
/// drain and exit (the Ctrl-C path of graceful shutdown). Std-only: the
/// C runtime's `signal(2)` is already linked into every Rust binary.
#[cfg(unix)]
pub fn install_sigint_handler() {
    extern "C" fn on_sigint(_: i32) {
        SIGINT_SEEN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    let handler = on_sigint as extern "C" fn(i32);
    unsafe {
        signal(SIGINT, handler as usize);
    }
}

/// No-op off Unix; shutdown remains available via the wire request.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// The job server. See the module docs.
pub struct JobServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

impl JobServer {
    /// Binds the listen socket, builds the shared store/sweep, and
    /// scavenges crash debris (torn `.tmp-`, stale `.claim-` files)
    /// from the store directory. The server accepts nothing until
    /// [`serve`](JobServer::serve).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let mut store = ResultStore::new(cfg.store_dir.clone()).with_budget(cfg.store_bytes);
        if let Some(wait) = cfg.claim_wait {
            store = store.with_claim_wait(wait);
        }
        if let Some(age) = cfg.scavenge_age {
            store = store.with_scavenge_age(age);
        }
        let (tmp, claims) = store.scavenge();
        if tmp + claims > 0 {
            eprintln!("secsim-serve: scavenged {tmp} torn tmp file(s), {claims} stale claim(s)");
        }
        let shared = Arc::new(Shared {
            sweep: Sweep::new().with_store(store),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            queue_cap: cfg.queue_cap.max(1),
            registry: Mutex::new(Registry::default()),
            retain_events: cfg.retain_events.max(1),
            retain_jobs: cfg.retain_jobs.max(1),
            streaming: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            active_jobs: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            started: Instant::now(),
            timeline: Mutex::new(Timeline::new()),
            threads: cfg.threads.max(1),
            job_timeout: cfg.job_timeout,
        });
        Ok(Self { listener, shared, workers: cfg.workers.max(1) })
    }

    /// The bound address (reports the real port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until a `shutdown` request or SIGINT, then
    /// drains the queue, joins the workers, waits for in-flight client
    /// streams to finish, and flushes status + timeline under
    /// `results/`. Returns the final status object.
    pub fn serve(self) -> std::io::Result<Json> {
        let worker_handles: Vec<_> = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        while self.shared.accepting.load(Ordering::Relaxed) {
            if SIGINT_SEEN.load(Ordering::Relaxed) {
                self.shared.accepting.store(false, Ordering::Relaxed);
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let _ = handle_connection(&shared, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }

        // Drain: workers exit once the queue is empty (accepting is
        // already false, so nothing refills it). Every queued job still
        // runs to completion.
        self.shared.queue_ready.notify_all();
        for h in worker_handles {
            let _ = h.join();
        }
        // Shutdown-race guarantee: connections still replaying events
        // get to deliver their final `complete` before the process can
        // exit — a mid-stream client never sees a bare EOF. Bounded so
        // a wedged socket cannot hold shutdown hostage.
        let stream_deadline = Instant::now() + Duration::from_secs(30);
        while self.shared.streaming.load(Ordering::Relaxed) > 0
            && Instant::now() < stream_deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = self.shared.status_json();
        // Flush next to the store (results/ for the default config) so
        // an ad-hoc server never litters the global results directory.
        let dir = self
            .shared
            .sweep
            .store()
            .and_then(|s| s.dir().parent().map(std::path::Path::to_path_buf))
            .unwrap_or_else(results_dir);
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(dir.join("server_status.json"), status.render());
        let timeline = self.shared.timeline.lock().expect("timeline poisoned");
        if !timeline.is_empty() {
            let _ = std::fs::write(
                dir.join("server_timeline.json"),
                timeline.to_chrome_trace().render(),
            );
        }
        Ok(status)
    }
}

/// Pops and runs jobs until shutdown is requested and the queue is dry.
/// The whole job body runs under `catch_unwind`: a panic that somehow
/// escapes the per-point isolation still finishes the job's event
/// stream and leaves the worker alive for the next job.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if !shared.accepting.load(Ordering::Relaxed) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue poisoned");
                q = guard;
            }
        };
        let Some(QueuedJob { state, kind }) = job else { return };
        shared.active_jobs.fetch_add(1, Ordering::Relaxed);
        let begin = shared.now_ms();
        let label = kind.label();
        let id = state.id;
        if catch_unwind(AssertUnwindSafe(|| run_job(shared, &state, &kind))).is_err() {
            // Last-resort containment: the stream still terminates with
            // a `complete` so no follower waits forever.
            shared.push_event(
                &state,
                vec![
                    ("event", Json::Str("complete".into())),
                    ("job", Json::UInt(id)),
                    ("ok", Json::UInt(0)),
                    ("failed", Json::UInt(0)),
                    ("degraded", Json::Str("job runner panicked".into())),
                ],
            );
        }
        shared.finish_job(&state);
        let end = shared.now_ms();
        shared
            .timeline
            .lock()
            .expect("timeline poisoned")
            .push_span("jobs", &format!("{label}#{id}"), begin, end.max(begin + 1));
        shared.active_jobs.fetch_sub(1, Ordering::Relaxed);
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
    }
}

fn run_job(shared: &Arc<Shared>, state: &Arc<JobState>, kind: &JobKind) {
    shared.push_event(
        state,
        vec![
            ("event", Json::Str("running".into())),
            ("job", Json::UInt(state.id)),
        ],
    );
    match kind {
        JobKind::Sweep(points) => run_sweep_job(shared, state, Arc::clone(points)),
        JobKind::Faults { inject, timeout_secs } => {
            run_faults_job(shared, state, *inject, *timeout_secs)
        }
    }
}

/// Runs one point with panic isolation: a panicking point becomes a
/// typed [`SweepError::Failed`] hole instead of killing the runner
/// thread (and with it the worker's job).
fn run_point_isolated(shared: &Arc<Shared>, point: &SweepPoint) -> Result<SimReport, SweepError> {
    match catch_unwind(AssertUnwindSafe(|| shared.sweep.run_point(point))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Err(SweepError::Failed {
                bench: point.bench.name().to_string(),
                detail: format!("panic in point runner: {msg}"),
            })
        }
    }
}

/// Executes one sweep grid through the shared [`Sweep`], fanning points
/// across `shared.threads` detached runner threads, with the job-level
/// wall-clock watchdog collecting results: a point that misses the
/// deadline is abandoned (its runner thread still finishes and warms
/// the store for whoever asks next) and reported as
/// [`SweepError::Failed`].
fn run_sweep_job(shared: &Arc<Shared>, state: &Arc<JobState>, points: Arc<Vec<SweepPoint>>) {
    let n = points.len();
    let (ptx, prx) = mpsc::channel::<(usize, Result<SimReport, SweepError>)>();
    let next = Arc::new(AtomicUsize::new(0));
    for _ in 0..shared.threads.min(n) {
        let shared = Arc::clone(shared);
        let points = Arc::clone(&points);
        let next = Arc::clone(&next);
        let ptx = ptx.clone();
        std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= points.len() {
                break;
            }
            let r = run_point_isolated(&shared, &points[i]);
            if ptx.send((i, r)).is_err() {
                break; // job watchdog gave up on us
            }
        });
    }
    drop(ptx);

    let deadline = Instant::now() + shared.job_timeout;
    let mut seen = vec![false; n];
    let (mut ok, mut failed, mut done) = (0u64, 0u64, 0usize);
    while done < n {
        let remain = deadline.saturating_duration_since(Instant::now());
        match prx.recv_timeout(remain) {
            Ok((i, r)) => {
                seen[i] = true;
                done += 1;
                if r.is_ok() {
                    ok += 1;
                } else {
                    failed += 1;
                }
                let (key, payload) = protocol::result_to_json(&r);
                shared.push_event(
                    state,
                    vec![
                        ("event", Json::Str("point-done".into())),
                        ("job", Json::UInt(state.id)),
                        ("index", Json::UInt(i as u64)),
                        (key, payload),
                    ],
                );
            }
            Err(_) => break, // deadline passed (or all runners gone)
        }
    }
    // The watchdog degradation path: late points become typed holes.
    for (i, seen) in seen.iter().enumerate() {
        if *seen {
            continue;
        }
        failed += 1;
        let err = SweepError::Failed {
            bench: points[i].bench.name().to_string(),
            detail: format!(
                "job watchdog: wall-clock timeout after {}s",
                shared.job_timeout.as_secs()
            ),
        };
        shared.push_event(
            state,
            vec![
                ("event", Json::Str("point-done".into())),
                ("job", Json::UInt(state.id)),
                ("index", Json::UInt(i as u64)),
                ("error", protocol::sweep_error_to_json(&err)),
            ],
        );
    }
    shared.push_event(
        state,
        vec![
            ("event", Json::Str("complete".into())),
            ("job", Json::UInt(state.id)),
            ("ok", Json::UInt(ok)),
            ("failed", Json::UInt(failed)),
        ],
    );
}

/// Executes the fault campaign (8 schemes × 5 integrity kinds) at one
/// injection cycle; every point already carries its own watchdog.
fn run_faults_job(shared: &Arc<Shared>, state: &Arc<JobState>, inject: u64, timeout_secs: u64) {
    let timeout = Duration::from_secs(timeout_secs.clamp(1, shared.job_timeout.as_secs().max(1)));
    let (mut ok, mut failed) = (0u64, 0u64);
    for kind in faultpoint::integrity_kinds() {
        for (name, policy) in faultpoint::schemes() {
            let mut pairs = vec![
                ("event", Json::Str("fault-done".into())),
                ("job", Json::UInt(state.id)),
                ("policy", Json::Str(name.into())),
                ("fault", protocol::fault_kind_to_json(&kind)),
            ];
            match faultpoint::run_point(policy, kind, inject, timeout) {
                Ok(o) => {
                    ok += 1;
                    pairs.push(("verdict", Json::Str(o.verdict.into())));
                    pairs.push(("detect", o.detect_cycle.map_or(Json::Null, Json::UInt)));
                    pairs.push((
                        "exposed",
                        o.exposure.map_or(Json::Null, |x| Json::UInt(x.total())),
                    ));
                    pairs.push(("cycles", Json::UInt(o.cycles)));
                }
                Err(e) => {
                    failed += 1;
                    pairs.push(("error", protocol::sweep_error_to_json(&e)));
                }
            }
            shared.push_event(state, pairs);
        }
    }
    shared.push_event(
        state,
        vec![
            ("event", Json::Str("complete".into())),
            ("job", Json::UInt(state.id)),
            ("ok", Json::UInt(ok)),
            ("failed", Json::UInt(failed)),
        ],
    );
}

/// What a submission turned into.
enum Submit {
    /// A fresh job was queued.
    Queued(Arc<JobState>),
    /// An identical submission (by content hash) is already known; the
    /// caller follows the existing job's stream instead.
    Attached(Arc<JobState>),
    /// Refused with a pre-rendered error line (`shutting-down` or
    /// `queue-full` + `retry_after_ms`).
    Refused(String),
}

/// Admits one submission: dedups by content hash onto a live or
/// retained job, otherwise queues a fresh one (respecting the drain
/// flag and the bounded queue). The registry lock spans the whole
/// decision so two identical concurrent submissions cannot both queue.
fn submit_or_attach(shared: &Arc<Shared>, hash: u64, kind: JobKind) -> Submit {
    if !shared.accepting.load(Ordering::Relaxed) {
        return Submit::Refused(protocol::error_line(
            codes::SHUTTING_DOWN,
            "server is draining; no new jobs",
        ));
    }
    let mut reg = shared.registry.lock().expect("registry poisoned");
    if let Some(state) = reg.by_hash.get(&hash).and_then(|id| reg.jobs.get(id)) {
        // Attach only when the full event history is still replayable;
        // a job whose buffer already overflowed would strand the new
        // follower at `resume-too-old`. A fresh job is correct either
        // way — the store dedups the actual simulation work.
        if state.buf.lock().expect("event buf poisoned").first_seq == 1 {
            return Submit::Attached(Arc::clone(state));
        }
    }
    let mut q = shared.queue.lock().expect("queue poisoned");
    if q.len() >= shared.queue_cap {
        let hint = retry_after_hint(q.len(), shared.queue_cap);
        return Submit::Refused(protocol::queue_full_line(hint));
    }
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
    let state = Arc::new(JobState {
        id,
        hash,
        buf: Mutex::new(EventBuf::new()),
        ready: Condvar::new(),
    });
    reg.jobs.insert(id, Arc::clone(&state));
    reg.by_hash.insert(hash, id);
    q.push_back(QueuedJob { state: Arc::clone(&state), kind });
    let depth = q.len() as f64;
    drop(q);
    drop(reg);
    let ts = shared.now_ms();
    shared
        .timeline
        .lock()
        .expect("timeline poisoned")
        .push_counter("queue", ts, depth);
    shared.queue_ready.notify_one();
    Submit::Queued(state)
}

/// Counts a connection into the streaming gauge for its lifetime (the
/// shutdown path waits for this gauge to drain).
struct StreamGuard<'a>(&'a Shared);

impl<'a> StreamGuard<'a> {
    fn new(shared: &'a Shared) -> Self {
        shared.streaming.fetch_add(1, Ordering::SeqCst);
        Self(shared)
    }
}

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.0.streaming.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Replays a job's events with sequence numbers `> since` to the
/// client, waiting for new ones until the job completes. Answers
/// `resume-too-old` when the retention cap already discarded requested
/// events. Returns `Ok` even if the client vanished mid-stream — the
/// job itself is unaffected.
fn follow(
    shared: &Shared,
    writer: &mut TcpStream,
    state: &JobState,
    mut since: u64,
) -> std::io::Result<()> {
    let _guard = StreamGuard::new(shared);
    loop {
        enum Step {
            TooOld(u64),
            Batch(Vec<String>, bool),
        }
        let step = {
            let mut buf = state.buf.lock().expect("event buf poisoned");
            loop {
                if since + 1 < buf.first_seq {
                    break Step::TooOld(buf.first_seq);
                }
                let start = (since + 1 - buf.first_seq) as usize;
                if start < buf.events.len() {
                    let batch: Vec<String> = buf.events.iter().skip(start).cloned().collect();
                    break Step::Batch(batch, buf.done);
                }
                if buf.done {
                    break Step::Batch(Vec::new(), true);
                }
                let (guard, _) = state
                    .ready
                    .wait_timeout(buf, Duration::from_millis(100))
                    .expect("event buf poisoned");
                buf = guard;
            }
        };
        match step {
            Step::TooOld(first) => {
                writeln!(
                    writer,
                    "{}",
                    protocol::error_line(
                        codes::RESUME_TOO_OLD,
                        &format!(
                            "events before seq {first} were discarded; resubmit the job"
                        ),
                    )
                )?;
                return Ok(());
            }
            Step::Batch(batch, done) => {
                for line in &batch {
                    if writeln!(writer, "{line}").is_err() {
                        // Client gone; the job keeps running and its
                        // events stay resumable.
                        return Ok(());
                    }
                    since += 1;
                }
                if done {
                    return Ok(());
                }
            }
        }
    }
}

/// Serves one client connection: reads request lines (bounded), answers
/// each with events. Parse failures answer typed errors and keep the
/// connection; transport failures close it. Jobs execute on the worker
/// pool, never here — a malformed request can never panic a worker.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        // Bound the line *before* buffering it: a request without a
        // newline inside the cap is oversized; EOF mid-line is
        // truncated.
        let n = (&mut reader)
            .take(protocol::MAX_REQUEST_BYTES as u64 + 1)
            .read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // clean EOF between requests
        }
        if line.len() > protocol::MAX_REQUEST_BYTES {
            let _ = writeln!(
                writer,
                "{}",
                protocol::error_line(
                    codes::OVERSIZED_REQUEST,
                    &format!("request exceeds {} bytes", protocol::MAX_REQUEST_BYTES),
                )
            );
            return Ok(()); // the rest of the stream is unframed garbage
        }
        if !line.ends_with('\n') {
            // EOF mid-line: the client died or sent an unterminated
            // request. Typed answer on a best-effort basis, then close.
            let _ = writeln!(
                writer,
                "{}",
                protocol::error_line(codes::TRUNCATED, "connection closed mid-request")
            );
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match protocol::parse_request(trimmed) {
            Err(e) => {
                writeln!(writer, "{}", e.to_line())?;
            }
            Ok(Request::Status) => {
                writeln!(writer, "{}", shared.status_json().render())?;
            }
            Ok(Request::Shutdown) => {
                shared.accepting.store(false, Ordering::Relaxed);
                shared.queue_ready.notify_all();
                let _ = writeln!(
                    writer,
                    "{}",
                    Json::obj(vec![("event", Json::Str("shutting-down".into()))]).render()
                );
                return Ok(());
            }
            Ok(Request::Sweep { points }) => {
                let n = points.len();
                let hash = protocol::sweep_job_hash(&points);
                let kind = JobKind::Sweep(Arc::new(points));
                submit_and_stream(shared, &mut writer, hash, kind, n)?;
            }
            Ok(Request::Faults { inject, timeout_secs }) => {
                let n = faultpoint::integrity_kinds().len() * faultpoint::schemes().len();
                let hash = protocol::faults_job_hash(inject, timeout_secs);
                let kind = JobKind::Faults { inject, timeout_secs };
                submit_and_stream(shared, &mut writer, hash, kind, n)?;
            }
            Ok(Request::Resume { job, since_seq }) => {
                let state = {
                    let reg = shared.registry.lock().expect("registry poisoned");
                    reg.jobs.get(&job).map(Arc::clone)
                };
                match state {
                    None => {
                        writeln!(
                            writer,
                            "{}",
                            protocol::error_line(
                                codes::UNKNOWN_JOB,
                                &format!("job {job} is not retained; resubmit"),
                            )
                        )?;
                    }
                    Some(state) => {
                        writeln!(
                            writer,
                            "{}",
                            Json::obj(vec![
                                ("event", Json::Str("resumed".into())),
                                ("job", Json::UInt(job)),
                                ("since_seq", Json::UInt(since_seq)),
                            ])
                            .render()
                        )?;
                        follow(shared, &mut writer, &state, since_seq)?;
                    }
                }
            }
        }
    }
}

/// Admits one submission and streams the job's events to the client
/// from the beginning.
fn submit_and_stream(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    hash: u64,
    kind: JobKind,
    points: usize,
) -> std::io::Result<()> {
    let (state, attached) = match submit_or_attach(shared, hash, kind) {
        Submit::Refused(line) => {
            writeln!(writer, "{line}")?;
            return Ok(());
        }
        Submit::Queued(state) => (state, false),
        Submit::Attached(state) => (state, true),
    };
    writeln!(
        writer,
        "{}",
        Json::obj(vec![
            ("event", Json::Str("queued".into())),
            ("job", Json::UInt(state.id)),
            ("points", Json::UInt(points as u64)),
            ("attached", Json::Bool(attached)),
        ])
        .render()
    )?;
    follow(shared, writer, &state, 0)
}

#[cfg(test)]
mod tests {
    use super::retry_after_hint;

    #[test]
    fn retry_hint_scales_with_queue_depth() {
        // Nearly-empty queue: minimal hint.
        assert_eq!(retry_after_hint(0, 64), 100);
        // Saturated queue: full 2s hint (and depth is clamped to cap).
        assert_eq!(retry_after_hint(64, 64), 2000);
        assert_eq!(retry_after_hint(1000, 64), 2000);
        // Monotone in between.
        let hints: Vec<u64> = (0..=64).map(|d| retry_after_hint(d, 64)).collect();
        assert!(hints.windows(2).all(|w| w[0] <= w[1]));
        // Degenerate cap never divides by zero.
        assert_eq!(retry_after_hint(5, 0), 2000);
    }
}
