//! `secsim-serve`: simulation-as-a-service on top of
//! [`secsim_bench::Sweep`].
//!
//! The figure binaries all reduce to "run a grid of points, read the
//! reports". [`JobServer`] lifts that loop out of the CLI process into
//! a long-running service: clients submit sweep or fault-campaign jobs
//! over the line-delimited JSON protocol of [`secsim_bench::protocol`],
//! a bounded queue feeds a worker pool that executes every point
//! through one shared [`Sweep`] — so N clients asking for the same
//! point share **one** simulation (in-process gates plus the store's
//! cross-process claim files), and every completed point lands in one
//! content-addressed [`ResultStore`] that
//! future jobs hit instead of simulating.
//!
//! Lifecycle: [`JobServer::bind`] → [`JobServer::serve`] (accept loop)
//! → shutdown via a `shutdown` request or SIGINT
//! ([`install_sigint_handler`]) → the server refuses new jobs, drains
//! the queue, flushes its counters and job timeline under `results/`,
//! and returns.
//!
//! Every sweep job is bounded by a wall-clock watchdog: points still
//! missing when the job's deadline passes are reported through the
//! existing [`SweepError::Failed`] degradation path — a slow grid costs
//! holes, never a wedged server.

use secsim_bench::protocol::{self, codes, Request};
use secsim_bench::{faultpoint, results_dir, ResultStore, Sweep, SweepError, SweepPoint};
use secsim_cpu::SimReport;
use secsim_stats::{Json, Timeline};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything a [`JobServer`] needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// Concurrent jobs (worker threads popping the queue).
    pub workers: usize,
    /// Point-level parallelism within one sweep job.
    pub threads: usize,
    /// Bounded queue capacity; a full queue answers `queue-full`.
    pub queue_cap: usize,
    /// Wall-clock budget per job; late points degrade to
    /// [`SweepError::Failed`].
    pub job_timeout: Duration,
    /// Directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// LRU byte budget for the store (`None` = unlimited).
    pub store_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            addr: "127.0.0.1:2006".to_string(),
            workers: 2,
            threads: cores.div_ceil(2).max(1),
            queue_cap: 64,
            job_timeout: Duration::from_secs(600),
            store_dir: results_dir().join("cache"),
            store_bytes: None,
        }
    }
}

/// One queued job.
struct Job {
    id: u64,
    kind: JobKind,
    /// Event lines stream back to the submitting connection.
    events: mpsc::Sender<Event>,
}

enum JobKind {
    Sweep(Arc<Vec<SweepPoint>>),
    Faults { inject: u64, timeout_secs: u64 },
}

impl JobKind {
    fn label(&self) -> &'static str {
        match self {
            JobKind::Sweep(_) => "sweep",
            JobKind::Faults { .. } => "faults",
        }
    }
}

/// One event line, flagged when it ends the job's stream.
struct Event {
    line: String,
    last: bool,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    sweep: Sweep,
    queue: Mutex<VecDeque<Job>>,
    queue_ready: Condvar,
    queue_cap: usize,
    /// Cleared when shutdown is requested: no new jobs.
    accepting: AtomicBool,
    active_jobs: AtomicU64,
    jobs_done: AtomicU64,
    next_job: AtomicU64,
    started: Instant,
    timeline: Mutex<Timeline>,
    threads: usize,
    job_timeout: Duration,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The `status` event object (also the shutdown flush payload).
    fn status_json(&self) -> Json {
        let stats = self.sweep.stats();
        let store = match self.sweep.store() {
            Some(s) => {
                let mut obj = s.counters().to_json();
                if let Json::Object(pairs) = &mut obj {
                    pairs.push((
                        "budget_bytes".to_string(),
                        s.budget().map_or(Json::Null, Json::UInt),
                    ));
                }
                obj
            }
            None => Json::Null,
        };
        Json::obj(vec![
            ("event", Json::Str("status".into())),
            ("protocol", Json::UInt(protocol::PROTOCOL_VERSION)),
            ("accepting", Json::Bool(self.accepting.load(Ordering::Relaxed))),
            (
                "queue_depth",
                Json::UInt(self.queue.lock().expect("queue poisoned").len() as u64),
            ),
            ("active_jobs", Json::UInt(self.active_jobs.load(Ordering::Relaxed))),
            ("jobs_done", Json::UInt(self.jobs_done.load(Ordering::Relaxed))),
            (
                "sweep",
                Json::obj(vec![
                    ("simulated", Json::UInt(stats.simulated)),
                    ("fanin", Json::UInt(stats.fanin)),
                    ("memo_hits", Json::UInt(stats.memo_hits)),
                ]),
            ),
            ("store", store),
            ("uptime_ms", Json::UInt(self.now_ms())),
        ])
    }
}

/// Set by the SIGINT handler; polled by every accept loop.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Installs a SIGINT handler that asks every running [`JobServer`] to
/// drain and exit (the Ctrl-C path of graceful shutdown). Std-only: the
/// C runtime's `signal(2)` is already linked into every Rust binary.
#[cfg(unix)]
pub fn install_sigint_handler() {
    extern "C" fn on_sigint(_: i32) {
        SIGINT_SEEN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    let handler = on_sigint as extern "C" fn(i32);
    unsafe {
        signal(SIGINT, handler as usize);
    }
}

/// No-op off Unix; shutdown remains available via the wire request.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// The job server. See the module docs.
pub struct JobServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

impl JobServer {
    /// Binds the listen socket and builds the shared store/sweep. The
    /// server accepts nothing until [`serve`](JobServer::serve).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let store = ResultStore::new(cfg.store_dir.clone()).with_budget(cfg.store_bytes);
        let shared = Arc::new(Shared {
            sweep: Sweep::new().with_store(store),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            queue_cap: cfg.queue_cap.max(1),
            accepting: AtomicBool::new(true),
            active_jobs: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            started: Instant::now(),
            timeline: Mutex::new(Timeline::new()),
            threads: cfg.threads.max(1),
            job_timeout: cfg.job_timeout,
        });
        Ok(Self { listener, shared, workers: cfg.workers.max(1) })
    }

    /// The bound address (reports the real port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until a `shutdown` request or SIGINT, then
    /// drains the queue, joins the workers, and flushes status +
    /// timeline under `results/`. Returns the final status object.
    pub fn serve(self) -> std::io::Result<Json> {
        let worker_handles: Vec<_> = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        while self.shared.accepting.load(Ordering::Relaxed) {
            if SIGINT_SEEN.load(Ordering::Relaxed) {
                self.shared.accepting.store(false, Ordering::Relaxed);
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let _ = handle_connection(&shared, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }

        // Drain: workers exit once the queue is empty (accepting is
        // already false, so nothing refills it).
        self.shared.queue_ready.notify_all();
        for h in worker_handles {
            let _ = h.join();
        }
        let status = self.shared.status_json();
        // Flush next to the store (results/ for the default config) so
        // an ad-hoc server never litters the global results directory.
        let dir = self
            .shared
            .sweep
            .store()
            .and_then(|s| s.dir().parent().map(std::path::Path::to_path_buf))
            .unwrap_or_else(results_dir);
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(dir.join("server_status.json"), status.render());
        let timeline = self.shared.timeline.lock().expect("timeline poisoned");
        if !timeline.is_empty() {
            let _ = std::fs::write(
                dir.join("server_timeline.json"),
                timeline.to_chrome_trace().render(),
            );
        }
        Ok(status)
    }
}

/// Pops and runs jobs until shutdown is requested and the queue is dry.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if !shared.accepting.load(Ordering::Relaxed) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue poisoned");
                q = guard;
            }
        };
        let Some(job) = job else { return };
        shared.active_jobs.fetch_add(1, Ordering::Relaxed);
        let begin = shared.now_ms();
        let label = job.kind.label();
        let id = job.id;
        run_job(shared, job);
        let end = shared.now_ms();
        shared
            .timeline
            .lock()
            .expect("timeline poisoned")
            .push_span("jobs", &format!("{label}#{id}"), begin, end.max(begin + 1));
        shared.active_jobs.fetch_sub(1, Ordering::Relaxed);
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
    }
}

fn send_event(job: &Job, line: String, last: bool) {
    // A vanished client is not an error: the job finishes and its
    // results stay in the store.
    let _ = job.events.send(Event { line, last });
}

fn run_job(shared: &Arc<Shared>, job: Job) {
    send_event(
        &job,
        Json::obj(vec![
            ("event", Json::Str("running".into())),
            ("job", Json::UInt(job.id)),
        ])
        .render(),
        false,
    );
    match &job.kind {
        JobKind::Sweep(points) => run_sweep_job(shared, &job, Arc::clone(points)),
        JobKind::Faults { inject, timeout_secs } => {
            run_faults_job(shared, &job, *inject, *timeout_secs)
        }
    }
}

/// Executes one sweep grid through the shared [`Sweep`], fanning points
/// across `shared.threads` detached runner threads, with the job-level
/// wall-clock watchdog collecting results: a point that misses the
/// deadline is abandoned (its runner thread still finishes and warms
/// the store for whoever asks next) and reported as
/// [`SweepError::Failed`].
fn run_sweep_job(shared: &Arc<Shared>, job: &Job, points: Arc<Vec<SweepPoint>>) {
    let n = points.len();
    let (ptx, prx) = mpsc::channel::<(usize, Result<SimReport, SweepError>)>();
    let next = Arc::new(AtomicUsize::new(0));
    for _ in 0..shared.threads.min(n) {
        let shared = Arc::clone(shared);
        let points = Arc::clone(&points);
        let next = Arc::clone(&next);
        let ptx = ptx.clone();
        std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= points.len() {
                break;
            }
            let r = shared.sweep.run_point(&points[i]);
            if ptx.send((i, r)).is_err() {
                break; // job watchdog gave up on us
            }
        });
    }
    drop(ptx);

    let deadline = Instant::now() + shared.job_timeout;
    let mut seen = vec![false; n];
    let (mut ok, mut failed, mut done) = (0u64, 0u64, 0usize);
    while done < n {
        let remain = deadline.saturating_duration_since(Instant::now());
        match prx.recv_timeout(remain) {
            Ok((i, r)) => {
                seen[i] = true;
                done += 1;
                if r.is_ok() {
                    ok += 1;
                } else {
                    failed += 1;
                }
                let (key, payload) = protocol::result_to_json(&r);
                send_event(
                    job,
                    Json::obj(vec![
                        ("event", Json::Str("point-done".into())),
                        ("job", Json::UInt(job.id)),
                        ("index", Json::UInt(i as u64)),
                        (key, payload),
                    ])
                    .render(),
                    false,
                );
            }
            Err(_) => break, // deadline passed (or all runners gone)
        }
    }
    // The watchdog degradation path: late points become typed holes.
    for (i, seen) in seen.iter().enumerate() {
        if *seen {
            continue;
        }
        failed += 1;
        let err = SweepError::Failed {
            bench: points[i].bench.name().to_string(),
            detail: format!(
                "job watchdog: wall-clock timeout after {}s",
                shared.job_timeout.as_secs()
            ),
        };
        send_event(
            job,
            Json::obj(vec![
                ("event", Json::Str("point-done".into())),
                ("job", Json::UInt(job.id)),
                ("index", Json::UInt(i as u64)),
                ("error", protocol::sweep_error_to_json(&err)),
            ])
            .render(),
            false,
        );
    }
    send_event(
        job,
        Json::obj(vec![
            ("event", Json::Str("complete".into())),
            ("job", Json::UInt(job.id)),
            ("ok", Json::UInt(ok)),
            ("failed", Json::UInt(failed)),
        ])
        .render(),
        true,
    );
}

/// Executes the fault campaign (8 schemes × 5 integrity kinds) at one
/// injection cycle; every point already carries its own watchdog.
fn run_faults_job(shared: &Arc<Shared>, job: &Job, inject: u64, timeout_secs: u64) {
    let timeout = Duration::from_secs(timeout_secs.clamp(1, shared.job_timeout.as_secs().max(1)));
    let (mut ok, mut failed) = (0u64, 0u64);
    for kind in faultpoint::integrity_kinds() {
        for (name, policy) in faultpoint::schemes() {
            let mut pairs = vec![
                ("event", Json::Str("fault-done".into())),
                ("job", Json::UInt(job.id)),
                ("policy", Json::Str(name.into())),
                ("fault", protocol::fault_kind_to_json(&kind)),
            ];
            match faultpoint::run_point(policy, kind, inject, timeout) {
                Ok(o) => {
                    ok += 1;
                    pairs.push(("verdict", Json::Str(o.verdict.into())));
                    pairs.push(("detect", o.detect_cycle.map_or(Json::Null, Json::UInt)));
                    pairs.push((
                        "exposed",
                        o.exposure.map_or(Json::Null, |x| Json::UInt(x.total())),
                    ));
                    pairs.push(("cycles", Json::UInt(o.cycles)));
                }
                Err(e) => {
                    failed += 1;
                    pairs.push(("error", protocol::sweep_error_to_json(&e)));
                }
            }
            send_event(job, Json::obj(pairs).render(), false);
        }
    }
    send_event(
        job,
        Json::obj(vec![
            ("event", Json::Str("complete".into())),
            ("job", Json::UInt(job.id)),
            ("ok", Json::UInt(ok)),
            ("failed", Json::UInt(failed)),
        ])
        .render(),
        true,
    );
}

/// Serves one client connection: reads request lines (bounded), answers
/// each with events. Parse failures answer typed errors and keep the
/// connection; transport failures close it. Jobs execute on the worker
/// pool, never here — a malformed request can never panic a worker.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        // Bound the line *before* buffering it: a request without a
        // newline inside the cap is oversized; EOF mid-line is
        // truncated.
        let n = (&mut reader)
            .take(protocol::MAX_REQUEST_BYTES as u64 + 1)
            .read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // clean EOF between requests
        }
        if line.len() > protocol::MAX_REQUEST_BYTES {
            let _ = writeln!(
                writer,
                "{}",
                protocol::error_line(
                    codes::OVERSIZED_REQUEST,
                    &format!("request exceeds {} bytes", protocol::MAX_REQUEST_BYTES),
                )
            );
            return Ok(()); // the rest of the stream is unframed garbage
        }
        if !line.ends_with('\n') {
            // EOF mid-line: the client died or sent an unterminated
            // request. Typed answer on a best-effort basis, then close.
            let _ = writeln!(
                writer,
                "{}",
                protocol::error_line(codes::TRUNCATED, "connection closed mid-request")
            );
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match protocol::parse_request(trimmed) {
            Err(e) => {
                writeln!(writer, "{}", e.to_line())?;
            }
            Ok(Request::Status) => {
                writeln!(writer, "{}", shared.status_json().render())?;
            }
            Ok(Request::Shutdown) => {
                shared.accepting.store(false, Ordering::Relaxed);
                shared.queue_ready.notify_all();
                let _ = writeln!(
                    writer,
                    "{}",
                    Json::obj(vec![("event", Json::Str("shutting-down".into()))]).render()
                );
                return Ok(());
            }
            Ok(Request::Sweep { points }) => {
                let n = points.len();
                submit_and_stream(shared, &mut writer, JobKind::Sweep(Arc::new(points)), n)?;
            }
            Ok(Request::Faults { inject, timeout_secs }) => {
                let n = faultpoint::integrity_kinds().len() * faultpoint::schemes().len();
                submit_and_stream(
                    shared,
                    &mut writer,
                    JobKind::Faults { inject, timeout_secs },
                    n,
                )?;
            }
        }
    }
}

/// Enqueues one job (respecting the drain flag and the bounded queue)
/// and forwards its event stream to the client until `complete`.
fn submit_and_stream(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    kind: JobKind,
    points: usize,
) -> std::io::Result<()> {
    if !shared.accepting.load(Ordering::Relaxed) {
        writeln!(
            writer,
            "{}",
            protocol::error_line(codes::SHUTTING_DOWN, "server is draining; no new jobs")
        )?;
        return Ok(());
    }
    let (tx, rx) = mpsc::channel();
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
    {
        let mut q = shared.queue.lock().expect("queue poisoned");
        if q.len() >= shared.queue_cap {
            drop(q);
            writeln!(
                writer,
                "{}",
                protocol::error_line(codes::QUEUE_FULL, "job queue is full; retry later")
            )?;
            return Ok(());
        }
        q.push_back(Job { id, kind, events: tx });
        let depth = q.len() as f64;
        let ts = shared.now_ms();
        shared
            .timeline
            .lock()
            .expect("timeline poisoned")
            .push_counter("queue", ts, depth);
    }
    shared.queue_ready.notify_one();
    writeln!(
        writer,
        "{}",
        Json::obj(vec![
            ("event", Json::Str("queued".into())),
            ("job", Json::UInt(id)),
            ("points", Json::UInt(points as u64)),
        ])
        .render()
    )?;
    // Stream until the job's last event. If the client disconnects we
    // keep draining so the worker never blocks on a dead socket.
    let mut client_alive = true;
    while let Ok(ev) = rx.recv() {
        if client_alive && writeln!(writer, "{}", ev.line).is_err() {
            client_alive = false;
        }
        if ev.last {
            break;
        }
    }
    Ok(())
}
