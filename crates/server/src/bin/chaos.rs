//! `chaos` — deterministic network-fault harness for `secsim-serve`.
//!
//! ```text
//! chaos [--seed N] [--rate PCT] [--clients N] [--smoke]
//! ```
//!
//! Spins up an ephemeral job server, parks a seeded fault-injecting
//! proxy ([`secsim_bench::chaos::ChaosProxy`]) in front of it, and runs
//! N resilient clients through the proxy at the configured fault rate.
//! The run must terminate with every client holding results
//! byte-identical to a fault-free in-process run and the server having
//! simulated each unique point exactly once — the service-layer
//! analogue of the paper's "zero undetected tampering" bar. The same
//! seed replays the same fault schedule.
//!
//! `--smoke` is the tier-1/CI entry: fixed seed, 2 clients, a fault
//! rate high enough that at least one reconnect is guaranteed (and
//! asserted).

use secsim_bench::chaos::{ChaosPlan, ChaosProxy};
use secsim_bench::client::{self, RetryPolicy};
use secsim_bench::{ResultStore, RunOpts, Sweep, SweepPoint};
use secsim_core::Policy;
use secsim_server::{JobServer, ServerConfig};
use secsim_stats::Json;
use secsim_workloads::BenchId;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: chaos [--seed N] [--rate PCT] [--clients N] [--smoke]");
    std::process::exit(2);
}

struct Opts {
    seed: u64,
    rate: u8,
    clients: u64,
    smoke: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts { seed: 0xC0FFEE, rate: 90, clients: 2, smoke: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().and_then(|s| s.parse::<u64>().ok()).unwrap_or_else(|| {
                eprintln!("error: {name} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed"),
            "--rate" => opts.rate = value("--rate").min(100) as u8,
            "--clients" => opts.clients = value("--clients").max(1),
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other}");
                usage()
            }
        }
    }
    opts
}

fn grid() -> Vec<SweepPoint> {
    let opts = RunOpts { max_insts: 8_000, ..RunOpts::default() };
    vec![
        SweepPoint::of(BenchId::Gzip, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Gzip, Policy::authen_then_commit(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::baseline(), &opts),
        SweepPoint::of(BenchId::Mcf, Policy::authen_then_commit(), &opts),
    ]
}

fn renders(results: &[Result<secsim_cpu::SimReport, secsim_bench::SweepError>]) -> Vec<String> {
    results
        .iter()
        .map(|r| r.as_ref().expect("every point reports").to_json().expect("untraced").render())
        .collect()
}

fn main() {
    let opts = parse_args();
    let tag = format!("secsim-chaos-bin-{}", std::process::id());
    let tmp = std::env::temp_dir().join(tag);
    let _ = std::fs::remove_dir_all(&tmp);

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        threads: 2,
        queue_cap: 8,
        job_timeout: Duration::from_secs(120),
        store_dir: tmp.join("store"),
        ..ServerConfig::default()
    };
    let server = JobServer::bind(&cfg).expect("chaos: bind ephemeral port");
    let addr = server.local_addr().expect("chaos: local addr").to_string();
    let server_thread = std::thread::spawn(move || server.serve());

    let plan = ChaosPlan::new(opts.seed, opts.rate);
    let mut proxy =
        ChaosProxy::spawn(plan, addr.parse().expect("chaos: addr parses")).expect("chaos: proxy");
    let proxy_addr = proxy.addr().to_string();

    let points = grid();
    let clients: Vec<_> = (0..opts.clients)
        .map(|i| {
            let proxy_addr = proxy_addr.clone();
            let points = points.clone();
            let seed = opts.seed ^ i;
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    attempts: 40,
                    base_ms: 10,
                    cap_ms: 200,
                    read_timeout: Duration::from_secs(2),
                    seed,
                };
                client::run_sweep_with(&proxy_addr, &points, policy)
            })
        })
        .collect();

    let mut outs: Vec<Vec<String>> = Vec::new();
    let (mut reconnects, mut resumes, mut resubmits, mut timeouts) = (0u64, 0u64, 0u64, 0u64);
    for c in clients {
        let (results, stats) = c
            .join()
            .expect("chaos: client thread")
            .expect("chaos: sweep must survive the fault schedule");
        reconnects += stats.reconnects;
        resumes += stats.resumes;
        resubmits += stats.resubmits;
        timeouts += stats.timeouts;
        outs.push(renders(&results));
    }
    for pair in outs.windows(2) {
        assert_eq!(pair[0], pair[1], "chaos: all clients must see byte-identical reports");
    }

    // Byte-identical to a fault-free, in-process run of the same grid.
    let local_store = tmp.join("local");
    let local = Sweep::new().with_store(ResultStore::new(local_store)).run(&points);
    assert_eq!(
        outs[0],
        renders(&local),
        "chaos: faulted results must match the fault-free run"
    );

    // Exactly-once execution on the server, faults notwithstanding.
    let status = client::status(&addr).expect("chaos: status");
    let simulated = status
        .get("sweep")
        .and_then(|s| s.get("simulated"))
        .and_then(Json::as_u64)
        .expect("chaos: status carries sweep.simulated");
    assert_eq!(
        simulated,
        points.len() as u64,
        "chaos: simulated must equal unique points (no lost, no duplicated work)"
    );

    if opts.smoke {
        assert!(
            reconnects >= 1,
            "chaos --smoke: rate {}% at seed {:#x} must force at least one reconnect \
             (got {reconnects} across {} proxied connections)",
            opts.rate,
            opts.seed,
            proxy.accepted()
        );
    }

    let accepted = proxy.accepted();
    proxy.stop();
    client::shutdown(&addr).expect("chaos: shutdown");
    let final_status = server_thread
        .join()
        .expect("chaos: server thread")
        .expect("chaos: serve returns");
    assert_eq!(
        final_status.get("queue_depth").and_then(Json::as_u64),
        Some(0),
        "chaos: queue must drain before exit"
    );
    let _ = std::fs::remove_dir_all(&tmp);
    println!(
        "chaos OK: seed={:#x} rate={}% clients={} conns={accepted} \
         reconnects={reconnects} resumes={resumes} resubmits={resubmits} timeouts={timeouts} \
         simulated={simulated}",
        opts.seed, opts.rate, opts.clients
    );
}
