//! Property-based tests for the cryptographic substrate.

// Gated behind the `proptest` cargo feature: the external `proptest`
// crate is not available in offline builds. See this crate's Cargo.toml
// for how to enable it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use secsim_crypto::{Aes, CbcMac, CtrKeystream, HmacSha256, Sha256};

proptest! {
    /// AES-128: decrypt ∘ encrypt = id for arbitrary keys and blocks.
    #[test]
    fn aes128_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new_128(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// AES-256 round trip.
    #[test]
    fn aes256_round_trip(key in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new_256(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// CTR keystream is an involution for arbitrary data lengths.
    #[test]
    fn ctr_involution(
        key in any::<[u8; 16]>(),
        addr in any::<u32>(),
        ctr in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let ks = CtrKeystream::new(Aes::new_128(&key));
        let mut d = data.clone();
        ks.apply(addr, ctr, &mut d);
        ks.apply(addr, ctr, &mut d);
        prop_assert_eq!(d, data);
    }

    /// CTR malleability: flipping ciphertext bit k flips exactly
    /// plaintext bit k — the foundation of every exploit in the paper.
    #[test]
    fn ctr_bit_flip_is_local(
        key in any::<[u8; 16]>(),
        addr in any::<u32>(),
        ctr in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 1..128),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let ks = CtrKeystream::new(Aes::new_128(&key));
        let idx = byte_sel.index(data.len());
        let mut ct = data.clone();
        ks.apply(addr, ctr, &mut ct);
        ct[idx] ^= 1 << bit;
        ks.apply(addr, ctr, &mut ct);
        for (i, (&got, &want)) in ct.iter().zip(data.iter()).enumerate() {
            if i == idx {
                prop_assert_eq!(got, want ^ (1 << bit));
            } else {
                prop_assert_eq!(got, want);
            }
        }
    }

    /// HMAC detects any single-bit tamper of the message.
    #[test]
    fn hmac_detects_single_bit_tamper(
        key in prop::collection::vec(any::<u8>(), 1..64),
        data in prop::collection::vec(any::<u8>(), 1..128),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mac = HmacSha256::new(&key);
        let tag = mac.compute_truncated(&data);
        let mut tampered = data.clone();
        let idx = byte_sel.index(tampered.len());
        tampered[idx] ^= 1 << bit;
        prop_assert!(!mac.verify_truncated(&tampered, tag));
        prop_assert!(mac.verify_truncated(&data, tag));
    }

    /// CBC-MAC detects any single-bit tamper of a fixed-length line.
    #[test]
    fn cbcmac_detects_single_bit_tamper(
        key in any::<[u8; 16]>(),
        data in any::<[u8; 64]>(),
        idx in 0usize..64,
        bit in 0u8..8,
    ) {
        let mac = CbcMac::new(Aes::new_128(&key));
        let tag = mac.compute_truncated(&data);
        let mut tampered = data;
        tampered[idx] ^= 1 << bit;
        prop_assert!(!mac.verify_truncated(&tampered, tag));
    }

    /// Incremental SHA-256 equals one-shot for arbitrary splits.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..300),
        split_sel in any::<prop::sample::Index>(),
    ) {
        let split = split_sel.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}
