//! CBC-MAC over AES, used for the paper's Table 1 comparison of
//! `[CBC + CBC-MAC]` against `[Counter mode + HMAC]`.
//!
//! CBC-MAC chains the cipher serially over the line, so both decryption
//! *and* authentication latency scale with the number of 16-byte chunks —
//! the narrow-gap but slow alternative the paper argues against.

use crate::aes::Aes;

/// An AES-CBC-MAC instance.
///
/// # Examples
///
/// ```
/// use secsim_crypto::{Aes, CbcMac};
///
/// let mac = CbcMac::new(Aes::new_128(&[3u8; 16]));
/// let t = mac.compute(&[0u8; 64]);
/// assert_eq!(t, mac.compute(&[0u8; 64]));
/// assert_ne!(t, mac.compute(&[1u8; 64]));
/// ```
#[derive(Debug, Clone)]
pub struct CbcMac {
    aes: Aes,
}

impl CbcMac {
    /// Creates a CBC-MAC instance from an AES cipher.
    pub fn new(aes: Aes) -> Self {
        Self { aes }
    }

    /// Computes the 16-byte MAC over `data`.
    ///
    /// Fixed-length use only (cache lines): inputs are zero-padded to a
    /// multiple of 16 bytes. The simulator always MACs whole lines, so
    /// the classic variable-length CBC-MAC forgery does not apply; a
    /// production design would use CMAC.
    pub fn compute(&self, data: &[u8]) -> [u8; 16] {
        let mut state = [0u8; 16];
        for chunk in data.chunks(16) {
            for (s, b) in state.iter_mut().zip(chunk.iter()) {
                *s ^= b;
            }
            self.aes.encrypt_block(&mut state);
        }
        state
    }

    /// Computes a truncated 64-bit tag (to match the stored MAC size used
    /// for HMAC).
    pub fn compute_truncated(&self, data: &[u8]) -> u64 {
        let t = self.compute(data);
        u64::from_be_bytes(t[..8].try_into().expect("8 bytes"))
    }

    /// Verifies `data` against a truncated tag.
    pub fn verify_truncated(&self, data: &[u8], tag: u64) -> bool {
        self.compute_truncated(data) == tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> CbcMac {
        CbcMac::new(Aes::new_128(&[0x11; 16]))
    }

    #[test]
    fn deterministic_and_sensitive() {
        let m = mac();
        let a = m.compute(&[7u8; 64]);
        assert_eq!(a, m.compute(&[7u8; 64]));
        let mut tampered = [7u8; 64];
        tampered[63] ^= 1;
        assert_ne!(a, m.compute(&tampered));
    }

    #[test]
    fn first_block_change_propagates() {
        let m = mac();
        let mut x = [0u8; 64];
        let a = m.compute(&x);
        x[0] = 1;
        assert_ne!(a, m.compute(&x));
    }

    #[test]
    fn truncated_round_trip() {
        let m = mac();
        let data = [9u8; 32];
        let t = m.compute_truncated(&data);
        assert!(m.verify_truncated(&data, t));
        assert!(!m.verify_truncated(&[8u8; 32], t));
    }

    #[test]
    fn single_block_equals_raw_aes() {
        let aes = Aes::new_128(&[0x11; 16]);
        let m = CbcMac::new(aes.clone());
        let data = [0x42u8; 16];
        let mut expect = data;
        aes.encrypt_block(&mut expect);
        assert_eq!(m.compute(&data), expect);
    }
}
