//! Counter-mode keystream generation for memory encryption.
//!
//! In the paper's reference design (after [19, 23, 27]) each protected
//! cache line is encrypted by XOR with a keystream pad
//! `AES(address ‖ counter ‖ block-index)`. Because the pad depends only
//! on the address and a per-line counter — not the data — the secure
//! processor can precompute it while the memory fetch is in flight, which
//! is what opens the decrypt-early / authenticate-late gap the paper
//! studies.

use crate::aes::Aes;

/// A counter-mode keystream generator bound to one AES key.
///
/// # Examples
///
/// ```
/// use secsim_crypto::{Aes, CtrKeystream};
///
/// let ks = CtrKeystream::new(Aes::new_128(&[1u8; 16]));
/// let mut line = [0xABu8; 64];
/// ks.apply(0x8000, 3, &mut line); // encrypt line at addr 0x8000, counter 3
/// ks.apply(0x8000, 3, &mut line); // decrypt (XOR is an involution)
/// assert_eq!(line, [0xABu8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct CtrKeystream {
    aes: Aes,
}

impl CtrKeystream {
    /// Creates a keystream generator from an AES instance.
    pub fn new(aes: Aes) -> Self {
        Self { aes }
    }

    /// Produces the 16-byte pad for `(line_addr, counter, chunk_index)`.
    ///
    /// The pad input block encodes the line address, the per-line counter
    /// and the 16-byte chunk index within the line, so every chunk of
    /// every (address, counter) pair gets a distinct pad.
    pub fn pad(&self, line_addr: u32, counter: u64, chunk: u32) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[0..4].copy_from_slice(&line_addr.to_le_bytes());
        block[4..12].copy_from_slice(&counter.to_le_bytes());
        block[12..16].copy_from_slice(&chunk.to_le_bytes());
        self.aes.encrypt_block(&mut block);
        block
    }

    /// XORs the keystream for `(line_addr, counter)` over `data`
    /// (encrypts plaintext / decrypts ciphertext — counter mode is an
    /// involution).
    ///
    /// `data` may be any length; it is processed in 16-byte chunks.
    pub fn apply(&self, line_addr: u32, counter: u64, data: &mut [u8]) {
        for (i, chunk_bytes) in data.chunks_mut(16).enumerate() {
            let pad = self.pad(line_addr, counter, i as u32);
            for (b, p) in chunk_bytes.iter_mut().zip(pad.iter()) {
                *b ^= p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks() -> CtrKeystream {
        CtrKeystream::new(Aes::new_128(&[9u8; 16]))
    }

    #[test]
    fn involution() {
        let ks = ks();
        let mut data: Vec<u8> = (0..100u8).collect();
        let orig = data.clone();
        ks.apply(0x1234, 77, &mut data);
        assert_ne!(data, orig);
        ks.apply(0x1234, 77, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn pads_differ_by_address_counter_chunk() {
        let ks = ks();
        let p = ks.pad(0x1000, 0, 0);
        assert_ne!(ks.pad(0x1040, 0, 0), p);
        assert_ne!(ks.pad(0x1000, 1, 0), p);
        assert_ne!(ks.pad(0x1000, 0, 1), p);
    }

    #[test]
    fn bit_flip_malleability() {
        // Flipping ciphertext bit k flips exactly plaintext bit k.
        let ks = ks();
        let mut data = [0x5Au8; 32];
        let orig = data;
        ks.apply(0x2000, 5, &mut data);
        data[17] ^= 0x40;
        ks.apply(0x2000, 5, &mut data);
        assert_eq!(data[17], orig[17] ^ 0x40);
        for (i, (&d, &o)) in data.iter().zip(orig.iter()).enumerate() {
            if i != 17 {
                assert_eq!(d, o);
            }
        }
    }

    #[test]
    fn counter_reuse_would_repeat_keystream() {
        // Documents why counters must increment on writeback: same
        // (addr, counter) ⇒ same pad.
        let ks = ks();
        assert_eq!(ks.pad(0x3000, 8, 2), ks.pad(0x3000, 8, 2));
        assert_ne!(ks.pad(0x3000, 8, 2), ks.pad(0x3000, 9, 2));
    }
}
